package classifier_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/iface"
	"neurocuts/pkg/classifier"
)

// TestSharedMemoryTransport opens an SDK handle over a serving process's
// ring (simulated in-process) and checks data-plane equivalence with a
// local handle plus the control-plane ErrNotSupported contract.
func TestSharedMemoryTransport(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 300, 1)
	eng, err := engine.NewEngine("hicuts", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ringPath := filepath.Join(t.TempDir(), "ring")
	srv, err := iface.NewShmServer(ringPath, eng, iface.ShmServerConfig{Slots: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := classifier.Open(nil, classifier.WithSharedMemory(ringPath, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	entries := classbench.GenerateTrace(set, 2000, 9)
	keys := make([]classifier.Packet, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	ctx := context.Background()
	got, err := c.ClassifyBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]engine.Result, len(keys))
	eng.ClassifyBatch(keys, want)
	for i := range keys {
		if got[i].OK != want[i].OK || got[i].Rule.ID != want[i].Rule.ID || got[i].Rule.Priority != want[i].Rule.Priority {
			t.Fatalf("packet %d: shm id=%d prio=%d ok=%v, direct id=%d prio=%d ok=%v",
				i, got[i].Rule.ID, got[i].Rule.Priority, got[i].OK,
				want[i].Rule.ID, want[i].Rule.Priority, want[i].OK)
		}
	}

	// Single-packet path carries the same identity-only contract.
	match, ok, err := c.Classify(ctx, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok != want[0].OK || match.ID != want[0].Rule.ID || match.Priority != want[0].Rule.Priority {
		t.Fatalf("Classify: got id=%d prio=%d ok=%v, want id=%d prio=%d ok=%v",
			match.ID, match.Priority, ok, want[0].Rule.ID, want[0].Rule.Priority, want[0].OK)
	}

	// Cancellation still applies before the ring is touched.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := c.Classify(cancelled, keys[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Classify: err = %v, want context.Canceled", err)
	}

	// Control-plane operations belong to the serving process.
	if _, err := c.Insert(0, classifier.Rule{}); !errors.Is(err, classifier.ErrNotSupported) {
		t.Fatalf("Insert: err = %v, want ErrNotSupported", err)
	}
	if _, err := c.Delete(1); !errors.Is(err, classifier.ErrNotSupported) {
		t.Fatalf("Delete: err = %v, want ErrNotSupported", err)
	}
	if err := c.Save("x"); !errors.Is(err, classifier.ErrNotSupported) {
		t.Fatalf("Save: err = %v, want ErrNotSupported", err)
	}
	if _, err := c.Load("x"); !errors.Is(err, classifier.ErrNotSupported) {
		t.Fatalf("Load: err = %v, want ErrNotSupported", err)
	}
	if rs := c.Rules(); rs != nil {
		t.Fatal("Rules over shm returned a rule set")
	}
	if b := c.Backend(); b != "shm" {
		t.Fatalf("Backend = %q, want \"shm\"", b)
	}
	if st := c.Stats(); st.Backend != "shm" || st.Rules != 0 {
		t.Fatalf("Stats = %+v, want backend-label-only", st)
	}
}

// TestSharedMemoryOptionValidation pins Open's rejections for the transport
// mode.
func TestSharedMemoryOptionValidation(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 10, 1)
	if _, err := classifier.Open(set, classifier.WithSharedMemory("/tmp/nope", time.Second)); err == nil {
		t.Fatal("Open with rules + WithSharedMemory succeeded")
	}
	if _, err := classifier.Open(nil,
		classifier.WithSharedMemory("/tmp/nope", time.Second),
		classifier.WithShards(4)); err == nil {
		t.Fatal("Open with engine options + WithSharedMemory succeeded")
	}
	if _, err := classifier.Open(nil,
		classifier.WithSharedMemory("/tmp/nope", time.Second),
		classifier.WithDataplane(2)); err == nil {
		t.Fatal("Open with WithDataplane + WithSharedMemory succeeded")
	}
	// An absent ring fails after the attach timeout, not by hanging.
	start := time.Now()
	if _, err := classifier.Open(nil,
		classifier.WithSharedMemory(filepath.Join(t.TempDir(), "absent"), 50*time.Millisecond)); err == nil {
		t.Fatal("Open against an absent ring succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("absent-ring Open took %v, want bounded by the timeout", d)
	}
}
