package classifier

import (
	"time"

	"neurocuts/internal/engine"
)

// config collects the functional options into the engine's build options.
type config struct {
	backend        string
	artifact       string
	opts           engine.Options
	dataplane      bool
	dataplaneCores int
	telemetry      bool
	slowThreshold  time.Duration
	slowSet        bool
	shmPath        string
	shmTimeout     time.Duration
}

// Option configures Open.
type Option func(*config)

// WithBackend selects the classification backend by registry name
// ("neurocuts", "hicuts", "hypercuts", "efficuts", "cutsplit", "tss",
// "tcam", "linear" — see Backends). The default is "hicuts".
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithArtifact warm-starts the classifier from a compiled artifact instead
// of building: the first lookup is served straight from the loaded
// flat-array form, with no build or train path invoked. Open's rules
// argument must be nil — the artifact embeds its rule set.
func WithArtifact(path string) Option {
	return func(c *config) { c.artifact = path }
}

// WithOnlineUpdates routes Insert and Delete through the delta-overlay
// update subsystem: updates land in a small overlay (no backend rebuild on
// the write path) and a background compactor folds them into the base
// structure off the critical path. Without it, every update rebuilds the
// backend synchronously before publishing.
func WithOnlineUpdates() Option {
	return func(c *config) { c.opts.OnlineUpdates = true }
}

// WithJournal enables the durable update journal at path (and implies
// WithOnlineUpdates): every acknowledged update is appended and synced
// before its snapshot is published, and an existing journal is replayed at
// Open for crash-consistent warm starts.
func WithJournal(path string) Option {
	return func(c *config) { c.opts.JournalPath = path }
}

// WithJournalNoSync disables the journal's per-record fsync: updates get
// faster, but a machine crash may lose the most recently acknowledged
// records (a process crash alone does not).
func WithJournalNoSync() Option {
	return func(c *config) { c.opts.JournalNoSync = true }
}

// WithCompactThreshold sets the pending-update count (overlay rules plus
// tombstones) that triggers background compaction. Zero selects the
// default; negative disables background compaction.
func WithCompactThreshold(n int) Option {
	return func(c *config) { c.opts.CompactThreshold = n }
}

// WithCompactMaxAge compacts a non-empty overlay older than d even below
// the size threshold, bounding how stale the delta can get on a quiet
// rule set.
func WithCompactMaxAge(d time.Duration) Option {
	return func(c *config) { c.opts.CompactMaxAge = d }
}

// WithDataplane serves lookups through a run-to-completion dataplane
// instead of the default worker pool: long-lived per-core classify loops,
// each owning its slice of the flow space outright, fed over bounded
// single-producer/single-consumer rings by a demux stage that hashes the
// 5-tuple — so a flow always lands on the same core and per-flow state
// needs no locks. cores sets the loop count (0 selects GOMAXPROCS).
//
// With the dataplane enabled, a WithFlowCache budget funds lock-free
// per-core caches instead of the engine's sharded cache (which the
// dataplane would bypass). Updates, artifacts and stats are unaffected;
// rule updates reach the loops as epoch messages on the same rings that
// carry traffic, so a batch submitted after Insert or Delete returns is
// classified entirely against the new rule generation.
func WithDataplane(cores int) Option {
	return func(c *config) {
		c.dataplane = true
		c.dataplaneCores = cores
	}
}

// WithSharedMemory connects to a serving process's shared-memory ring at
// path instead of building a local classifier — the transport a co-located
// classifyd exposes with -shm. Lookups cross a file-backed mmap descriptor
// ring (two SPSC rings, no sockets, no syscalls on the hot path) and return
// the winning rule's ID and priority, exactly as wire protocol v2 does over
// TCP. Open's rules argument must be nil, and every other option is
// rejected: the classifier lives in the serving process, which owns the
// backend, updates and artifacts — control-plane calls on this handle fail
// with ErrNotSupported. Open waits up to timeout for the serving process to
// create and initialise the ring (0 selects 5s).
func WithSharedMemory(path string, timeout time.Duration) Option {
	return func(c *config) {
		c.shmPath = path
		c.shmTimeout = timeout
	}
}

// WithTelemetry enables online latency telemetry: lock-free preallocated
// histograms recorded on every serving path (single lookups, batch spans,
// dataplane core loops, update applies, compactions) and a slow-lookup
// flight recorder. Recording costs one atomic add per sample and keeps
// every hot path at zero allocations per operation. Read the results
// through Stats().Telemetry, or scrape them as native Prometheus histogram
// families from AdminHandler's /metrics (the flight recorder dumps at
// /debug/slow).
func WithTelemetry() Option {
	return func(c *config) { c.telemetry = true }
}

// WithSlowThreshold arms the flight recorder (implying WithTelemetry):
// lookups at or above d are captured into a fixed-size lock-free ring —
// latency, table, backend, traversal depth, cache and overlay attribution —
// holding the worst recent offenders for AdminHandler's /debug/slow.
// d = 0 captures every lookup; a negative d disables capture.
func WithSlowThreshold(d time.Duration) Option {
	return func(c *config) {
		c.telemetry = true
		c.slowThreshold = d
		c.slowSet = true
	}
}

// WithShards sets the batch-lookup shard count (0 selects GOMAXPROCS). It
// affects only the serving runtime, not the built data structure.
func WithShards(n int) Option {
	return func(c *config) { c.opts.Shards = n }
}

// WithFlowCache enables the sharded flow cache with the given entry budget.
// The cache memoises (5-tuple -> result) per rule-set version, which pays
// off on skewed traffic where few flows carry most packets.
func WithFlowCache(entries int) Option {
	return func(c *config) { c.opts.FlowCacheEntries = entries }
}

// WithBinth sets the leaf threshold for tree backends (0 selects the
// default).
func WithBinth(n int) Option {
	return func(c *config) { c.opts.Binth = n }
}

// WithSeed seeds stochastic backends (NeuroCuts training; 0 selects 1).
func WithSeed(seed int64) Option {
	return func(c *config) { c.opts.Seed = seed }
}

// WithTrainingBudget sets the NeuroCuts training budget in timesteps
// (neurocuts backend only; 0 selects the default).
func WithTrainingBudget(timesteps int) Option {
	return func(c *config) { c.opts.Timesteps = timesteps }
}

// WithTimeSpaceCoeff sets the NeuroCuts time-space tradeoff coefficient c
// (Equation 5 of the paper): 1 optimises classification time, 0 memory
// footprint, values between interpolate.
func WithTimeSpaceCoeff(coeff float64) Option {
	return func(c *config) {
		c.opts.TimeSpaceCoeff = coeff
		c.opts.TimeSpaceCoeffSet = true
	}
}

// WithLogReward makes NeuroCuts scale rewards with f(x) = log(x) instead
// of the linear default — the paper's choice whenever the time-space
// coefficient is below 1, keeping classification time and memory footprint
// commensurable in the combined objective.
func WithLogReward() Option {
	return func(c *config) { c.opts.LogReward = true }
}

// WithSimplePartition allows NeuroCuts the coverage-threshold partition
// action at the top node (the paper's "simple" partitioning); the default
// trains a single unpartitioned tree.
func WithSimplePartition() Option {
	return func(c *config) { c.opts.SimplePartition = true }
}
