package classifier_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesUseOnlyPublicAPI enforces the SDK boundary: the examples are
// the embedding story shown to external users, so they must compile against
// pkg/classifier alone — any neurocuts/internal/... import in an example
// would showcase an API external programs cannot actually use.
func TestExamplesUseOnlyPublicAPI(t *testing.T) {
	examplesDir := filepath.Join("..", "..", "examples")
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		t.Fatalf("reading examples dir: %v", err)
	}
	checked := 0
	for _, entry := range entries {
		if !entry.IsDir() {
			continue
		}
		sources, err := filepath.Glob(filepath.Join(examplesDir, entry.Name(), "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range sources {
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, src, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", src, err)
			}
			checked++
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(path, "neurocuts/internal/") {
					t.Errorf("%s imports %s; examples must use only neurocuts/pkg/classifier", src, path)
				}
			}
		}
	}
	if checked < 4 {
		t.Fatalf("expected to check at least the 4 example programs, found %d files", checked)
	}
}
