// Package classifier is the public SDK for embedding this repository's
// packet classifiers in external Go programs.
//
// It is a stable facade over the internal engine: every registered backend
// (the learned NeuroCuts trees, HiCuts, HyperCuts, EffiCuts, CutSplit,
// Tuple Space Search, a TCAM model and the linear-search reference) is
// reachable through one constructor with functional options, and the types
// callers need — rules, packets, results — are re-exported here, so no
// program ever imports neurocuts/internal/... directly.
//
// Open builds (or warm-starts) a classifier:
//
//	rules, _ := classifier.GenerateRules("acl1", 1000, 1)
//	c, err := classifier.Open(rules,
//		classifier.WithBackend("hicuts"),
//		classifier.WithShards(8))
//	defer c.Close()
//
//	match, ok, err := c.Classify(ctx, classifier.Packet{SrcIP: ..., DstPort: 443, Proto: 6})
//
// Lookups are context-aware: Classify checks the context before running,
// and ClassifyBatch classifies in bounded chunks so cancellation and
// deadlines take effect mid-batch. Rule updates (Insert, Delete), compiled
// artifacts (Save, Load, WithArtifact) and the online-update subsystem
// (WithOnlineUpdates, WithJournal) are the same capabilities the bundled
// classifyd daemon serves over TCP — see internal/server for the wire
// protocols and cmd/classifyd for the daemon.
package classifier

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"neurocuts/internal/admin"
	"neurocuts/internal/dataplane"
	"neurocuts/internal/engine"
	"neurocuts/internal/iface"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// Packet is a point in the 5-dimensional classification space: the header
// fields a classifier inspects (source/destination IP, source/destination
// port, protocol).
type Packet = rule.Packet

// Rule is a single classification rule: one inclusive range per dimension
// plus a priority (lower wins).
type Rule = rule.Rule

// Range is an inclusive integer interval over one dimension.
type Range = rule.Range

// Dimension identifies one of the five classification dimensions.
type Dimension = rule.Dimension

// The five classification dimensions, re-exported for rule construction.
const (
	DimSrcIP   = rule.DimSrcIP
	DimDstIP   = rule.DimDstIP
	DimSrcPort = rule.DimSrcPort
	DimDstPort = rule.DimDstPort
	DimProto   = rule.DimProto
	// NumDims is the number of classification dimensions.
	NumDims = rule.NumDims
)

// RuleSet is an ordered packet classifier: a list of rules where earlier
// rules have higher priority.
type RuleSet = rule.Set

// Result is the outcome of classifying one packet in a batch.
type Result = engine.Result

// Metrics is the backend-independent cost summary a classifier reports
// (lookup cost, memory footprint, stored entries).
type Metrics = engine.Metrics

// UpdateResult describes the snapshot published by a successful Insert,
// Delete or Load.
type UpdateResult = engine.UpdateResult

// ErrRuleNotFound is wrapped by Delete when no live rule carries the
// requested ID.
var ErrRuleNotFound = engine.ErrRuleNotFound

// ErrClosed is returned by operations on a closed Classifier.
var ErrClosed = errors.New("classifier: closed")

// ErrNotSupported is returned by control-plane operations (Insert, Delete,
// Save, Load, Rules) on a shared-memory transport handle: the classifier
// lives in the serving process, which owns the backend, its updates and its
// artifacts. Drive those through the serving process (classifyd's -query,
// or its own SDK handle).
var ErrNotSupported = errors.New("classifier: operation not supported over the shared-memory transport")

// Classifier is an open classification engine: a built (or artifact-loaded)
// backend with sharded batch lookup, atomic rule updates and optional
// online-update durability. Lookups and updates are safe for concurrent
// use from any number of goroutines. Close releases the classifier's
// background resources; call it once outstanding operations have returned
// (operations started after Close fail with ErrClosed).
type Classifier struct {
	eng *engine.Engine
	// dp is non-nil when WithDataplane routed lookups through per-core
	// run-to-completion loops; control-plane calls still go to eng.
	dp *dataplane.Dataplane
	// shm is non-nil when WithSharedMemory connected this handle to a
	// serving process's descriptor ring instead of a local engine (eng and
	// dp are then nil, and control-plane calls fail with ErrNotSupported).
	shm *iface.ShmClient
	// tel is non-nil when WithTelemetry/WithSlowThreshold armed the online
	// latency telemetry.
	tel    *telemetry.Telemetry
	closed atomic.Bool
}

// Open builds a classifier over the rule set. The backend defaults to
// "hicuts"; pass WithBackend to select another, or WithArtifact to
// warm-start from a compiled artifact instead of building (rules must then
// be nil — the artifact embeds its rule set).
func Open(rules *RuleSet, opts ...Option) (*Classifier, error) {
	var cfg config
	cfg.backend = "hicuts"
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shmPath != "" {
		if rules != nil {
			return nil, errors.New("classifier: WithSharedMemory connects to a serving process; pass nil rules")
		}
		if cfg.artifact != "" || cfg.dataplane || cfg.telemetry ||
			cfg.opts != (engine.Options{}) {
			return nil, errors.New("classifier: WithSharedMemory is a pure transport; engine-configuring options belong to the serving process")
		}
		shm, err := iface.OpenShmClient(cfg.shmPath, iface.ShmClientConfig{Timeout: cfg.shmTimeout})
		if err != nil {
			return nil, err
		}
		return &Classifier{shm: shm}, nil
	}
	// With the dataplane in front, the engine's sharded flow cache would
	// never be consulted — move the WithFlowCache budget to the dataplane's
	// lock-free per-core caches instead of allocating it twice.
	dpCache := 0
	if cfg.dataplane {
		dpCache = cfg.opts.FlowCacheEntries
		cfg.opts.FlowCacheEntries = 0
	}
	var tel *telemetry.Telemetry
	if cfg.telemetry {
		tel = telemetry.New(telemetry.Config{})
		if cfg.slowSet {
			tel.SetSlowThreshold(cfg.slowThreshold.Nanoseconds())
		}
		cfg.opts.Telemetry = tel
	}
	var eng *engine.Engine
	var err error
	if cfg.artifact != "" {
		if rules != nil {
			return nil, errors.New("classifier: WithArtifact embeds its own rule set; pass nil rules")
		}
		eng, err = engine.NewEngineFromArtifact(cfg.artifact, cfg.opts)
	} else {
		if rules == nil {
			return nil, errors.New("classifier: nil rule set (pass WithArtifact to open without rules)")
		}
		eng, err = engine.NewEngine(cfg.backend, rules, cfg.opts)
	}
	if err != nil {
		return nil, err
	}
	c := &Classifier{eng: eng, tel: tel}
	if cfg.dataplane {
		dp, err := dataplane.Attach(eng, dataplane.Config{
			Cores:        cfg.dataplaneCores,
			CacheEntries: dpCache,
		})
		if err != nil {
			eng.Close()
			return nil, err
		}
		c.dp = dp
	}
	return c, nil
}

// batchChunk bounds how many packets ClassifyBatch hands to the engine
// between context checks, so a cancellation or deadline takes effect
// mid-batch instead of only at batch boundaries.
const batchChunk = 4096

// Classify returns the highest-priority rule matching the packet, or
// ok=false when no rule matches. It fails without classifying when ctx is
// already cancelled or past its deadline.
func (c *Classifier) Classify(ctx context.Context, key Packet) (match Rule, ok bool, err error) {
	if c.closed.Load() {
		return Rule{}, false, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Rule{}, false, err
	}
	if c.shm != nil {
		// Over the ring only the winning rule's identity comes back — ID
		// and priority, as over wire protocol v2. The ranges stay on the
		// serving side.
		id, priority, ok, err := c.shm.Classify(key)
		if err != nil {
			return Rule{}, false, err
		}
		if !ok {
			return Rule{}, false, nil
		}
		return Rule{ID: id, Priority: priority}, true, nil
	}
	if c.dp != nil {
		match, ok = c.dp.Classify(key)
	} else {
		match, ok = c.eng.Classify(key)
	}
	return match, ok, nil
}

// ClassifyBatch classifies every packet against one coherent rule-set
// snapshot per chunk, sharding large chunks across the engine's worker
// pool. The context is checked between chunks: on cancellation the results
// so far are discarded and the context's error returned.
func (c *Classifier) ClassifyBatch(ctx context.Context, keys []Packet) ([]Result, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	out := make([]Result, len(keys))
	for lo := 0; lo < len(keys); lo += batchChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + batchChunk
		if hi > len(keys) {
			hi = len(keys)
		}
		switch {
		case c.shm != nil:
			if err := c.shm.ClassifyBatchInto(keys[lo:hi], out[lo:hi]); err != nil {
				return nil, err
			}
		case c.dp != nil:
			c.dp.ClassifyBatch(keys[lo:hi], out[lo:hi])
		default:
			c.eng.ClassifyBatch(keys[lo:hi], out[lo:hi])
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Insert adds a rule at priority position pos (0 = highest priority;
// out-of-range positions clamp to the nearest bound) and publishes the new
// snapshot atomically — concurrent lookups are never blocked. The assigned
// rule ID is returned for a later Delete.
func (c *Classifier) Insert(pos int, r Rule) (UpdateResult, error) {
	if c.closed.Load() {
		return UpdateResult{}, ErrClosed
	}
	if c.shm != nil {
		return UpdateResult{}, ErrNotSupported
	}
	return c.eng.Insert(pos, r)
}

// Delete removes the rule with the given ID (as assigned by Insert, or the
// rule's list index for rules present at Open). Deleting an unknown ID
// fails with an error wrapping ErrRuleNotFound.
func (c *Classifier) Delete(id int) (UpdateResult, error) {
	if c.closed.Load() {
		return UpdateResult{}, ErrClosed
	}
	if c.shm != nil {
		return UpdateResult{}, ErrNotSupported
	}
	return c.eng.Delete(id)
}

// Save persists the classifier as a versioned compiled artifact at path, so
// a later Open(nil, WithArtifact(path)) — or any classifyd — can serve it
// without rebuilding or retraining. It is available for tree backends
// (hicuts, hypercuts, efficuts, cutsplit, neurocuts).
func (c *Classifier) Save(path string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if c.shm != nil {
		return ErrNotSupported
	}
	return c.eng.SaveArtifact(path)
}

// Load hot-swaps the compiled artifact at path in as the served classifier
// (an atomic snapshot swap; in-flight lookups finish against the previous
// rules).
func (c *Classifier) Load(path string) (UpdateResult, error) {
	if c.closed.Load() {
		return UpdateResult{}, ErrClosed
	}
	if c.shm != nil {
		return UpdateResult{}, ErrNotSupported
	}
	return c.eng.LoadArtifact(path)
}

// Stats summarises the classifier's current state: identity, size, cost
// metrics and — when enabled — the online-update subsystem.
type Stats struct {
	// Backend is the registry name of the serving backend.
	Backend string
	// Rules is the live rule count.
	Rules int
	// Version is the snapshot generation; it increases with every update.
	Version uint64
	// Metrics is the backend's cost profile.
	Metrics Metrics
	// OnlineUpdates reports whether updates flow through the delta overlay.
	OnlineUpdates bool
	// PendingUpdates is the overlay size (inserts plus tombstones) not yet
	// compacted into the base structure (0 when OnlineUpdates is false).
	PendingUpdates int
	// Compactions counts completed background base rebuilds.
	Compactions uint64
	// JournalPath and JournalRecords describe the durable update journal
	// ("" / 0 when journaling is disabled).
	JournalPath    string
	JournalRecords int
	// DataplaneCores is the number of run-to-completion classify loops when
	// the classifier was opened WithDataplane (0 on the worker-pool path).
	DataplaneCores int
	// Telemetry summarises the online latency telemetry (nil unless the
	// classifier was opened WithTelemetry or WithSlowThreshold).
	Telemetry *TelemetryStats
}

// LatencySummary condenses one latency histogram at a point in time. The
// quantiles are bucket-midpoint estimates from the power-of-two histogram,
// so they carry the bucket's resolution, not nanosecond accuracy.
type LatencySummary struct {
	// Count is the number of recorded samples.
	Count uint64
	// P50 and P99 are the estimated 50th and 99th percentile latencies.
	P50 time.Duration
	P99 time.Duration
}

// summarise condenses a histogram snapshot.
func summarise(s telemetry.HistogramSnapshot) LatencySummary {
	return LatencySummary{
		Count: s.Count(),
		P50:   time.Duration(s.Quantile(0.50)),
		P99:   time.Duration(s.Quantile(0.99)),
	}
}

// TelemetryStats is the SDK view of the online latency telemetry: one
// summary per serving path plus the flight recorder's state.
type TelemetryStats struct {
	// Lookup covers single-packet Classify calls; LookupBatch covers
	// per-shard ClassifyBatch spans (one sample per chunk, not per packet);
	// DataplaneBatch covers per-core loop spans when WithDataplane is on.
	Lookup         LatencySummary
	LookupBatch    LatencySummary
	DataplaneBatch LatencySummary
	// UpdateInsert / UpdateDelete cover full update applies; Compaction
	// covers base rebuilds.
	UpdateInsert LatencySummary
	UpdateDelete LatencySummary
	Compaction   LatencySummary
	// SlowThreshold is the flight recorder's capture threshold (negative:
	// capture disabled). SlowCaptured counts captures since Open.
	SlowThreshold time.Duration
	SlowCaptured  uint64
}

// Stats returns a point-in-time summary of the classifier. A shared-memory
// transport handle reports only its backend label ("shm"): sizes, versions
// and metrics live in the serving process.
func (c *Classifier) Stats() Stats {
	if c.closed.Load() {
		return Stats{}
	}
	if c.shm != nil {
		return Stats{Backend: "shm"}
	}
	u := c.eng.UpdaterStats()
	dpCores := 0
	if c.dp != nil {
		dpCores = c.dp.Cores()
	}
	var ts *TelemetryStats
	if c.tel != nil {
		ts = &TelemetryStats{
			Lookup:         summarise(c.tel.Lookup.Snapshot()),
			LookupBatch:    summarise(c.tel.LookupBatch.Snapshot()),
			DataplaneBatch: summarise(c.tel.DataplaneBatch.Snapshot()),
			UpdateInsert:   summarise(c.tel.UpdateInsert.Snapshot()),
			UpdateDelete:   summarise(c.tel.UpdateDelete.Snapshot()),
			Compaction:     summarise(c.tel.Compaction.Snapshot()),
			SlowThreshold:  time.Duration(c.tel.SlowThresholdNanos()),
			SlowCaptured:   c.tel.Slow.Captured(),
		}
	}
	return Stats{
		Telemetry:      ts,
		DataplaneCores: dpCores,
		Backend:        c.eng.Backend(),
		Rules:          c.eng.Rules().Len(),
		Version:        c.eng.Version(),
		Metrics:        c.eng.Metrics(),
		OnlineUpdates:  u.Enabled,
		PendingUpdates: u.OverlayRules + u.Tombstones,
		Compactions:    u.Compactions,
		JournalPath:    u.JournalPath,
		JournalRecords: u.JournalRecords,
	}
}

// AdminHandler returns the classifier's HTTP admin plane: Prometheus-format
// metrics at /metrics (engine lookup/update counters, flow-cache
// effectiveness, the online-update subsystem's overlay/compaction/journal
// state — plus, with WithTelemetry, native latency histogram families and,
// with WithDataplane, per-core ring/park/epoch-lag gauges), liveness and
// readiness probes at /healthz and /readyz, a JSON summary at /tables, the
// slow-lookup flight recorder at /debug/slow, and the standard profiling
// endpoints under /debug/pprof/. Mount it wherever the application serves
// management HTTP — typically a loopback-only listener:
//
//	go http.ListenAndServe("127.0.0.1:9100", c.AdminHandler())
//
// The handler reads live state on every request. After Close, /readyz
// reports 503 and /metrics keeps serving the final counter values.
func (c *Classifier) AdminHandler() http.Handler {
	return admin.New(admin.Options{
		Engine:    c.eng,
		Telemetry: c.tel,
		Dataplane: c.dp,
		Ready: func() error {
			if c.closed.Load() {
				return ErrClosed
			}
			return nil
		},
	}).Handler()
}

// Rules returns the classifier's current rule list snapshot. The returned
// set is immutable; updates publish a new one.
func (c *Classifier) Rules() *RuleSet {
	if c.closed.Load() || c.shm != nil {
		return nil
	}
	return c.eng.Rules()
}

// Backend returns the registry name of the serving backend.
func (c *Classifier) Backend() string {
	if c.closed.Load() {
		return ""
	}
	if c.shm != nil {
		return "shm"
	}
	return c.eng.Backend()
}

// Close releases the classifier's background resources (the dataplane
// loops when WithDataplane was used, batch workers, the compactor, the
// journal). The classifier must not be used afterwards.
func (c *Classifier) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.shm != nil {
		return c.shm.Close()
	}
	// The dataplane registered itself as an engine closer at Attach, so the
	// engine drains and stops the loops first, then tears itself down —
	// in-flight batches complete against a fully live engine.
	c.eng.Close()
	return nil
}

// Backends returns the registered backend names, sorted. Any of them is a
// valid WithBackend argument.
func Backends() []string { return engine.Backends() }

// BackendDisplayName returns a backend's human-facing name ("hicuts" ->
// "HiCuts"), or the input unchanged when the name is not registered.
func BackendDisplayName(name string) string { return engine.DisplayName(name) }

// JournalPathFor returns the conventional co-located journal path for a
// compiled artifact (the artifact path plus ".journal").
func JournalPathFor(artifactPath string) string { return engine.JournalPathFor(artifactPath) }

// Validate checks a rule for basic well-formedness: every range must
// satisfy Lo <= Hi and fit inside its dimension.
func Validate(r Rule) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("classifier: %w", err)
	}
	return nil
}
