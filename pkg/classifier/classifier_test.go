package classifier_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neurocuts/pkg/classifier"
)

func mustRules(t *testing.T, family string, size int) *classifier.RuleSet {
	t.Helper()
	rules, err := classifier.GenerateRules(family, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// TestOpenBackendsAgreeWithLinearSearch opens a few representative backends
// through the public API and checks every classification against the rule
// set's own linear search.
func TestOpenBackendsAgreeWithLinearSearch(t *testing.T) {
	rules := mustRules(t, "acl1", 200)
	keys := classifier.GenerateTrace(rules, 2000, 7)
	ctx := context.Background()
	for _, backend := range []string{"linear", "tss", "hicuts"} {
		c, err := classifier.Open(rules, classifier.WithBackend(backend), classifier.WithShards(2))
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		results, err := c.ClassifyBatch(ctx, keys)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		for i, key := range keys {
			want, wantOK := rules.Match(key)
			single, ok, err := c.Classify(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || (ok && single.Priority != want.Priority) {
				t.Fatalf("%s: Classify(%v) = %v/%v, want %v/%v", backend, key, single, ok, want, wantOK)
			}
			if results[i].OK != wantOK || (wantOK && results[i].Rule.Priority != want.Priority) {
				t.Fatalf("%s: batch slot %d disagrees with linear search", backend, i)
			}
		}
		c.Close()
	}
}

func TestClassifyHonorsContext(t *testing.T) {
	rules := mustRules(t, "acl1", 50)
	c, err := classifier.Open(rules, classifier.WithBackend("linear"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Classify(cancelled, classifier.Packet{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Classify on cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := c.ClassifyBatch(cancelled, make([]classifier.Packet, 10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ClassifyBatch on cancelled context: err = %v, want context.Canceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := c.ClassifyBatch(expired, make([]classifier.Packet, 10)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ClassifyBatch past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestInsertDeleteAndStats(t *testing.T) {
	rules := mustRules(t, "acl1", 100)
	c, err := classifier.Open(rules, classifier.WithBackend("tss"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// A top-priority rule matching one exact 5-tuple must win immediately.
	r := classifier.NewWildcardRule(-1)
	r.Ranges[classifier.DimDstIP] = classifier.PrefixRange(0x0A00002A, 32, 32)
	r.Ranges[classifier.DimDstPort] = classifier.Range{Lo: 22, Hi: 22}
	r.Ranges[classifier.DimProto] = classifier.Range{Lo: 6, Hi: 6}
	if err := classifier.Validate(r); err != nil {
		t.Fatal(err)
	}
	res, err := c.Insert(0, r)
	if err != nil {
		t.Fatal(err)
	}
	key := classifier.Packet{SrcIP: 1, DstIP: 0x0A00002A, SrcPort: 1000, DstPort: 22, Proto: 6}
	got, ok, err := c.Classify(ctx, key)
	if err != nil || !ok || got.ID != res.ID {
		t.Fatalf("inserted rule did not win: got %v ok=%v err=%v want id %d", got, ok, err, res.ID)
	}

	if _, err := c.Delete(res.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(res.ID); !errors.Is(err, classifier.ErrRuleNotFound) {
		t.Fatalf("double delete: err = %v, want ErrRuleNotFound", err)
	}

	st := c.Stats()
	if st.Backend != "tss" || st.Rules != 100 || st.Version < 3 {
		t.Fatalf("Stats() = %+v", st)
	}
	if st.OnlineUpdates {
		t.Fatal("online updates should be off by default")
	}
}

func TestArtifactSaveLoadRoundTrip(t *testing.T) {
	rules := mustRules(t, "acl1", 150)
	c, err := classifier.Open(rules, classifier.WithBackend("hicuts"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "policy.ncaf")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c.Close()

	warm, err := classifier.Open(nil, classifier.WithArtifact(path))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Backend() != "hicuts" {
		t.Fatalf("warm-start backend = %q", warm.Backend())
	}
	ctx := context.Background()
	for _, key := range classifier.GenerateTrace(rules, 1000, 3) {
		want, wantOK := rules.Match(key)
		got, ok, err := warm.Classify(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK || (ok && got.Priority != want.Priority) {
			t.Fatalf("artifact-served lookup disagrees with linear search on %v", key)
		}
	}

	// Open with both rules and an artifact is ambiguous and must fail.
	if _, err := classifier.Open(rules, classifier.WithArtifact(path)); err == nil {
		t.Fatal("Open(rules, WithArtifact) should fail")
	}
	if _, err := classifier.Open(nil); err == nil {
		t.Fatal("Open(nil) without WithArtifact should fail")
	}
}

func TestOnlineUpdatesWithJournalReplay(t *testing.T) {
	rules := mustRules(t, "acl2", 80)
	journal := filepath.Join(t.TempDir(), "updates.journal")
	c, err := classifier.Open(rules,
		classifier.WithBackend("tss"),
		classifier.WithOnlineUpdates(),
		classifier.WithJournal(journal),
		classifier.WithCompactThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	r := classifier.NewWildcardRule(-1)
	r.Ranges[classifier.DimProto] = classifier.Range{Lo: 89, Hi: 89}
	res, err := c.Insert(0, r)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if !st.OnlineUpdates || st.PendingUpdates != 1 || st.JournalRecords != 1 {
		t.Fatalf("Stats() after overlay insert = %+v", st)
	}
	c.Close()

	// A re-open over the same rules and journal replays the insert.
	c2, err := classifier.Open(rules,
		classifier.WithBackend("tss"),
		classifier.WithJournal(journal))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	key := classifier.Packet{Proto: 89}
	got, ok, err := c2.Classify(context.Background(), key)
	if err != nil || !ok || got.ID != res.ID {
		t.Fatalf("journal replay lost the insert: got %v ok=%v err=%v", got, ok, err)
	}
}

func TestClosedClassifierFailsClosed(t *testing.T) {
	rules := mustRules(t, "acl1", 20)
	c, err := classifier.Open(rules, classifier.WithBackend("linear"))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Classify(context.Background(), classifier.Packet{}); !errors.Is(err, classifier.ErrClosed) {
		t.Fatalf("Classify after Close: err = %v", err)
	}
	if _, err := c.Insert(0, classifier.NewWildcardRule(0)); !errors.Is(err, classifier.ErrClosed) {
		t.Fatalf("Insert after Close: err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestTelemetryStatsAndAdmin exercises the WithTelemetry/WithSlowThreshold
// surface end to end: Stats().Telemetry summarises real traffic, the admin
// /metrics gains the native histogram families, and /debug/slow dumps the
// flight recorder.
func TestTelemetryStatsAndAdmin(t *testing.T) {
	rules := mustRules(t, "acl1", 200)
	c, err := classifier.Open(rules,
		classifier.WithBackend("tss"),
		classifier.WithShards(2),
		classifier.WithOnlineUpdates(),
		classifier.WithSlowThreshold(0)) // implies WithTelemetry; capture all
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	keys := classifier.GenerateTrace(rules, 256, 7)
	if _, err := c.ClassifyBatch(ctx, keys); err != nil {
		t.Fatal(err)
	}
	for _, key := range keys[:16] {
		if _, _, err := c.Classify(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Insert(0, classifier.NewWildcardRule(0)); err != nil {
		t.Fatal(err)
	}

	ts := c.Stats().Telemetry
	if ts == nil {
		t.Fatal("Stats().Telemetry = nil with WithSlowThreshold set")
	}
	if ts.Lookup.Count != 16 {
		t.Errorf("Lookup.Count = %d, want 16", ts.Lookup.Count)
	}
	if ts.LookupBatch.Count == 0 {
		t.Error("LookupBatch.Count = 0, want recorded batch spans")
	}
	if ts.UpdateInsert.Count != 1 {
		t.Errorf("UpdateInsert.Count = %d, want 1", ts.UpdateInsert.Count)
	}
	if ts.Lookup.P50 < 0 || ts.Lookup.P99 < ts.Lookup.P50 {
		t.Errorf("quantiles out of order: p50=%v p99=%v", ts.Lookup.P50, ts.Lookup.P99)
	}
	if ts.SlowThreshold != 0 {
		t.Errorf("SlowThreshold = %v, want 0", ts.SlowThreshold)
	}
	if ts.SlowCaptured == 0 {
		t.Error("SlowCaptured = 0 at threshold 0")
	}

	srv := httptest.NewServer(c.AdminHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "# TYPE neurocuts_lookup_latency_seconds histogram") {
		t.Error("/metrics missing the lookup latency histogram family")
	}
	resp, err = http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(slow), `"threshold_nanos": 0`) || !strings.Contains(string(slow), `"latency_nanos"`) {
		t.Errorf("/debug/slow missing threshold or entries:\n%s", slow)
	}

	// Without telemetry options, Stats().Telemetry stays nil.
	plain, err := classifier.Open(rules, classifier.WithBackend("linear"))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Stats().Telemetry != nil {
		t.Error("Stats().Telemetry non-nil without WithTelemetry")
	}
}

func TestAdminHandler(t *testing.T) {
	c, err := classifier.Open(mustRules(t, "acl1", 100),
		classifier.WithBackend("linear"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.AdminHandler())
	defer ts.Close()

	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := fetch("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := fetch("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d", code)
	}
	code, body := fetch("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, `neurocuts_engine_rules{table="default"} 100`) {
		t.Fatalf("/metrics missing the rule-count gauge:\n%s", body)
	}

	// After Close the handler keeps serving, but readiness flips to 503.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if code, body := fetch("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "closed") {
		t.Fatalf("/readyz after Close = %d %q, want 503 naming the closed classifier", code, body)
	}
	if code, _ := fetch("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics after Close = %d", code)
	}
}
