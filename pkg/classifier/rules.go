package classifier

import (
	"io"

	"neurocuts/internal/classbench"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// NewRuleSet builds a classifier rule set from rules in priority order
// (earlier rules win ties). Each rule's Priority and ID are rewritten to
// its list index.
func NewRuleSet(rules []Rule) *RuleSet { return rule.NewSet(rules) }

// ParseRules reads a classifier in ClassBench filter-file format (the
// format of the paper's benchmark suite, e.g. "@10.0.0.0/8 0.0.0.0/0
// 0 : 65535 80 : 80 0x06/0xFF").
func ParseRules(r io.Reader) (*RuleSet, error) { return rule.ParseClassBench(r) }

// ParseRule parses one ClassBench-format rule line.
func ParseRule(line string) (Rule, error) { return rule.ParseClassBenchLine(line) }

// WriteRules writes a rule set in ClassBench filter-file format.
func WriteRules(w io.Writer, s *RuleSet) error { return rule.WriteClassBench(w, s) }

// FormatRule renders one rule as a ClassBench-format line (the format
// ParseRule and the classifyd "add" request accept).
func FormatRule(r Rule) string { return rule.FormatClassBenchLine(r) }

// NewWildcardRule returns a rule matching every packet, ready to be
// narrowed per dimension (r.Ranges[classifier.DimDstPort] = Range{Lo: 443,
// Hi: 443}).
func NewWildcardRule(priority int) Rule { return rule.NewWildcardRule(priority) }

// PrefixRange converts an address/mask-length prefix into a Range over a
// dimension of the given bit width (32 for IPs, 16 for ports).
func PrefixRange(addr uint64, prefixLen, bits uint) Range {
	return rule.PrefixRange(addr, prefixLen, bits)
}

// ParseIPv4 parses a dotted-quad IPv4 address into the 32-bit value Packet
// and Rule use.
func ParseIPv4(s string) (uint32, error) { return rule.ParseIPv4(s) }

// FormatIPv4 renders a 32-bit address in dotted-quad notation.
func FormatIPv4(addr uint32) string { return rule.FormatIPv4(addr) }

// GenerateRules generates a synthetic classifier of the given ClassBench
// family ("acl1".."acl5", "fw1".."fw5", "ipc1", "ipc2") and size,
// deterministically from the seed. Families lists the family names.
func GenerateRules(family string, size int, seed int64) (*RuleSet, error) {
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, size, seed), nil
}

// Families returns the ClassBench family names GenerateRules accepts.
func Families() []string {
	fams := classbench.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// GenerateTrace generates n packets drawn from the rule set's match space
// (every packet matches some rule), deterministically from the seed —
// useful for exercising and benchmarking a classifier.
func GenerateTrace(rules *RuleSet, n int, seed int64) []Packet {
	entries := classbench.GenerateTrace(rules, n, seed)
	keys := make([]Packet, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys
}

// DecodePacket parses a wire-format IPv4 packet (header plus TCP/UDP ports
// where applicable) into the 5-tuple key classifiers look up.
func DecodePacket(wire []byte) (Packet, error) { return packet.Decode(wire) }

// EncodePacket serialises a 5-tuple key as a minimal wire-format IPv4
// packet (the inverse of DecodePacket).
func EncodePacket(p Packet) ([]byte, error) { return packet.Serialize(p) }
