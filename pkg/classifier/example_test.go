package classifier_test

import (
	"context"
	"fmt"
	"log"

	"neurocuts/pkg/classifier"
)

// Example embeds a classifier end to end: build a rule set, open a backend,
// classify a packet.
func Example() {
	// Parse a classifier (ClassBench filter-file format); real deployments
	// would read a file with classifier.ParseRules.
	rules := classifier.NewRuleSet([]classifier.Rule{
		mustParse("@10.0.0.0/8 0.0.0.0/0 0 : 65535 22 : 22 0x06/0xFF"),
		mustParse("@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00"),
	})

	c, err := classifier.Open(rules, classifier.WithBackend("linear"))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	src, _ := classifier.ParseIPv4("10.1.2.3")
	dst, _ := classifier.ParseIPv4("192.168.0.9")
	match, ok, err := c.Classify(context.Background(),
		classifier.Packet{SrcIP: src, DstIP: dst, SrcPort: 40000, DstPort: 22, Proto: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok, match.Priority)
	// Output: true 0
}

// ExampleClassifier_ClassifyBatch classifies many packets against one
// coherent rule-set snapshot with sharded lookup.
func ExampleClassifier_ClassifyBatch() {
	rules, err := classifier.GenerateRules("acl1", 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	c, err := classifier.Open(rules, classifier.WithBackend("tss"))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	keys := classifier.GenerateTrace(rules, 1000, 7)
	results, err := c.ClassifyBatch(context.Background(), keys)
	if err != nil {
		log.Fatal(err)
	}
	matched := 0
	for _, r := range results {
		if r.OK {
			matched++
		}
	}
	fmt.Println(len(results), matched)
	// Output: 1000 1000
}

// ExampleOpen_dataplane serves lookups through the run-to-completion
// dataplane: per-core classify loops fed by a flow-hash demux over SPSC
// rings, with the flow-cache budget funding lock-free per-core caches.
// Updates still work — they reach every loop as an epoch message, so
// lookups after Insert returns see the new rule generation.
func ExampleOpen_dataplane() {
	rules, err := classifier.GenerateRules("acl1", 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	c, err := classifier.Open(rules,
		classifier.WithBackend("tss"),
		classifier.WithDataplane(4),    // four classify loops
		classifier.WithFlowCache(4096)) // split across the loops' caches
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	keys := classifier.GenerateTrace(rules, 1000, 7)
	results, err := c.ClassifyBatch(context.Background(), keys)
	if err != nil {
		log.Fatal(err)
	}
	matched := 0
	for _, r := range results {
		if r.OK {
			matched++
		}
	}
	fmt.Println(len(results), matched, c.Stats().DataplaneCores)
	// Output: 1000 1000 4
}

// ExampleClassifier_Insert adds a rule to a live classifier without
// blocking concurrent lookups.
func ExampleClassifier_Insert() {
	rules, err := classifier.GenerateRules("acl1", 50, 1)
	if err != nil {
		log.Fatal(err)
	}
	c, err := classifier.Open(rules, classifier.WithBackend("linear"))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Block TCP/22 to 10.0.0.42, above every existing rule.
	r := classifier.NewWildcardRule(-1)
	r.Ranges[classifier.DimDstIP] = classifier.PrefixRange(0x0A00002A, 32, 32)
	r.Ranges[classifier.DimDstPort] = classifier.Range{Lo: 22, Hi: 22}
	r.Ranges[classifier.DimProto] = classifier.Range{Lo: 6, Hi: 6}
	res, err := c.Insert(0, r)
	if err != nil {
		log.Fatal(err)
	}

	match, ok, err := c.Classify(context.Background(),
		classifier.Packet{SrcIP: 1, DstIP: 0x0A00002A, DstPort: 22, Proto: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok, match.ID == res.ID)
	// Output: true true
}

func mustParse(line string) classifier.Rule {
	r, err := classifier.ParseRule(line)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
