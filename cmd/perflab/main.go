// Command perflab is the perf lab's CLI: it runs the scenario-matrix
// benchmarks of internal/perf, writes versioned JSON artifacts, and diffs
// runs against a baseline with regression thresholds. Both humans and the
// CI bench gate drive it.
//
//	perflab run                                # pinned CI grid -> BENCH_run.json
//	perflab run -families acl1,fw1 -sizes 1000 -backends linear,tss,hicuts \
//	            -skews uniform,zipf -churns readonly,churn -out BENCH_big.json -table
//	perflab run -split -dir artifacts          # one BENCH_<scenario>.json per cell
//	perflab baseline                           # refresh BENCH_baseline.json (pinned grid)
//	perflab compare -old BENCH_baseline.json -new BENCH_run.json
//
// compare exits 2 when a threshold is breached, so CI can gate on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"neurocuts/internal/admin"
	"neurocuts/internal/engine"
	"neurocuts/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:], "BENCH_run.json")
	case "baseline":
		runCmd(os.Args[2:], "BENCH_baseline.json")
	case "compare":
		compareCmd(os.Args[2:])
	case "checkcompiled":
		checkCompiledCmd(os.Args[2:])
	case "checkupdates":
		checkUpdatesCmd(os.Args[2:])
	case "proto":
		protoCmd(os.Args[2:])
	case "dataplane":
		dataplaneCmd(os.Args[2:])
	case "checkcompiledbatch":
		checkCompiledBatchCmd(os.Args[2:])
	case "checktelemetry":
		checkTelemetryCmd(os.Args[2:])
	case "realtrace":
		realTraceCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "perflab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  perflab run           [grid flags] [-out FILE] [-split -dir DIR] [-table]
  perflab baseline      [grid flags] [-out FILE]   (same as run; defaults to BENCH_baseline.json)
  perflab compare       -old FILE -new FILE [threshold flags]
  perflab checkcompiled [-in FILE]   assert compiled lookup p50 <= legacy p50 per pair
  perflab checkupdates  [-family F -size N -backend B -updates N -min-factor X]
                        assert the overlay update path beats rebuild-per-update by >= X
  perflab proto         [-family F -size N -backend B -packets N -batch N -min-factor X]
                        compare v1 text vs v2 binary server batch throughput
  perflab dataplane     [-family F -size N -backend B -cores N -submitters N -batch N -min-factor X]
                        compare worker-pool vs run-to-completion dataplane batch p99
  perflab checkcompiledbatch [-families F,F -size N -backend B -batches N -batch N -min-factor X]
                        assert grouped LookupBatch p50 beats scalar lookup by >= X per family
  perflab checktelemetry [-family F -size N -backend B -batches N -batch N -max-overhead-pct X]
                        assert full telemetry taxes batch p50 by <= X% with zero hot-path allocs
  perflab realtrace     [-families F,F -size N -backend B -packets N -batch N -min-fraction X]
                        replay a pcap-rendered trace through the ingestion layer and assert
                        decode+classify retains >= X of the direct classify throughput

run 'perflab run -h' or 'perflab compare -h' for flags.
The compiled-vs-legacy grid: perflab run -families acl1 -sizes 300 -skews uniform \
  -churns readonly -backends hicuts,hypercuts,efficuts,cutsplit -lookups compiled,legacy`)
}

// runCmd implements both `run` and `baseline` (they differ only in the
// default output path).
func runCmd(args []string, defaultOut string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	ciGrid := perf.CIGrid()
	ciCfg := perf.CIConfig()
	var (
		families = fs.String("families", strings.Join(ciGrid.Families, ","), "comma-separated ClassBench families")
		sizes    = fs.String("sizes", intsToCSV(ciGrid.Sizes), "comma-separated rule-set sizes")
		skews    = fs.String("skews", skewsCSV(ciGrid.Skews), "comma-separated traffic skews (uniform, zipf)")
		churns   = fs.String("churns", churnsCSV(ciGrid.Churns), "comma-separated update modes (readonly, churn, updateheavy)")
		backends = fs.String("backends", strings.Join(ciGrid.Backends, ","), "comma-separated engine backends")
		lookups  = fs.String("lookups", "", "optional serving axis for tree backends: compiled,legacy (empty = default compiled cells)")
		seed     = fs.Int64("seed", ciCfg.Seed, "random seed")
		ops      = fs.Int("ops", ciCfg.Ops, "measured lookups per cell")
		runs     = fs.Int("runs", ciCfg.Runs, "measurement passes per cell (best-of)")
		warmup   = fs.Int("warmup", ciCfg.Warmup, "unmeasured warmup lookups per cell")
		packets  = fs.Int("packets", ciCfg.Packets, "trace length per cell")
		flows    = fs.Int("flows", ciCfg.Flows, "zipf flow-population size")
		zipfSkew = fs.Float64("zipf-s", ciCfg.ZipfSkew, "zipf s parameter (>1)")
		batch    = fs.Int("batch", ciCfg.BatchSize, "throughput batch size")
		shards   = fs.Int("shards", ciCfg.Shards, "engine shard count (0 = GOMAXPROCS)")
		cache    = fs.Int("flow-cache", ciCfg.FlowCacheEntries, "flow cache entries (0 = disabled)")
		binth    = fs.Int("binth", 0, "leaf threshold for tree backends (0 = default)")
		out      = fs.String("out", defaultOut, "combined report output path")
		split    = fs.Bool("split", false, "also write one BENCH_<scenario>.json per cell")
		dir      = fs.String("dir", ".", "directory for -split artifacts")
		table    = fs.Bool("table", false, "also print the report as a text table")
		quiet    = fs.Bool("quiet", false, "suppress per-cell progress on stderr")
		adminAt  = fs.String("admin", "", "serve the HTTP admin plane (live /metrics for the cell under measurement, /debug/pprof/) on this address for the duration of the run")
	)
	fs.Parse(args)

	grid := perf.Grid{
		Families: splitCSV(*families),
		Sizes:    csvToInts(*sizes),
		Skews:    toSkews(splitCSV(*skews)),
		Churns:   toChurns(splitCSV(*churns)),
		Backends: splitCSV(*backends),
		Lookups:  toLookups(splitCSV(*lookups)),
	}
	cfg := perf.RunConfig{
		Seed: *seed, Ops: *ops, Runs: *runs, Warmup: *warmup, Packets: *packets,
		Flows: *flows, ZipfSkew: *zipfSkew,
		BatchSize: *batch, Shards: *shards, FlowCacheEntries: *cache, Binth: *binth,
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	if *adminAt != "" {
		// The admin plane follows the run: each cell re-points the single
		// engine source at the engine currently under measurement, so a
		// scrape (or a pprof profile) during a long grid shows live counters
		// for the cell in flight.
		adm := admin.New(admin.Options{})
		bound, err := adm.Listen(*adminAt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: admin plane on http://%s (/metrics /debug/pprof/)\n", bound)
		cfg.OnEngine = func(cellName string, eng *engine.Engine) { adm.SetEngine(cellName, eng) }
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			adm.Shutdown(ctx)
		}()
	}
	rep, err := perf.Run(grid, cfg, progress)
	if err != nil {
		fatal(err)
	}
	if err := perf.WriteArtifact(*out, rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "perflab: wrote %s (%d cells)\n", *out, len(rep.Cells))
	if *split {
		if err := perf.WriteCellArtifacts(*dir, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: wrote %d per-scenario artifacts under %s\n", len(rep.Cells), *dir)
	}
	if *table {
		perf.WriteTable(os.Stdout, rep)
	}
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	th := perf.DefaultThresholds()
	var (
		oldPath    = fs.String("old", "BENCH_baseline.json", "baseline report")
		newPath    = fs.String("new", "BENCH_run.json", "candidate report")
		latPct     = fs.Float64("max-latency-pct", th.LatencyPct, "max allowed p50 increase, percent")
		tailPct    = fs.Float64("max-tail-pct", th.TailLatencyPct, "max allowed p99 increase, percent")
		tpPct      = fs.Float64("max-throughput-pct", th.ThroughputPct, "max allowed throughput decrease, percent")
		memPct     = fs.Float64("max-memory-pct", th.MemoryPct, "max allowed memory increase, percent")
		allocDelta = fs.Float64("max-allocs", th.AllocsDelta, "max allowed allocs/op increase, absolute")
		churnSlack = fs.Float64("churn-slack", th.ChurnSlackFactor, "timing-threshold multiplier for churn cells")
	)
	fs.Parse(args)

	old, err := perf.ReadArtifact(*oldPath)
	if err != nil {
		fatal(err)
	}
	cand, err := perf.ReadArtifact(*newPath)
	if err != nil {
		fatal(err)
	}
	cmp := perf.Compare(old, cand, perf.Thresholds{
		LatencyPct: *latPct, TailLatencyPct: *tailPct, ThroughputPct: *tpPct,
		MemoryPct: *memPct, AllocsDelta: *allocDelta, ChurnSlackFactor: *churnSlack,
	})
	cmp.Write(os.Stdout)
	if !cmp.OK() {
		fmt.Fprintf(os.Stderr, "perflab: %d regression(s), %d missing scenario(s)\n",
			len(cmp.Regressions()), len(cmp.MissingCells))
		os.Exit(2)
	}
}

// checkCompiledCmd asserts the compiled runtime's headline claim over a
// report produced with -lookups compiled,legacy: per scenario pair, the
// compiled lookup's p50 must not exceed the legacy pointer tree's. Latency
// measurement is noisy (especially on shared CI runners), so on violation
// the grid embedded in the report is re-measured up to -retries times — a
// genuine regression loses every attempt, one-sided scheduler noise does
// not. Exits 2 when violations persist (or the report has no pairs), so CI
// can gate on it.
func checkCompiledCmd(args []string) {
	fs := flag.NewFlagSet("checkcompiled", flag.ExitOnError)
	in := fs.String("in", "BENCH_compiled.json", "report produced with -lookups compiled,legacy")
	retries := fs.Int("retries", 2, "re-measure the report's grid up to this many times on violation")
	fs.Parse(args)

	rep, err := perf.ReadArtifact(*in)
	if err != nil {
		fatal(err)
	}
	var pairs []perf.CompiledComparison
	var violations []string
	for attempt := 0; ; attempt++ {
		pairs, violations = perf.CheckCompiledWins(rep)
		if len(violations) == 0 || len(pairs) == 0 || attempt >= *retries {
			break
		}
		fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d had %d violation(s), re-measuring: %s\n",
			attempt+1, *retries+1, len(violations), strings.Join(violations, "; "))
		rep, err = perf.Run(rep.Grid, rep.Config, nil)
		if err != nil {
			fatal(err)
		}
	}
	for _, p := range pairs {
		verdict := "ok"
		if !p.Win {
			verdict = "REGRESSION"
		}
		fmt.Printf("%-45s compiled p50 %8.0fns  legacy p50 %8.0fns  %s\n",
			p.Name(), p.Compiled.Metrics.P50Nanos, p.Legacy.Metrics.P50Nanos, verdict)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "perflab: %d compiled-lookup violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(2)
	}
}

// checkUpdatesCmd asserts the online-update subsystem's headline claim: a
// single-rule update through the delta overlay must beat rebuild-per-update
// by at least -min-factor at the median, on the same backend and rule set.
// The measurement is re-run up to -retries times on violation (same noise
// rationale as checkcompiled); persistent violations exit 2 so CI can gate.
func checkUpdatesCmd(args []string) {
	fs := flag.NewFlagSet("checkupdates", flag.ExitOnError)
	var (
		family    = fs.String("family", "acl1", "ClassBench family")
		size      = fs.Int("size", 2000, "rule-set size")
		backend   = fs.String("backend", "hicuts", "tree backend to measure")
		updates   = fs.Int("updates", 200, "measured updates per path")
		minFactor = fs.Float64("min-factor", 10, "required rebuild-p50 / overlay-p50 ratio")
		seed      = fs.Int64("seed", 1, "random seed")
		retries   = fs.Int("retries", 2, "re-measure up to this many times on violation")
	)
	fs.Parse(args)

	var res perf.UpdateSpeedup
	var violation string
	for attempt := 0; ; attempt++ {
		var err error
		res, err = perf.MeasureUpdateSpeedup(*family, *size, *backend, *updates, perf.RunConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		violation = perf.CheckUpdateSpeedup(res, *minFactor)
		if violation == "" || attempt >= *retries {
			break
		}
		fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d: %s — re-measuring\n", attempt+1, *retries+1, violation)
	}
	verdict := "ok"
	if violation != "" {
		verdict = "REGRESSION"
	}
	fmt.Printf("%s_%d_%s  overlay update p50 %8.0fns  rebuild update p50 %10.0fns  %6.1fx  %s\n",
		res.Family, res.Size, res.Backend, res.OverlayP50Nanos, res.RebuildP50Nanos, res.Factor, verdict)
	if violation != "" {
		fmt.Fprintln(os.Stderr, "perflab: "+violation)
		os.Exit(2)
	}
}

// protoCmd measures the same batched lookup workload through the v1 text
// protocol and the v2 binary protocol against one in-process server (the
// wire-protocol perf cell). With -min-factor > 0 it gates like the other
// check commands: the measurement is retried on violation, and persistent
// violations exit 2.
func protoCmd(args []string) {
	fs := flag.NewFlagSet("proto", flag.ExitOnError)
	var (
		family    = fs.String("family", "acl1", "ClassBench family")
		size      = fs.Int("size", 1000, "rule-set size")
		backend   = fs.String("backend", "hicuts", "backend to serve")
		packets   = fs.Int("packets", 50000, "trace length per measurement pass")
		batch     = fs.Int("batch", 1024, "packets per batch request")
		runs      = fs.Int("runs", 3, "measurement passes (best-of)")
		seed      = fs.Int64("seed", 1, "random seed")
		minFactor = fs.Float64("min-factor", 0, "required v2/v1 throughput ratio (0 = report only)")
		retries   = fs.Int("retries", 2, "re-measure up to this many times on violation")
		out       = fs.String("out", "", "also write the comparison as JSON to this path")
	)
	fs.Parse(args)

	var res perf.ProtoComparison
	var violation string
	for attempt := 0; ; attempt++ {
		var err error
		res, err = perf.MeasureProtoThroughput(*family, *size, *backend, *packets, *batch, *runs, perf.RunConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		violation = perf.CheckProtoThroughput(res, *minFactor)
		if violation == "" || attempt >= *retries {
			break
		}
		fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d: %s — re-measuring\n", attempt+1, *retries+1, violation)
	}
	verdict := "ok"
	if violation != "" {
		verdict = "REGRESSION"
	}
	fmt.Printf("%s_%d_%s  batch=%d  v1 %12.0f pps  v2 %12.0f pps  engine %12.0f pps  v2/v1 %5.2fx  %s\n",
		res.Family, res.Size, res.Backend, res.BatchSize,
		res.V1PacketsPerSec, res.V2PacketsPerSec, res.EnginePacketsPerSec, res.Factor, verdict)
	if *out != "" {
		if err := writeJSON(*out, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: wrote %s\n", *out)
	}
	if violation != "" {
		fmt.Fprintln(os.Stderr, "perflab: "+violation)
		os.Exit(2)
	}
}

// dataplaneCmd measures the same concurrent batched lookup workload served
// by the worker-pool engine and by the run-to-completion dataplane (the
// dataplane perf cell), gating on tail batch latency: PoolP99/DataplaneP99
// must reach -min-factor. Like the other check commands it re-measures on
// violation and exits 2 only when the violation persists.
func dataplaneCmd(args []string) {
	fs := flag.NewFlagSet("dataplane", flag.ExitOnError)
	var (
		family     = fs.String("family", "acl1", "ClassBench family")
		size       = fs.Int("size", 1000, "rule-set size")
		backend    = fs.String("backend", "hicuts", "backend to serve")
		cores      = fs.Int("cores", 0, "parallelism for both paths: pool shards and dataplane loops (0 = GOMAXPROCS)")
		submitters = fs.Int("submitters", 4, "concurrent batch-submitting goroutines")
		batches    = fs.Int("batches", 64, "measured batches per submitter per pass")
		batch      = fs.Int("batch", 512, "packets per batch")
		flowCache  = fs.Int("flow-cache", 16384, "flow-cache entry budget for both paths")
		runs       = fs.Int("runs", 3, "measurement passes (best-of)")
		seed       = fs.Int64("seed", 1, "random seed")
		minFactor  = fs.Float64("min-factor", 0, "required pool-p99 / dataplane-p99 ratio (0 = report only)")
		retries    = fs.Int("retries", 2, "re-measure up to this many times on violation")
		out        = fs.String("out", "", "also write the comparison as JSON to this path")
	)
	fs.Parse(args)

	var res perf.DataplaneComparison
	var violation string
	for attempt := 0; ; attempt++ {
		var err error
		res, err = perf.MeasureDataplane(*family, *size, *backend, *cores, *submitters, *batches, *batch, *flowCache, *runs, perf.RunConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		violation = perf.CheckDataplane(res, *minFactor)
		if violation == "" || attempt >= *retries {
			break
		}
		fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d: %s — re-measuring\n", attempt+1, *retries+1, violation)
	}
	verdict := "ok"
	if violation != "" {
		verdict = "REGRESSION"
	}
	fmt.Printf("%s_%d_%s  cores=%d sub=%d batch=%d  pool p99 %10.0fns  dataplane p99 %10.0fns  %5.2fx  (p50 %8.0fns vs %8.0fns, %8.0f vs %8.0f pps)  %s\n",
		res.Family, res.Size, res.Backend, res.Cores, res.Submitters, res.BatchSize,
		res.PoolP99Nanos, res.DataplaneP99Nanos, res.Factor,
		res.PoolP50Nanos, res.DataplaneP50Nanos,
		res.PoolPacketsPerSec, res.DataplanePacketsPerSec, verdict)
	if *out != "" {
		if err := writeJSON(*out, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: wrote %s\n", *out)
	}
	if violation != "" {
		fmt.Fprintln(os.Stderr, "perflab: "+violation)
		os.Exit(2)
	}
}

// checkCompiledBatchCmd runs the compiledbatch perf cell per family: the same
// zipf + worst-case-depth trace through the compiled scalar lookup and the
// grouped interleaved LookupBatch, gating on batch-vs-scalar p50 (-min-factor;
// 1.0 asserts the grouped path is at least as fast at the median). Like the
// other check commands it re-measures on violation and exits 2 only when the
// violation persists.
func checkCompiledBatchCmd(args []string) {
	fs := flag.NewFlagSet("checkcompiledbatch", flag.ExitOnError)
	var (
		families  = fs.String("families", "acl1,fw1,ipc1", "comma-separated ClassBench families")
		size      = fs.Int("size", 10000, "rule-set size")
		backend   = fs.String("backend", "hicuts", "tree backend to compile (hicuts, hypercuts, efficuts, cutsplit)")
		batches   = fs.Int("batches", 96, "measured batches per pass")
		batch     = fs.Int("batch", 512, "packets per batch")
		runs      = fs.Int("runs", 3, "measurement passes per path (best-of)")
		seed      = fs.Int64("seed", 1, "random seed")
		minFactor = fs.Float64("min-factor", 0, "required scalar-p50 / batch-p50 ratio (0 = report only)")
		retries   = fs.Int("retries", 2, "re-measure up to this many times on violation")
		out       = fs.String("out", "", "also write the comparisons as a JSON array to this path")
	)
	fs.Parse(args)

	var results []perf.CompiledBatchComparison
	var failures []string
	for _, fam := range splitCSV(*families) {
		var res perf.CompiledBatchComparison
		var violation string
		for attempt := 0; ; attempt++ {
			var err error
			res, err = perf.MeasureCompiledBatch(fam, *size, *backend, *batches, *batch, *runs, perf.RunConfig{Seed: *seed})
			if err != nil {
				fatal(err)
			}
			violation = perf.CheckCompiledBatch(res, *minFactor)
			if violation == "" || attempt >= *retries {
				break
			}
			fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d: %s — re-measuring\n", attempt+1, *retries+1, violation)
		}
		verdict := "ok"
		if violation != "" {
			verdict = "REGRESSION"
			failures = append(failures, violation)
		}
		mode := "grouped"
		if !res.Grouped {
			mode = "scalar-fallback"
		}
		fmt.Printf("%s_%d_%s  G=%d batch=%d %s  scalar p50 %9.0fns  batch p50 %9.0fns  %5.2fx  (p99 %9.0fns vs %9.0fns, %9.0f vs %9.0f pps)  %s\n",
			res.Family, res.Size, res.Backend, res.Group, res.BatchSize, mode,
			res.ScalarP50Nanos, res.BatchP50Nanos, res.Factor,
			res.ScalarP99Nanos, res.BatchP99Nanos,
			res.ScalarPacketsPerSec, res.BatchPacketsPerSec, verdict)
		results = append(results, res)
	}
	if *out != "" {
		if err := writeJSON(*out, results); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: wrote %s\n", *out)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "perflab: "+f)
		}
		os.Exit(2)
	}
}

// checkTelemetryCmd runs the telemetry-overhead perf cell: the same batch
// workload through a bare engine and one with the full telemetry stack armed
// (histograms on every span, flight recorder at threshold 0), gating on the
// relative batch-p50 cost (-max-overhead-pct) and a zero steady-state
// allocation delta. Like the other check commands it re-measures on
// violation and exits 2 only when the violation persists.
func checkTelemetryCmd(args []string) {
	fs := flag.NewFlagSet("checktelemetry", flag.ExitOnError)
	var (
		family     = fs.String("family", "acl1", "ClassBench family")
		size       = fs.Int("size", 10000, "rule-set size")
		backend    = fs.String("backend", "hicuts", "engine backend")
		batches    = fs.Int("batches", 96, "measured batches per pass")
		batch      = fs.Int("batch", 512, "packets per batch")
		runs       = fs.Int("runs", 3, "measurement passes per configuration (best-of)")
		seed       = fs.Int64("seed", 1, "random seed")
		maxOverPct = fs.Float64("max-overhead-pct", 5, "max allowed telemetry batch-p50 overhead in percent (0 = report only)")
		retries    = fs.Int("retries", 2, "re-measure up to this many times on violation")
		out        = fs.String("out", "BENCH_telemetry.json", "write the comparison as JSON to this path ('' = skip)")
	)
	fs.Parse(args)

	var res perf.TelemetryOverhead
	var violation string
	for attempt := 0; ; attempt++ {
		var err error
		res, err = perf.MeasureTelemetryOverhead(*family, *size, *backend, *batches, *batch, *runs, perf.RunConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		violation = perf.CheckTelemetry(res, *maxOverPct)
		if violation == "" || attempt >= *retries {
			break
		}
		fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d: %s — re-measuring\n", attempt+1, *retries+1, violation)
	}
	verdict := "ok"
	if violation != "" {
		verdict = "REGRESSION"
	}
	fmt.Printf("%s_%d_%s batch=%d  off p50 %9.0fns  armed p50 %9.0fns  %+5.1f%%  allocs/batch %.2f vs %.2f (delta %+.2f)  samples=%d slow=%d  %s\n",
		res.Family, res.Size, res.Backend, res.BatchSize,
		res.OffP50Nanos, res.OnP50Nanos, res.OverheadPct,
		res.OnAllocsPerBatch, res.OffAllocsPerBatch, res.AllocsDelta,
		res.HistogramSamples, res.SlowCaptured, verdict)
	if *out != "" {
		if err := writeJSON(*out, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: wrote %s\n", *out)
	}
	if violation != "" {
		fmt.Fprintln(os.Stderr, "perflab: "+violation)
		os.Exit(2)
	}
}

func realTraceCmd(args []string) {
	fs := flag.NewFlagSet("realtrace", flag.ExitOnError)
	var (
		families    = fs.String("families", "acl1,fw1,ipc1", "comma-separated ClassBench families")
		size        = fs.Int("size", 1000, "rule-set size")
		backend     = fs.String("backend", "hicuts", "engine backend")
		packets     = fs.Int("packets", 50000, "trace length rendered into the pcap")
		batch       = fs.Int("batch", 512, "packets per ReadBatch/ClassifyBatch span")
		runs        = fs.Int("runs", 3, "measurement passes per path (best-of)")
		seed        = fs.Int64("seed", 1, "random seed")
		minFraction = fs.Float64("min-fraction", 0.25, "min replay/direct throughput fraction (0 = report only)")
		retries     = fs.Int("retries", 2, "re-measure up to this many times on violation")
		out         = fs.String("out", "BENCH_realtrace.json", "write the results as JSON to this path ('' = skip)")
	)
	fs.Parse(args)

	var results []perf.RealTraceResult
	var failures []string
	for _, fam := range splitCSV(*families) {
		var res perf.RealTraceResult
		var violation string
		for attempt := 0; ; attempt++ {
			var err error
			res, err = perf.MeasureRealTrace(fam, *size, *backend, *packets, *batch, *runs, perf.RunConfig{Seed: *seed})
			if err != nil {
				fatal(err)
			}
			violation = perf.CheckRealTrace(res, *minFraction)
			if violation == "" || attempt >= *retries {
				break
			}
			fmt.Fprintf(os.Stderr, "perflab: attempt %d/%d: %s — re-measuring\n", attempt+1, *retries+1, violation)
		}
		verdict := "ok"
		if violation != "" {
			verdict = "REGRESSION"
			failures = append(failures, violation)
		}
		fmt.Printf("%s_%d_%s pcap %5.1fMB  direct %9.0f pps  decode %9.0f pps  replay %9.0f pps (%.2fx)  shm %9.0f pps  matches=%d  %s\n",
			res.Family, res.Size, res.Backend, float64(res.PcapBytes)/(1<<20),
			res.DirectPacketsPerSec, res.DecodePacketsPerSec,
			res.ReplayPacketsPerSec, res.ReplayFraction, res.ShmPacketsPerSec,
			res.Matches, verdict)
		results = append(results, res)
	}
	if *out != "" {
		if err := writeJSON(*out, results); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perflab: wrote %s\n", *out)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "perflab: "+f)
		}
		os.Exit(2)
	}
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perflab:", err)
	os.Exit(1)
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(strings.ToLower(part)); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func csvToInts(s string) []int {
	var out []int
	for _, part := range splitCSV(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("invalid size %q", part))
		}
		out = append(out, n)
	}
	return out
}

func intsToCSV(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

func skewsCSV(ss []perf.Skew) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = string(s)
	}
	return strings.Join(parts, ",")
}

func churnsCSV(cs []perf.Churn) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return strings.Join(parts, ",")
}

func toSkews(ss []string) []perf.Skew {
	out := make([]perf.Skew, len(ss))
	for i, s := range ss {
		out[i] = perf.Skew(s)
	}
	return out
}

func toChurns(ss []string) []perf.Churn {
	out := make([]perf.Churn, len(ss))
	for i, s := range ss {
		out[i] = perf.Churn(s)
	}
	return out
}

func toLookups(ss []string) []perf.LookupMode {
	out := make([]perf.LookupMode, len(ss))
	for i, s := range ss {
		out[i] = perf.LookupMode(s)
	}
	return out
}
