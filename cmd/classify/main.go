// Command classify builds a decision tree (or multi-tree classifier) with a
// chosen algorithm and classifies a header trace with it, reporting
// correctness against linear search, lookup throughput, and the tree's
// classification-time and memory metrics.
//
// Example:
//
//	genrules -family acl1 -size 1000 -out acl.rules -trace 100000 -traceout acl.trace
//	classify -rules acl.rules -trace acl.trace -algo hicuts
//	classify -rules acl.rules -trace acl.trace -algo neurocuts -timesteps 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// classifier is the minimal lookup interface every algorithm provides.
type classifier interface {
	Classify(p rule.Packet) (rule.Rule, bool)
}

func main() {
	var (
		rulesPath = flag.String("rules", "", "classifier file in ClassBench format (required unless -family given)")
		family    = flag.String("family", "", "generate this ClassBench family instead of reading -rules")
		size      = flag.Int("size", 1000, "classifier size when generating")
		tracePath = flag.String("trace", "", "header trace file (optional; a synthetic trace is generated otherwise)")
		traceN    = flag.Int("tracen", 100000, "synthetic trace length when -trace is not given")
		algo      = flag.String("algo", "hicuts", "algorithm: hicuts, hypercuts, efficuts, cutsplit, neurocuts, linear")
		binth     = flag.Int("binth", 16, "leaf threshold")
		timesteps = flag.Int("timesteps", 20000, "NeuroCuts training budget (neurocuts only)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	set, err := loadClassifier(*rulesPath, *family, *size, *seed)
	if err != nil {
		fatal(err)
	}
	trace, err := loadTrace(*tracePath, set, *traceN, *seed)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	cls, metrics, err := build(strings.ToLower(*algo), set, *binth, *timesteps, *seed)
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("built %s over %d rules in %s\n", *algo, set.Len(), buildTime.Round(time.Millisecond))
	if metrics != nil {
		fmt.Printf("  classification time (worst-case node visits): %d\n", metrics.ClassificationTime)
		fmt.Printf("  memory: %d bytes (%.1f bytes/rule), %d nodes, depth %d\n",
			metrics.MemoryBytes, metrics.BytesPerRule, metrics.Nodes, metrics.MaxDepth)
	}

	// Classify the trace, checking each result against the ground truth (or
	// against linear search when the trace has no ground truth).
	mismatches := 0
	start = time.Now()
	for _, e := range trace {
		got, ok := cls.Classify(e.Key)
		want := e.MatchRule
		if want < 0 {
			want = set.MatchIndex(e.Key)
		}
		if (want < 0) != !ok {
			mismatches++
			continue
		}
		if ok && got.Priority != want {
			mismatches++
		}
	}
	elapsed := time.Since(start)
	rate := float64(len(trace)) / elapsed.Seconds()
	fmt.Printf("classified %d packets in %s (%.0f packets/sec)\n", len(trace), elapsed.Round(time.Millisecond), rate)
	if mismatches > 0 {
		fmt.Printf("MISMATCHES: %d packets classified differently from linear search\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("all classifications match linear search")
}

func loadClassifier(path, family string, size int, seed int64) (*rule.Set, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rule.ParseClassBench(f)
	}
	if family == "" {
		family = "acl1"
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, size, seed), nil
}

func loadTrace(path string, set *rule.Set, n int, seed int64) ([]packet.TraceEntry, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return packet.ReadTrace(f)
	}
	return classbench.GenerateTrace(set, n, seed+7), nil
}

// linearClassifier adapts rule.Set to the classifier interface.
type linearClassifier struct{ set *rule.Set }

func (l linearClassifier) Classify(p rule.Packet) (rule.Rule, bool) { return l.set.Match(p) }

func build(algo string, set *rule.Set, binth, timesteps int, seed int64) (classifier, *tree.Metrics, error) {
	switch algo {
	case "linear":
		return linearClassifier{set}, nil, nil
	case "hicuts":
		cfg := hicuts.DefaultConfig()
		cfg.Binth = binth
		t, err := hicuts.Build(set, cfg)
		if err != nil {
			return nil, nil, err
		}
		m := t.ComputeMetrics()
		return t, &m, nil
	case "hypercuts":
		cfg := hypercuts.DefaultConfig()
		cfg.Binth = binth
		t, err := hypercuts.Build(set, cfg)
		if err != nil {
			return nil, nil, err
		}
		m := t.ComputeMetrics()
		return t, &m, nil
	case "efficuts":
		cfg := efficuts.DefaultConfig()
		cfg.Binth = binth
		c, err := efficuts.Build(set, cfg)
		if err != nil {
			return nil, nil, err
		}
		m := c.Metrics()
		return c, &m, nil
	case "cutsplit":
		cfg := cutsplit.DefaultConfig()
		cfg.Binth = binth
		c, err := cutsplit.Build(set, cfg)
		if err != nil {
			return nil, nil, err
		}
		m := c.Metrics()
		return c, &m, nil
	case "neurocuts":
		cfg := core.Scaled(1000)
		cfg.Binth = binth
		cfg.MaxTimesteps = timesteps
		cfg.BatchTimesteps = max(256, timesteps/10)
		cfg.Seed = seed
		cfg.Partition = env.PartitionNone
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			return nil, nil, err
		}
		best, _ := trainer.BestTree()
		m := best.ComputeMetrics()
		return best, &m, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
