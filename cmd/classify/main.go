// Command classify builds any registered classification backend over a rule
// set and classifies a header trace with it, reporting correctness against
// linear search, lookup throughput (single-packet and sharded batch), and
// the backend's cost metrics.
//
// Backends are selected by registry name (see internal/engine); -algo list
// prints them.
//
// With -artifact the classifier is warm-started from a compiled artifact
// (see internal/compiled) instead of being built: the rule set embedded in
// the artifact becomes the linear-search ground truth, so this doubles as
// the artifact round-trip checker CI runs.
//
// Example:
//
//	genrules -family acl1 -size 1000 -out acl.rules -trace 100000 -traceout acl.trace
//	classify -rules acl.rules -trace acl.trace -algo hicuts
//	classify -rules acl.rules -trace acl.trace -algo neurocuts -timesteps 20000
//	classify -family fw1 -algo tss -batch 512 -shards 8
//	neurocuts -family acl1 -save-artifact policy.ncaf && classify -artifact policy.ncaf
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/engine"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "classifier file in ClassBench format (required unless -family given)")
		family    = flag.String("family", "", "generate this ClassBench family instead of reading -rules")
		size      = flag.Int("size", 1000, "classifier size when generating")
		tracePath = flag.String("trace", "", "header trace file (optional; a synthetic trace is generated otherwise)")
		traceN    = flag.Int("tracen", 100000, "synthetic trace length when -trace is not given")
		algo      = flag.String("algo", "hicuts", "backend name, or 'list' to print the registry")
		binth     = flag.Int("binth", 16, "leaf threshold")
		timesteps = flag.Int("timesteps", 20000, "NeuroCuts training budget (neurocuts only)")
		batch     = flag.Int("batch", 1024, "batch size for the sharded throughput pass (0 disables)")
		shards    = flag.Int("shards", 0, "batch lookup shards (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "random seed")
		artifact  = flag.String("artifact", "", "warm-start from this compiled classifier artifact instead of building")
		journal   = flag.String("journal", "", "replay this update journal on top of -artifact before classifying ('auto' = <artifact>.journal)")
		artVer    = flag.Bool("artifact-version", false, "print the compiled artifact schema version and exit")
		serverAt  = flag.String("server", "", "classify through a running classifyd at this address instead of in-process (results are checked against the local rules, which must match the served table)")
		proto     = flag.String("proto", "v1", "wire protocol for -server: v1 (text) or v2 (framed binary)")
		table     = flag.String("table", "", "table name to address with -server (v2 only; empty = default table)")
	)
	flag.Parse()

	if *artVer {
		fmt.Println(compiled.SchemaVersion)
		return
	}
	if strings.ToLower(*algo) == "list" {
		fmt.Println("registered backends:", strings.Join(engine.Backends(), ", "))
		return
	}

	if *serverAt != "" {
		set, err := loadClassifier(*rulesPath, *family, *size, *seed)
		if err != nil {
			fatal(err)
		}
		trace, err := loadTrace(*tracePath, set, *traceN, *seed)
		if err != nil {
			fatal(err)
		}
		if err := classifyViaServer(*serverAt, strings.ToLower(*proto), *table, set, trace, *batch); err != nil {
			fatal(err)
		}
		return
	}

	opts := engine.Options{Binth: *binth, Timesteps: *timesteps, Seed: *seed, Shards: *shards}
	var (
		eng *engine.Engine
		set *rule.Set
		err error
	)
	start := time.Now()
	if *artifact != "" {
		if *journal == "auto" {
			*journal = engine.JournalPathFor(*artifact)
		}
		opts.JournalPath = *journal
		eng, err = engine.NewEngineFromArtifact(*artifact, opts)
		if err != nil {
			fatal(err)
		}
		// The artifact's embedded rule set — with any replayed journal
		// updates merged in — is the ground truth below, so this doubles as
		// the post-recovery differential check.
		set = eng.Rules()
	} else {
		if *journal != "" {
			fatal(fmt.Errorf("-journal requires -artifact"))
		}
		set, err = loadClassifier(*rulesPath, *family, *size, *seed)
		if err != nil {
			fatal(err)
		}
		eng, err = engine.NewEngine(strings.ToLower(*algo), set, opts)
		if err != nil {
			fatal(err)
		}
	}
	buildTime := time.Since(start)
	trace, err := loadTrace(*tracePath, set, *traceN, *seed)
	if err != nil {
		fatal(err)
	}

	m := eng.Metrics()
	if *artifact != "" {
		fmt.Printf("loaded %s artifact %s (%d rules) in %s — no build/train path invoked\n",
			engine.DisplayName(eng.Backend()), *artifact, set.Len(), buildTime.Round(time.Millisecond))
		if st := eng.UpdaterStats(); st.JournalRecords > 0 {
			fmt.Printf("  replayed %d journaled updates from %s\n", st.JournalRecords, st.JournalPath)
		}
	} else {
		fmt.Printf("built %s over %d rules in %s\n", engine.DisplayName(eng.Backend()), set.Len(), buildTime.Round(time.Millisecond))
	}
	fmt.Printf("  lookup cost (worst-case sequential steps): %d\n", m.LookupCost)
	fmt.Printf("  memory: %d bytes (%.1f bytes/rule), %d stored entries\n", m.MemoryBytes, m.BytesPerRule, m.Entries)
	if m.CompiledBytes > 0 {
		fmt.Printf("  compiled serve form: %d bytes\n", m.CompiledBytes)
	}

	// Single-packet pass, checking each result against the ground truth (or
	// against linear search when the trace has no ground truth).
	mismatches := 0
	wants := make([]int, len(trace))
	start = time.Now()
	for i, e := range trace {
		got, ok := eng.Classify(e.Key)
		want := e.MatchRule
		if want < 0 {
			want = set.MatchIndex(e.Key)
		}
		wants[i] = want
		if (want < 0) != !ok {
			mismatches++
			continue
		}
		if ok && got.Priority != want {
			mismatches++
		}
	}
	elapsed := time.Since(start)
	rate := float64(len(trace)) / elapsed.Seconds()
	fmt.Printf("classified %d packets in %s (%.0f packets/sec, single)\n", len(trace), elapsed.Round(time.Millisecond), rate)

	// Sharded batch pass over the same trace.
	if *batch > 0 {
		keys := make([]rule.Packet, len(trace))
		for i, e := range trace {
			keys[i] = e.Key
		}
		out := make([]engine.Result, len(trace))
		start = time.Now()
		for lo := 0; lo < len(keys); lo += *batch {
			hi := lo + *batch
			if hi > len(keys) {
				hi = len(keys)
			}
			eng.ClassifyBatch(keys[lo:hi], out[lo:hi])
		}
		batchElapsed := time.Since(start)
		batchRate := float64(len(trace)) / batchElapsed.Seconds()
		fmt.Printf("classified %d packets in %s (%.0f packets/sec, batch=%d shards=%d, %.2fx)\n",
			len(trace), batchElapsed.Round(time.Millisecond), batchRate, *batch, *shards, batchRate/rate)
		for i, want := range wants {
			if (want < 0) != !out[i].OK || (out[i].OK && out[i].Rule.Priority != want) {
				mismatches++
			}
		}
	}

	if mismatches > 0 {
		fmt.Printf("MISMATCHES: %d packets classified differently from linear search\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("all classifications match linear search")
}

// remoteBatcher is the protocol-independent face of the two clients.
type remoteBatcher interface {
	ClassifyBatch(ps []rule.Packet) ([]engine.Result, error)
	Close() error
}

// classifyViaServer pushes the trace through a running server in batches
// and checks every response against linear search over the local rules.
// The local rule set must describe the served table for the check to be
// meaningful (the typical use: the server was started from the same -rules
// or -family/-size/-seed).
func classifyViaServer(addr, proto, table string, set *rule.Set, trace []packet.TraceEntry, batch int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if batch <= 0 {
		batch = 1024
	}
	var client remoteBatcher
	switch proto {
	case "", "v1":
		if table != "" {
			return fmt.Errorf("-table needs -proto v2 (v1 always addresses the default table)")
		}
		c, err := server.Dial(ctx, addr)
		if err != nil {
			return err
		}
		client = c
	case "v2":
		c, err := server.DialV2(ctx, addr)
		if err != nil {
			return err
		}
		if table != "" {
			id, err := c.ResolveTable(table)
			if err != nil {
				c.Close()
				return err
			}
			c.UseTable(id)
		}
		client = c
	default:
		return fmt.Errorf("unknown -proto %q (want v1 or v2)", proto)
	}
	defer client.Close()

	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}
	mismatches := 0
	start := time.Now()
	done := 0
	for lo := 0; lo < len(keys); lo += batch {
		hi := lo + batch
		if hi > len(keys) {
			hi = len(keys)
		}
		out, err := client.ClassifyBatch(keys[lo:hi])
		if err != nil {
			return err
		}
		for i, res := range out {
			want := trace[lo+i].MatchRule
			if want < 0 {
				want = set.MatchIndex(keys[lo+i])
			}
			if (want < 0) != !res.OK || (res.OK && res.Rule.Priority != want) {
				mismatches++
			}
		}
		done += hi - lo
	}
	elapsed := time.Since(start)
	fmt.Printf("classified %d packets via %s %s in %s (%.0f packets/sec, batch=%d)\n",
		done, addr, protoName(proto), elapsed.Round(time.Millisecond),
		float64(done)/elapsed.Seconds(), batch)
	if mismatches > 0 {
		fmt.Printf("MISMATCHES: %d packets classified differently from local linear search\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("all server classifications match local linear search")
	return nil
}

func protoName(proto string) string {
	if proto == "v2" {
		return "proto v2 (binary)"
	}
	return "proto v1 (text)"
}

func loadClassifier(path, family string, size int, seed int64) (*rule.Set, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rule.ParseClassBench(f)
	}
	if family == "" {
		family = "acl1"
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, size, seed), nil
}

func loadTrace(path string, set *rule.Set, n int, seed int64) ([]packet.TraceEntry, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return packet.ReadTrace(f)
	}
	return classbench.GenerateTrace(set, n, seed+7), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
