// Command classifyd serves a packet classifier over TCP using the line
// protocol of internal/server, or queries a running server.
//
// Serve a HiCuts tree built from a generated firewall classifier:
//
//	classifyd -family fw1 -size 1000 -algo hicuts -listen 127.0.0.1:9099
//
// Query it (IPs may be dotted quads or decimal):
//
//	classifyd -query 127.0.0.1:9099 -packet "10.0.0.1 192.168.1.1 1234 80 6"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "classifier file in ClassBench format")
		family    = flag.String("family", "acl1", "ClassBench family to generate when -rules is not given")
		size      = flag.Int("size", 1000, "classifier size when generating")
		seed      = flag.Int64("seed", 1, "random seed")
		algo      = flag.String("algo", "hicuts", "algorithm: hicuts, hypercuts, efficuts, cutsplit, neurocuts, linear")
		timesteps = flag.Int("timesteps", 20000, "NeuroCuts training budget (neurocuts only)")
		listen    = flag.String("listen", "127.0.0.1:9099", "address to serve on")
		query     = flag.String("query", "", "query a running server at this address instead of serving")
		packetStr = flag.String("packet", "", "packet to query: \"src dst sport dport proto\"")
	)
	flag.Parse()

	if *query != "" {
		if err := runQuery(*query, *packetStr); err != nil {
			fatal(err)
		}
		return
	}

	set, err := loadClassifier(*rulesPath, *family, *size, *seed)
	if err != nil {
		fatal(err)
	}
	cls, err := buildClassifier(strings.ToLower(*algo), set, *timesteps, *seed)
	if err != nil {
		fatal(err)
	}

	srv := server.New(cls)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("classifyd: serving %s classifier (%d rules, %s) on %s\n", *algo, set.Len(), *family, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("classifyd: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("classifyd: served %d requests (%d matches, %d parse failures)\n", st.Requests, st.Matches, st.ParseFails)
}

func runQuery(addr, packetStr string) error {
	if packetStr == "" {
		return fmt.Errorf("-packet is required with -query")
	}
	key, err := server.ParseRequest(packetStr)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := server.Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer client.Close()
	id, priority, ok, err := client.Classify(key)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Println("no-match")
		return nil
	}
	fmt.Printf("match rule id=%d priority=%d\n", id, priority)
	return nil
}

func loadClassifier(path, family string, size int, seed int64) (*rule.Set, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rule.ParseClassBench(f)
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, size, seed), nil
}

// linear adapts rule.Set to the server's Classifier interface.
type linear struct{ set *rule.Set }

func (l linear) Classify(p rule.Packet) (rule.Rule, bool) { return l.set.Match(p) }

func buildClassifier(algo string, set *rule.Set, timesteps int, seed int64) (server.Classifier, error) {
	switch algo {
	case "linear":
		return linear{set}, nil
	case "hicuts":
		return hicuts.Build(set, hicuts.DefaultConfig())
	case "hypercuts":
		return hypercuts.Build(set, hypercuts.DefaultConfig())
	case "efficuts":
		return efficuts.Build(set, efficuts.DefaultConfig())
	case "cutsplit":
		return cutsplit.Build(set, cutsplit.DefaultConfig())
	case "neurocuts":
		cfg := core.Scaled(1000)
		cfg.MaxTimesteps = timesteps
		cfg.BatchTimesteps = timesteps / 10
		cfg.Seed = seed
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			return nil, err
		}
		best, _ := trainer.BestTree()
		return best, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classifyd:", err)
	os.Exit(1)
}
