// Command classifyd serves a packet classifier over TCP using the line
// protocol of internal/server, or queries a running server. The served
// classifier is an engine.Engine, so any registered backend is available by
// name, batch requests are sharded across workers, and rules can be added
// and removed live (RCU snapshot swaps — readers are never blocked).
//
// Serve a HiCuts tree built from a generated firewall classifier:
//
//	classifyd -family fw1 -size 1000 -algo hicuts -listen 127.0.0.1:9099
//
// Warm-start from a compiled classifier artifact instead of building — the
// first lookup is served straight from the loaded flat-array form, no
// backend build or train path runs:
//
//	classifyd -artifact policy.ncaf -listen 127.0.0.1:9099
//
// Serve with cheap online updates and a durable update journal: inserts and
// deletes land in a delta overlay (no rebuild on the update path), a
// background compactor folds them into the base, and every acknowledged
// update is journaled so a kill-and-restart replays it:
//
//	classifyd -artifact policy.ncaf -journal auto -listen 127.0.0.1:9099
//
// Serve lookups through the run-to-completion dataplane instead of the
// worker pool: per-core classify loops fed by a flow-hash demux over SPSC
// rings, with lock-free per-core flow caches (see internal/dataplane and
// docs/ARCHITECTURE.md):
//
//	classifyd -family acl1 -size 1000 -cores 8 -flow-cache 65536 -listen 127.0.0.1:9099
//
// Replay a real capture through the classifier — decode Ethernet/VLAN/IPv4
// frames into 5-tuples and classify them, at maximum rate or paced to the
// capture's recorded timing (see internal/iface):
//
//	classifyd -family acl1 -size 1000 -pcap trace.pcap
//	classifyd -artifact policy.ncaf -pcap trace.pcap -pcap-rate 1
//
// Classify live traffic from an interface (linux, CAP_NET_RAW), writing
// everything ingested to a pcap fixture for later replay:
//
//	classifyd -family acl1 -capture eth0 -pcap-out captured.pcap
//
// Serve batch lookups to a co-located process over a shared-memory ring as
// well as TCP (the SDK side is classifier.WithSharedMemory):
//
//	classifyd -family acl1 -size 1000 -shm /run/classifyd.ring
//
// Query it (IPs may be dotted quads or decimal):
//
//	classifyd -query 127.0.0.1:9099 -packet "10.0.0.1 192.168.1.1 1234 80 6"
//
// Update it live (ClassBench rule format; pos 0 = top priority), or manage
// artifacts on the serving side:
//
//	classifyd -query 127.0.0.1:9099 -add "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF" -pos 0
//	classifyd -query 127.0.0.1:9099 -del 17
//	classifyd -query 127.0.0.1:9099 -save /var/lib/classifyd/policy.ncaf
//	classifyd -query 127.0.0.1:9099 -load /var/lib/classifyd/policy.ncaf
//
// Serve several independent rule sets — tables — from one daemon. Each
// table gets its own engine (backend, rules, journal); v1 clients see the
// first (default) table, and wire-protocol-v2 clients address any table by
// name:
//
//	classifyd -tables "acl=backend:hicuts,family:acl1,size:1000;fw=backend:tss,family:fw2,size:500"
//	classifyd -query 127.0.0.1:9099 -proto v2 -list-tables
//	classifyd -query 127.0.0.1:9099 -proto v2 -table fw -packet "10.0.0.1 192.168.1.1 1234 80 6"
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight (batch)
// requests are drained and answered before the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neurocuts/internal/admin"
	"neurocuts/internal/classbench"
	"neurocuts/internal/dataplane"
	"neurocuts/internal/engine"
	"neurocuts/internal/iface"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
	"neurocuts/internal/telemetry"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], sig, os.Stdout); err != nil {
		fatal(err)
	}
}

// onListen, when set (by tests), receives the bound listen address.
var onListen func(net.Addr)

// onAdminListen, when set (by tests), receives the bound admin address.
var onAdminListen func(net.Addr)

// startAdmin binds the HTTP admin plane when addr is non-empty and returns
// its shutdown function (a no-op when the plane is disabled). The returned
// function must run before the classification server drains, so a scrape
// can never observe a half-shut-down daemon as healthy.
func startAdmin(stdout io.Writer, addr string, opts admin.Options) (func(context.Context), error) {
	if addr == "" {
		return func(context.Context) {}, nil
	}
	adm := admin.New(opts)
	bound, err := adm.Listen(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "classifyd: admin plane on http://%s (/metrics /healthz /readyz /tables /debug/slow /debug/pprof/)\n", bound)
	if onAdminListen != nil {
		onAdminListen(bound)
	}
	return func(ctx context.Context) { adm.Shutdown(ctx) }, nil
}

// run is the daemon body, factored out of main so tests can drive it with
// their own signal channel and capture its output. It returns nil on a
// clean (drained) shutdown.
func run(args []string, sig <-chan os.Signal, stdout io.Writer) error {
	fs := flag.NewFlagSet("classifyd", flag.ExitOnError)
	var (
		rulesPath = fs.String("rules", "", "classifier file in ClassBench format")
		family    = fs.String("family", "acl1", "ClassBench family to generate when -rules is not given")
		size      = fs.Int("size", 1000, "classifier size when generating")
		seed      = fs.Int64("seed", 1, "random seed")
		algo      = fs.String("algo", "hicuts", "backend name (see internal/engine), or 'list'")
		timesteps = fs.Int("timesteps", 20000, "NeuroCuts training budget (neurocuts only)")
		binth     = fs.Int("binth", 16, "leaf threshold for tree backends")
		shards    = fs.Int("shards", 0, "batch lookup shards (0 = GOMAXPROCS)")
		cores     = fs.Int("cores", 0, "serve lookups through the run-to-completion dataplane with this many per-core classify loops (0 = default worker-pool path; -1 = GOMAXPROCS loops)")
		flowCache = fs.Int("flow-cache", 0, "flow cache entry budget (sharded engine cache, or per-core caches with -cores; 0 disables)")
		artifact  = fs.String("artifact", "", "warm-start: serve this compiled classifier artifact instead of building")
		online    = fs.Bool("online", false, "route live updates through the delta-overlay subsystem instead of rebuild-per-update")
		journal   = fs.String("journal", "", "durable update journal path (implies -online; replayed at start; 'auto' co-locates with -artifact)")
		compactAt = fs.Int("compact-threshold", 0, "pending updates that trigger background compaction (0 = default, <0 disables)")
		tables    = fs.String("tables", "", "serve multiple named tables: \"name=key:val,...;name2=...\" (keys: backend, family, size, rules, artifact, journal, online; first table is the default)")
		pcapPath  = fs.String("pcap", "", "replay this pcap capture file through the classifier instead of serving")
		pcapRate  = fs.Float64("pcap-rate", 0, "replay pacing: 0 = maximum rate, r = r times the recorded speed (1 reproduces the capture's timing)")
		capture   = fs.String("capture", "", "classify live traffic captured from this network interface via AF_PACKET (linux, CAP_NET_RAW) instead of serving")
		pcapOut   = fs.String("pcap-out", "", "while replaying or capturing, also write every ingested packet to this pcap fixture")
		shmPath   = fs.String("shm", "", "additionally serve batch lookups over a shared-memory ring at this file path (single-table mode)")
		shmSlots  = fs.Int("shm-slots", 0, "shared-memory ring capacity in descriptors, rounded up to a power of two (0 = default 4096)")
		listen    = fs.String("listen", "127.0.0.1:9099", "address to serve on")
		adminAddr = fs.String("admin", "", "serve the HTTP admin plane (Prometheus /metrics, /healthz, /readyz, /tables, /debug/slow, /debug/pprof/) on this address")
		slowThr   = fs.Duration("slow-threshold", -1, "capture lookups at or above this latency into the slow-lookup flight recorder (/debug/slow; 0 captures everything, negative disables capture; latency histograms are recorded whenever -admin or this flag enables telemetry)")
		drain     = fs.Duration("drain-timeout", 5*time.Second, "max time to drain in-flight requests on shutdown")
		query     = fs.String("query", "", "query a running server at this address instead of serving")
		proto     = fs.String("proto", "v1", "wire protocol for -query: v1 (text) or v2 (framed binary)")
		table     = fs.String("table", "", "table name to address with -query (v2 only; empty = default table)")
		listTabs  = fs.Bool("list-tables", false, "list the server's tables (with -query; v2)")
		packetStr = fs.String("packet", "", "packet to query: \"src dst sport dport proto\"")
		addRule   = fs.String("add", "", "ClassBench rule line to insert live (with -query)")
		pos       = fs.Int("pos", 0, "priority position for -add (0 = top)")
		delID     = fs.Int("del", -1, "rule ID to delete live (with -query)")
		savePath  = fs.String("save", "", "ask the server to save its classifier as an artifact at this path (with -query)")
		loadPath  = fs.String("load", "", "ask the server to hot-swap in the artifact at this path (with -query)")
	)
	fs.Parse(args)

	if strings.ToLower(*algo) == "list" {
		fmt.Fprintln(stdout, "registered backends:", strings.Join(engine.Backends(), ", "))
		return nil
	}

	if *query != "" {
		q := queryArgs{
			addr: *query, proto: strings.ToLower(*proto), table: *table, listTables: *listTabs,
			packet: *packetStr, addRule: *addRule, pos: *pos, delID: *delID,
			savePath: *savePath, loadPath: *loadPath,
		}
		return runQuery(stdout, q)
	}

	// Online telemetry: armed whenever the admin plane (which renders the
	// histogram families) or the flight recorder (-slow-threshold >= 0) asks
	// for it. One shared instance serves every layer of the process.
	var tel *telemetry.Telemetry
	if *adminAddr != "" || *slowThr >= 0 {
		tel = telemetry.New(telemetry.Config{})
		tel.SetSlowThreshold(slowThr.Nanoseconds())
	}

	if *pcapPath != "" && *capture != "" {
		return fmt.Errorf("-pcap and -capture are mutually exclusive (one ingestion source at a time)")
	}
	ingest := *pcapPath != "" || *capture != ""
	if *pcapOut != "" && !ingest {
		return fmt.Errorf("-pcap-out needs an ingestion source (-pcap or -capture)")
	}

	if *tables != "" {
		if *cores != 0 {
			return fmt.Errorf("-cores applies to single-table mode only (each table owns its engine; a shared dataplane would need one flow-space per table)")
		}
		if ingest || *shmPath != "" {
			return fmt.Errorf("-pcap, -capture and -shm apply to single-table mode only")
		}
		return runTables(stdout, *tables, tableDefaults{
			binth: *binth, timesteps: *timesteps, seed: *seed, shards: *shards,
			compactAt: *compactAt, tel: tel,
		}, *listen, *adminAddr, *drain, sig)
	}

	// With the dataplane in front, the engine's sharded flow cache would
	// never be consulted; route the -flow-cache budget to whichever layer
	// actually serves lookups.
	engineCache, dpCache := *flowCache, 0
	if *cores != 0 {
		engineCache, dpCache = 0, *flowCache
	}

	journalPath := *journal
	if journalPath == "auto" {
		if *artifact == "" {
			return fmt.Errorf("-journal auto needs -artifact to co-locate with")
		}
		journalPath = engine.JournalPathFor(*artifact)
	}

	var eng *engine.Engine
	if *artifact != "" {
		var err error
		eng, err = engine.NewEngineFromArtifact(*artifact, engine.Options{
			Shards:           *shards,
			FlowCacheEntries: engineCache,
			OnlineUpdates:    *online,
			JournalPath:      journalPath,
			CompactThreshold: *compactAt,
			Telemetry:        tel,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "classifyd: warm start from %s (%s, %d rules) — no build/train path invoked\n",
			*artifact, engine.DisplayName(eng.Backend()), eng.Rules().Len())
	} else {
		set, err := loadClassifier(*rulesPath, *family, *size, *seed)
		if err != nil {
			return err
		}
		eng, err = engine.NewEngine(strings.ToLower(*algo), set, engine.Options{
			Binth:            *binth,
			Timesteps:        *timesteps,
			Seed:             *seed,
			Shards:           *shards,
			FlowCacheEntries: engineCache,
			OnlineUpdates:    *online,
			JournalPath:      journalPath,
			CompactThreshold: *compactAt,
			Telemetry:        tel,
		})
		if err != nil {
			return err
		}
	}
	defer eng.Close()
	if st := eng.UpdaterStats(); st.Enabled {
		fmt.Fprintf(stdout, "classifyd: online updates enabled (compact threshold %d", st.CompactThreshold)
		if st.JournalPath != "" {
			fmt.Fprintf(stdout, ", journal %s, %d records replayed", st.JournalPath, st.JournalRecords)
		}
		fmt.Fprintf(stdout, "), serving %d rules\n", st.Rules)
	}

	// The server talks to whichever serving surface was selected: the engine
	// directly (worker-pool path), or a dataplane fronting it. The dataplane
	// implements the same server interfaces, so nothing downstream changes.
	var cls server.Classifier = eng
	var dp *dataplane.Dataplane
	if *cores != 0 {
		dpCores := *cores
		if dpCores < 0 {
			dpCores = 0 // Attach maps 0 to GOMAXPROCS
		}
		var err error
		dp, err = dataplane.Attach(eng, dataplane.Config{Cores: dpCores, CacheEntries: dpCache})
		if err != nil {
			return err
		}
		// No explicit dp.Close: Attach registered it as an engine closer, so
		// the deferred eng.Close drains the loops first.
		cls = dp
		fmt.Fprintf(stdout, "classifyd: run-to-completion dataplane enabled (%d cores, per-core flow caches %d entries)\n",
			dp.Cores(), dpCache)
	}

	if ingest {
		src, label, err := openIngestSource(*pcapPath, *pcapRate, *capture)
		if err != nil {
			return err
		}
		return runIngest(stdout, src, label, cls, *pcapOut, sig)
	}

	srv := server.New(cls)
	srv.Telemetry = tel
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	var ring *iface.ShmServer
	if *shmPath != "" {
		batcher, ok := cls.(iface.ShmBatcher)
		if !ok {
			srv.Shutdown(context.Background())
			return fmt.Errorf("-shm: serving surface does not support batch classification")
		}
		ring, err = iface.NewShmServer(*shmPath, batcher, iface.ShmServerConfig{Slots: *shmSlots})
		if err != nil {
			srv.Shutdown(context.Background())
			return err
		}
		fmt.Fprintf(stdout, "classifyd: shared-memory ring on %s (%d slots)\n", ring.Path(), ring.Slots())
	}
	fmt.Fprintf(stdout, "classifyd: serving %s engine (%d rules) on %s\n",
		engine.DisplayName(eng.Backend()), eng.Rules().Len(), addr)
	stopAdmin, err := startAdmin(stdout, *adminAddr, admin.Options{Engine: eng, Server: srv, Telemetry: tel, Dataplane: dp})
	if err != nil {
		srv.Shutdown(context.Background())
		return err
	}
	if onListen != nil {
		onListen(addr)
	}

	<-sig
	fmt.Fprintln(stdout, "classifyd: shutting down, draining in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Admin first: monitoring must stop seeing the daemon as live before the
	// classification server starts refusing work.
	stopAdmin(ctx)
	if ring != nil {
		if st := ring.Stats(); st.Packets > 0 {
			fmt.Fprintf(stdout, "classifyd: shared-memory ring served %d packets in %d batches\n", st.Packets, st.Batches)
		}
		ring.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		// A missed drain deadline force-closed stragglers; the daemon still
		// exits cleanly, but say what happened.
		fmt.Fprintf(stdout, "classifyd: drain timeout expired, closed remaining connections (%v)\n", err)
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "classifyd: served %d requests (%d matches, %d parse failures), final rule-set version %d\n",
		st.Requests, st.Matches, st.ParseFails, eng.Version())
	return nil
}

// queryArgs bundles the client-mode flags.
type queryArgs struct {
	addr       string
	proto      string
	table      string
	listTables bool
	packet     string
	addRule    string
	pos        int
	delID      int
	savePath   string
	loadPath   string
}

func runQuery(stdout io.Writer, q queryArgs) error {
	switch q.proto {
	case "", "v1":
		if q.table != "" {
			return fmt.Errorf("-table needs -proto v2 (the v1 text protocol always addresses the default table)")
		}
		if q.listTables {
			return fmt.Errorf("-list-tables needs -proto v2")
		}
		return runQueryV1(stdout, q)
	case "v2":
		return runQueryV2(stdout, q)
	default:
		return fmt.Errorf("unknown -proto %q (want v1 or v2)", q.proto)
	}
}

// queryOps is the protocol-independent face of the two wire clients, so
// the query subcommand's action switch exists once. listTables is nil for
// v1, which cannot enumerate tables.
type queryOps struct {
	classify   func(p rule.Packet) (id, priority int, ok bool, err error)
	addRule    func(pos int, classBenchLine string) (id int, version uint64, err error)
	deleteRule func(id int) (version uint64, err error)
	save       func(path string) error
	load       func(path string) (version uint64, rules int, err error)
	listTables func() ([]server.TableInfo, error)
	close      func() error
}

func runQueryV1(stdout io.Writer, q queryArgs) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := server.Dial(ctx, q.addr)
	if err != nil {
		return err
	}
	return runQueryOps(stdout, q, queryOps{
		classify:   client.Classify,
		addRule:    client.AddRule,
		deleteRule: client.DeleteRule,
		save:       client.SaveArtifact,
		load:       client.LoadArtifact,
		close:      client.Close,
	})
}

func runQueryV2(stdout io.Writer, q queryArgs) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := server.DialV2(ctx, q.addr)
	if err != nil {
		return err
	}
	if q.table != "" {
		id, err := client.ResolveTable(q.table)
		if err != nil {
			client.Close()
			return err
		}
		client.UseTable(id)
	}
	return runQueryOps(stdout, q, queryOps{
		classify: client.Classify,
		addRule: func(pos int, line string) (int, uint64, error) {
			// v2 carries rules in binary; parse the ClassBench line here.
			r, err := rule.ParseClassBenchLine(strings.TrimSpace(line))
			if err != nil {
				return 0, 0, err
			}
			return client.AddRule(pos, r)
		},
		deleteRule: client.DeleteRule,
		save:       client.SaveArtifact,
		load:       client.LoadArtifact,
		listTables: client.ListTables,
		close:      client.Close,
	})
}

// runQueryOps performs the one requested action through the connected
// client.
func runQueryOps(stdout io.Writer, q queryArgs, ops queryOps) error {
	defer ops.close()
	switch {
	case q.listTables:
		tables, err := ops.listTables()
		if err != nil {
			return err
		}
		for _, t := range tables {
			def := ""
			if t.Default {
				def = " (default)"
			}
			fmt.Fprintf(stdout, "table %q id=%d%s\n", t.Name, t.ID, def)
		}
		return nil
	case q.addRule != "":
		id, version, err := ops.addRule(q.pos, q.addRule)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "added rule id=%d at position %d (version %d)\n", id, q.pos, version)
		return nil
	case q.delID >= 0:
		version, err := ops.deleteRule(q.delID)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "deleted rule id=%d (version %d)\n", q.delID, version)
		return nil
	case q.savePath != "":
		if err := ops.save(q.savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "server saved artifact to %s\n", q.savePath)
		return nil
	case q.loadPath != "":
		version, rules, err := ops.load(q.loadPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "server loaded artifact %s (version %d, %d rules)\n", q.loadPath, version, rules)
		return nil
	case q.packet != "":
		key, err := server.ParseRequest(q.packet)
		if err != nil {
			return err
		}
		id, priority, ok, err := ops.classify(key)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Fprintln(stdout, "no-match")
			return nil
		}
		fmt.Fprintf(stdout, "match rule id=%d priority=%d\n", id, priority)
		return nil
	default:
		return fmt.Errorf("-query needs one of -packet, -add, -del, -save, -load or -list-tables")
	}
}

// openIngestSource builds the selected packet source: a pcap replay or an
// AF_PACKET live capture.
func openIngestSource(pcapPath string, rate float64, capture string) (iface.Source, string, error) {
	if pcapPath != "" {
		src, err := iface.OpenPcap(pcapPath, iface.PcapConfig{Rate: rate})
		if err != nil {
			return nil, "", err
		}
		return src, fmt.Sprintf("replay of %s", pcapPath), nil
	}
	src, err := iface.OpenAFPacket(capture, iface.AFPacketConfig{})
	if err != nil {
		return nil, "", err
	}
	return src, fmt.Sprintf("live capture on %s", capture), nil
}

// ingestBatch is the span size of one ReadBatch/ClassifyBatch round in
// ingestion mode.
const ingestBatch = 512

// runIngest pumps packets from src through the classifier until the source
// is exhausted (pcap EOF) or a signal arrives (live capture, or an
// interrupted replay), optionally mirroring every ingested packet into a
// pcap fixture.
func runIngest(stdout io.Writer, src iface.Source, label string, cls server.Classifier, pcapOut string, sig <-chan os.Signal) error {
	defer src.Close()
	batcher, ok := cls.(server.BatchClassifier)
	if !ok {
		return fmt.Errorf("ingest: serving surface does not support batch classification")
	}

	var pw *iface.PcapWriter
	if pcapOut != "" {
		f, err := os.Create(pcapOut)
		if err != nil {
			return err
		}
		defer f.Close()
		pw, err = iface.NewPcapWriter(f)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "classifyd: classifying %s\n", label)
	ps := make([]rule.Packet, ingestBatch)
	out := make([]engine.Result, ingestBatch)
	var total, matches uint64
	outTS := uint64(time.Second)
	start := time.Now()
loop:
	for {
		select {
		case <-sig:
			fmt.Fprintln(stdout, "classifyd: signal received, stopping ingestion")
			break loop
		default:
		}
		n, err := src.ReadBatch(ps)
		if n > 0 {
			batcher.ClassifyBatch(ps[:n], out[:n])
			for i := 0; i < n; i++ {
				if out[i].OK {
					matches++
				}
			}
			if pw != nil {
				for i := 0; i < n; i++ {
					if werr := pw.WritePacket(outTS, ps[i]); werr != nil {
						return werr
					}
					outTS += uint64(iface.TraceInterval)
				}
			}
			total += uint64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	if pw != nil {
		if err := pw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "classifyd: wrote %d packets to %s\n", total, pcapOut)
	}
	var skipped uint64
	if st, ok := src.(interface{ Stats() iface.SourceStats }); ok {
		skipped = st.Stats().Skipped
	}
	rate := float64(total) / elapsed.Seconds()
	fmt.Fprintf(stdout, "classifyd: ingested %d packets (%d matches, %d skipped frames) in %v (%.0f pkt/s)\n",
		total, matches, skipped, elapsed.Round(time.Millisecond), rate)
	return nil
}

func loadClassifier(path, family string, size int, seed int64) (*rule.Set, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rule.ParseClassBench(f)
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, size, seed), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classifyd:", err)
	os.Exit(1)
}
