// Command classifyd serves a packet classifier over TCP using the line
// protocol of internal/server, or queries a running server. The served
// classifier is an engine.Engine, so any registered backend is available by
// name, batch requests are sharded across workers, and rules can be added
// and removed live (RCU snapshot swaps — readers are never blocked).
//
// Serve a HiCuts tree built from a generated firewall classifier:
//
//	classifyd -family fw1 -size 1000 -algo hicuts -listen 127.0.0.1:9099
//
// Query it (IPs may be dotted quads or decimal):
//
//	classifyd -query 127.0.0.1:9099 -packet "10.0.0.1 192.168.1.1 1234 80 6"
//
// Update it live (ClassBench rule format; pos 0 = top priority):
//
//	classifyd -query 127.0.0.1:9099 -add "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF" -pos 0
//	classifyd -query 127.0.0.1:9099 -del 17
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "classifier file in ClassBench format")
		family    = flag.String("family", "acl1", "ClassBench family to generate when -rules is not given")
		size      = flag.Int("size", 1000, "classifier size when generating")
		seed      = flag.Int64("seed", 1, "random seed")
		algo      = flag.String("algo", "hicuts", "backend name (see internal/engine), or 'list'")
		timesteps = flag.Int("timesteps", 20000, "NeuroCuts training budget (neurocuts only)")
		binth     = flag.Int("binth", 16, "leaf threshold for tree backends")
		shards    = flag.Int("shards", 0, "batch lookup shards (0 = GOMAXPROCS)")
		listen    = flag.String("listen", "127.0.0.1:9099", "address to serve on")
		query     = flag.String("query", "", "query a running server at this address instead of serving")
		packetStr = flag.String("packet", "", "packet to query: \"src dst sport dport proto\"")
		addRule   = flag.String("add", "", "ClassBench rule line to insert live (with -query)")
		pos       = flag.Int("pos", 0, "priority position for -add (0 = top)")
		delID     = flag.Int("del", -1, "rule ID to delete live (with -query)")
	)
	flag.Parse()

	if strings.ToLower(*algo) == "list" {
		fmt.Println("registered backends:", strings.Join(engine.Backends(), ", "))
		return
	}

	if *query != "" {
		if err := runQuery(*query, *packetStr, *addRule, *pos, *delID); err != nil {
			fatal(err)
		}
		return
	}

	set, err := loadClassifier(*rulesPath, *family, *size, *seed)
	if err != nil {
		fatal(err)
	}
	eng, err := engine.NewEngine(strings.ToLower(*algo), set, engine.Options{
		Binth:     *binth,
		Timesteps: *timesteps,
		Seed:      *seed,
		Shards:    *shards,
	})
	if err != nil {
		fatal(err)
	}

	srv := server.New(eng)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("classifyd: serving %s engine (%d rules, %s) on %s\n",
		engine.DisplayName(eng.Backend()), set.Len(), *family, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("classifyd: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("classifyd: served %d requests (%d matches, %d parse failures), final rule-set version %d\n",
		st.Requests, st.Matches, st.ParseFails, eng.Version())
}

func runQuery(addr, packetStr, addRule string, pos, delID int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := server.Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer client.Close()

	switch {
	case addRule != "":
		id, version, err := client.AddRule(pos, addRule)
		if err != nil {
			return err
		}
		fmt.Printf("added rule id=%d at position %d (version %d)\n", id, pos, version)
		return nil
	case delID >= 0:
		version, err := client.DeleteRule(delID)
		if err != nil {
			return err
		}
		fmt.Printf("deleted rule id=%d (version %d)\n", delID, version)
		return nil
	case packetStr != "":
		key, err := server.ParseRequest(packetStr)
		if err != nil {
			return err
		}
		id, priority, ok, err := client.Classify(key)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("no-match")
			return nil
		}
		fmt.Printf("match rule id=%d priority=%d\n", id, priority)
		return nil
	default:
		return fmt.Errorf("-query needs one of -packet, -add or -del")
	}
}

func loadClassifier(path, family string, size int, seed int64) (*rule.Set, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rule.ParseClassBench(f)
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, size, seed), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classifyd:", err)
	os.Exit(1)
}
