package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"neurocuts/internal/admin"
)

// startDaemonWithAdmin starts the daemon like startDaemon and also captures
// the bound admin address.
func startDaemonWithAdmin(t *testing.T, args []string) (wire, adminAddr net.Addr, sig chan os.Signal, errCh <-chan error, out *syncBuffer) {
	t.Helper()
	adminCh := make(chan net.Addr, 1)
	onAdminListen = func(a net.Addr) { adminCh <- a }
	t.Cleanup(func() { onAdminListen = nil })
	wire, sig, errCh, out = startDaemon(t, args)
	select {
	case adminAddr = <-adminCh:
	case <-time.After(30 * time.Second):
		t.Fatal("admin plane did not start listening within 30s")
	}
	return wire, adminAddr, sig, errCh, out
}

func adminGet(t *testing.T, addr net.Addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr.String() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminPlaneEndToEnd drives a real daemon with -admin: probes must
// answer, /metrics must lint and reflect wire traffic, and shutdown must
// stop the admin listener along with the daemon.
func TestAdminPlaneEndToEnd(t *testing.T) {
	addr, adminAddr, sig, errCh, out := startDaemonWithAdmin(t, []string{
		"-family", "acl1", "-size", "200", "-algo", "linear", "-online",
		"-listen", "127.0.0.1:0", "-admin", "127.0.0.1:0",
	})

	if code, body := adminGet(t, adminAddr, "/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := adminGet(t, adminAddr, "/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ready" {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	// Drive traffic over the classification wire, then scrape: the admin
	// plane must see both the engine counters and the server counters move.
	client := dialDaemon(t, addr)
	if _, _, _, err := client.Classify(parsePacket(t, "10.0.0.1 192.168.1.1 1234 80 6")); err != nil {
		t.Fatal(err)
	}
	id, _, err := client.AddRule(0, "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.DeleteRule(id); err != nil {
		t.Fatal(err)
	}

	code, body := adminGet(t, adminAddr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := admin.LintMetrics([]byte(body)); err != nil {
		t.Fatalf("live /metrics fails the exposition-format lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		`neurocuts_engine_rules{table="default"} 200`,
		`neurocuts_engine_lookups_total{table="default"} 1`,
		`neurocuts_engine_updates_total{table="default"} 2`,
		`neurocuts_updater_enabled{table="default"} 1`,
		`neurocuts_server_requests_total 3`,
		`neurocuts_server_update_requests_total 2`,
		`neurocuts_server_active_connections 1`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = adminGet(t, adminAddr, "/tables")
	if code != http.StatusOK || !strings.Contains(body, `"name": "default"`) {
		t.Fatalf("/tables = %d %q", code, body)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if _, err := http.Get("http://" + adminAddr.String() + "/healthz"); err == nil {
		t.Fatal("admin listener still accepting after shutdown")
	}
	if !strings.Contains(out.String(), "admin plane on http://") {
		t.Fatalf("daemon did not announce the admin plane:\n%s", out.String())
	}
}

// TestTelemetryEndToEnd drives a real daemon with -admin and
// -slow-threshold 0 (capture every lookup): after wire traffic, /metrics
// must stay promlint-clean while exposing the native latency histogram
// families with real counts, and /debug/slow must serve a well-formed
// flight-recorder dump.
func TestTelemetryEndToEnd(t *testing.T) {
	addr, adminAddr, sig, errCh, out := startDaemonWithAdmin(t, []string{
		"-family", "acl1", "-size", "200", "-algo", "tss", "-online",
		"-listen", "127.0.0.1:0", "-admin", "127.0.0.1:0",
		"-slow-threshold", "0",
	})
	defer func() {
		sig <- syscall.SIGTERM
		if err := <-errCh; err != nil {
			t.Errorf("daemon exit: %v\noutput:\n%s", err, out.String())
		}
	}()

	client := dialDaemon(t, addr)
	for i := 0; i < 8; i++ {
		if _, _, _, err := client.Classify(parsePacket(t, "10.0.0.1 192.168.1.1 1234 80 6")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := client.AddRule(0, "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF"); err != nil {
		t.Fatal(err)
	}

	code, body := adminGet(t, adminAddr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := admin.LintMetrics([]byte(body)); err != nil {
		t.Fatalf("telemetry /metrics fails the exposition-format lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE neurocuts_lookup_latency_seconds histogram",
		"# TYPE neurocuts_update_latency_seconds histogram",
		"# TYPE neurocuts_dataplane_batch_latency_seconds histogram",
		"# TYPE neurocuts_server_request_latency_seconds histogram",
		`neurocuts_lookup_latency_seconds_count{path="single"} 8`,
		`neurocuts_update_latency_seconds_count{op="insert"} 1`,
		`neurocuts_server_request_latency_seconds_count{proto="v1"} 9`,
		`neurocuts_lookup_latency_seconds_bucket{path="single",le="+Inf"} 8`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = adminGet(t, adminAddr, "/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", code)
	}
	var dump struct {
		ThresholdNanos int64 `json:"threshold_nanos"`
		Entries        []struct {
			LatencyNanos    int64  `json:"latency_nanos"`
			Table           string `json:"table"`
			Backend         string `json:"backend"`
			Path            string `json:"path"`
			WorstCaseVisits int64  `json:"worst_case_visits"`
			DepthBucket     int    `json:"depth_bucket"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v\n%s", err, body)
	}
	if dump.ThresholdNanos != 0 {
		t.Errorf("threshold_nanos = %d, want 0", dump.ThresholdNanos)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("/debug/slow captured nothing at threshold 0")
	}
	for i, e := range dump.Entries {
		if e.Table != "default" || e.Backend != "tss" {
			t.Errorf("entry %d: table=%q backend=%q, want default/tss", i, e.Table, e.Backend)
		}
		if e.Path != "single" {
			t.Errorf("entry %d: path=%q, want single (v1 classify)", i, e.Path)
		}
		if e.WorstCaseVisits <= 0 || e.DepthBucket <= 0 {
			t.Errorf("entry %d: visits=%d depth_bucket=%d, want positive", i, e.WorstCaseVisits, e.DepthBucket)
		}
		if i > 0 && e.LatencyNanos > dump.Entries[i-1].LatencyNanos {
			t.Errorf("entries not sorted worst-first at %d", i)
		}
	}
}

// TestAdminPlaneTablesMode: the multi-table daemon must expose per-table
// samples and the table listing over the same admin flag.
func TestAdminPlaneTablesMode(t *testing.T) {
	_, adminAddr, sig, errCh, _ := startDaemonWithAdmin(t, []string{
		"-tables", "acl=backend:linear,family:acl1,size:100;fw=backend:linear,family:fw1,size:50",
		"-listen", "127.0.0.1:0", "-admin", "127.0.0.1:0",
	})
	defer func() {
		sig <- syscall.SIGTERM
		<-errCh
	}()

	if code, _ := adminGet(t, adminAddr, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d", code)
	}
	code, body := adminGet(t, adminAddr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := admin.LintMetrics([]byte(body)); err != nil {
		t.Fatalf("tables-mode /metrics fails lint: %v", err)
	}
	for _, want := range []string{
		"neurocuts_tables 2",
		"neurocuts_tables_retired 0",
		`neurocuts_engine_rules{table="acl"} 100`,
		`neurocuts_engine_rules{table="fw"} 50`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
	code, body = adminGet(t, adminAddr, "/tables")
	if code != http.StatusOK || !strings.Contains(body, `"name": "acl"`) || !strings.Contains(body, `"name": "fw"`) {
		t.Fatalf("/tables = %d %q", code, body)
	}
}
