package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

// syncBuffer makes run's stdout safe to read while the daemon goroutine
// still writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon runs the classifyd body in a goroutine and returns the bound
// address, the signal channel that stops it, and a channel with its return
// value.
func startDaemon(t *testing.T, args []string) (net.Addr, chan os.Signal, <-chan error, *syncBuffer) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	sig := make(chan os.Signal, 1)
	errCh := make(chan error, 1)
	out := &syncBuffer{}
	go func() { errCh <- run(args, sig, out) }()

	select {
	case addr := <-addrCh:
		return addr, sig, errCh, out
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v\noutput:\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not start listening within 30s")
	}
	return nil, nil, nil, nil
}

func dialDaemon(t *testing.T, addr net.Addr) *server.Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := server.Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestGracefulShutdown: SIGTERM must drain in-flight work and return nil
// (exit 0) even while a client stays connected and idle.
func TestGracefulShutdown(t *testing.T) {
	addr, sig, errCh, out := startDaemon(t, []string{
		"-family", "acl1", "-size", "150", "-algo", "hicuts", "-listen", "127.0.0.1:0",
	})
	client := dialDaemon(t, addr)

	// Serve a batch fully, then leave the connection open and idle.
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 150, 1)
	var packets []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 500, 3) {
		packets = append(packets, e.Key)
	}
	results, err := client.ClassifyBatch(packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(packets) {
		t.Fatalf("batch answered %d/%d packets", len(results), len(packets))
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited non-cleanly: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s of SIGTERM\noutput:\n%s", out.String())
	}
}

// TestArtifactWarmStart is the acceptance test for `classifyd -artifact`:
// the artifact's backend name is deliberately one that is NOT in the engine
// registry, so if any backend build or train path were invoked the daemon
// could not start at all — serving the first lookup correctly proves the
// warm start runs build-free.
func TestArtifactWarmStart(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 4)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := compiled.Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.ncaf")
	meta := compiled.Metadata{Backend: "warmstart-unregistered-backend", Rules: set.Len(), Binth: 16}
	if err := compiled.SaveFile(path, cc, meta); err != nil {
		t.Fatal(err)
	}

	addr, sig, errCh, out := startDaemon(t, []string{
		"-artifact", path, "-listen", "127.0.0.1:0",
	})
	client := dialDaemon(t, addr)

	// First lookups come straight from the artifact.
	mismatches := 0
	for _, e := range classbench.GenerateTrace(set, 500, 8) {
		want := set.MatchIndex(e.Key)
		_, prio, ok, err := client.Classify(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		got := -1
		if ok {
			got = prio
		}
		if got != want {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d warm-start lookups diverge from linear search", mismatches)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited non-cleanly: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s of SIGTERM")
	}
}

// TestDataplaneKillUnderLoad is the shutdown-ordering regression test at
// the daemon level: with the run-to-completion dataplane serving (-cores),
// SIGTERM arrives while clients are streaming batches. The daemon must
// drain — every batch answered before the connection drops is complete and
// correct (loops drain their rings before the engine snapshot is torn
// down) — and exit cleanly with nil.
func TestDataplaneKillUnderLoad(t *testing.T) {
	addr, sig, errCh, out := startDaemon(t, []string{
		"-family", "acl1", "-size", "200", "-algo", "tss",
		"-cores", "2", "-flow-cache", "4096", "-listen", "127.0.0.1:0",
	})
	if !strings.Contains(out.String(), "run-to-completion dataplane enabled") {
		t.Fatalf("daemon did not report the dataplane path:\n%s", out.String())
	}

	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 1)
	var packets []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 256, 3) {
		packets = append(packets, e.Key)
	}
	// Reference answers from the live daemon before the storm: rules do not
	// change during this test, so every later batch must match exactly.
	refClient := dialDaemon(t, addr)
	want, err := refClient.ClassifyBatch(packets)
	if err != nil {
		t.Fatal(err)
	}

	const streamers = 3
	clients := make([]*server.Client, streamers)
	for i := range clients {
		clients[i] = dialDaemon(t, addr)
	}
	var wg sync.WaitGroup
	var batches atomic.Int64
	for _, client := range clients {
		wg.Add(1)
		go func(c *server.Client) {
			defer wg.Done()
			for {
				res, err := c.ClassifyBatch(packets)
				if err != nil {
					// The connection dropped mid-shutdown; batches answered
					// up to here were verified complete.
					return
				}
				if len(res) != len(want) {
					t.Errorf("in-flight batch truncated: %d/%d results", len(res), len(want))
					return
				}
				for i := range res {
					if res[i] != want[i] {
						t.Errorf("in-flight batch wrong at packet %d: %+v want %+v", i, res[i], want[i])
						return
					}
				}
				batches.Add(1)
			}
		}(client)
	}

	// Let the streamers get going, then pull the rug mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for batches.Load() < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("streamers completed only %d batches in 10s", batches.Load())
		}
		time.Sleep(time.Millisecond)
	}
	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited non-cleanly under load: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down within 10s of SIGTERM under load\noutput:\n%s", out.String())
	}
	wg.Wait()
}

// TestJournalKillRestart is the daemon-level recovery acceptance test:
// serve an artifact with -journal auto, apply live updates through the
// protocol, stop the daemon (via its signal path — nothing rewrites the
// artifact, so recovery must come from the journal alone), restart it on
// the same artifact+journal pair, and verify every acknowledged update is
// live again. True abrupt-death recovery (no Close, torn tails) is covered
// by TestJournalCrashRecovery and the journal torn-tail tests at the
// engine/updater level.
func TestJournalKillRestart(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 4)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := compiled.Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "policy.ncaf")
	meta := compiled.Metadata{Backend: "hicuts", Rules: set.Len(), Binth: 16}
	if err := compiled.SaveFile(path, cc, meta); err != nil {
		t.Fatal(err)
	}

	addr, sig, errCh, out := startDaemon(t, []string{
		"-artifact", path, "-journal", "auto", "-compact-threshold", "-1", "-listen", "127.0.0.1:0",
	})
	client := dialDaemon(t, addr)

	// A top-priority wildcard-ish rule added live: acknowledged means
	// journaled.
	id, _, err := client.AddRule(0, "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.DeleteRule(set.Rule(5).ID); err != nil {
		t.Fatal(err)
	}
	// "Kill": stop the daemon abruptly via its signal path but, unlike a
	// graceful checkpoint, nothing rewrites the artifact — recovery must
	// come from the journal alone.
	sig <- syscall.SIGTERM
	select {
	case <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not exit\noutput:\n%s", out.String())
	}

	addr2, sig2, errCh2, out2 := startDaemon(t, []string{
		"-artifact", path, "-journal", "auto", "-compact-threshold", "-1", "-listen", "127.0.0.1:0",
	})
	if !strings.Contains(out2.String(), "2 records replayed") {
		t.Fatalf("restart did not replay the journal:\n%s", out2.String())
	}
	client2 := dialDaemon(t, addr2)
	p, err := server.ParseRequest("10.9.8.7 1.2.3.4 4321 80 6")
	if err != nil {
		t.Fatal(err)
	}
	gotID, _, ok, err := client2.Classify(p)
	if err != nil || !ok || gotID != id {
		t.Fatalf("replayed rule not served after restart: id=%d ok=%v err=%v want id=%d", gotID, ok, err, id)
	}
	sig2 <- syscall.SIGTERM
	select {
	case err := <-errCh2:
		if err != nil {
			t.Fatalf("restarted daemon exited non-cleanly: %v\noutput:\n%s", err, out2.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("restarted daemon did not shut down")
	}
}
