package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"neurocuts/internal/admin"
	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
	"neurocuts/internal/telemetry"
)

// tableDefaults carries the daemon-level flags a table spec can override.
type tableDefaults struct {
	binth     int
	timesteps int
	seed      int64
	shards    int
	compactAt int
	// tel is the process-wide telemetry instance (nil when telemetry is
	// off). Every table's engine records into it, each under its own table
	// label in the flight recorder.
	tel *telemetry.Telemetry
}

// tableSpec is one parsed table description from the -tables flag.
type tableSpec struct {
	name string
	kv   map[string]string
}

// parseTableSpecs parses the -tables flag:
//
//	name=key:val,key:val;name2=key:val,...
//
// Tables are separated by ';', settings within a table by ',', and each
// setting is key:val. Keys: backend, family, size, rules (path), artifact,
// journal ('auto' co-locates with the table's artifact), online (true),
// binth, seed. The first table becomes the default (the target of v1
// requests).
func parseTableSpecs(spec string) ([]tableSpec, error) {
	var specs []tableSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, settings, found := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !found || name == "" {
			return nil, fmt.Errorf("table spec %q: want name=key:val,...", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("table %q specified twice", name)
		}
		seen[name] = true
		kv := map[string]string{}
		for _, setting := range strings.Split(settings, ",") {
			setting = strings.TrimSpace(setting)
			if setting == "" {
				continue
			}
			key, val, found := strings.Cut(setting, ":")
			if !found {
				return nil, fmt.Errorf("table %q: setting %q: want key:val", name, setting)
			}
			key = strings.ToLower(strings.TrimSpace(key))
			switch key {
			case "backend", "family", "size", "rules", "artifact", "journal", "online", "binth", "seed":
			default:
				return nil, fmt.Errorf("table %q: unknown setting %q", name, key)
			}
			kv[key] = strings.TrimSpace(val)
		}
		specs = append(specs, tableSpec{name: name, kv: kv})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-tables %q describes no tables", spec)
	}
	return specs, nil
}

// specInt reads an integer setting with a default.
func specInt(kv map[string]string, key string, def int) (int, error) {
	s, ok := kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("setting %s: %v", key, err)
	}
	return n, nil
}

// buildTableEngine builds one table's engine from its spec.
func buildTableEngine(spec tableSpec, d tableDefaults) (*engine.Engine, error) {
	kv := spec.kv
	binth, err := specInt(kv, "binth", d.binth)
	if err != nil {
		return nil, err
	}
	size, err := specInt(kv, "size", 1000)
	if err != nil {
		return nil, err
	}
	seed := d.seed
	if s, ok := kv["seed"]; ok {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("setting seed: %v", err)
		}
		seed = v
	}
	journalPath := kv["journal"]
	if journalPath == "auto" {
		if kv["artifact"] == "" {
			return nil, fmt.Errorf("journal:auto needs artifact: to co-locate with")
		}
		journalPath = engine.JournalPathFor(kv["artifact"])
	}
	opts := engine.Options{
		Binth:            binth,
		Timesteps:        d.timesteps,
		Seed:             seed,
		Shards:           d.shards,
		OnlineUpdates:    kv["online"] == "true" || kv["online"] == "1",
		JournalPath:      journalPath,
		CompactThreshold: d.compactAt,
		Telemetry:        d.tel,
		TelemetryTable:   spec.name,
	}
	if artifact := kv["artifact"]; artifact != "" {
		return engine.NewEngineFromArtifact(artifact, opts)
	}
	var set *rule.Set
	if path := kv["rules"]; path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		set, err = rule.ParseClassBench(f)
		if err != nil {
			return nil, err
		}
	} else {
		family := kv["family"]
		if family == "" {
			family = "acl1"
		}
		fam, err := classbench.FamilyByName(family)
		if err != nil {
			return nil, err
		}
		set = classbench.Generate(fam, size, seed)
	}
	backend := kv["backend"]
	if backend == "" {
		backend = "hicuts"
	}
	return engine.NewEngine(strings.ToLower(backend), set, opts)
}

// runTables serves a multi-table daemon described by the -tables flag and
// blocks until a signal arrives, then drains and closes every engine.
func runTables(stdout io.Writer, spec string, d tableDefaults, listen, adminAddr string, drain time.Duration, sig <-chan os.Signal) error {
	specs, err := parseTableSpecs(spec)
	if err != nil {
		return err
	}
	tabs := engine.NewTables()
	defer tabs.CloseAll()
	for _, s := range specs {
		eng, err := buildTableEngine(s, d)
		if err != nil {
			return fmt.Errorf("table %q: %w", s.name, err)
		}
		tab, err := tabs.Create(s.name, eng)
		if err != nil {
			eng.Close()
			return err
		}
		fmt.Fprintf(stdout, "classifyd: table %q (id %d): %s engine, %d rules\n",
			tab.Name, tab.ID, engine.DisplayName(eng.Backend()), eng.Rules().Len())
	}

	srv := server.NewTables(tabs)
	srv.Telemetry = d.tel
	// Tables created live over the v2 protocol share the process telemetry;
	// their flight-recorder entries carry the instance's default table label.
	srv.TableCreateOptions = engine.Options{
		Binth: d.binth, Seed: d.seed, Shards: d.shards, CompactThreshold: d.compactAt,
		Telemetry: d.tel,
	}
	addr, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	def, _ := tabs.Default()
	fmt.Fprintf(stdout, "classifyd: serving %d tables on %s (default table %q; v1 text and v2 binary protocols)\n",
		tabs.Len(), addr, def.Name)
	stopAdmin, err := startAdmin(stdout, adminAddr, admin.Options{Tables: tabs, Server: srv, Telemetry: d.tel})
	if err != nil {
		srv.Shutdown(context.Background())
		return err
	}
	if onListen != nil {
		onListen(addr)
	}

	<-sig
	fmt.Fprintln(stdout, "classifyd: shutting down, draining in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Admin first, for the same scrape-consistency reason as the
	// single-engine path.
	stopAdmin(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stdout, "classifyd: drain timeout expired, closed remaining connections (%v)\n", err)
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "classifyd: served %d requests (%d matches, %d parse failures) across %d tables\n",
		st.Requests, st.Matches, st.ParseFails, tabs.Len())
	return nil
}
