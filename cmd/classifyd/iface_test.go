package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/iface"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

// writeTestPcap renders a rule-biased trace for the given family/size/seed
// as a pcap file and returns its path plus the entries.
func writeTestPcap(t *testing.T, family string, size, packets int) (string, []packet.TraceEntry) {
	t.Helper()
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, size, 1)
	entries := classbench.GenerateTrace(set, packets, 7)
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := iface.WriteTracePcap(f, entries); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, entries
}

// TestPcapReplayMode drives the daemon body end to end in replay mode: the
// same flags a user passes, a real pcap on disk, and the summary line must
// account for every packet.
func TestPcapReplayMode(t *testing.T) {
	path, entries := writeTestPcap(t, "acl1", 200, 700)
	out := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	err := run([]string{"-family", "acl1", "-size", "200", "-algo", "hicuts", "-pcap", path}, sig, out)
	if err != nil {
		t.Fatalf("replay run: %v\noutput:\n%s", err, out.String())
	}
	if s := out.String(); !strings.Contains(s, "ingested 700 packets") {
		t.Fatalf("summary does not account for all %d packets:\n%s", len(entries), s)
	}
}

// TestPcapReplayThroughDataplane replays through the run-to-completion
// dataplane path (-cores), which serves the batch via the per-core loops.
func TestPcapReplayThroughDataplane(t *testing.T) {
	path, _ := writeTestPcap(t, "fw1", 100, 300)
	out := &syncBuffer{}
	err := run([]string{"-family", "fw1", "-size", "100", "-algo", "tss", "-cores", "2", "-pcap", path}, make(chan os.Signal, 1), out)
	if err != nil {
		t.Fatalf("dataplane replay: %v\noutput:\n%s", err, out.String())
	}
	if s := out.String(); !strings.Contains(s, "ingested 300 packets") {
		t.Fatalf("summary:\n%s", s)
	}
}

// TestPcapOutFixture pins capture-to-fixture: replaying with -pcap-out
// produces a pcap whose decode yields the same 5-tuples as the input.
func TestPcapOutFixture(t *testing.T) {
	path, entries := writeTestPcap(t, "acl1", 100, 250)
	fixture := filepath.Join(t.TempDir(), "fixture.pcap")
	out := &syncBuffer{}
	err := run([]string{"-family", "acl1", "-size", "100", "-pcap", path, "-pcap-out", fixture}, make(chan os.Signal, 1), out)
	if err != nil {
		t.Fatalf("replay with -pcap-out: %v\noutput:\n%s", err, out.String())
	}
	src, err := iface.OpenPcap(fixture, iface.PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got []rule.Packet
	ps := make([]rule.Packet, 64)
	for {
		n, err := src.ReadBatch(ps)
		got = append(got, ps[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(entries) {
		t.Fatalf("fixture decodes to %d packets, want %d", len(got), len(entries))
	}
	for i := range got {
		if want := iface.CanonicalKey(entries[i].Key); got[i] != want {
			t.Fatalf("fixture packet %d = %+v, want %+v", i, got[i], want)
		}
	}
}

// TestShmServeMode starts the daemon with a shared-memory ring alongside
// TCP and checks that the ring and wire protocol v2 return identical
// results for the same packets.
func TestShmServeMode(t *testing.T) {
	ringPath := filepath.Join(t.TempDir(), "ring")
	addr, sig, errCh, out := startDaemon(t, []string{
		"-family", "acl1", "-size", "300", "-algo", "hicuts",
		"-listen", "127.0.0.1:0", "-shm", ringPath, "-shm-slots", "256",
	})

	shm, err := iface.OpenShmClient(ringPath, iface.ShmClientConfig{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("attach to ring: %v\noutput:\n%s", err, out.String())
	}
	defer shm.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tcp, err := server.DialV2(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 300, 1)
	entries := classbench.GenerateTrace(set, 1000, 9)
	ps := make([]rule.Packet, len(entries))
	for i, e := range entries {
		ps[i] = e.Key
	}
	viaShm, err := shm.ClassifyBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	viaTCP, err := tcp.ClassifyBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		a, b := viaShm[i], viaTCP[i]
		if a.OK != b.OK || a.Rule.ID != b.Rule.ID || a.Rule.Priority != b.Rule.Priority {
			t.Fatalf("packet %d: shm id=%d prio=%d ok=%v, tcp id=%d prio=%d ok=%v",
				i, a.Rule.ID, a.Rule.Priority, a.OK, b.Rule.ID, b.Rule.Priority, b.OK)
		}
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "shared-memory ring on "+ringPath) {
		t.Fatalf("missing ring banner:\n%s", s)
	}
	// The ring file is the server's to remove on shutdown.
	if _, err := os.Stat(ringPath); !os.IsNotExist(err) {
		t.Fatalf("ring file still present after shutdown: %v", err)
	}
	// A detached client now fails cleanly rather than stalling.
	if _, err := shm.ClassifyBatch(ps[:1]); err == nil {
		t.Fatal("classification against a shut-down ring succeeded")
	}
}

// TestIngestFlagValidation pins the flag cross-checks.
func TestIngestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-pcap", "a.pcap", "-capture", "eth0"},
		{"-pcap-out", "out.pcap"},
		{"-tables", "a=family:acl1,size:100", "-shm", "/tmp/ring"},
		{"-tables", "a=family:acl1,size:100", "-pcap", "a.pcap"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, make(chan os.Signal, 1), &buf); err == nil {
			t.Fatalf("run(%v) succeeded, want flag validation error", args)
		}
	}
}

// TestReplayMatchesDirectClassification is the CLI-level differential: the
// replay summary's match count must equal classifying the canonical trace
// keys directly with the same engine configuration.
func TestReplayMatchesDirectClassification(t *testing.T) {
	path, entries := writeTestPcap(t, "ipc1", 150, 800)

	fam, err := classbench.FamilyByName("ipc1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 150, 1)
	eng, err := engine.NewEngine("tss", set, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want := 0
	out := make([]engine.Result, 1)
	for _, e := range entries {
		eng.ClassifyBatch([]rule.Packet{iface.CanonicalKey(e.Key)}, out)
		if out[0].OK {
			want++
		}
	}

	buf := &syncBuffer{}
	err = run([]string{"-family", "ipc1", "-size", "150", "-algo", "tss", "-pcap", path}, make(chan os.Signal, 1), buf)
	if err != nil {
		t.Fatalf("replay: %v\noutput:\n%s", err, buf.String())
	}
	wantLine := fmt.Sprintf("ingested 800 packets (%d matches", want)
	if s := buf.String(); !strings.Contains(s, wantLine) {
		t.Fatalf("summary missing %q:\n%s", wantLine, s)
	}
}
