package main

import (
	"context"
	"strings"
	"syscall"
	"testing"
	"time"

	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

func TestParseTableSpecs(t *testing.T) {
	specs, err := parseTableSpecs("acl=backend:hicuts,family:acl1,size:200; fw=backend:tss,family:fw2,size:100")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].name != "acl" || specs[1].name != "fw" {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].kv["backend"] != "hicuts" || specs[1].kv["size"] != "100" {
		t.Fatalf("kv = %+v", specs)
	}
	for _, bad := range []string{
		"",
		"noequals",
		"a=backend:hicuts;a=backend:tss", // duplicate name
		"a=bogus:1",                      // unknown key
		"a=backend",                      // setting without value
	} {
		if _, err := parseTableSpecs(bad); err == nil {
			t.Errorf("parseTableSpecs(%q) should fail", bad)
		}
	}
}

// TestTablesDaemon boots a two-table daemon, exercises both protocols
// against it — v1 hits the default table, v2 addresses each by name — and
// shuts it down gracefully.
func TestTablesDaemon(t *testing.T) {
	addr, sig, errCh, out := startDaemon(t, []string{
		"-tables", "acl=backend:tss,family:acl1,size:150;fw=backend:linear,family:fw2,size:80",
		"-listen", "127.0.0.1:0",
	})

	// v1: default table (acl).
	v1 := dialDaemon(t, addr)
	if _, _, _, err := v1.Classify(parsePacket(t, "10.0.0.1 192.168.1.1 1234 80 6")); err != nil {
		t.Fatal(err)
	}

	// v2: list tables and classify against the non-default table.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v2, err := server.DialV2(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	tables, err := v2.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || !tables[0].Default {
		t.Fatalf("tables = %+v (want acl default, fw secondary)", tables)
	}
	fwID, err := v2.ResolveTable("fw")
	if err != nil {
		t.Fatal(err)
	}
	v2.UseTable(fwID)
	if _, _, _, err := v2.Classify(parsePacket(t, "10.0.0.1 192.168.1.1 1234 80 6")); err != nil {
		t.Fatal(err)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit\noutput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "serving 2 tables") {
		t.Fatalf("missing tables banner in output:\n%s", out.String())
	}
}

func parsePacket(t *testing.T, s string) rule.Packet {
	t.Helper()
	key, err := server.ParseRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	return key
}
