// Command neurocuts trains a NeuroCuts policy on a packet classifier and
// reports the best decision tree it finds.
//
// The classifier comes either from a ClassBench-format file (-rules) or from
// the built-in generator (-family/-size). Example:
//
//	neurocuts -family fw5 -size 1000 -c 1 -partition none -timesteps 50000
//	neurocuts -rules my.rules -c 0 -scale log -partition efficuts -checkpoint policy.ckpt
//
// With -save-artifact the best tree is compiled into the flat-array serving
// form and written as a versioned artifact, so a later `classify -artifact`
// or `classifyd -artifact` serves it without retraining:
//
//	neurocuts -family acl1 -size 1000 -timesteps 50000 -save-artifact policy.ncaf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/core"
	"neurocuts/internal/env"
	"neurocuts/internal/rule"
)

func main() {
	var (
		rulesPath  = flag.String("rules", "", "classifier file in ClassBench format (overrides -family/-size)")
		family     = flag.String("family", "acl1", "ClassBench family to generate when -rules is not given")
		size       = flag.Int("size", 1000, "classifier size when generating")
		seed       = flag.Int64("seed", 1, "random seed")
		c          = flag.Float64("c", 1.0, "time-space coefficient (1 = time, 0 = space)")
		scale      = flag.String("scale", "linear", "reward scaling: linear or log")
		partition  = flag.String("partition", "none", "top-node partitioning: none, simple or efficuts")
		timesteps  = flag.Int("timesteps", 50000, "total training timesteps")
		batch      = flag.Int("batch", 5000, "timesteps per PPO batch")
		rollout    = flag.Int("rollout", 15000, "max timesteps per rollout before truncation")
		maxDepth   = flag.Int("maxdepth", 100, "max tree depth before truncation")
		binth      = flag.Int("binth", 16, "leaf threshold")
		workers    = flag.Int("workers", 4, "parallel rollout workers")
		hidden     = flag.String("hidden", "64,64", "hidden layer sizes, comma separated")
		checkpoint = flag.String("checkpoint", "", "write the trained policy to this file")
		saveArt    = flag.String("save-artifact", "", "compile the best tree and write it as a classifier artifact")
		quiet      = flag.Bool("quiet", false, "suppress per-iteration progress")
	)
	flag.Parse()

	set, name, err := loadClassifier(*rulesPath, *family, *size, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := core.Scaled(1000)
	cfg.TimeSpaceCoeff = *c
	cfg.Binth = *binth
	cfg.MaxTimesteps = *timesteps
	cfg.BatchTimesteps = *batch
	cfg.MaxTimestepsPerRollout = *rollout
	cfg.MaxDepth = *maxDepth
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.HiddenLayers = parseHidden(*hidden)
	switch strings.ToLower(*scale) {
	case "log":
		cfg.Scale = env.ScaleLog
	case "linear", "x":
		cfg.Scale = env.ScaleLinear
	default:
		fatal(fmt.Errorf("unknown reward scale %q", *scale))
	}
	switch strings.ToLower(*partition) {
	case "none":
		cfg.Partition = env.PartitionNone
	case "simple":
		cfg.Partition = env.PartitionSimple
	case "efficuts":
		cfg.Partition = env.PartitionEffiCuts
	default:
		fatal(fmt.Errorf("unknown partition mode %q", *partition))
	}

	fmt.Printf("training NeuroCuts on %s (%d rules): c=%.2f scale=%s partition=%s budget=%d steps\n",
		name, set.Len(), *c, *scale, *partition, *timesteps)

	trainer := core.NewTrainer(set, cfg)
	start := time.Now()
	history, err := trainer.Train()
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		for _, it := range history {
			fmt.Printf("iter %3d  steps %8d  rollouts %4d  mean return %9.2f  best objective %9.2f  kl %.4f\n",
				it.Iteration, it.Timesteps, it.Rollouts, it.MeanReturn, it.BestObjective, it.PPO.KL)
		}
	}

	best, objective := trainer.BestTree()
	m := best.ComputeMetrics()
	fmt.Printf("training finished in %s: %d trees built, %d timesteps\n",
		time.Since(start).Round(time.Millisecond), trainer.TreesBuilt(), trainer.TotalSteps())
	fmt.Printf("best tree: objective=%.2f time=%d bytes/rule=%.1f nodes=%d depth=%d\n",
		objective, m.ClassificationTime, m.BytesPerRule, m.Nodes, m.MaxDepth)

	if *checkpoint != "" {
		if err := trainer.SaveCheckpoint(*checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("policy checkpoint written to %s\n", *checkpoint)
	}

	if *saveArt != "" {
		cc, err := compiled.Compile(set, best)
		if err != nil {
			fatal(err)
		}
		meta := compiled.Metadata{
			Backend:     "neurocuts",
			Rules:       set.Len(),
			Binth:       *binth,
			Source:      name,
			CreatedUnix: time.Now().Unix(),
		}
		if err := compiled.SaveFile(*saveArt, cc, meta); err != nil {
			fatal(err)
		}
		st := cc.Stats()
		fmt.Printf("compiled artifact written to %s (%d nodes, %d rule refs, %d bytes serve form, schema v%d)\n",
			*saveArt, st.Nodes, st.LeafRuleRefs, st.MemoryBytes, compiled.SchemaVersion)
	}
}

func loadClassifier(path, family string, size int, seed int64) (*rule.Set, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		set, err := rule.ParseClassBench(f)
		if err != nil {
			return nil, "", err
		}
		return set, path, nil
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return nil, "", err
	}
	return classbench.Generate(fam, size, seed), fmt.Sprintf("%s_%d", fam.Name, size), nil
}

func parseHidden(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []int{64, 64}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neurocuts:", err)
	os.Exit(1)
}
