// Command evalbench regenerates the tables and figures of the paper's
// evaluation section using the algorithms in this repository.
//
// Examples:
//
//	evalbench -fig 8 -size 1000 -timesteps 50000     # Figure 8 at 1k scale
//	evalbench -fig all -size 300 -timesteps 2000     # quick pass over everything
//	evalbench -table 1                               # print the hyperparameter table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"neurocuts/internal/bench"
	"neurocuts/internal/engine"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 5, 6, 8, 9, 10, 11, ablation, traffic or all")
		table     = flag.Int("table", 0, "table to print (1)")
		size      = flag.Int("size", 300, "rules per classifier")
		timesteps = flag.Int("timesteps", 2000, "NeuroCuts training budget per classifier")
		batch     = flag.Int("batch", 0, "PPO batch size (default timesteps/5)")
		workers   = flag.Int("workers", 4, "parallel rollout workers")
		seed      = flag.Int64("seed", 1, "random seed")
		families  = flag.String("families", "", "comma-separated family subset (default: all 12)")
		backends  = flag.String("backends", "", "comma-separated engine backend subset for -fig ablation (default: trees+tss+tcam); 'list' prints the registry")
		jsonOut   = flag.String("json", "", "also write results as JSON to this file (the ablation emits a perf-lab report; figures emit their result structs)")
	)
	flag.Parse()

	if *backends == "list" {
		fmt.Println("registered backends:", strings.Join(engine.Backends(), ", "))
		return
	}

	if *table == 1 {
		bench.Table1(os.Stdout)
		if *fig == "" {
			return
		}
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "evalbench: nothing to do; pass -fig or -table (see -h)")
		os.Exit(2)
	}

	opts := bench.Options{
		Size:           *size,
		Seed:           *seed,
		TrainTimesteps: *timesteps,
		BatchTimesteps: *batch,
		Workers:        *workers,
	}
	if opts.BatchTimesteps == 0 {
		opts.BatchTimesteps = maxInt(200, *timesteps/5)
	}
	if *backends != "" {
		for _, b := range strings.Split(*backends, ",") {
			opts.Backends = append(opts.Backends, strings.TrimSpace(strings.ToLower(b)))
		}
	}

	scenarios := bench.DefaultScenarios(*size)
	if *families != "" {
		var filtered []bench.Scenario
		want := map[string]bool{}
		for _, f := range strings.Split(*families, ",") {
			want[strings.TrimSpace(strings.ToLower(f))] = true
		}
		for _, sc := range scenarios {
			if want[sc.Family] {
				filtered = append(filtered, sc)
			}
		}
		scenarios = filtered
	}
	if len(scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "evalbench: no scenarios selected")
		os.Exit(2)
	}

	// jsonResults collects every produced result keyed by figure name; with
	// -json the text tables printed below become one rendering and this
	// file the other, of the same data.
	jsonResults := map[string]any{}

	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("==== %s (size=%d, budget=%d steps/classifier) ====\n", name, *size, *timesteps)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "evalbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %s ----\n\n", name, time.Since(start).Round(time.Second))
	}

	want := strings.ToLower(*fig)
	all := want == "all"
	if all || want == "8" {
		run("Figure 8", func() error {
			res, err := bench.Figure8(scenarios, opts)
			if err != nil {
				return err
			}
			jsonResults["figure8"] = res
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "9" {
		run("Figure 9", func() error {
			res, err := bench.Figure9(scenarios, opts)
			if err != nil {
				return err
			}
			jsonResults["figure9"] = res
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "10" {
		run("Figure 10", func() error {
			res, err := bench.Figure10(scenarios, opts)
			if err != nil {
				return err
			}
			jsonResults["figure10"] = res
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "11" {
		run("Figure 11", func() error {
			res, err := bench.Figure11(scenarios, opts, nil)
			if err != nil {
				return err
			}
			jsonResults["figure11"] = res
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "5" {
		run("Figure 5", func() error {
			res, err := bench.Figure5(bench.Scenario{Family: "fw5", Size: *size, Seed: *seed}, opts)
			if err != nil {
				return err
			}
			jsonResults["figure5"] = res
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "6" {
		run("Figure 6", func() error {
			res, err := bench.Figure6(bench.Scenario{Family: "acl4", Size: *size, Seed: *seed}, opts, 4)
			if err != nil {
				return err
			}
			jsonResults["figure6"] = res
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "ablation" {
		run("Approach ablation (trees vs TSS vs TCAM)", func() error {
			res, err := bench.ApproachAblation(scenarios, opts)
			if err != nil {
				return err
			}
			jsonResults["ablation"] = res.Report
			res.Write(os.Stdout)
			return nil
		})
	}
	if all || want == "traffic" {
		run("Traffic-aware objective ablation", func() error {
			res, err := bench.TrafficAblation(scenarios, opts, 2000)
			if err != nil {
				return err
			}
			jsonResults["traffic"] = res
			res.Write(os.Stdout)
			return nil
		})
	}

	if *jsonOut != "" {
		if len(jsonResults) == 0 {
			fmt.Fprintln(os.Stderr, "evalbench: -json set but no figure produced results")
			os.Exit(1)
		}
		data, err := json.MarshalIndent(jsonResults, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "evalbench: marshal json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "evalbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote JSON results to %s\n", *jsonOut)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
