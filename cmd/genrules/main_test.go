package main

import (
	"io"
	"path/filepath"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/iface"
	"neurocuts/internal/rule"
)

// TestPcapExportRoundTrip pins the -pcapout satellite: a generated trace
// exported as pcap decodes back to the identical 5-tuple sequence (in
// canonical wire form), so a synthetic workload and its pcap rendering are
// interchangeable inputs.
func TestPcapExportRoundTrip(t *testing.T) {
	fam, err := classbench.FamilyByName("fw2")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 4)
	entries := classbench.GenerateTrace(set, 2000, 5)
	path := filepath.Join(t.TempDir(), "trace.pcap")
	if err := writePcap(entries, path); err != nil {
		t.Fatal(err)
	}

	src, err := iface.OpenPcap(path, iface.PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got []rule.Packet
	ps := make([]rule.Packet, 256)
	for {
		n, err := src.ReadBatch(ps)
		got = append(got, ps[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(entries) {
		t.Fatalf("pcap decodes to %d packets, want %d", len(got), len(entries))
	}
	for i := range got {
		if want := iface.CanonicalKey(entries[i].Key); got[i] != want {
			t.Fatalf("packet %d = %+v, want %+v", i, got[i], want)
		}
	}
}
