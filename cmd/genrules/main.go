// Command genrules generates ClassBench-style packet classifiers and header
// traces.
//
// Usage:
//
//	genrules -family acl1 -size 1000 -out acl1_1k.rules -trace 10000 -traceout acl1_1k.trace
//
// The classifier is written in ClassBench filter format and the trace in the
// ClassBench trace format (one packet per line with the ground-truth
// matching rule appended).
//
// With -pcapout the trace is additionally rendered as a classic pcap file —
// each entry becomes a minimal Ethernet/IPv4 frame — so any pcap tool, and
// classifyd's -pcap replay mode, can consume synthetic workloads:
//
//	genrules -family acl1 -size 1000 -trace 10000 -pcapout acl1_1k.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"neurocuts/internal/classbench"
	"neurocuts/internal/iface"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

func main() {
	var (
		family   = flag.String("family", "acl1", "ClassBench family (acl1..acl5, fw1..fw5, ipc1, ipc2)")
		size     = flag.Int("size", 1000, "number of rules to generate")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file for the classifier (default stdout)")
		traceN   = flag.Int("trace", 0, "also generate a header trace with this many packets")
		traceOut = flag.String("traceout", "", "output file for the trace (default stdout after the classifier)")
		pcapOut  = flag.String("pcapout", "", "also render the trace as a pcap capture file at this path (needs -trace)")
		uniform  = flag.Bool("uniform", false, "generate a uniform random trace instead of a rule-biased one")
		list     = flag.Bool("list", false, "list the available families and exit")
	)
	flag.Parse()

	if *list {
		for _, f := range classbench.Families() {
			fmt.Printf("%s\t(%s)\n", f.Name, f.Kind)
		}
		return
	}

	fam, err := classbench.FamilyByName(*family)
	if err != nil {
		fatal(err)
	}
	set := classbench.Generate(fam, *size, *seed)

	if err := writeClassifier(set, *out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d rules for %s (seed %d)\n", set.Len(), fam.Name, *seed)

	if *traceN > 0 {
		var entries []packet.TraceEntry
		if *uniform {
			entries = classbench.UniformTrace(set, *traceN, *seed+1)
		} else {
			entries = classbench.GenerateTrace(set, *traceN, *seed+1)
		}
		if err := writeTrace(entries, *traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %d trace packets\n", len(entries))
		if *pcapOut != "" {
			if err := writePcap(entries, *pcapOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote pcap rendering to %s\n", *pcapOut)
		}
	} else if *pcapOut != "" {
		fatal(fmt.Errorf("-pcapout needs -trace to say how many packets to render"))
	}
}

func writeClassifier(set *rule.Set, path string) error {
	if path == "" {
		return rule.WriteClassBench(os.Stdout, set)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rule.WriteClassBench(f, set)
}

func writeTrace(entries []packet.TraceEntry, path string) error {
	if path == "" {
		return packet.WriteTrace(os.Stdout, entries)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return packet.WriteTrace(f, entries)
}

// writePcap renders the trace as a pcap capture file.
func writePcap(entries []packet.TraceEntry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := iface.WriteTracePcap(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genrules:", err)
	os.Exit(1)
}
