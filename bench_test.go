// Package neurocuts holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation section
// (BenchmarkFigure5 … BenchmarkFigure11, BenchmarkTable1), plus
// micro-benchmarks for the individual building blocks (tree construction per
// algorithm, lookup throughput, policy inference).
//
// The figure benchmarks run the same harness code as cmd/evalbench but at a
// reduced scale so `go test -bench=.` finishes in minutes; pass larger
// scales through cmd/evalbench for full reproductions. EXPERIMENTS.md maps
// each benchmark to the corresponding paper result.
package neurocuts

import (
	"fmt"
	"io"
	"testing"

	"neurocuts/internal/bench"
	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/engine"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
	"neurocuts/internal/tcam"
	"neurocuts/internal/tree"
	"neurocuts/internal/tss"
)

// benchOptions is the scale used by the figure benchmarks.
func benchOptions() bench.Options {
	return bench.Options{
		Size:           200,
		Seed:           1,
		TrainTimesteps: 800,
		BatchTimesteps: 400,
		Workers:        2,
		Binth:          16,
	}
}

// benchScenarios covers one classifier per ClassBench category.
func benchScenarios() []bench.Scenario {
	return []bench.Scenario{
		{Family: "acl1", Size: 200, Seed: 1},
		{Family: "fw1", Size: 200, Seed: 1},
		{Family: "ipc1", Size: 200, Seed: 1},
	}
}

// benchSet generates the classifier used by the micro-benchmarks.
func benchSet(b *testing.B, family string, size int) *rule.Set {
	b.Helper()
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		b.Fatal(err)
	}
	return classbench.Generate(fam, size, 1)
}

// BenchmarkFigure8 regenerates Figure 8 (classification time across
// classifiers for HiCuts, HyperCuts, EffiCuts, CutSplit and NeuroCuts).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure8(benchScenarios(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkFigure9 regenerates Figure 9 (memory footprint, bytes per rule).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure9(benchScenarios(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkFigure10 regenerates Figure 10 (NeuroCuts with the EffiCuts
// partition vs EffiCuts, sorted improvements).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure10(benchScenarios(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkFigure11 regenerates Figure 11 (time-space coefficient sweep).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure11(benchScenarios()[:1], benchOptions(), []float64{0, 0.5, 1})
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkFigure5 regenerates Figure 5 (tree shape while learning fw5).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure5(bench.Scenario{Family: "fw5", Size: 200, Seed: 1}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkFigure6 regenerates Figure 6 (tree variations sampled from one
// stochastic policy on acl4).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure6(bench.Scenario{Family: "acl4", Size: 200, Seed: 1}, benchOptions(), 4)
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkTable1 renders the hyperparameter table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

// BenchmarkApproachAblation runs the decision-tree vs TSS vs TCAM ablation.
func BenchmarkApproachAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.ApproachAblation(benchScenarios(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// BenchmarkTrafficAblation runs the worst-case vs traffic-aware NeuroCuts
// objective ablation.
func BenchmarkTrafficAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.TrafficAblation(benchScenarios()[:1], benchOptions(), 1000)
		if err != nil {
			b.Fatal(err)
		}
		res.Write(io.Discard)
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: per-algorithm tree construction.
// ---------------------------------------------------------------------------

func BenchmarkHiCutsBuild(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hicuts.Build(set, hicuts.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyperCutsBuild(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hypercuts.Build(set, hypercuts.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEffiCutsBuild(b *testing.B) {
	set := benchSet(b, "fw1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := efficuts.Build(set, efficuts.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutSplitBuild(b *testing.B) {
	set := benchSet(b, "fw1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cutsplit.Build(set, cutsplit.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSSBuild(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tss.Build(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCAMBuild(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tcam.Build(set, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupTSS(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	trace := classbench.GenerateTrace(set, 4096, 2)
	c, err := tss.Build(set)
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, c.Classify, trace)
}

// BenchmarkNeuroCutsTrainingIteration measures one small training run
// (collection plus PPO update) end to end.
func BenchmarkNeuroCutsTrainingIteration(b *testing.B) {
	set := benchSet(b, "acl1", 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Scaled(1000)
		cfg.MaxTimesteps = 400
		cfg.BatchTimesteps = 400
		cfg.MaxIterations = 1
		cfg.Workers = 2
		cfg.Seed = int64(i + 1)
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: lookup throughput (packets/op) per algorithm.
// ---------------------------------------------------------------------------

func lookupBench(b *testing.B, classify func(rule.Packet) (rule.Rule, bool), trace []packet.TraceEntry) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := trace[i%len(trace)]
		if _, ok := classify(e.Key); !ok {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkLookupLinear(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	trace := classbench.GenerateTrace(set, 4096, 2)
	lookupBench(b, set.Match, trace)
}

func BenchmarkLookupHiCuts(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	trace := classbench.GenerateTrace(set, 4096, 2)
	t, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, t.Classify, trace)
}

func BenchmarkLookupEffiCuts(b *testing.B) {
	set := benchSet(b, "fw1", 1000)
	trace := classbench.GenerateTrace(set, 4096, 2)
	c, err := efficuts.Build(set, efficuts.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, c.Classify, trace)
}

func BenchmarkLookupCutSplit(b *testing.B) {
	set := benchSet(b, "fw1", 1000)
	trace := classbench.GenerateTrace(set, 4096, 2)
	c, err := cutsplit.Build(set, cutsplit.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, c.Classify, trace)
}

func BenchmarkLookupNeuroCuts(b *testing.B) {
	set := benchSet(b, "acl1", 500)
	trace := classbench.GenerateTrace(set, 4096, 2)
	cfg := core.Scaled(1000)
	cfg.MaxTimesteps = 1500
	cfg.BatchTimesteps = 500
	cfg.Workers = 2
	trainer := core.NewTrainer(set, cfg)
	if _, err := trainer.Train(); err != nil {
		b.Fatal(err)
	}
	best, _ := trainer.BestTree()
	lookupBench(b, best.Classify, trace)
}

// ---------------------------------------------------------------------------
// Engine benchmarks: sharded batch lookup and parallel single-packet lookup
// through the unified classification engine.
// ---------------------------------------------------------------------------

// engineBenchSetup builds a HiCuts engine and a packet trace for the engine
// benchmarks.
func engineBenchSetup(b *testing.B, shards int) (*engine.Engine, []rule.Packet) {
	b.Helper()
	set := benchSet(b, "acl1", 1000)
	eng, err := engine.NewEngine("hicuts", set, engine.Options{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	trace := classbench.GenerateTrace(set, 8192, 2)
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}
	return eng, keys
}

// BenchmarkEngineBatch sweeps batch size x shard count. Shards=1 with
// batch=1 is the single-packet loop baseline; larger batches with more
// shards show the sharded fan-out winning on multi-core machines (the
// per-op metric is packets, so lower ns/op is better throughput).
func BenchmarkEngineBatch(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 64, 512, 4096} {
			b.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(b *testing.B) {
				eng, keys := engineBenchSetup(b, shards)
				ps := make([]rule.Packet, batch)
				for i := range ps {
					ps[i] = keys[i%len(keys)]
				}
				out := make([]engine.Result, batch)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.ClassifyBatch(ps, out)
				}
				b.StopTimer()
				// Report per-packet throughput so rows are comparable
				// across batch sizes.
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/packet")
			})
		}
	}
}

// BenchmarkEngineFlowCache measures the sharded flow cache on Zipf-skewed
// traffic against the uncached engine on the same trace. The skewed rows
// should show the cache collapsing lookup cost toward a hash + array read;
// the uniform rows show its overhead when traffic has no locality.
func BenchmarkEngineFlowCache(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	for _, tc := range []struct {
		name   string
		cache  int
		skewed bool
	}{
		{"zipf/uncached", 0, true},
		{"zipf/cached", 4096, true},
		{"uniform/uncached", 0, false},
		{"uniform/cached", 4096, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng, err := engine.NewEngine("hicuts", set,
				engine.Options{Shards: 1, FlowCacheEntries: tc.cache})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			var keys []rule.Packet
			if tc.skewed {
				for _, e := range classbench.ZipfTrace(set, 8192, 256, 1.2, 2) {
					keys = append(keys, e.Key)
				}
			} else {
				for _, e := range classbench.UniformTrace(set, 8192, 2) {
					keys = append(keys, e.Key)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Classify(keys[i%len(keys)])
			}
		})
	}
}

// BenchmarkEngineParallel measures single-packet lookup under concurrent
// callers (the serving pattern of classifyd: one goroutine per connection,
// all reading the same atomic snapshot).
func BenchmarkEngineParallel(b *testing.B) {
	eng, keys := engineBenchSetup(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := eng.Classify(keys[i%len(keys)]); !ok {
				// b.Fatal is not allowed off the benchmark goroutine.
				b.Error("lookup missed")
				return
			}
			i++
		}
	})
}

// BenchmarkPolicyInference measures one forward pass of the NeuroCuts policy
// network at the paper's full 512x512 size.
func BenchmarkPolicyInference(b *testing.B) {
	set := benchSet(b, "acl1", 200)
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	trainer := core.NewTrainer(set, cfg)
	e := env.New(set, env.Config{})
	obs := e.Observation(e.Current())
	policy := trainer.Policy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = policy.Forward(obs)
	}
}

// BenchmarkWireDecodeAndClassify measures the full datapath: decode a raw
// IPv4/TCP header and classify the resulting key with a HiCuts tree.
func BenchmarkWireDecodeAndClassify(b *testing.B) {
	set := benchSet(b, "acl1", 1000)
	t, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	trace := classbench.GenerateTrace(set, 1024, 3)
	wires := make([][]byte, len(trace))
	for i, e := range trace {
		key := e.Key
		if key.Proto != packet.ProtoTCP && key.Proto != packet.ProtoUDP {
			key.Proto = packet.ProtoTCP
		}
		w, err := packet.Serialize(key)
		if err != nil {
			b.Fatal(err)
		}
		wires[i] = w
	}
	var dec packet.Decoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, err := dec.Decode(wires[i%len(wires)])
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := t.Classify(key); !ok {
			b.Fatal("lookup missed")
		}
	}
}

// BenchmarkClassBenchGenerate measures classifier generation at 10k scale.
func BenchmarkClassBenchGenerate(b *testing.B) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set := classbench.Generate(fam, 10_000, int64(i))
		if set.Len() < 5000 {
			b.Fatal("generation collapsed")
		}
	}
}

// BenchmarkTreeBuilderRandom measures raw tree-engine throughput: random
// cuts over a 1k classifier until completion.
func BenchmarkTreeBuilderRandom(b *testing.B) {
	set := benchSet(b, "ipc1", 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := tree.NewBuilder(set, 16)
		dims := rule.Dimensions()
		step := 0
		for !builder.Done() && step < 5000 {
			d := dims[step%len(dims)]
			if err := builder.ApplyCut(d, 8); err != nil {
				builder.Skip()
			}
			step++
		}
	}
}
