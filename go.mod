module neurocuts

go 1.24
