package env

import (
	"math"
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// TestTrafficAwareObjective exercises the average-time extension: with a
// traffic trace configured, the root experience's return equals the negated
// average lookup time over that trace (c=1, linear scaling), which is at
// most the worst-case classification time.
func TestTrafficAwareObjective(t *testing.T) {
	fam, _ := classbench.FamilyByName("acl3")
	set := classbench.Generate(fam, 200, 3)
	traceEntries := classbench.GenerateTrace(set, 500, 4)
	packets := make([]rule.Packet, len(traceEntries))
	for i, e := range traceEntries {
		packets[i] = e.Key
	}

	cfg := DefaultConfig()
	cfg.TrafficTrace = packets
	e := New(set, cfg)
	rng := rand.New(rand.NewSource(5))
	randomRollout(e, rng)
	exps, tr, err := e.FinishRollout()
	if err != nil {
		t.Fatal(err)
	}

	avg := tr.AverageLookupTime(packets)
	worst := float64(tr.ComputeMetrics().ClassificationTime)
	if math.Abs(exps[0].Return+avg) > 1e-9 {
		t.Errorf("root return %v, want %v (negated average time)", exps[0].Return, -avg)
	}
	if avg > worst {
		t.Errorf("average %v exceeds worst case %v", avg, worst)
	}
	if got := e.TreeObjective(tr); math.Abs(got-avg) > 1e-9 {
		t.Errorf("TreeObjective = %v, want average %v", got, avg)
	}

	// Without the trace, the same tree scores its worst-case time, which can
	// only be larger or equal.
	plain := New(set, DefaultConfig())
	if got := plain.TreeObjective(tr); got < avg-1e-9 {
		t.Errorf("worst-case objective %v below average %v", got, avg)
	}
}

// TestTrafficAwareUnreachedNodesFallBack ensures nodes that no trace packet
// reaches still get a finite (worst-case) reward.
func TestTrafficAwareUnreachedNodesFallBack(t *testing.T) {
	fam, _ := classbench.FamilyByName("fw2")
	set := classbench.Generate(fam, 150, 6)
	// A single-packet trace reaches only one path; everything else falls
	// back to worst-case time.
	cfg := DefaultConfig()
	cfg.TrafficTrace = []rule.Packet{{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}}
	e := New(set, cfg)
	rng := rand.New(rand.NewSource(7))
	randomRollout(e, rng)
	exps, _, err := e.FinishRollout()
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range exps {
		if math.IsNaN(x.Return) || math.IsInf(x.Return, 0) || x.Return >= 0 {
			t.Fatalf("experience %d return %v", i, x.Return)
		}
	}
}
