package env

import (
	"math"
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

func testSet(t *testing.T, fam string, size int, seed int64) *rule.Set {
	t.Helper()
	f, err := classbench.FamilyByName(fam)
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(f, size, seed)
}

func TestObsSizeConstant(t *testing.T) {
	if ObsSize != 208+40+10+NumActions {
		t.Errorf("ObsSize = %d", ObsSize)
	}
	if NumActions != 7 || ActSimplePartition != 5 || ActEffiCutsPartition != 6 {
		t.Errorf("action layout wrong: %d/%d/%d", NumActions, ActSimplePartition, ActEffiCutsPartition)
	}
}

func TestPartitionModeString(t *testing.T) {
	if PartitionNone.String() != "none" || PartitionSimple.String() != "simple" || PartitionEffiCuts.String() != "efficuts" {
		t.Error("mode strings wrong")
	}
	if PartitionMode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestObservationEncoding(t *testing.T) {
	set := testSet(t, "acl1", 100, 1)
	e := New(set, DefaultConfig())
	root := e.Current()
	obs := e.Observation(root)
	if len(obs) != ObsSize {
		t.Fatalf("obs size %d, want %d", len(obs), ObsSize)
	}
	for i, v := range obs {
		if v != 0 && v != 1 {
			t.Fatalf("obs[%d] = %v, want binary", i, v)
		}
	}
	// The root box is the full space: every lower bound is all zeros and
	// every upper bound all ones, so exactly half of the 208 range bits are
	// set.
	sum := 0.0
	for _, v := range obs[:208] {
		sum += v
	}
	if sum != 104 {
		t.Errorf("root range bits sum = %v, want 104", sum)
	}
	// Each coverage band block is a one-hot.
	pos := 208
	for d := 0; d < rule.NumDims; d++ {
		blockSum := 0.0
		for i := 0; i < 8; i++ {
			blockSum += obs[pos+i]
		}
		if blockSum != 1 {
			t.Errorf("coverage block %d sum = %v", d, blockSum)
		}
		pos += 8
	}
	// Partition ID block is a one-hot with slot 0 set at the root.
	if obs[pos] != 1 {
		t.Error("root should have partition ID slot 0")
	}
	// Mask block: cut actions legal, partitions illegal under PartitionNone.
	maskStart := ObsSize - NumActions
	for i := 0; i < NumCutActions; i++ {
		if obs[maskStart+i] != 1 {
			t.Errorf("cut action %d should be legal", i)
		}
	}
	if obs[maskStart+ActSimplePartition] != 0 || obs[maskStart+ActEffiCutsPartition] != 0 {
		t.Error("partition actions should be masked under PartitionNone")
	}
}

func TestActionMaskModes(t *testing.T) {
	set := testSet(t, "fw1", 100, 1)
	for _, mode := range []PartitionMode{PartitionNone, PartitionSimple, PartitionEffiCuts} {
		cfg := DefaultConfig()
		cfg.Partition = mode
		e := New(set, cfg)
		mask := e.ActionMask(e.Current())
		if len(mask) != NumActions {
			t.Fatalf("mask size %d", len(mask))
		}
		wantSimple := mode == PartitionSimple
		wantEffi := mode == PartitionEffiCuts
		if mask[ActSimplePartition] != wantSimple || mask[ActEffiCutsPartition] != wantEffi {
			t.Errorf("mode %s mask = %v", mode, mask)
		}
		// Below the root, partitions are never allowed.
		if err := e.Step(rule.DimSrcIP, 1, Experience{}); err != nil {
			t.Fatal(err)
		}
		if cur := e.Current(); cur != nil {
			childMask := e.ActionMask(cur)
			if childMask[ActSimplePartition] || childMask[ActEffiCutsPartition] {
				t.Errorf("mode %s: partition allowed below the root", mode)
			}
		}
	}
}

func TestStepErrors(t *testing.T) {
	set := testSet(t, "acl2", 80, 2)
	e := New(set, DefaultConfig())
	if err := e.Step(rule.DimSrcIP, NumActions, Experience{}); err == nil {
		t.Error("out-of-range action should fail")
	}
	if err := e.Step(rule.DimSrcIP, -1, Experience{}); err == nil {
		t.Error("negative action should fail")
	}
	if err := e.Step(rule.DimSrcIP, ActSimplePartition, Experience{}); err == nil {
		t.Error("masked partition action should fail under PartitionNone")
	}
}

// randomRollout drives the environment with uniformly random legal actions.
func randomRollout(e *Env, rng *rand.Rand) {
	for !e.Done() {
		n := e.Current()
		mask := e.ActionMask(n)
		var legal []int
		for i, ok := range mask {
			if ok {
				legal = append(legal, i)
			}
		}
		act := legal[rng.Intn(len(legal))]
		dim := rule.Dimension(rng.Intn(rule.NumDims))
		if err := e.Step(dim, act, Experience{LogProb: -1, Value: 0}); err != nil {
			panic(err)
		}
	}
}

func TestRandomRolloutProducesValidTree(t *testing.T) {
	set := testSet(t, "acl1", 200, 3)
	cfg := DefaultConfig()
	cfg.MaxStepsPerRollout = 2000
	e := New(set, cfg)
	rng := rand.New(rand.NewSource(1))
	randomRollout(e, rng)

	exps, tr, err := e.FinishRollout()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 || len(exps) != e.Steps() {
		t.Fatalf("experiences %d, steps %d", len(exps), e.Steps())
	}
	// Every experience must carry a finite negative return and the policy
	// pass-through fields.
	for i, x := range exps {
		if x.Return >= 0 || math.IsInf(x.Return, 0) || math.IsNaN(x.Return) {
			t.Fatalf("experience %d return %v", i, x.Return)
		}
		if len(x.Obs) != ObsSize || len(x.Mask) != NumActions {
			t.Fatalf("experience %d shapes", i)
		}
		if x.LogProb != -1 {
			t.Fatalf("experience %d lost the policy log-prob", i)
		}
	}
	// The built tree classifies identically to linear search.
	for i := 0; i < 1000; i++ {
		p := rule.Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: uint8(rng.Intn(256)),
		}
		want, okW := set.Match(p)
		got, okG := tr.Classify(p)
		if okW != okG || (okW && got.Priority != want.Priority) {
			t.Fatalf("tree/linear mismatch on %v", p)
		}
	}
	// The root experience's return must equal the negated whole-tree
	// objective under c=1 linear scaling (i.e. minus the classification
	// time).
	m := tr.ComputeMetrics()
	if exps[0].Return != -float64(m.ClassificationTime) {
		t.Errorf("root return %v, want %v", exps[0].Return, -float64(m.ClassificationTime))
	}
	if got := e.TreeObjective(tr); got != float64(m.ClassificationTime) {
		t.Errorf("TreeObjective = %v, want %v", got, float64(m.ClassificationTime))
	}
}

func TestFinishRolloutBeforeDoneFails(t *testing.T) {
	set := testSet(t, "acl1", 200, 3)
	e := New(set, DefaultConfig())
	if _, _, err := e.FinishRollout(); err == nil {
		t.Error("unfinished rollout should not finish")
	}
}

func TestStepOnFinishedRolloutFails(t *testing.T) {
	set := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0)})
	e := New(set, DefaultConfig())
	if !e.Done() {
		t.Fatal("tiny classifier should be done immediately")
	}
	if err := e.Step(rule.DimSrcIP, 0, Experience{}); err == nil {
		t.Error("step on finished rollout should fail")
	}
	if _, _, err := e.FinishRollout(); err != nil {
		t.Errorf("finishing an immediately-done rollout should work: %v", err)
	}
}

func TestRolloutTruncationBySteps(t *testing.T) {
	set := testSet(t, "fw2", 400, 4)
	cfg := DefaultConfig()
	cfg.MaxStepsPerRollout = 10
	e := New(set, cfg)
	rng := rand.New(rand.NewSource(2))
	randomRollout(e, rng)
	if !e.Truncated() {
		t.Error("rollout should have been truncated")
	}
	if e.Steps() > 10 {
		t.Errorf("steps %d exceed the limit", e.Steps())
	}
	if _, _, err := e.FinishRollout(); err != nil {
		t.Fatal(err)
	}
}

func TestRolloutTruncationByDepth(t *testing.T) {
	set := testSet(t, "fw5", 300, 5)
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	cfg.MaxStepsPerRollout = 100000
	e := New(set, cfg)
	rng := rand.New(rand.NewSource(3))
	randomRollout(e, rng)
	_, tr, err := e.FinishRollout()
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() > 3 {
		t.Errorf("tree depth %d exceeds the truncation depth", tr.MaxDepth())
	}
}

func TestSimplePartitionAction(t *testing.T) {
	set := testSet(t, "fw1", 200, 6)
	cfg := DefaultConfig()
	cfg.Partition = PartitionSimple
	e := New(set, cfg)
	// The source-IP dimension of a firewall set has both large and small
	// rules, so the simple partition succeeds at the root.
	if err := e.Step(rule.DimSrcIP, ActSimplePartition, Experience{}); err != nil {
		t.Fatal(err)
	}
	if e.Tree().Root.Kind != tree.KindPartition {
		t.Errorf("root kind = %s, want partition", e.Tree().Root.Kind)
	}
}

func TestEffiCutsPartitionAction(t *testing.T) {
	set := testSet(t, "fw3", 200, 7)
	cfg := DefaultConfig()
	cfg.Partition = PartitionEffiCuts
	cfg.TimeSpaceCoeff = 0
	cfg.Scale = ScaleLog
	e := New(set, cfg)
	if err := e.Step(rule.DimSrcIP, ActEffiCutsPartition, Experience{}); err != nil {
		t.Fatal(err)
	}
	root := e.Tree().Root
	if root.Kind != tree.KindPartition {
		t.Fatalf("root kind = %s", root.Kind)
	}
	// Children carry EffiCuts partition identities that show up in their
	// observations.
	for _, c := range root.Children {
		if c.PartitionLabel == "" {
			t.Error("partition child lost its label")
		}
		obs := e.Observation(c)
		idBlock := obs[208+40 : 208+40+10]
		if idBlock[0] != 0 {
			t.Error("partition child should not be in slot 0")
		}
	}
	// Finish with random cuts and verify log-scaled space returns.
	rng := rand.New(rand.NewSource(9))
	randomRollout(e, rng)
	exps, tr, err := e.FinishRollout()
	if err != nil {
		t.Fatal(err)
	}
	m := tr.ComputeMetrics()
	wantRoot := -math.Log(float64(m.MemoryBytes))
	if math.Abs(exps[0].Return-wantRoot) > 1e-9 {
		t.Errorf("root return %v, want %v", exps[0].Return, wantRoot)
	}
}

func TestRepairDimension(t *testing.T) {
	set := testSet(t, "acl3", 100, 8)
	e := New(set, DefaultConfig())
	n := e.Current()
	// A narrow protocol box cannot be cut; the environment repairs the
	// choice to a cuttable dimension.
	n.Box[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
	if err := e.Step(rule.DimProto, 0, Experience{}); err != nil {
		t.Fatal(err)
	}
	if e.Tree().Root.CutDims[0] == rule.DimProto {
		t.Error("uncuttable dimension was not repaired")
	}
}

func TestConfigClamping(t *testing.T) {
	set := testSet(t, "acl1", 50, 9)
	e := New(set, Config{TimeSpaceCoeff: 7})
	if e.Config().TimeSpaceCoeff != 1 {
		t.Error("coefficient should clamp to 1")
	}
	e = New(set, Config{TimeSpaceCoeff: -3})
	if e.Config().TimeSpaceCoeff != 0 {
		t.Error("coefficient should clamp to 0")
	}
	if e.Config().Binth != tree.DefaultBinth || e.Config().MaxDepth <= 0 || e.Config().MaxStepsPerRollout <= 0 {
		t.Error("defaults not applied")
	}
}

func TestResetClearsState(t *testing.T) {
	set := testSet(t, "ipc1", 150, 10)
	e := New(set, DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	randomRollout(e, rng)
	if e.Steps() == 0 {
		t.Fatal("rollout did nothing")
	}
	e.Reset()
	if e.Steps() != 0 || e.Done() || e.Truncated() {
		t.Error("reset did not clear state")
	}
	if e.Current() != e.Tree().Root {
		t.Error("reset should start at a fresh root")
	}
}
