// Package env implements the NeuroCuts reinforcement-learning environment
// (Section 4 of the paper): the compact fixed-length node observation, the
// tuple action space over (dimension, cut/partition action), action masking,
// depth-first tree construction, rollout and depth truncation, and the
// branching-decision-process reward in which each non-terminal node is an
// independent 1-step decision whose return is the negated objective of the
// subtree it roots (Equations 1–5).
package env

import (
	"fmt"
	"math"

	"neurocuts/internal/efficuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// PartitionMode selects the top-node partitioning allowed to the agent — the
// hyperparameter the paper identifies as the most sensitive one (Table 1).
type PartitionMode int

// Partition modes.
const (
	// PartitionNone disables partition actions entirely (best for
	// time-optimised trees).
	PartitionNone PartitionMode = iota
	// PartitionSimple allows the simple coverage-threshold partition at the
	// root.
	PartitionSimple
	// PartitionEffiCuts allows the EffiCuts separable-category partition at
	// the root.
	PartitionEffiCuts
)

// String names the partition mode.
func (m PartitionMode) String() string {
	switch m {
	case PartitionNone:
		return "none"
	case PartitionSimple:
		return "simple"
	case PartitionEffiCuts:
		return "efficuts"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// RewardScale selects the f(x) applied to time and space before combining
// them (Algorithm 1: f ∈ {x, log x}).
type RewardScale int

// Reward scaling functions.
const (
	// ScaleLinear uses f(x) = x.
	ScaleLinear RewardScale = iota
	// ScaleLog uses f(x) = log(x), which the paper uses whenever c < 1 to
	// make the time and space terms commensurable.
	ScaleLog
)

// Action head layout: the first len(tree.CutSizes) actions are cuts with the
// corresponding fan-out; the last two are the partition actions.
const (
	// NumCutActions is the number of cut fan-outs the agent may choose.
	NumCutActions = 5
	// ActSimplePartition is the action index of the simple partition.
	ActSimplePartition = NumCutActions
	// ActEffiCutsPartition is the action index of the EffiCuts partition.
	ActEffiCutsPartition = NumCutActions + 1
	// NumActions is the size of the action head.
	NumActions = NumCutActions + 2
)

// SimplePartitionThreshold is the coverage threshold used by the simple
// partition action.
const SimplePartitionThreshold = 0.5

// Observation layout (documented sizes; see Observation for the encoding):
// 208 bits of binary range bounds, 8-level coverage-band one-hots per
// dimension, a partition-identity one-hot, and the action mask. The paper's
// encoding is 278 bits with a slightly different partition-threshold
// encoding; ours carries the same information with 265 entries.
const (
	rangeBits        = 2 * (32 + 32 + 16 + 16 + 8) // 208
	coverageLevels   = 8
	coverageBits     = rule.NumDims * coverageLevels // 40
	partitionIDSlots = 10
	// ObsSize is the total observation width.
	ObsSize = rangeBits + coverageBits + partitionIDSlots + NumActions
)

// Config parameterises the environment.
type Config struct {
	// TimeSpaceCoeff is c in Equation 5: 1 optimises classification time
	// only, 0 optimises memory only.
	TimeSpaceCoeff float64
	// Scale is the reward scaling function f.
	Scale RewardScale
	// Partition selects the allowed top-node partitioning.
	Partition PartitionMode
	// Binth is the leaf threshold.
	Binth int
	// MaxStepsPerRollout truncates rollouts that grow too many nodes
	// (Table 1 sweeps {1000, 5000, 15000}).
	MaxStepsPerRollout int
	// MaxDepth truncates subtrees deeper than this many levels (Table 1
	// sweeps {100, 500}).
	MaxDepth int
	// TrafficTrace, when non-empty, switches the time term of the objective
	// from the worst-case classification time (Equation 1) to the average
	// lookup time over these packets — the traffic-aware extension proposed
	// in the paper's conclusion. Nodes no trace packet reaches fall back to
	// their worst-case time.
	TrafficTrace []rule.Packet
}

// DefaultConfig returns a configuration suitable for 1k-scale classifiers.
func DefaultConfig() Config {
	return Config{
		TimeSpaceCoeff:     1.0,
		Scale:              ScaleLinear,
		Partition:          PartitionNone,
		Binth:              tree.DefaultBinth,
		MaxStepsPerRollout: 5000,
		MaxDepth:           100,
	}
}

// Env is a NeuroCuts environment bound to one classifier.
type Env struct {
	cfg Config
	set *rule.Set

	builder *tree.Builder
	steps   int
	// experiences collects the per-node decisions of the current rollout.
	experiences []Experience
	// nodes[i] is the node experiences[i] expanded.
	nodes []*tree.Node
	// truncated records whether the current rollout hit a truncation limit.
	truncated bool
}

// Experience is one 1-step decision of a rollout. Return is filled in by
// FinishRollout once the subtree under the node is complete.
type Experience struct {
	// Obs is the node observation.
	Obs []float64
	// Dim and Act are the indices the agent chose.
	Dim int
	Act int
	// Mask is the action mask that applied.
	Mask []bool
	// Return is the 1-step return: the negated scaled objective of the
	// subtree rooted at the expanded node.
	Return float64
	// LogProb and Value are recorded from the policy at selection time and
	// passed through untouched for the PPO update.
	LogProb float64
	Value   float64
}

// New creates an environment for the classifier.
func New(s *rule.Set, cfg Config) *Env {
	if cfg.Binth <= 0 {
		cfg.Binth = tree.DefaultBinth
	}
	if cfg.MaxStepsPerRollout <= 0 {
		cfg.MaxStepsPerRollout = 5000
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 100
	}
	if cfg.TimeSpaceCoeff < 0 {
		cfg.TimeSpaceCoeff = 0
	}
	if cfg.TimeSpaceCoeff > 1 {
		cfg.TimeSpaceCoeff = 1
	}
	e := &Env{cfg: cfg, set: s}
	e.Reset()
	return e
}

// Config returns the environment's configuration.
func (e *Env) Config() Config { return e.cfg }

// Reset starts a fresh rollout: a new tree containing only the root.
func (e *Env) Reset() {
	e.builder = tree.NewBuilder(e.set, e.cfg.Binth)
	e.steps = 0
	e.experiences = e.experiences[:0]
	e.nodes = e.nodes[:0]
	e.truncated = false
}

// Done reports whether the current rollout has finished (tree complete or
// truncated).
func (e *Env) Done() bool { return e.builder.Done() }

// Truncated reports whether the last rollout hit a truncation limit.
func (e *Env) Truncated() bool { return e.truncated }

// Steps returns the number of actions taken in the current rollout.
func (e *Env) Steps() int { return e.steps }

// Tree returns the tree under construction (or the finished tree).
func (e *Env) Tree() *tree.Tree { return e.builder.Tree() }

// Current returns the node the next action will expand (nil when done).
func (e *Env) Current() *tree.Node { return e.builder.Current() }

// ActionMask returns the mask over the action head for the given node:
// cut actions are always allowed; partition actions are allowed only at the
// root node and only when the configured partition mode enables them (the
// "top-node partitioning" hyperparameter).
func (e *Env) ActionMask(n *tree.Node) []bool {
	mask := make([]bool, NumActions)
	for i := 0; i < NumCutActions; i++ {
		mask[i] = true
	}
	if n != nil && n.Depth == 0 {
		switch e.cfg.Partition {
		case PartitionSimple:
			mask[ActSimplePartition] = true
		case PartitionEffiCuts:
			mask[ActEffiCutsPartition] = true
		}
	}
	return mask
}

// Observation encodes a node as the fixed-length vector the policy consumes:
//
//   - For every dimension, the binary expansion of the node box's lower and
//     upper bounds (32+32, 32+32, 16+16, 16+16, 8+8 bits), normalised to
//     {0,1} values. This is the BinaryString(Range_min)+BinaryString(Range_max)
//     component of Appendix A.
//   - For every dimension, an 8-level one-hot of the fraction of the node's
//     rules that are "large" (cover more than half) in that dimension — the
//     partition-related signal of Appendix A.
//   - A one-hot of the EffiCuts partition identity of the node (slot 0 means
//     "not inside an EffiCuts partition", slots 1-9 identify the category).
//   - The action mask itself, so the policy can see which actions are legal.
func (e *Env) Observation(n *tree.Node) []float64 {
	obs := make([]float64, ObsSize)
	pos := 0
	for _, d := range rule.Dimensions() {
		bits := int(d.Bits())
		writeBits(obs[pos:pos+bits], n.Box[d].Lo, bits)
		pos += bits
		writeBits(obs[pos:pos+bits], n.Box[d].Hi, bits)
		pos += bits
	}
	// Coverage bands.
	for _, d := range rule.Dimensions() {
		level := coverageBand(n, d)
		obs[pos+level] = 1
		pos += coverageLevels
	}
	// EffiCuts partition identity.
	id := partitionID(n)
	if id >= partitionIDSlots {
		id = partitionIDSlots - 1
	}
	obs[pos+id] = 1
	pos += partitionIDSlots
	// Action mask.
	for i, ok := range e.ActionMask(n) {
		if ok {
			obs[pos+i] = 1
		}
	}
	return obs
}

// writeBits writes the big-endian binary expansion of v into dst.
func writeBits(dst []float64, v uint64, bits int) {
	for i := 0; i < bits; i++ {
		if v&(1<<uint(bits-1-i)) != 0 {
			dst[i] = 1
		}
	}
}

// coverageBand buckets the fraction of the node's rules that are large in
// dimension d into one of coverageLevels levels.
func coverageBand(n *tree.Node, d rule.Dimension) int {
	if len(n.Rules) == 0 {
		return 0
	}
	large := 0
	for _, r := range n.Rules {
		if r.Coverage(d) > efficuts.LargenessFraction {
			large++
		}
	}
	frac := float64(large) / float64(len(n.Rules))
	level := int(frac * float64(coverageLevels))
	if level >= coverageLevels {
		level = coverageLevels - 1
	}
	return level
}

// partitionID returns 1+index of the EffiCuts category label carried by the
// node (propagated to partition children), or 0 when the node is not inside
// an EffiCuts partition.
func partitionID(n *tree.Node) int {
	if n.PartitionLabel == "" {
		return 0
	}
	// Labels produced by the EffiCuts partition action are "effi-<i>".
	var idx int
	if _, err := fmt.Sscanf(n.PartitionLabel, "effi-%d", &idx); err == nil {
		return idx + 1
	}
	return 1
}

// Step applies the agent's (dimension, action) choice to the current node.
// Invalid choices are repaired rather than rejected, mirroring the paper's
// environment (the action space is fixed; the environment guarantees
// progress): a cut on a dimension that cannot be subdivided is redirected to
// the widest cuttable dimension, and a partition that would be degenerate
// falls back to a binary cut. exp carries the policy outputs to record with
// the experience.
func (e *Env) Step(dim rule.Dimension, act int, exp Experience) error {
	n := e.builder.Current()
	if n == nil {
		return fmt.Errorf("env: rollout already finished")
	}
	if act < 0 || act >= NumActions {
		return fmt.Errorf("env: action %d out of range", act)
	}
	mask := e.ActionMask(n)
	if !mask[act] {
		return fmt.Errorf("env: action %d is masked at this node", act)
	}

	exp.Obs = e.Observation(n)
	exp.Dim = int(dim)
	exp.Act = act
	exp.Mask = mask

	applied := false
	switch {
	case act < NumCutActions:
		d := e.repairDimension(n, dim)
		k := tree.CutSizes[act]
		if err := e.builder.ApplyCut(d, k); err != nil {
			return fmt.Errorf("env: cut %s/%d: %w", d, k, err)
		}
		applied = true
	case act == ActSimplePartition:
		d := e.repairDimension(n, dim)
		if err := e.builder.ApplyPartitionByCoverage(d, SimplePartitionThreshold); err == nil {
			applied = true
		}
	case act == ActEffiCutsPartition:
		groups, _ := efficuts.PartitionRules(n.Rules, true)
		if len(groups) >= 2 {
			labels := make([]string, len(groups))
			for i := range labels {
				labels[i] = fmt.Sprintf("effi-%d", i)
			}
			if err := e.builder.ApplyPartition(groups, labels); err == nil {
				applied = true
			}
		}
	}
	if !applied {
		// Degenerate partition: fall back to a binary cut so the rollout
		// always makes progress.
		d := e.repairDimension(n, dim)
		if err := e.builder.ApplyCut(d, 2); err != nil {
			return fmt.Errorf("env: fallback cut: %w", err)
		}
	}

	e.steps++
	e.experiences = append(e.experiences, exp)
	e.nodes = append(e.nodes, n)
	e.enforceTruncation()
	return nil
}

// repairDimension returns dim when the node's box can be subdivided along
// it; otherwise it returns the cuttable dimension with the largest box.
func (e *Env) repairDimension(n *tree.Node, dim rule.Dimension) rule.Dimension {
	if int(dim) >= 0 && int(dim) < rule.NumDims && n.Box[dim].Size() >= 2 {
		return dim
	}
	best := rule.DimSrcIP
	var bestSize uint64
	for _, d := range rule.Dimensions() {
		if s := n.Box[d].Size(); s > bestSize {
			best, bestSize = d, s
		}
	}
	return best
}

// enforceTruncation applies the rollout-length and depth truncation
// optimisations of Section 5.1: when the step budget is exhausted every
// pending node is accepted as an oversized leaf, and pending nodes deeper
// than MaxDepth are skipped individually.
func (e *Env) enforceTruncation() {
	if e.steps >= e.cfg.MaxStepsPerRollout {
		for !e.builder.Done() {
			e.builder.Skip()
		}
		e.truncated = true
		return
	}
	for {
		n := e.builder.Current()
		if n == nil || n.Depth < e.cfg.MaxDepth {
			return
		}
		e.builder.Skip()
		e.truncated = true
	}
}

// scale applies the configured reward scaling function.
func (e *Env) scale(x float64) float64 {
	if e.cfg.Scale == ScaleLog {
		if x < 1 {
			x = 1
		}
		return math.Log(x)
	}
	return x
}

// NodeReward returns the 1-step return for an expanded node: the negated
// combined objective of the subtree rooted at it (Equation 5 with the
// configured c and scaling). When a traffic trace is configured, traffic
// carries the per-node statistics used for the average-time term.
func (e *Env) NodeReward(n *tree.Node, traffic *tree.TrafficStats) float64 {
	t := e.builder.Tree()
	c := e.cfg.TimeSpaceCoeff
	timeValue := float64(t.Time(n))
	if traffic != nil {
		if avg, ok := traffic.AverageTime(n); ok {
			timeValue = avg
		}
	}
	timeTerm := e.scale(timeValue)
	spaceTerm := e.scale(float64(t.Space(n)))
	return -(c*timeTerm + (1-c)*spaceTerm)
}

// FinishRollout computes every experience's return (which requires the whole
// tree, per the branching-decision-process formulation) and returns the
// experiences together with the finished tree. It must be called after Done
// becomes true.
func (e *Env) FinishRollout() ([]Experience, *tree.Tree, error) {
	if !e.Done() {
		return nil, nil, fmt.Errorf("env: rollout not finished")
	}
	var traffic *tree.TrafficStats
	if len(e.cfg.TrafficTrace) > 0 {
		traffic = e.builder.Tree().ComputeTrafficStats(e.cfg.TrafficTrace)
	}
	for i := range e.experiences {
		e.experiences[i].Return = e.NodeReward(e.nodes[i], traffic)
	}
	out := make([]Experience, len(e.experiences))
	copy(out, e.experiences)
	return out, e.builder.Tree(), nil
}

// TreeObjective evaluates the configured objective for a finished tree
// (lower is better): c*f(time) + (1-c)*f(space), where the time term is the
// average over the traffic trace when one is configured. The trainer uses it
// to keep the best tree seen during training.
func (e *Env) TreeObjective(t *tree.Tree) float64 {
	c := e.cfg.TimeSpaceCoeff
	m := t.ComputeMetrics()
	timeValue := float64(m.ClassificationTime)
	if len(e.cfg.TrafficTrace) > 0 {
		timeValue = t.AverageLookupTime(e.cfg.TrafficTrace)
	}
	return c*e.scale(timeValue) + (1-c)*e.scale(float64(m.MemoryBytes))
}
