// Package analysis provides the small statistical toolkit used by the
// evaluation harness: medians, means, percentiles, and the relative
// improvement summaries the paper reports (e.g. "18% median improvement over
// the best baseline").
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (the mean of the two middle elements for
// even lengths). It returns NaN for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min and Max return the extrema of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Improvement returns the paper's improvement metric 1 - a/b: how much
// better (smaller) a is than the reference b. Positive values mean a wins.
// It returns 0 when b is zero.
func Improvement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 1 - a/b
}

// ImprovementSummary aggregates per-classifier improvements of one algorithm
// over a reference (both metrics are "lower is better").
type ImprovementSummary struct {
	// Median, Mean, Best and Worst of the per-classifier improvements
	// (1 - ours/reference).
	Median float64
	Mean   float64
	Best   float64
	Worst  float64
	// WinFraction is the fraction of classifiers where ours strictly beats
	// the reference.
	WinFraction float64
	// Count is the number of classifier pairs summarised.
	Count int
}

// Summarize computes an ImprovementSummary from paired metric slices: ours[i]
// and reference[i] are the metric values on classifier i. Pairs where the
// reference is zero are skipped.
func Summarize(ours, reference []float64) (ImprovementSummary, error) {
	if len(ours) != len(reference) {
		return ImprovementSummary{}, fmt.Errorf("analysis: mismatched lengths %d vs %d", len(ours), len(reference))
	}
	var improvements []float64
	wins := 0
	for i := range ours {
		if reference[i] == 0 {
			continue
		}
		imp := Improvement(ours[i], reference[i])
		improvements = append(improvements, imp)
		if ours[i] < reference[i] {
			wins++
		}
	}
	if len(improvements) == 0 {
		return ImprovementSummary{}, fmt.Errorf("analysis: no comparable pairs")
	}
	return ImprovementSummary{
		Median:      Median(improvements),
		Mean:        Mean(improvements),
		Best:        Max(improvements),
		Worst:       Min(improvements),
		WinFraction: float64(wins) / float64(len(improvements)),
		Count:       len(improvements),
	}, nil
}

// String renders the summary in the style the paper uses in Section 6.
func (s ImprovementSummary) String() string {
	return fmt.Sprintf("median %.0f%%, mean %.0f%%, best %.0f%%, worst %.0f%%, wins %.0f%% of %d",
		s.Median*100, s.Mean*100, s.Best*100, s.Worst*100, s.WinFraction*100, s.Count)
}

// SortedImprovements returns the per-pair improvements (1 - ours/ref) sorted
// ascending — the series plotted in Figure 10.
func SortedImprovements(ours, reference []float64) []float64 {
	n := len(ours)
	if len(reference) < n {
		n = len(reference)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if reference[i] == 0 {
			continue
		}
		out = append(out, Improvement(ours[i], reference[i]))
	}
	sort.Float64s(out)
	return out
}
