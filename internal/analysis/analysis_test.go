package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMedian(t *testing.T) {
	if !almostEqual(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median")
	}
	if !almostEqual(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	if !almostEqual(Median([]float64{7}), 7) {
		t.Error("single-element median")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 4, 6}
	if !almostEqual(Mean(xs), 4) || !almostEqual(Min(xs), 2) || !almostEqual(Max(xs), 6) {
		t.Error("mean/min/max wrong")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty aggregates should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if !almostEqual(Percentile(xs, 0), 10) || !almostEqual(Percentile(xs, 100), 50) {
		t.Error("extremes wrong")
	}
	if !almostEqual(Percentile(xs, 50), 30) {
		t.Error("median percentile wrong")
	}
	if !almostEqual(Percentile(xs, 25), 20) {
		t.Error("p25 wrong")
	}
	if !almostEqual(Percentile(xs, 90), 46) {
		t.Errorf("p90 = %v", Percentile(xs, 90))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if !almostEqual(Percentile(xs, -5), 10) || !almostEqual(Percentile(xs, 150), 50) {
		t.Error("out-of-range percentiles should clamp")
	}
}

func TestImprovement(t *testing.T) {
	if !almostEqual(Improvement(50, 100), 0.5) {
		t.Error("halving is a 50% improvement")
	}
	if !almostEqual(Improvement(100, 100), 0) {
		t.Error("equal is 0%")
	}
	if Improvement(150, 100) >= 0 {
		t.Error("regression should be negative")
	}
	if Improvement(1, 0) != 0 {
		t.Error("zero reference yields 0")
	}
}

func TestSummarize(t *testing.T) {
	ours := []float64{10, 20, 40, 5}
	ref := []float64{20, 20, 30, 10}
	s, err := Summarize(ours, ref)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 4 {
		t.Errorf("count = %d", s.Count)
	}
	if !almostEqual(s.Best, 0.5) {
		t.Errorf("best = %v", s.Best)
	}
	if !almostEqual(s.Worst, 1-40.0/30.0) {
		t.Errorf("worst = %v", s.Worst)
	}
	if !almostEqual(s.WinFraction, 0.5) {
		t.Errorf("wins = %v", s.WinFraction)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if _, err := Summarize([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Summarize([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero reference should error")
	}
	// Zero-reference entries are skipped, not fatal, when others exist.
	s2, err := Summarize([]float64{1, 5}, []float64{0, 10})
	if err != nil || s2.Count != 1 {
		t.Errorf("skip-zero summarize = %+v, %v", s2, err)
	}
}

func TestSortedImprovements(t *testing.T) {
	got := SortedImprovements([]float64{10, 30, 5}, []float64{20, 20, 20})
	if len(got) != 3 || !sort.Float64sAreSorted(got) {
		t.Fatalf("got %v", got)
	}
	if !almostEqual(got[0], -0.5) || !almostEqual(got[2], 0.75) {
		t.Errorf("got %v", got)
	}
	// Mismatched lengths use the shorter, zero refs skipped.
	got = SortedImprovements([]float64{10, 30}, []float64{0, 20, 40})
	if len(got) != 1 {
		t.Errorf("got %v", got)
	}
}

// Property: the median lies between min and max, and percentiles are
// monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		med := Median(xs)
		if med < Min(xs)-1e-9 || med > Max(xs)+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
