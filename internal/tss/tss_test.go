package tss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

func TestRangeToPrefixes(t *testing.T) {
	// The classic example: [1, 14] over 4 bits needs 6 prefixes.
	got := rangeToPrefixes(rule.Range{Lo: 1, Hi: 14}, 4)
	if len(got) != 6 {
		t.Errorf("[1,14]/4 bits decomposed into %d prefixes, want 6: %+v", len(got), got)
	}
	// Each prefix must be aligned and jointly cover exactly the range.
	covered := uint64(0)
	for _, p := range got {
		size := uint64(1) << (4 - p.len)
		if p.val%size != 0 {
			t.Errorf("prefix %+v misaligned", p)
		}
		covered += size
	}
	if covered != 14 {
		t.Errorf("prefixes cover %d values, want 14", covered)
	}
	// A full range is a single /0.
	got = rangeToPrefixes(rule.FullRange(rule.DimSrcPort), 16)
	if len(got) != 1 || got[0].len != 0 {
		t.Errorf("full range = %+v", got)
	}
	// A single value is one /bits prefix.
	got = rangeToPrefixes(rule.Range{Lo: 80, Hi: 80}, 16)
	if len(got) != 1 || got[0].len != 16 || got[0].val != 80 {
		t.Errorf("exact value = %+v", got)
	}
	// The topmost value terminates without overflow.
	got = rangeToPrefixes(rule.Range{Lo: 65535, Hi: 65535}, 16)
	if len(got) != 1 {
		t.Errorf("top value = %+v", got)
	}
}

// Property: the prefix decomposition covers exactly the range.
func TestPropertyRangeToPrefixesCoverage(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		prefixes := rangeToPrefixes(rule.Range{Lo: lo, Hi: hi}, 16)
		total := uint64(0)
		for _, p := range prefixes {
			size := uint64(1) << (16 - p.len)
			if p.val < lo || p.val+size-1 > hi {
				return false
			}
			total += size
		}
		return total == hi-lo+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildAndClassifyMatchesLinearSearch(t *testing.T) {
	for _, famName := range []string{"acl1", "fw2", "ipc1"} {
		fam, _ := classbench.FamilyByName(famName)
		set := classbench.Generate(fam, 300, 1)
		c, err := Build(set)
		if err != nil {
			t.Fatalf("%s: %v", famName, err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 2000; i++ {
			p := rule.Packet{
				SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: uint8(rng.Intn(256)),
			}
			want, okW := set.Match(p)
			got, okG := c.Classify(p)
			if okW != okG || (okW && got.Priority != want.Priority) {
				t.Fatalf("%s: mismatch on %v: tss %v/%v linear %v/%v", famName, p, got.Priority, okG, want.Priority, okW)
			}
		}
		for _, e := range classbench.GenerateTrace(set, 1000, 7) {
			got, ok := c.Classify(e.Key)
			if !ok || got.Priority != e.MatchRule {
				t.Fatalf("%s: trace mismatch", famName)
			}
		}
	}
}

func TestMetrics(t *testing.T) {
	fam, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(fam, 400, 2)
	c, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Tuples < 2 {
		t.Errorf("only %d tuples; firewall rules should span many mask vectors", m.Tuples)
	}
	if m.Entries < set.Len() {
		t.Errorf("entries %d < rules %d", m.Entries, set.Len())
	}
	if m.ExpansionFactor < 1 {
		t.Errorf("expansion factor %v", m.ExpansionFactor)
	}
	if m.MemoryBytes <= 0 || m.BytesPerRule <= 0 {
		t.Errorf("degenerate memory metrics %+v", m)
	}
	// Empty classifier metrics are all zero.
	empty := &Classifier{byKey: map[tupleKey]*tuple{}}
	if got := empty.Metrics(); got.MemoryBytes != 0 || got.BytesPerRule != 0 {
		t.Errorf("empty metrics %+v", got)
	}
}

func TestInsertOverlappingPriorities(t *testing.T) {
	// Two rules in the same tuple and hash bucket: the higher-priority one
	// must win.
	r0 := rule.NewWildcardRule(0)
	r0.Ranges[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
	r1 := rule.NewWildcardRule(1)
	r1.Ranges[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
	r1.Ranges[rule.DimSrcPort] = rule.Range{Lo: 0, Hi: 1023}
	set := rule.NewSet([]rule.Rule{r1, r0, rule.NewWildcardRule(2)})
	c, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	p := rule.Packet{SrcPort: 100, Proto: 6}
	got, ok := c.Classify(p)
	if !ok || got.Priority != 0 {
		t.Fatalf("got %v/%v, want priority 0", got.Priority, ok)
	}
}

func TestExpansionLimit(t *testing.T) {
	// A rule whose every port dimension needs a large prefix decomposition
	// can exceed the expansion cap and must be rejected cleanly.
	r := rule.NewWildcardRule(0)
	r.Ranges[rule.DimSrcPort] = rule.Range{Lo: 1, Hi: 65534}
	r.Ranges[rule.DimDstPort] = rule.Range{Lo: 1, Hi: 65534}
	r.Ranges[rule.DimSrcIP] = rule.Range{Lo: 1, Hi: 1<<32 - 2}
	c := &Classifier{byKey: map[tupleKey]*tuple{}}
	if err := c.Insert(r); err == nil {
		t.Error("expected expansion-limit error")
	}
	set := rule.NewSet([]rule.Rule{r})
	if _, err := Build(set); err == nil {
		t.Error("Build should surface the expansion error")
	}
}

func TestPrefixMask(t *testing.T) {
	if prefixMask(0, 32) != 0 {
		t.Error("/0 mask should be zero")
	}
	if prefixMask(32, 32) != 0xFFFFFFFF {
		t.Error("/32 mask wrong")
	}
	if prefixMask(8, 32) != 0xFF000000 {
		t.Errorf("/8 mask = %#x", prefixMask(8, 32))
	}
	if prefixMask(40, 32) != 0xFFFFFFFF {
		t.Error("overlong mask should clamp")
	}
}
