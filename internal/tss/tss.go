// Package tss implements Tuple Space Search (Srinivasan, Suri & Varghese,
// SIGCOMM 1999), the hash-based classification scheme the paper's related
// work section contrasts with decision trees (it is also the algorithm used
// by Open vSwitch's megaflow cache). It is included as an additional
// baseline for the repository's ablation benchmarks.
//
// TSS groups rules into "tuples": a tuple is the vector of mask lengths a
// rule uses in each dimension. All rules of a tuple can be stored in one
// exact-match hash table keyed by the masked header fields. Classification
// probes every tuple's table and keeps the highest-priority match, so the
// classification time grows with the number of distinct tuples, while
// updates are O(1) — the opposite trade-off from decision trees.
//
// Arbitrary port ranges do not fit the mask model directly; as in the
// original paper they are expanded into the minimal set of covering
// prefixes, each inserted separately (this is the well-known memory cost of
// TSS on range-heavy classifiers).
package tss

import (
	"fmt"

	"neurocuts/internal/rule"
)

// tupleKey identifies a tuple: the prefix length used per dimension.
type tupleKey [rule.NumDims]uint8

// entryKey is the masked field vector used as the exact-match key inside a
// tuple's table.
type entryKey [rule.NumDims]uint64

// entry is one stored (masked) rule.
type entry struct {
	priority int
	r        rule.Rule
}

// tuple is one hash table of rules sharing a mask vector.
type tuple struct {
	key   tupleKey
	masks [rule.NumDims]uint64
	table map[entryKey][]entry
}

// Classifier is a Tuple Space Search classifier.
type Classifier struct {
	tuples []*tuple
	// byKey indexes tuples for O(1) insertion.
	byKey map[tupleKey]*tuple
	// ruleCount is the number of classifier rules inserted (not expanded
	// entries).
	ruleCount int
	// entryCount is the number of stored entries after range expansion.
	entryCount int
}

// NewClassifier returns an empty TSS classifier ready for incremental
// Insert. The delta-overlay update path (internal/updater) builds small
// overlays this way instead of going through Build.
func NewClassifier() *Classifier {
	return &Classifier{byKey: map[tupleKey]*tuple{}}
}

// Build constructs a TSS classifier from a rule set.
func Build(s *rule.Set) (*Classifier, error) {
	c := NewClassifier()
	for _, r := range s.Rules() {
		if err := c.Insert(r); err != nil {
			return nil, fmt.Errorf("tss: inserting rule %d: %w", r.Priority, err)
		}
	}
	return c, nil
}

// Insert adds one rule, expanding non-prefix ranges into covering prefixes.
func (c *Classifier) Insert(r rule.Rule) error {
	expansions, err := expandRule(r)
	if err != nil {
		return err
	}
	for _, ex := range expansions {
		tp := c.tupleFor(ex.lens)
		key := maskFields(ex.values, tp.masks)
		tp.table[key] = append(tp.table[key], entry{priority: r.Priority, r: r})
		c.entryCount++
	}
	c.ruleCount++
	return nil
}

// Classify returns the highest-priority rule matching the packet.
func (c *Classifier) Classify(p rule.Packet) (rule.Rule, bool) {
	fields := [rule.NumDims]uint64{}
	for _, d := range rule.Dimensions() {
		fields[d] = p.Field(d)
	}
	var best rule.Rule
	found := false
	for _, tp := range c.tuples {
		key := maskFields(fields, tp.masks)
		for _, e := range tp.table[key] {
			// The masked-key match covers the prefix dimensions exactly, but
			// the original rule may constrain expanded dimensions more
			// tightly (the covering prefixes may overshoot), so confirm with
			// the full match.
			if !e.r.Matches(p) {
				continue
			}
			if !found || e.priority < best.Priority {
				best = e.r
				found = true
			}
		}
	}
	return best, found
}

// Metrics describes the TSS classifier's cost profile.
type Metrics struct {
	// Tuples is the number of hash tables probed per lookup.
	Tuples int
	// Entries is the number of stored (expanded) entries.
	Entries int
	// ExpansionFactor is Entries divided by the number of rules.
	ExpansionFactor float64
	// MemoryBytes models each entry at one pointer plus the masked key, and
	// each tuple at a fixed table header.
	MemoryBytes int
	// BytesPerRule is MemoryBytes per classifier rule.
	BytesPerRule float64
}

// Cost model constants (documented so results are comparable run to run).
const (
	tupleHeaderBytes = 64
	entryBytes       = 8 + 5*4
)

// Metrics computes the classifier's metrics.
func (c *Classifier) Metrics() Metrics {
	m := Metrics{Tuples: len(c.tuples), Entries: c.entryCount}
	if c.ruleCount > 0 {
		m.ExpansionFactor = float64(c.entryCount) / float64(c.ruleCount)
	}
	m.MemoryBytes = tupleHeaderBytes*len(c.tuples) + entryBytes*c.entryCount
	if c.ruleCount > 0 {
		m.BytesPerRule = float64(m.MemoryBytes) / float64(c.ruleCount)
	}
	return m
}

// tupleFor returns (creating if needed) the tuple for a mask-length vector.
func (c *Classifier) tupleFor(lens tupleKey) *tuple {
	if tp, ok := c.byKey[lens]; ok {
		return tp
	}
	tp := &tuple{key: lens, table: map[entryKey][]entry{}}
	for _, d := range rule.Dimensions() {
		tp.masks[d] = prefixMask(uint(lens[d]), d.Bits())
	}
	c.tuples = append(c.tuples, tp)
	c.byKey[lens] = tp
	return tp
}

func prefixMask(prefixLen, bits uint) uint64 {
	if prefixLen == 0 {
		return 0
	}
	if prefixLen > bits {
		prefixLen = bits
	}
	full := (uint64(1) << bits) - 1
	return full &^ ((uint64(1) << (bits - prefixLen)) - 1)
}

func maskFields(values [rule.NumDims]uint64, masks [rule.NumDims]uint64) entryKey {
	var out entryKey
	for i := range values {
		out[i] = values[i] & masks[i]
	}
	return out
}

// expansion is one prefix-vector realisation of a rule.
type expansion struct {
	lens   tupleKey
	values [rule.NumDims]uint64
}

// expandRule converts a rule's per-dimension ranges into prefix vectors,
// taking the cross product of the per-dimension prefix decompositions.
func expandRule(r rule.Rule) ([]expansion, error) {
	perDim := make([][]struct {
		len uint
		val uint64
	}, rule.NumDims)
	total := 1
	for _, d := range rule.Dimensions() {
		prefixes := rangeToPrefixes(r.Ranges[d], d.Bits())
		if len(prefixes) == 0 {
			return nil, fmt.Errorf("empty range in %s", d)
		}
		perDim[d] = prefixes
		total *= len(prefixes)
		if total > 4096 {
			return nil, fmt.Errorf("rule expands into more than 4096 prefix combinations")
		}
	}
	out := make([]expansion, 0, total)
	idx := make([]int, rule.NumDims)
	for {
		var ex expansion
		for _, d := range rule.Dimensions() {
			p := perDim[d][idx[d]]
			ex.lens[d] = uint8(p.len)
			ex.values[d] = p.val
		}
		out = append(out, ex)
		i := rule.NumDims - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(perDim[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// rangeToPrefixes decomposes an inclusive range into the minimal set of
// covering prefixes (the classic range-to-prefix conversion).
func rangeToPrefixes(r rule.Range, bits uint) []struct {
	len uint
	val uint64
} {
	var out []struct {
		len uint
		val uint64
	}
	lo, hi := r.Lo, r.Hi
	maxVal := (uint64(1) << bits) - 1
	if hi > maxVal {
		hi = maxVal
	}
	for lo <= hi {
		// Largest prefix starting at lo that stays within [lo, hi].
		size := uint64(1)
		plen := bits
		for plen > 0 {
			next := size << 1
			if lo%next != 0 || lo+next-1 > hi {
				break
			}
			size = next
			plen--
		}
		out = append(out, struct {
			len uint
			val uint64
		}{len: plen, val: lo})
		if lo+size-1 == maxVal {
			break
		}
		lo += size
	}
	return out
}
