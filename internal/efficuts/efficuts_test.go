package efficuts

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

func checkClassifierEquivalence(t *testing.T, c *Classifier, set *rule.Set, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
		want, okWant := set.Match(p)
		got, okGot := c.Classify(p)
		if okWant != okGot || (okWant && want.Priority != got.Priority) {
			t.Fatalf("packet %v: efficuts (%v,%v) vs linear (%v,%v)", p, got.Priority, okGot, want.Priority, okWant)
		}
	}
	for _, e := range classbench.GenerateTrace(set, n/2, seed+1) {
		got, ok := c.Classify(e.Key)
		if !ok || got.Priority != e.MatchRule {
			t.Fatalf("trace packet %v: got %v/%v want %d", e.Key, got.Priority, ok, e.MatchRule)
		}
	}
}

func TestPatternOf(t *testing.T) {
	r := rule.NewWildcardRule(0)
	p := PatternOf(r)
	if p.LargeCount() != rule.NumDims {
		t.Errorf("wildcard rule pattern = %s", p)
	}
	if p.String() != "LLLLL" {
		t.Errorf("pattern string = %s", p.String())
	}
	r.Ranges[rule.DimSrcIP] = rule.PrefixRange(0x0A000000, 24, 32)
	r.Ranges[rule.DimDstPort] = rule.Range{Lo: 80, Hi: 80}
	p = PatternOf(r)
	if p[rule.DimSrcIP] || p[rule.DimDstPort] || !p[rule.DimDstIP] {
		t.Errorf("pattern = %s", p)
	}
	if p.LargeCount() != 3 {
		t.Errorf("large count = %d", p.LargeCount())
	}
}

func TestPartitionRules(t *testing.T) {
	f, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(f, 300, 1)
	groups, labels := PartitionRules(set.Rules(), true)
	if len(groups) != len(labels) {
		t.Fatal("groups/labels mismatch")
	}
	if len(groups) < 2 {
		t.Fatalf("firewall rules should span multiple categories, got %d", len(groups))
	}
	if len(groups) > MaxMergedTrees {
		t.Errorf("tree merging should bound the categories at %d, got %d", MaxMergedTrees, len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		// Rules inside a group stay in priority order.
		for i := 1; i < len(g); i++ {
			if g[i].Priority < g[i-1].Priority {
				t.Fatal("group not in priority order")
			}
		}
	}
	if total != set.Len() {
		t.Errorf("partition lost rules: %d vs %d", total, set.Len())
	}
	// Without merging there are at least as many categories.
	unmerged, _ := PartitionRules(set.Rules(), false)
	if len(unmerged) < len(groups) {
		t.Errorf("unmerged categories (%d) should be >= merged (%d)", len(unmerged), len(groups))
	}
}

func TestBuildSmallClassifiers(t *testing.T) {
	for _, fam := range []string{"acl1", "fw1", "ipc1"} {
		f, _ := classbench.FamilyByName(fam)
		set := classbench.Generate(f, 300, 1)
		c, err := Build(set, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if len(c.Trees) == 0 || len(c.Trees) != len(c.Labels) {
			t.Fatalf("%s: %d trees / %d labels", fam, len(c.Trees), len(c.Labels))
		}
		m := c.Metrics()
		if m.MemoryBytes <= 0 || m.ClassificationTime <= 0 {
			t.Errorf("%s: degenerate metrics %+v", fam, m)
		}
		checkClassifierEquivalence(t, c, set, 1500, 7)
	}
}

func TestEffiCutsReducesReplicationOnFirewalls(t *testing.T) {
	// The EffiCuts headline claim: separable trees slash the memory blow-up
	// that HiCuts suffers on wildcard-heavy firewall classifiers.
	f, _ := classbench.FamilyByName("fw3")
	set := classbench.Generate(f, 500, 3)
	effi, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	em, hm := effi.Metrics(), hi.ComputeMetrics()
	if em.MemoryBytes >= hm.MemoryBytes {
		t.Errorf("EffiCuts memory %d should beat HiCuts %d on fw3", em.MemoryBytes, hm.MemoryBytes)
	}
	// The price EffiCuts pays is classification time (multiple trees).
	if em.ClassificationTime <= 1 {
		t.Errorf("implausible EffiCuts time %d", em.ClassificationTime)
	}
	replication := float64(em.RuleRefs) / float64(set.Len())
	if replication > 3 {
		t.Errorf("EffiCuts replication factor %.1f is too high", replication)
	}
}

func TestEquiDenseVsEqualCuts(t *testing.T) {
	// Disabling the equi-dense cuts (the Section 6.3 ablation) must still
	// produce a correct classifier.
	f, _ := classbench.FamilyByName("acl4")
	set := classbench.Generate(f, 250, 5)
	cfg := DefaultConfig()
	cfg.EquiDense = false
	c, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkClassifierEquivalence(t, c, set, 1000, 6)
}

func TestBuildZeroConfig(t *testing.T) {
	f, _ := classbench.FamilyByName("ipc2")
	set := classbench.Generate(f, 150, 4)
	c, err := Build(set, Config{EquiDense: true, EnableTreeMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	checkClassifierEquivalence(t, c, set, 600, 8)
}

func TestUnseparableRulesTerminate(t *testing.T) {
	rules := make([]rule.Rule, 40)
	for i := range rules {
		rules[i] = rule.NewWildcardRule(i)
	}
	set := rule.NewSet(rules)
	c, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkClassifierEquivalence(t, c, set, 200, 9)
}

func TestEquiDensePointsRespectMaxCuts(t *testing.T) {
	f, _ := classbench.FamilyByName("acl1")
	set := classbench.Generate(f, 400, 2)
	tr := tree.NewFromRules(set.Rules(), 16, set.Len())
	points := equiDensePoints(tr.Root, rule.DimSrcIP, 8)
	if len(points) > 7 {
		t.Errorf("got %d points for maxCuts=8", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i] <= points[i-1] {
			t.Error("points not strictly increasing")
		}
	}
	// A node with no endpoints inside its box yields no points.
	empty := tree.NewFromRules([]rule.Rule{rule.NewWildcardRule(0)}, 16, 1)
	if got := equiDensePoints(empty.Root, rule.DimSrcIP, 8); len(got) != 0 {
		t.Errorf("wildcard-only node produced points %v", got)
	}
}

func TestPatternStringAndMetricsOnLabels(t *testing.T) {
	f, _ := classbench.FamilyByName("fw2")
	set := classbench.Generate(f, 200, 6)
	cfg := DefaultConfig()
	cfg.EnableTreeMerging = false
	c, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range c.Labels {
		if len(l) != rule.NumDims {
			t.Errorf("unmerged label %q should be a pattern string", l)
		}
	}
	checkClassifierEquivalence(t, c, set, 600, 10)
}
