// Package efficuts implements EffiCuts (Vamanan, Voskuilen & Vijaykumar,
// SIGCOMM 2010), the third baseline in the paper's evaluation and the source
// of the "EffiCuts partition" action NeuroCuts can learn to use.
//
// EffiCuts attacks rule replication with four heuristics; this package
// implements the two that determine the algorithm's structure and results:
//
//   - Separable trees: rules are first partitioned by their "largeness"
//     pattern — for every dimension a rule is either large (it covers more
//     than half of the dimension's space) or small. Rules sharing a pattern
//     are separable and go into the same category; each category gets its
//     own decision tree, which eliminates the replication caused by mixing
//     wide and narrow rules.
//   - Tree merging: categories whose patterns differ only in dimensions
//     where at least one side is large are merged, bounding the number of
//     trees (and hence the classification-time cost of visiting all of
//     them).
//
// Inside each tree EffiCuts uses equi-dense cuts — cut boundaries placed at
// the rule-range endpoints so that children receive balanced rule counts —
// rather than HiCuts' equal-sized cuts.
package efficuts

import (
	"fmt"
	"sort"

	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// LargenessFraction is the coverage threshold above which a rule counts as
// "large" in a dimension (0.5 in the original paper).
const LargenessFraction = 0.5

// Config holds the EffiCuts tuning knobs.
type Config struct {
	// Binth is the leaf threshold.
	Binth int
	// MaxCuts caps the fan-out of an equi-dense cut.
	MaxCuts int
	// MaxDepth aborts pathological constructions; 0 means no limit.
	MaxDepth int
	// EnableTreeMerging merges categories that differ only in large
	// dimensions (on in DefaultConfig); disabling it yields one tree per
	// distinct largeness pattern.
	EnableTreeMerging bool
	// EquiDense selects equi-dense cuts; when false the per-tree builder
	// falls back to equal-sized cuts (used for the ablation in Section 6.3
	// where EffiCuts' special cut types are disabled).
	EquiDense bool
}

// DefaultConfig returns the standard EffiCuts configuration.
func DefaultConfig() Config {
	return Config{
		Binth:             tree.DefaultBinth,
		MaxCuts:           16,
		MaxDepth:          256,
		EnableTreeMerging: true,
		EquiDense:         true,
	}
}

// Classifier is the multi-tree classifier EffiCuts produces: one decision
// tree per (possibly merged) rule category. A packet is classified by
// looking it up in every tree and taking the highest-priority match.
type Classifier struct {
	// Trees are the per-category decision trees.
	Trees []*tree.Tree
	// Labels names each tree's category (for inspection).
	Labels []string
}

// Classify returns the highest-priority rule matching p across all trees.
func (c *Classifier) Classify(p rule.Packet) (rule.Rule, bool) {
	return tree.ClassifyMulti(c.Trees, p)
}

// Metrics aggregates the metrics of all trees (time adds up because every
// tree is consulted).
func (c *Classifier) Metrics() tree.Metrics {
	return tree.MultiMetrics(c.Trees)
}

// Build constructs the EffiCuts multi-tree classifier.
func Build(s *rule.Set, cfg Config) (*Classifier, error) {
	if cfg.Binth <= 0 {
		cfg.Binth = tree.DefaultBinth
	}
	if cfg.MaxCuts < 2 {
		cfg.MaxCuts = 16
	}
	groups, labels := PartitionRules(s.Rules(), cfg.EnableTreeMerging)
	c := &Classifier{}
	for i, g := range groups {
		t := tree.NewFromRules(g, cfg.Binth, len(g))
		if err := buildNode(t, t.Root, cfg); err != nil {
			return nil, fmt.Errorf("efficuts: building tree %q: %w", labels[i], err)
		}
		c.Trees = append(c.Trees, t)
		c.Labels = append(c.Labels, labels[i])
	}
	return c, nil
}

// Pattern is a rule's largeness pattern: Pattern[d] is true when the rule is
// large in dimension d.
type Pattern [rule.NumDims]bool

// String renders the pattern as a string of L/S characters in dimension
// order.
func (p Pattern) String() string {
	out := make([]byte, rule.NumDims)
	for i := range out {
		if p[i] {
			out[i] = 'L'
		} else {
			out[i] = 'S'
		}
	}
	return string(out)
}

// LargeCount returns the number of large dimensions in the pattern.
func (p Pattern) LargeCount() int {
	n := 0
	for _, b := range p {
		if b {
			n++
		}
	}
	return n
}

// PatternOf computes a rule's largeness pattern.
func PatternOf(r rule.Rule) Pattern {
	var p Pattern
	for _, d := range rule.Dimensions() {
		p[d] = r.Coverage(d) > LargenessFraction
	}
	return p
}

// MaxMergedTrees is the target number of trees after tree merging; merging
// stops once the category count drops to this bound (or no compatible pair
// remains).
const MaxMergedTrees = 8

// PartitionRules splits rules into separable categories by largeness
// pattern, optionally merging categories. It returns the rule groups (each
// in priority order) and a label per group. The groups are returned in a
// deterministic order (by label).
//
// Tree merging follows EffiCuts' compatibility rule: two categories may only
// merge when their largeness patterns differ in exactly one dimension, so
// that the merged category stays separable in every other dimension and the
// extra replication introduced by the merge is bounded. Merging repeatedly
// joins the smallest compatible pair until at most MaxMergedTrees categories
// remain or no compatible pair exists.
func PartitionRules(rules []rule.Rule, merge bool) ([][]rule.Rule, []string) {
	byPattern := map[Pattern][]rule.Rule{}
	for _, r := range rules {
		p := PatternOf(r)
		byPattern[p] = append(byPattern[p], r)
	}
	type category struct {
		pattern Pattern
		rules   []rule.Rule
	}
	var cats []category
	for p, rs := range byPattern {
		cats = append(cats, category{pattern: p, rules: rs})
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i].pattern.String() < cats[j].pattern.String() })

	if merge {
		for len(cats) > MaxMergedTrees {
			bestI, bestJ := -1, -1
			bestSize := 0
			for i := 0; i < len(cats); i++ {
				for j := i + 1; j < len(cats); j++ {
					if patternDistance(cats[i].pattern, cats[j].pattern) != 1 {
						continue
					}
					size := len(cats[i].rules) + len(cats[j].rules)
					if bestI < 0 || size < bestSize {
						bestI, bestJ, bestSize = i, j, size
					}
				}
			}
			if bestI < 0 {
				break
			}
			merged := category{
				pattern: unionPattern(cats[bestI].pattern, cats[bestJ].pattern),
				rules:   append(append([]rule.Rule(nil), cats[bestI].rules...), cats[bestJ].rules...),
			}
			// Remove j first (larger index), then i, then append the merge.
			cats = append(cats[:bestJ], cats[bestJ+1:]...)
			cats = append(cats[:bestI], cats[bestI+1:]...)
			cats = append(cats, merged)
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i].pattern.String() < cats[j].pattern.String() })
	}

	out := make([][]rule.Rule, 0, len(cats))
	labels := make([]string, 0, len(cats))
	for _, c := range cats {
		sort.SliceStable(c.rules, func(i, j int) bool { return c.rules[i].Priority < c.rules[j].Priority })
		out = append(out, c.rules)
		labels = append(labels, c.pattern.String())
	}
	return out, labels
}

// patternDistance counts the dimensions in which two patterns differ.
func patternDistance(a, b Pattern) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// unionPattern returns the element-wise OR of two patterns (large wherever
// either input is large).
func unionPattern(a, b Pattern) Pattern {
	var out Pattern
	for i := range a {
		out[i] = a[i] || b[i]
	}
	return out
}

// buildNode recursively expands a single category tree.
func buildNode(t *tree.Tree, n *tree.Node, cfg Config) error {
	if t.IsTerminal(n) {
		return nil
	}
	if cfg.MaxDepth > 0 && n.Depth >= cfg.MaxDepth {
		return nil
	}
	dim, ok := chooseDimension(n)
	if !ok {
		return nil
	}
	var children []*tree.Node
	var err error
	if cfg.EquiDense {
		points := equiDensePoints(n, dim, cfg.MaxCuts)
		if len(points) == 0 {
			// Cannot place a meaningful boundary: fall back to an equal cut.
			children, err = t.Cut(n, dim, 2)
		} else {
			children, err = t.CutAtPoints(n, dim, points)
		}
	} else {
		k := equalCutCount(n, cfg)
		children, err = t.Cut(n, dim, k)
	}
	if err != nil {
		return fmt.Errorf("cut at depth %d: %w", n.Depth, err)
	}
	progress := false
	for _, c := range children {
		if c.NumRules() < n.NumRules() {
			progress = true
			break
		}
	}
	for _, c := range children {
		if !progress && c.NumRules() == n.NumRules() {
			continue
		}
		if err := buildNode(t, c, cfg); err != nil {
			return err
		}
	}
	return nil
}

// chooseDimension picks the cuttable dimension with the most distinct
// range endpoints inside the node's box.
func chooseDimension(n *tree.Node) (rule.Dimension, bool) {
	best := rule.DimSrcIP
	bestCount := -1
	found := false
	for _, d := range rule.Dimensions() {
		if n.Box[d].Size() < 2 {
			continue
		}
		count := rule.DistinctValueCount(n.Rules, d, n.Box[d])
		if count > bestCount {
			best, bestCount, found = d, count, true
		}
	}
	return best, found && bestCount >= 2
}

// equiDensePoints returns up to maxCuts-1 cut boundaries for dimension dim
// placed at rule-range endpoints so that each child receives a roughly equal
// share of the node's rules.
func equiDensePoints(n *tree.Node, dim rule.Dimension, maxCuts int) []uint64 {
	box := n.Box[dim]
	// Candidate boundaries: the starts of rule ranges (clipped), plus the
	// positions just after range ends, excluding the box's own start.
	candSet := map[uint64]struct{}{}
	for _, r := range n.Rules {
		rr, ok := r.Ranges[dim].Intersect(box)
		if !ok {
			continue
		}
		if rr.Lo > box.Lo {
			candSet[rr.Lo] = struct{}{}
		}
		if rr.Hi < box.Hi {
			candSet[rr.Hi+1] = struct{}{}
		}
	}
	if len(candSet) == 0 {
		return nil
	}
	cands := make([]uint64, 0, len(candSet))
	for v := range candSet {
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	want := maxCuts - 1
	if want < 1 {
		want = 1
	}
	if len(cands) <= want {
		return cands
	}
	// Thin the candidate list evenly so the fan-out stays within maxCuts.
	out := make([]uint64, 0, want)
	for i := 1; i <= want; i++ {
		idx := i * len(cands) / (want + 1)
		if idx >= len(cands) {
			idx = len(cands) - 1
		}
		v := cands[idx]
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// equalCutCount picks the equal-size fan-out used when equi-dense cuts are
// disabled.
func equalCutCount(n *tree.Node, cfg Config) int {
	k := 4
	for k*k < n.NumRules() && k*2 <= cfg.MaxCuts {
		k *= 2
	}
	if k > cfg.MaxCuts {
		k = cfg.MaxCuts
	}
	if k < 2 {
		k = 2
	}
	return k
}
