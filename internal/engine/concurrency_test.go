package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// TestConcurrentBatchDuringUpdates runs concurrent ClassifyBatch readers
// against a writer that continuously inserts and deletes rules, forcing
// snapshot swaps. The classifier carries a wildcard default rule that the
// writer never touches, so every lookup must succeed: a single lost lookup
// (ok=false) or a returned rule that does not actually match its packet
// means a reader observed a torn or stale-freed structure. Run under
// `go test -race` this also proves the RCU swap publishes safely.
func TestConcurrentBatchDuringUpdates(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	base := classbench.Generate(fam, 150, 3)
	rules := append([]rule.Rule(nil), base.Rules()...)
	rules = append(rules, rule.NewWildcardRule(len(rules)))
	set := rule.NewSet(rules)

	var packets []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 512, 4) {
		packets = append(packets, e.Key)
	}

	const (
		readers = 4
		updates = 30
	)
	for _, backend := range []string{"hicuts", "tss", "linear"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			eng, err := NewEngine(backend, set, Options{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}

			var (
				stop      atomic.Bool
				lost      atomic.Int64
				mismatch  atomic.Int64
				completed atomic.Int64
				wg        sync.WaitGroup
			)
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := make([]Result, len(packets))
					for !stop.Load() {
						eng.ClassifyBatch(packets, out)
						for i := range out {
							if !out[i].OK {
								lost.Add(1)
							} else if !out[i].Rule.Matches(packets[i]) {
								mismatch.Add(1)
							}
						}
						completed.Add(int64(len(out)))
					}
				}()
			}

			// Writer: insert a high-priority rule, then delete it, over and
			// over. Each call rebuilds off-line and swaps the snapshot.
			lastVersion := eng.Version()
			for u := 0; u < updates; u++ {
				r := rule.NewWildcardRule(0)
				r.Ranges[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
				ins, err := eng.Insert(0, r)
				if err != nil {
					t.Fatalf("update %d: insert: %v", u, err)
				}
				if ins.Version <= lastVersion {
					t.Fatalf("update %d: version did not advance: %d -> %d", u, lastVersion, ins.Version)
				}
				lastVersion = ins.Version
				del, err := eng.Delete(ins.ID)
				if err != nil {
					t.Fatalf("update %d: delete: %v", u, err)
				}
				lastVersion = del.Version
			}
			// Fast backends can finish all updates before the readers get
			// scheduled; keep the engine serving until every reader has
			// pushed through at least one full batch so the overlap is real.
			for completed.Load() < int64(readers*len(packets)) {
				runtime.Gosched()
			}
			stop.Store(true)
			wg.Wait()

			if n := lost.Load(); n > 0 {
				t.Errorf("%d lookups lost (ok=false) despite the default rule", n)
			}
			if n := mismatch.Load(); n > 0 {
				t.Errorf("%d lookups returned a rule that does not match its packet", n)
			}
			if completed.Load() == 0 {
				t.Error("readers completed no batches; test proved nothing")
			}
			if eng.Rules().Len() != set.Len() {
				t.Errorf("rule count drifted: %d, want %d", eng.Rules().Len(), set.Len())
			}
		})
	}
}
