package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// overlayTestSet mirrors allocTestSet with a distinct seed so update tests
// and allocation tests stay independent.
func overlayTestSet(t testing.TB, size int) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, 11)
}

// poisonBuild replaces the engine's captured backend builder with one that
// always fails, so any code path that rebuilds from here on is caught.
func poisonBuild(e *Engine) {
	s := e.snap.Load()
	ns := *s
	ns.build = func(set *rule.Set, opts Options) (Classifier, error) { return nil, poisonedErr }
	e.snap.Store(&ns)
}

// TestOverlayUpdatesNeverBuild is the subsystem's acceptance test: with the
// updater enabled, single-rule Insert and Delete on a 10k-rule tree backend
// must complete without invoking the backend build path (the builder is
// poisoned after construction), and lookups must keep matching linear
// search over the merged list.
func TestOverlayUpdatesNeverBuild(t *testing.T) {
	set := overlayTestSet(t, 10000)
	eng, err := NewEngine("hicuts", set, Options{Shards: 2, OnlineUpdates: true, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	poisonBuild(eng)

	r := set.Rule(3)
	res, err := eng.Insert(5000, r)
	if err != nil {
		t.Fatalf("overlay Insert invoked the build path: %v", err)
	}
	if _, err := eng.Delete(set.Rule(123).ID); err != nil {
		t.Fatalf("overlay Delete invoked the build path: %v", err)
	}
	if _, err := eng.Delete(res.ID); err != nil {
		t.Fatalf("overlay Delete of overlay rule: %v", err)
	}
	st := eng.UpdaterStats()
	if !st.Enabled || st.Tombstones != 1 {
		t.Fatalf("stats %+v: want enabled with 1 tombstone", st)
	}

	merged := eng.Rules()
	mismatch := 0
	for _, e := range classbench.GenerateTrace(merged, 3000, 13) {
		want := merged.MatchIndex(e.Key)
		got, ok := eng.Classify(e.Key)
		if (want < 0) != !ok || (ok && got.Priority != want) {
			mismatch++
		}
	}
	if mismatch > 0 {
		t.Fatalf("%d lookups diverge from linear search after overlay updates", mismatch)
	}
}

// TestOverlayDifferential interleaves 1k updates with 12k ClassBench
// packets and checks every lookup against linear search over the engine's
// current merged rule list — for a compiled tree base and for tss and
// linear bases, with background compaction live (threshold 64) so both the
// fast path and the tombstoned-winner rescan are exercised across base
// generations.
func TestOverlayDifferential(t *testing.T) {
	for _, backend := range []string{"hicuts", "tss", "linear"} {
		t.Run(backend, func(t *testing.T) {
			set := overlayTestSet(t, 400)
			eng, err := NewEngine(backend, set, Options{Shards: 1, OnlineUpdates: true, CompactThreshold: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			rng := rand.New(rand.NewSource(42))
			trace := classbench.GenerateTrace(set, 12000, 17)
			var inserted []int
			updates := 0
			for i, e := range trace {
				if i%12 == 0 && updates < 1000 {
					if len(inserted) > 0 && rng.Intn(3) == 0 {
						k := rng.Intn(len(inserted))
						id := inserted[k]
						inserted = append(inserted[:k], inserted[k+1:]...)
						if _, err := eng.Delete(id); err != nil {
							t.Fatalf("update %d: delete %d: %v", updates, id, err)
						}
					} else {
						r := set.Rule(rng.Intn(set.Len()))
						res, err := eng.Insert(rng.Intn(eng.Rules().Len()+1), r)
						if err != nil {
							t.Fatalf("update %d: insert: %v", updates, err)
						}
						inserted = append(inserted, res.ID)
					}
					updates++
				}
				merged := eng.Rules()
				want := merged.MatchIndex(e.Key)
				got, ok := eng.Classify(e.Key)
				if (want < 0) != !ok {
					t.Fatalf("packet %d (%v): ok=%v want match=%v", i, e.Key, ok, want >= 0)
				}
				if ok && got.Priority != want {
					t.Fatalf("packet %d (%v): got priority %d, want %d", i, e.Key, got.Priority, want)
				}
			}
			if updates < 1000 {
				t.Fatalf("only %d updates applied", updates)
			}
		})
	}
}

// TestOverlayConcurrentReadersWritersCompactor hammers one engine with
// concurrent single and batch readers while a writer churns through the
// overlay and an aggressive compaction threshold keeps the background
// compactor busy. Run under -race (CI does) this is the subsystem's data
// race probe; functionally it asserts readers always see a coherent
// snapshot (every result matches that snapshot's own rule list).
func TestOverlayConcurrentReadersWritersCompactor(t *testing.T) {
	set := overlayTestSet(t, 300)
	eng, err := NewEngine("hicuts", set, Options{Shards: 2, OnlineUpdates: true,
		CompactThreshold: 8, CompactMaxAge: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	trace := classbench.GenerateTrace(set, 2000, 19)
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Writer: 300 insert/delete pairs through the overlay.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300 && !stop.Load(); i++ {
			res, err := eng.Insert(i%(eng.Rules().Len()+1), set.Rule(i%set.Len()))
			if err != nil {
				errCh <- err
				return
			}
			if i%2 == 0 {
				if _, err := eng.Delete(res.ID); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	// Readers: single-packet lookups cross-checked against the snapshot's
	// own merged list.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < 4000 && !stop.Load(); i++ {
				p := keys[rng.Intn(len(keys))]
				got, ok := eng.Classify(p)
				// The snapshot may advance between loads, so the winner can
				// legitimately differ run to run — but a returned rule must
				// always actually match the packet.
				if ok && !got.Matches(p) {
					errCh <- fmt.Errorf("reader %d: returned rule %d does not match packet %v", seed, got.ID, p)
					return
				}
			}
		}(g)
	}

	// Batch reader through the sharded worker pool.
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]Result, len(keys))
		for i := 0; i < 60 && !stop.Load(); i++ {
			eng.ClassifyBatch(keys, out)
			for k, r := range out {
				if r.OK && !r.Rule.Matches(keys[k]) {
					errCh <- fmt.Errorf("batch: rule %d does not match packet %v", r.Rule.ID, keys[k])
					return
				}
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if eng.UpdaterStats().Compactions == 0 {
		t.Fatal("compactor never ran despite aggressive threshold")
	}
	// After the dust settles, the final snapshot must be exactly consistent.
	merged := eng.Rules()
	for _, p := range keys[:500] {
		want := merged.MatchIndex(p)
		got, ok := eng.Classify(p)
		if (want < 0) != !ok || (ok && got.Priority != want) {
			t.Fatalf("final state: packet %v got (%d,%v) want idx %d", p, got.Priority, ok, want)
		}
	}
}

// TestOverlayZeroAllocLookups pins the merged lookup path at zero heap
// allocations per op with a live overlay and tombstones, on a compiled tree
// base and on the fallback bases the CI alloc gate has always pinned.
func TestOverlayZeroAllocLookups(t *testing.T) {
	set := overlayTestSet(t, 256)
	ps := allocTestPackets(set, 64)
	for _, backend := range []string{"linear", "tss", "hicuts", "cutsplit"} {
		eng, err := NewEngine(backend, set, Options{Shards: 1, OnlineUpdates: true, CompactThreshold: -1})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		// Populate the delta: a few overlay inserts and base tombstones.
		for i := 0; i < 8; i++ {
			if _, err := eng.Insert(i*20, set.Rule(i)); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		}
		for i := 0; i < 4; i++ {
			if _, err := eng.Delete(set.Rule(i*3 + 1).ID); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		}
		st := eng.UpdaterStats()
		if st.OverlayRules == 0 || st.Tombstones == 0 {
			t.Fatalf("%s: overlay=%d tombstones=%d", backend, st.OverlayRules, st.Tombstones)
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			p := ps[i%len(ps)]
			i++
			eng.Classify(p)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: overlay Classify allocates %.1f allocs/op, want 0", backend, allocs)
		}
	}
}

// TestInsertPositionClamping: positions outside [0, len] clamp to the
// bounds on both the rebuild and the overlay write paths.
func TestInsertPositionClamping(t *testing.T) {
	for _, online := range []bool{false, true} {
		set := overlayTestSet(t, 40)
		eng, err := NewEngine("linear", set, Options{Shards: 1, OnlineUpdates: online, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		w := rule.NewWildcardRule(0)
		res, err := eng.Insert(-5, w)
		if err != nil {
			t.Fatalf("online=%v: Insert(-5): %v", online, err)
		}
		if got := eng.Rules().Rule(0).ID; got != res.ID {
			t.Fatalf("online=%v: Insert(-5) landed at %d, want top", online, got)
		}
		res, err = eng.Insert(eng.Rules().Len()+100, w)
		if err != nil {
			t.Fatalf("online=%v: Insert(len+100): %v", online, err)
		}
		if got := eng.Rules().Rule(eng.Rules().Len() - 1).ID; got != res.ID {
			t.Fatalf("online=%v: Insert(len+100) landed at %d, want bottom", online, got)
		}
		eng.Close()
	}
}

// TestDeleteMissingRule: deleting a nonexistent ID — and deleting the same
// ID twice — fails with ErrRuleNotFound and an error naming the ID, on both
// write paths.
func TestDeleteMissingRule(t *testing.T) {
	for _, online := range []bool{false, true} {
		set := overlayTestSet(t, 30)
		eng, err := NewEngine("linear", set, Options{Shards: 1, OnlineUpdates: online, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Delete(987654); !errors.Is(err, ErrRuleNotFound) || !strings.Contains(err.Error(), "987654") {
			t.Fatalf("online=%v: Delete(987654) err = %v, want ErrRuleNotFound naming the ID", online, err)
		}
		id := set.Rule(7).ID
		if _, err := eng.Delete(id); err != nil {
			t.Fatalf("online=%v: first delete: %v", online, err)
		}
		if _, err := eng.Delete(id); !errors.Is(err, ErrRuleNotFound) {
			t.Fatalf("online=%v: double delete err = %v, want ErrRuleNotFound", online, err)
		}
		// The failed delete must not have bumped the version.
		v := eng.Version()
		if _, err := eng.Delete(987654); err == nil || eng.Version() != v {
			t.Fatalf("online=%v: failed delete changed version", online)
		}
		eng.Close()
	}
}

// TestJournalCrashRecovery: updates acknowledged to a journaling engine
// survive an abrupt abandonment (no Close, no artifact rewrite) and replay
// at the next warm start, with post-recovery lookups matching linear search
// over the recovered merged list — including when a compaction happened
// between updates.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "policy.ncaf")
	journal := JournalPathFor(artifact)

	set := overlayTestSet(t, 500)
	src, err := NewEngine("hicuts", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	src.Close()

	engA, err := NewEngineFromArtifact(artifact, Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var live []int
	for i := 0; i < 60; i++ {
		if len(live) > 5 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			if _, err := engA.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			res, err := engA.Insert(rng.Intn(engA.Rules().Len()+1), set.Rule(rng.Intn(set.Len())))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, res.ID)
		}
	}
	wantRules := append([]rule.Rule(nil), engA.Rules().Rules()...)
	// Crash: abandon engA without Close. (The journal file's writes are
	// already in the OS; only the in-memory state is lost.)

	engB, err := NewEngineFromArtifact(artifact, Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer engB.Close()
	got := engB.Rules().Rules()
	if len(got) != len(wantRules) {
		t.Fatalf("recovered %d rules, want %d", len(got), len(wantRules))
	}
	for i := range wantRules {
		if got[i].ID != wantRules[i].ID || got[i].Ranges != wantRules[i].Ranges {
			t.Fatalf("recovered rule %d = id %d, want id %d", i, got[i].ID, wantRules[i].ID)
		}
	}
	merged := engB.Rules()
	for _, e := range classbench.GenerateTrace(merged, 3000, 23) {
		want := merged.MatchIndex(e.Key)
		r, ok := engB.Classify(e.Key)
		if (want < 0) != !ok || (ok && r.Priority != want) {
			t.Fatalf("post-recovery packet %v: got (%d,%v) want idx %d", e.Key, r.Priority, ok, want)
		}
	}
	// New updates keep appending to the recovered journal.
	if _, err := engB.Insert(0, set.Rule(0)); err != nil {
		t.Fatal(err)
	}
	if st := engB.UpdaterStats(); st.JournalRecords != 61 {
		t.Fatalf("journal records = %d, want 61 (60 replayed + 1 new)", st.JournalRecords)
	}
	engA.Close()
}

// TestJournalRecoveryAfterCompaction: compaction changes the base but not
// the journal's replay semantics — records still apply to the journal's
// starting list.
func TestJournalRecoveryAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "u.journal")
	set := overlayTestSet(t, 200)

	engA, err := NewEngine("hicuts", set, Options{Shards: 1, JournalPath: journal, CompactThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := engA.Insert(i, set.Rule(i%set.Len())); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for engA.UpdaterStats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if engA.UpdaterStats().Compactions == 0 {
		t.Fatal("compactor never ran")
	}
	// A couple of post-compaction updates land in the new overlay.
	if _, err := engA.Insert(0, set.Rule(1)); err != nil {
		t.Fatal(err)
	}
	want := append([]rule.Rule(nil), engA.Rules().Rules()...)

	// Crash and recover onto a cold-built engine over the same generated
	// set: the journal's fingerprint matches the original base.
	engB, err := NewEngine("hicuts", overlayTestSet(t, 200), Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer engB.Close()
	got := engB.Rules().Rules()
	if len(got) != len(want) {
		t.Fatalf("recovered %d rules, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("recovered rule %d id=%d want %d", i, got[i].ID, want[i].ID)
		}
	}
	engA.Close()
}

// TestSaveArtifactCompactsAndRotates: saving an artifact mid-churn folds
// the overlay in (the artifact embodies every acknowledged update) and
// rotates the journal, and a warm start from artifact+journal reproduces
// the live state.
func TestSaveArtifactCompactsAndRotates(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "p.ncaf")
	journal := JournalPathFor(artifact)
	set := overlayTestSet(t, 150)

	eng, err := NewEngine("hicuts", set, Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 10; i++ {
		if _, err := eng.Insert(i*7, set.Rule(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.UpdaterStats(); st.OverlayRules != 10 {
		t.Fatalf("overlay=%d want 10", st.OverlayRules)
	}
	if err := eng.SaveArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	st := eng.UpdaterStats()
	if st.OverlayRules != 0 || st.JournalRecords != 0 {
		t.Fatalf("after save: overlay=%d journal=%d, want 0/0 (compacted + rotated)", st.OverlayRules, st.JournalRecords)
	}
	// Two post-checkpoint updates, then recover from artifact + journal.
	res, err := eng.Insert(0, set.Rule(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Delete(res.ID); err != nil {
		t.Fatal(err)
	}
	want := append([]rule.Rule(nil), eng.Rules().Rules()...)

	warm, err := NewEngineFromArtifact(artifact, Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	got := warm.Rules().Rules()
	if len(got) != len(want) {
		t.Fatalf("recovered %d rules, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("rule %d: id %d want %d", i, got[i].ID, want[i].ID)
		}
	}
}

// TestOverlayUnregisteredBackendStillUpdates: an artifact-served engine
// whose backend is not registered rejects rebuild-path updates but accepts
// overlay updates when the updater is on — updates no longer require the
// build path at all.
func TestOverlayUnregisteredBackendStillUpdates(t *testing.T) {
	set := artifactTestSet(t, 120)
	path := saveTestArtifact(t, set, "no-such-backend-overlay", t.TempDir())
	eng, err := NewEngineFromArtifact(path, Options{Shards: 1, OnlineUpdates: true, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Insert(0, rule.NewWildcardRule(0))
	if err != nil {
		t.Fatalf("overlay insert on unregistered backend: %v", err)
	}
	if r, ok := eng.Classify(rule.Packet{Proto: 99}); !ok || r.ID != res.ID {
		t.Fatalf("inserted wildcard not winning: %v %v", r, ok)
	}
	if _, err := eng.Delete(res.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSideSaveDoesNotRotateJournal: saving a snapshot to a path that is
// neither the journal's co-located companion nor the engine's own source
// artifact must leave the journal untouched — the configured
// artifact+journal pair must stay able to reconstruct acknowledged updates
// after a crash.
func TestSideSaveDoesNotRotateJournal(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "main.ncaf")
	journal := JournalPathFor(artifact)
	set := overlayTestSet(t, 120)

	src, err := NewEngine("hicuts", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	src.Close()

	eng, err := NewEngineFromArtifact(artifact, Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Insert(0, set.Rule(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Side snapshot: journal must keep its 5 records.
	if err := eng.SaveArtifact(filepath.Join(dir, "backup.ncaf")); err != nil {
		t.Fatal(err)
	}
	if st := eng.UpdaterStats(); st.JournalRecords != 5 {
		t.Fatalf("side save rotated the journal: %d records, want 5", st.JournalRecords)
	}
	want := append([]rule.Rule(nil), eng.Rules().Rules()...)
	// Crash and recover from the ORIGINAL pair: all 5 updates replay.
	warm, err := NewEngineFromArtifact(artifact, Options{Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatalf("recovery after side save: %v", err)
	}
	defer warm.Close()
	if got := warm.Rules().Rules(); len(got) != len(want) {
		t.Fatalf("recovered %d rules, want %d", len(got), len(want))
	}
	// Checkpointing the engine's own source artifact DOES rotate.
	if err := eng.SaveArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	if st := eng.UpdaterStats(); st.JournalRecords != 0 {
		t.Fatalf("own-pair checkpoint did not rotate: %d records", st.JournalRecords)
	}
	eng.Close()
}
