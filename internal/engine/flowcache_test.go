package engine

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// TestFlowCacheCorrectness checks that cached answers agree with the
// uncached engine on a skewed trace.
func TestFlowCacheCorrectness(t *testing.T) {
	fam, err := classbench.FamilyByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 3)
	cached, err := NewEngine("linear", set, Options{Shards: 1, FlowCacheEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	plain, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	trace := classbench.ZipfTrace(set, 5000, 64, 1.2, 11)
	for i, e := range trace {
		cr, cok := cached.Classify(e.Key)
		pr, pok := plain.Classify(e.Key)
		if cok != pok || (cok && cr.ID != pr.ID) {
			t.Fatalf("packet %d: cached (%v,%v) != plain (%v,%v)", i, cr.ID, cok, pr.ID, pok)
		}
	}
	hits, misses := cached.CacheStats()
	if hits == 0 {
		t.Fatalf("zipf trace produced no cache hits (misses=%d)", misses)
	}
	// Zipf skew over 64 flows against 256 slots should hit far more often
	// than it misses.
	if float64(hits)/float64(hits+misses) < 0.5 {
		t.Errorf("hit rate %.2f suspiciously low for zipf traffic (hits=%d misses=%d)",
			float64(hits)/float64(hits+misses), hits, misses)
	}
}

// TestFlowCacheInvalidatedByUpdate checks that a rule update can never serve
// a stale cached result: the snapshot version bump turns every old entry
// into a miss.
func TestFlowCacheInvalidatedByUpdate(t *testing.T) {
	// Rule 0 matches SrcIP=10 only; a wildcard default sits behind it.
	specific := rule.NewWildcardRule(0)
	specific.Ranges[rule.DimSrcIP] = rule.Range{Lo: 10, Hi: 10}
	set := rule.NewSet([]rule.Rule{specific, rule.NewWildcardRule(1)})
	eng, err := NewEngine("linear", set, Options{Shards: 1, FlowCacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	p := rule.Packet{SrcIP: 10}
	before, ok := eng.Classify(p)
	if !ok || before.ID != 0 {
		t.Fatalf("expected rule 0 before update, got %v ok=%v", before.ID, ok)
	}
	eng.Classify(p) // cache hit for the old snapshot

	if _, err := eng.Delete(0); err != nil {
		t.Fatal(err)
	}
	after, ok := eng.Classify(p)
	if !ok {
		t.Fatal("default rule should still match")
	}
	if after.ID == 0 {
		t.Fatalf("cache served deleted rule 0 after update")
	}
}

// TestFlowCacheBatchPath checks the batch fan-out also flows through the
// cache and agrees with ground truth.
func TestFlowCacheBatchPath(t *testing.T) {
	fam, err := classbench.FamilyByName("acl2")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 150, 5)
	eng, err := NewEngine("linear", set, Options{Shards: 4, FlowCacheEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	trace := classbench.ZipfTrace(set, 2048, 32, 1.3, 21)
	ps := make([]rule.Packet, len(trace))
	for i, e := range trace {
		ps[i] = e.Key
	}
	out := make([]Result, len(ps))
	eng.ClassifyBatch(ps, out)
	for i, e := range trace {
		want := e.MatchRule >= 0
		if out[i].OK != want {
			t.Fatalf("packet %d: ok=%v want %v", i, out[i].OK, want)
		}
		if want && out[i].Rule.ID != set.Rule(e.MatchRule).ID {
			t.Fatalf("packet %d: rule %d want %d", i, out[i].Rule.ID, set.Rule(e.MatchRule).ID)
		}
	}
	if hits, _ := eng.CacheStats(); hits == 0 {
		t.Error("batch path bypassed the flow cache")
	}
}
