package engine

import (
	"testing"

	"neurocuts/internal/rule"
)

// TestResultBufNoStaleLeak is the regression test for pooled result-buffer
// reuse: a buffer recycled from a batch full of matches must come back fully
// cleared, so a later, larger or partially written batch can never observe a
// stale match from the earlier one.
func TestResultBufNoStaleLeak(t *testing.T) {
	buf := GetResultBuf(8)
	if len(buf) != 8 {
		t.Fatalf("GetResultBuf(8) length = %d", len(buf))
	}
	for i := range buf {
		buf[i] = Result{OK: true, Rule: rule.Rule{ID: 99, Priority: 42}}
	}
	PutResultBuf(buf)

	// Same pool, larger request: every slot — including the ones beyond the
	// first batch's length — must read as zero / no-match.
	buf2 := GetResultBuf(16)
	if len(buf2) != 16 {
		t.Fatalf("GetResultBuf(16) length = %d", len(buf2))
	}
	for i, r := range buf2 {
		if r.OK || r.Rule.ID != 0 || r.Rule.Priority != 0 {
			t.Fatalf("slot %d leaked stale result %+v", i, r)
		}
	}
	PutResultBuf(buf2)
}

// TestResultBufStaleLeakThroughEngine drives the leak scenario end to end:
// classify a batch of matching packets into a pooled buffer, recycle it,
// then classify a smaller batch of non-matching packets into a recycled
// buffer and check the tail slots don't resurrect the old matches.
func TestResultBufStaleLeakThroughEngine(t *testing.T) {
	// One rule matching exactly one source address, and no default rule, so
	// a miss is really a miss.
	r := rule.NewWildcardRule(0)
	r.Ranges[rule.DimSrcIP] = rule.Range{Lo: 10, Hi: 10}
	set := rule.NewSet([]rule.Rule{r})
	eng, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	match := rule.Packet{SrcIP: 10}
	miss := rule.Packet{SrcIP: 11}

	ps := []rule.Packet{match, match, match, match}
	out := GetResultBuf(len(ps))
	eng.ClassifyBatch(ps, out)
	for i, res := range out {
		if !res.OK {
			t.Fatalf("packet %d should match", i)
		}
	}
	PutResultBuf(out)

	ps2 := []rule.Packet{miss, miss}
	out2 := GetResultBuf(4) // recycled buffer, longer than the batch
	eng.ClassifyBatch(ps2, out2[:len(ps2)])
	for i := 0; i < len(ps2); i++ {
		if out2[i].OK {
			t.Fatalf("packet %d: stale match leaked: %+v", i, out2[i])
		}
	}
	for i := len(ps2); i < len(out2); i++ {
		if out2[i].OK || out2[i].Rule.ID != 0 {
			t.Fatalf("unwritten slot %d holds stale result %+v", i, out2[i])
		}
	}
	PutResultBuf(out2)
}

// TestPacketBufCleared mirrors the result-buffer guarantee for packet
// buffers: recycled buffers come back zeroed, so slots skipped by a parse
// error read as the zero packet.
func TestPacketBufCleared(t *testing.T) {
	buf := GetPacketBuf(4)
	for i := range buf {
		buf[i] = rule.Packet{SrcIP: 0xdeadbeef, Proto: 6}
	}
	PutPacketBuf(buf)
	buf2 := GetPacketBuf(8)
	for i, p := range buf2 {
		if p != (rule.Packet{}) {
			t.Fatalf("slot %d holds stale packet %+v", i, p)
		}
	}
	PutPacketBuf(buf2)
}

// TestBufPoolGrowth covers the grow path: a request larger than the pooled
// capacity must still return a right-sized cleared buffer.
func TestBufPoolGrowth(t *testing.T) {
	big := GetResultBuf(5000)
	if len(big) != 5000 {
		t.Fatalf("length = %d", len(big))
	}
	for i := range big {
		if big[i].OK {
			t.Fatalf("slot %d not cleared", i)
		}
	}
	PutResultBuf(big)
	again := GetResultBuf(5000)
	if len(again) != 5000 {
		t.Fatalf("recycled length = %d", len(again))
	}
	PutResultBuf(again)
}
