package engine

import (
	"strings"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// realBackends returns the registry minus backends registered by tests
// themselves (e.g. the poisoned warm-start backend), whose names carry a
// "-test-" marker.
func realBackends() []string {
	var out []string
	for _, b := range Backends() {
		if !strings.Contains(b, "-test-") {
			out = append(out, b)
		}
	}
	return out
}

// testSet generates a small ClassBench classifier for the unit tests.
func testSet(t *testing.T, family string, size int) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, 1)
}

func TestBackendsRegistered(t *testing.T) {
	want := []string{"cutsplit", "efficuts", "hicuts", "hypercuts", "linear", "neurocuts", "tcam", "tss"}
	got := realBackends()
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
}

func TestNewUnknownBackend(t *testing.T) {
	set := testSet(t, "acl1", 50)
	if _, err := New("no-such-backend", set); err == nil {
		t.Fatal("New with unknown backend: expected error")
	} else if !strings.Contains(err.Error(), "hicuts") {
		t.Errorf("error should list known backends, got: %v", err)
	}
}

func TestDisplayName(t *testing.T) {
	if got := DisplayName("hicuts"); got != "HiCuts" {
		t.Errorf("DisplayName(hicuts) = %q", got)
	}
	if got := DisplayName("mystery"); got != "mystery" {
		t.Errorf("DisplayName(mystery) = %q, want input unchanged", got)
	}
}

func TestMetricsPopulated(t *testing.T) {
	set := testSet(t, "acl1", 100)
	for _, name := range []string{"linear", "hicuts", "tss", "tcam"} {
		cls, err := New(name, set)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := cls.Metrics()
		if m.Backend != name {
			t.Errorf("%s: Metrics().Backend = %q", name, m.Backend)
		}
		if m.Rules != set.Len() {
			t.Errorf("%s: Metrics().Rules = %d, want %d", name, m.Rules, set.Len())
		}
		if m.LookupCost <= 0 || m.MemoryBytes <= 0 || m.Entries <= 0 {
			t.Errorf("%s: metrics not populated: %+v", name, m)
		}
	}
}

// TestEngineBatchMatchesSingle checks that the sharded batch path returns
// exactly what the single-packet path returns, across shard counts and batch
// sizes spanning the inline/fan-out threshold.
func TestEngineBatchMatchesSingle(t *testing.T) {
	set := testSet(t, "fw1", 200)
	trace := classbench.GenerateTrace(set, 2000, 7)
	for _, shards := range []int{1, 2, 8} {
		eng, err := NewEngine("hicuts", set, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 63, 128, 2000} {
			ps := make([]rule.Packet, n)
			for i := range ps {
				ps[i] = trace[i%len(trace)].Key
			}
			out := make([]Result, n)
			eng.ClassifyBatch(ps, out)
			for i, p := range ps {
				r, ok := eng.Classify(p)
				if out[i].OK != ok || (ok && out[i].Rule.Priority != r.Priority) {
					t.Fatalf("shards=%d n=%d packet %d: batch (%v, prio %d) != single (%v, prio %d)",
						shards, n, i, out[i].OK, out[i].Rule.Priority, ok, r.Priority)
				}
			}
		}
	}
}

// TestEngineInsertDelete exercises the RCU update path sequentially: an
// inserted top-priority rule must win immediately after the swap, and
// deleting it must restore the previous winner.
func TestEngineInsertDelete(t *testing.T) {
	set := testSet(t, "acl1", 100)
	for _, backend := range []string{"linear", "hicuts", "tss"} {
		eng, err := NewEngine(backend, set, Options{})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if v := eng.Version(); v != 1 {
			t.Fatalf("%s: initial version %d", backend, v)
		}

		p := rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
		before, beforeOK := eng.Classify(p)

		// A wildcard rule at position 0 must now match everything first.
		res, err := eng.Insert(0, rule.NewWildcardRule(0))
		if err != nil {
			t.Fatalf("%s: insert: %v", backend, err)
		}
		if res.Version != 2 {
			t.Errorf("%s: version after insert = %d, want 2", backend, res.Version)
		}
		if res.Rules != set.Len()+1 {
			t.Errorf("%s: UpdateResult.Rules = %d, want %d", backend, res.Rules, set.Len()+1)
		}
		id := res.ID
		got, ok := eng.Classify(p)
		if !ok || got.ID != id || got.Priority != 0 {
			t.Fatalf("%s: after insert got (%+v, %v), want inserted rule id %d", backend, got, ok, id)
		}
		if eng.Rules().Len() != set.Len()+1 {
			t.Errorf("%s: rules = %d, want %d", backend, eng.Rules().Len(), set.Len()+1)
		}

		// Deleting it restores the original classification.
		if _, err := eng.Delete(id); err != nil {
			t.Fatalf("%s: delete: %v", backend, err)
		}
		after, afterOK := eng.Classify(p)
		if afterOK != beforeOK || (beforeOK && after.Priority != before.Priority) {
			t.Fatalf("%s: after delete got (%+v, %v), want original (%+v, %v)",
				backend, after, afterOK, before, beforeOK)
		}
		if _, err := eng.Delete(id); err == nil {
			t.Errorf("%s: deleting a missing id should fail", backend)
		}
		if v := eng.Version(); v != 3 {
			t.Errorf("%s: final version = %d, want 3 (failed delete must not bump)", backend, v)
		}
	}
}
