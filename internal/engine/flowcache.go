package engine

import (
	"sync"

	"neurocuts/internal/rule"
)

// flowCache is a sharded, direct-mapped cache of recent classification
// results. Real traffic is heavily skewed — a small number of flows carries
// most packets (the Zipf-shaped workloads internal/perf generates) — so a
// cache of (5-tuple -> result) turns the common-case lookup into one hash
// and one array read, regardless of how expensive the underlying structure's
// traversal is.
//
// Correctness under updates: every slot records the engine snapshot version
// it was filled from, and a hit requires the stored version to equal the
// current snapshot's version. A rule update bumps the version, so every
// stale entry silently becomes a miss; no explicit invalidation pass is
// needed and a hit can never return a result from a retired rule set.
//
// The cache is allocation-free on both hit and miss paths: slots are a flat
// preallocated array of values, and the hash is computed inline from the
// packet fields.
type flowCache struct {
	shards    []cacheShard
	shardMask uint64
	slotMask  uint64
}

// cacheShard is one independently locked region of the cache. Hit/miss
// counters live per shard, updated under the shard lock the lookup already
// holds — global atomic counters would put one contended cache line back on
// the hot path the sharding exists to avoid. The pad keeps neighbouring
// shards' headers off the same cache line.
type cacheShard struct {
	mu     sync.Mutex
	slots  []cacheSlot
	hits   uint64
	misses uint64
	_      [24]byte
}

// cacheSlot is one direct-mapped entry.
type cacheSlot struct {
	key     rule.Packet
	version uint64
	rule    rule.Rule
	ok      bool
	valid   bool
}

// defaultCacheShards bounds lock contention; 64 shards keeps the probability
// of two concurrent lookups colliding on a lock low at any realistic core
// count while costing only 64 mutexes of overhead.
const defaultCacheShards = 64

// newFlowCache builds a cache with at least the requested number of entries,
// rounded so both the shard count and the per-shard slot count are powers of
// two (index extraction is then two masks on one hash).
func newFlowCache(entries, shards int) *flowCache {
	if entries <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	shards = ceilPow2(shards)
	perShard := ceilPow2((entries + shards - 1) / shards)
	if perShard < 1 {
		perShard = 1
	}
	c := &flowCache{
		shards:    make([]cacheShard, shards),
		shardMask: uint64(shards - 1),
		slotMask:  uint64(perShard - 1),
	}
	for i := range c.shards {
		c.shards[i].slots = make([]cacheSlot, perShard)
	}
	return c
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// HashPacket mixes a packet's five header fields FNV-1a style into one
// 64-bit flow hash. It is the one flow-hash function of the serving stack:
// the sharded flow cache derives its shard and slot indices from it (the low
// bits select the shard and the high bits the slot, so the two indices are
// decorrelated), and the run-to-completion dataplane (internal/dataplane)
// derives its per-core demux from it, so "same 5-tuple" means the same thing
// — same cache identity, same owning core — everywhere.
func HashPacket(p rule.Packet) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(p.SrcIP)
	h *= prime64
	h ^= uint64(p.DstIP)
	h *= prime64
	h ^= uint64(p.SrcPort)<<16 | uint64(p.DstPort)
	h *= prime64
	h ^= uint64(p.Proto)
	h *= prime64
	return h
}

// get returns the cached result for p at the given snapshot version. The
// third return value reports whether the lookup hit.
func (c *flowCache) get(p rule.Packet, version uint64) (rule.Rule, bool, bool) {
	h := HashPacket(p)
	sh := &c.shards[h&c.shardMask]
	sh.mu.Lock()
	slot := &sh.slots[(h>>32)&c.slotMask]
	if slot.valid && slot.version == version && slot.key == p {
		r, ok := slot.rule, slot.ok
		sh.hits++
		sh.mu.Unlock()
		return r, ok, true
	}
	sh.misses++
	sh.mu.Unlock()
	return rule.Rule{}, false, false
}

// put stores the result for p computed against the given snapshot version,
// evicting whatever occupied the slot.
func (c *flowCache) put(p rule.Packet, version uint64, r rule.Rule, ok bool) {
	h := HashPacket(p)
	sh := &c.shards[h&c.shardMask]
	sh.mu.Lock()
	sh.slots[(h>>32)&c.slotMask] = cacheSlot{key: p, version: version, rule: r, ok: ok, valid: true}
	sh.mu.Unlock()
}

// CacheStats reports the flow cache's cumulative hit and miss counters
// (summed across shards), or zeros when the engine runs without a cache.
func (e *Engine) CacheStats() (hits, misses uint64) {
	if e.cache == nil {
		return 0, 0
	}
	for i := range e.cache.shards {
		sh := &e.cache.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}
