package engine

import (
	"fmt"
	"time"

	"neurocuts/internal/rule"
	"neurocuts/internal/updater"
)

// This file wires the delta-overlay update subsystem (internal/updater)
// into the Engine. With Options.OnlineUpdates (or a JournalPath) set,
// Insert/Delete no longer rebuild the backend: the update lands in a small
// TSS overlay (inserts) or a tombstone set (deletes), a fresh immutable
// View is derived and published through the usual RCU snapshot swap, and a
// background compactor goroutine folds the overlay back into a rebuilt base
// off the critical path. Every update is journaled (when a journal is
// configured) before its snapshot is published, so acknowledged updates
// survive a crash and replay at the next warm start.

// DefaultCompactThreshold is the pending-update count (overlay rules plus
// tombstones) at which background compaction kicks in when
// Options.CompactThreshold is 0.
const DefaultCompactThreshold = 256

// overlayClassifier adapts an updater.View to the Classifier interface so
// the engine's read path (sharded batches, flow cache, pools) serves merged
// base+overlay lookups unchanged.
type overlayClassifier struct {
	view *updater.View
	m    Metrics
}

func (o *overlayClassifier) Classify(p rule.Packet) (rule.Rule, bool) { return o.view.Classify(p) }

// overlayScratch stages one batch's merged results in the updater's
// parallel-array shape before they are folded into the engine's []Result.
type overlayScratch struct {
	rules []rule.Rule
	oks   []bool
	// out stages the backend's []Result when this scratch serves the base
	// batch adapter in newBase (sized lazily there).
	out []Result
}

// overlayScratches recycles overlay batch scratches — a buffered channel
// rather than sync.Pool for the same race-determinism reason as idxBufs.
var overlayScratches = make(chan *overlayScratch, 64)

func getOverlayScratch(n int) *overlayScratch {
	var sc *overlayScratch
	select {
	case sc = <-overlayScratches:
	default:
		sc = new(overlayScratch)
	}
	if cap(sc.rules) < n {
		sc.rules = make([]rule.Rule, n)
		sc.oks = make([]bool, n)
	}
	return sc
}

func putOverlayScratch(sc *overlayScratch) {
	select {
	case overlayScratches <- sc:
	default:
	}
}

// ClassifyBatch serves the span through the updater view's batched merge, so
// the base lookups underneath run as one backend batch (the grouped compiled
// traversal for tree backends) instead of one packet at a time.
func (o *overlayClassifier) ClassifyBatch(ps []rule.Packet, out []Result) {
	sc := getOverlayScratch(len(ps))
	rules, oks := sc.rules[:len(ps)], sc.oks[:len(ps)]
	o.view.ClassifyBatch(ps, rules, oks)
	for i := range ps {
		out[i].Rule, out[i].OK = rules[i], oks[i]
	}
	putOverlayScratch(sc)
}

func (o *overlayClassifier) Metrics() Metrics { return o.m }

// newBase wraps a built classifier as an overlay base, handing the updater
// both the scalar and the batched lookup so merged views can classify spans
// through the backend's batch path.
func newBase(cls Classifier, set *rule.Set) (*updater.Base, error) {
	batch := func(ps []rule.Packet, rules []rule.Rule, oks []bool) {
		sc := getOverlayScratch(len(ps))
		// getOverlayScratch only sizes rules/oks; the Result staging area
		// rides alongside so the base batch reuses the same freelist.
		if cap(sc.out) < len(ps) {
			sc.out = make([]Result, len(ps))
		}
		out := sc.out[:len(ps)]
		cls.ClassifyBatch(ps, out)
		for i := range out {
			rules[i], oks[i] = out[i].Rule, out[i].OK
		}
		putOverlayScratch(sc)
	}
	return updater.NewBaseBatch(set, cls.Classify, batch)
}

// initUpdater turns the freshly built engine into an overlay-updating one:
// it derives the base from the current snapshot, opens and replays the
// journal when one is configured, and starts the background compactor.
// Called once from NewEngine / NewEngineFromArtifact, before the engine is
// visible to any other goroutine.
func (e *Engine) initUpdater() error {
	if !e.opts.OnlineUpdates && e.opts.JournalPath == "" {
		return nil
	}
	e.updaterOn = true
	e.compactThreshold = e.opts.CompactThreshold
	if e.compactThreshold == 0 {
		e.compactThreshold = DefaultCompactThreshold
	}

	cur := e.snap.Load()
	base, err := newBase(cur.baseCls, cur.set)
	if err != nil {
		return err
	}
	ns := *cur
	ns.base = base
	e.snap.Store(&ns)

	if e.opts.JournalPath != "" {
		meta := updater.JournalMeta{
			Backend:     cur.backend,
			BaseRules:   cur.set.Len(),
			BaseCRC:     updater.Fingerprint(cur.set),
			CreatedUnix: time.Now().Unix(),
		}
		j, ops, err := updater.OpenJournal(e.opts.JournalPath, meta, !e.opts.JournalNoSync)
		if err != nil {
			return err
		}
		e.journal = j
		if len(ops) > 0 {
			if err := e.replayJournal(ops); err != nil {
				j.Close()
				e.journal = nil
				return err
			}
		}
	}

	if e.compactThreshold > 0 || e.opts.CompactMaxAge > 0 {
		e.stopCompact = make(chan struct{})
		e.compactorDone = make(chan struct{})
		e.compactCh = make(chan struct{}, 1)
		go e.compactor()
		// Journal replay ran before the compactor existed, so a replayed
		// overlay already past the threshold dropped its signal — re-arm it
		// now that someone is listening.
		e.afterOverlayPublish(e.snap.Load())
	}
	return nil
}

// replayJournal applies recovered journal records to the engine's starting
// rule list and publishes one merged view over them. One snapshot covers
// the whole replay; the version advances by the number of replayed updates
// so it matches what a non-crashed engine would report.
func (e *Engine) replayJournal(ops []updater.Op) error {
	cur := e.snap.Load()
	merged, maxID, err := updater.Replay(cur.set, ops)
	if err != nil {
		return err
	}
	view, err := updater.NewView(cur.base, merged)
	if err != nil {
		// The replayed delta does not fit the overlay (rank-space or TSS
		// expansion limits): fold it into a full rebuild instead.
		if cur.build == nil {
			return fmt.Errorf("engine: journal replay needs a rebuild but backend %q is not registered: %w", cur.backend, err)
		}
		cls, berr := cur.build(merged, e.opts)
		if berr != nil {
			return fmt.Errorf("engine: rebuild during journal replay: %w", berr)
		}
		base, berr := newBase(cls, merged)
		if berr != nil {
			return berr
		}
		e.snap.Store(&snapshot{cls: cls, baseCls: cls, set: merged,
			version: cur.version + uint64(len(ops)), backend: cur.backend, build: cur.build, base: base})
	} else {
		m := cur.baseCls.Metrics()
		m.Rules = merged.Len()
		e.snap.Store(&snapshot{cls: &overlayClassifier{view: view, m: m}, baseCls: cur.baseCls,
			set: merged, version: cur.version + uint64(len(ops)), backend: cur.backend, build: cur.build, base: cur.base})
	}
	if maxID >= e.nextID {
		e.nextID = maxID + 1
	}
	e.afterOverlayPublish(e.snap.Load())
	return nil
}

// applyOverlayLocked publishes one update through the overlay path: derive
// the next view, journal the op, swap the snapshot. When the view cannot be
// derived (rank space exhausted, or a rule the TSS overlay cannot hold) the
// update falls back to a synchronous rebuild, which also resets the base.
// Caller holds e.mu.
func (e *Engine) applyOverlayLocked(cur *snapshot, next *rule.Set, op updater.Op) (UpdateResult, error) {
	fail := UpdateResult{Version: cur.version, Rules: cur.set.Len()}
	var ns *snapshot
	view, verr := updater.NewView(cur.base, next)
	if verr == nil {
		m := cur.baseCls.Metrics()
		m.Rules = next.Len()
		ns = &snapshot{cls: &overlayClassifier{view: view, m: m}, baseCls: cur.baseCls,
			set: next, version: cur.version + 1, backend: cur.backend, build: cur.build, base: cur.base}
	} else {
		if cur.build == nil {
			return fail, fmt.Errorf("engine: overlay update unavailable and backend %q is not registered for rebuild: %w", cur.backend, verr)
		}
		cls, err := cur.build(next, e.opts)
		if err != nil {
			return fail, fmt.Errorf("engine: rebuild after overlay fallback (%v): %w", verr, err)
		}
		base, err := newBase(cls, next)
		if err != nil {
			return fail, err
		}
		ns = &snapshot{cls: cls, baseCls: cls, set: next,
			version: cur.version + 1, backend: cur.backend, build: cur.build, base: base}
	}
	// Journal before publish: an update is acknowledged only once durable.
	if e.journal != nil {
		if err := e.journal.Append(op); err != nil {
			return fail, err
		}
	}
	e.publishSnap(ns)
	e.afterOverlayPublish(ns)
	return UpdateResult{ID: op.ID, Version: ns.version, Rules: next.Len()}, nil
}

// afterOverlayPublish maintains the compaction triggers after a snapshot
// swap: the age clock starts when the first pending update appears, and the
// size threshold signals the compactor (non-blocking; signals coalesce).
func (e *Engine) afterOverlayPublish(ns *snapshot) {
	oc, ok := ns.cls.(*overlayClassifier)
	if !ok {
		e.overlayDirty.Store(0)
		return
	}
	pending := oc.view.OverlayLen() + oc.view.Tombstones()
	if pending == 0 {
		e.overlayDirty.Store(0)
		return
	}
	if e.overlayDirty.Load() == 0 {
		e.overlayDirty.Store(time.Now().UnixNano())
	}
	if e.compactCh != nil && e.compactThreshold > 0 && pending >= e.compactThreshold {
		select {
		case e.compactCh <- struct{}{}:
		default:
		}
	}
}

// compactor is the background goroutine that folds the overlay back into a
// rebuilt base. It wakes on size-threshold signals and, when CompactMaxAge
// is set, on a ticker that compacts overlays past their age budget.
func (e *Engine) compactor() {
	defer close(e.compactorDone)
	var tickC <-chan time.Time
	if age := e.opts.CompactMaxAge; age > 0 {
		interval := age / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-e.stopCompact:
			return
		case <-e.compactCh:
		case <-tickC:
			since := e.overlayDirty.Load()
			if since == 0 || time.Since(time.Unix(0, since)) < e.opts.CompactMaxAge {
				continue
			}
		}
		select {
		case <-e.stopCompact:
			return
		default:
		}
		// Failure backoff: a merged list the backend cannot rebuild would
		// otherwise burn a core re-attempting a doomed O(ruleset) build on
		// every update signal.
		if at := e.lastCompactFailAt.Load(); at != 0 && time.Since(time.Unix(0, at)) < compactFailureBackoff {
			continue
		}
		e.compactOnce()
	}
}

// compactFailureBackoff is the minimum pause between background compaction
// attempts after a failure.
const compactFailureBackoff = 2 * time.Second

// compactOnce rebuilds the base from the merged list off the critical path
// and rebases whatever overlay accumulated during the build. Readers are
// never blocked: the rebuild runs outside the writer lock, and the final
// rebase is one more RCU snapshot swap.
func (e *Engine) compactOnce() {
	e.compacting.Store(true)
	defer e.compacting.Store(false)

	e.mu.Lock()
	cur := e.snap.Load()
	oc, ok := cur.cls.(*overlayClassifier)
	if !ok || cur.build == nil || oc.view.OverlayLen()+oc.view.Tombstones() == 0 {
		e.mu.Unlock()
		return
	}
	frozen := cur.set // the merged list being folded into the new base
	build := cur.build
	e.mu.Unlock()

	t0 := time.Now()
	cls, err := build(frozen, e.opts)
	if err != nil {
		// Keep serving the overlay; the next threshold signal retries
		// (after the failure backoff in the compactor loop).
		e.noteCompactFailure(err)
		return
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.snap.Load()
	if now.base != cur.base {
		// The base generation changed while we were building — a
		// LoadArtifact, a synchronous compaction or a rebuild fallback
		// swapped in a different rule universe (overlay updates carry the
		// base pointer forward unchanged, so this only trips on real base
		// swaps). Rebasing now.set onto the classifier built from the old
		// list would anchor the wrong rules (artifact IDs overlap), so drop
		// this build; the next signal compacts against the new base.
		return
	}
	base, err := newBase(cls, frozen)
	if err != nil {
		e.noteCompactFailure(err)
		return
	}
	var ns *snapshot
	if now.set == frozen {
		// No updates landed during the rebuild: the new base serves directly.
		ns = &snapshot{cls: cls, baseCls: cls, set: frozen,
			version: now.version + 1, backend: now.backend, build: now.build, base: base}
	} else {
		view, verr := updater.NewView(base, now.set)
		if verr != nil {
			e.noteCompactFailure(verr)
			return
		}
		m := cls.Metrics()
		m.Rules = now.set.Len()
		ns = &snapshot{cls: &overlayClassifier{view: view, m: m}, baseCls: cls,
			set: now.set, version: now.version + 1, backend: now.backend, build: now.build, base: base}
	}
	e.publishSnap(ns)
	e.compactions.Add(1)
	e.lastCompactNanos.Store(time.Since(t0).Nanoseconds())
	if e.tel != nil {
		e.tel.Compaction.RecordNanos(0, time.Since(t0).Nanoseconds())
	}
	e.lastCompactErr.Store(nil)
	// Restart the age clock: the updates a rebase carries forward arrived
	// during this rebuild, so their age budget starts now. Keeping the
	// pre-compaction timestamp would make CompactMaxAge see them as already
	// old and fire a spurious back-to-back rebuild.
	e.overlayDirty.Store(0)
	e.afterOverlayPublish(ns)
}

// noteCompactFailure records a failed background compaction so operators
// can see it (UpdaterStats / the server's stats line would otherwise show a
// frozen compaction count and nothing else) and arms the failure backoff.
func (e *Engine) noteCompactFailure(err error) {
	msg := err.Error()
	e.lastCompactErr.Store(&msg)
	e.compactFailures.Add(1)
	e.lastCompactFailAt.Store(time.Now().UnixNano())
}

// compactLocked synchronously rebuilds the base from the current merged
// list (caller holds e.mu). Used by SaveArtifact so the saved artifact
// embodies every pending overlay update.
func (e *Engine) compactLocked() error {
	cur := e.snap.Load()
	if cur.build == nil {
		return fmt.Errorf("engine: backend %q is not registered; cannot compact", cur.backend)
	}
	t0 := time.Now()
	cls, err := cur.build(cur.set, e.opts)
	if err != nil {
		return fmt.Errorf("engine: compacting: %w", err)
	}
	base, err := newBase(cls, cur.set)
	if err != nil {
		return err
	}
	e.publishSnap(&snapshot{cls: cls, baseCls: cls, set: cur.set,
		version: cur.version + 1, backend: cur.backend, build: cur.build, base: base})
	e.compactions.Add(1)
	e.lastCompactNanos.Store(time.Since(t0).Nanoseconds())
	if e.tel != nil {
		e.tel.Compaction.RecordNanos(0, time.Since(t0).Nanoseconds())
	}
	e.overlayDirty.Store(0)
	return nil
}

// closeUpdater stops the compactor and closes the journal; called from
// Close exactly once.
func (e *Engine) closeUpdater() {
	if e.stopCompact != nil {
		close(e.stopCompact)
		<-e.compactorDone
	}
	e.mu.Lock()
	if e.journal != nil {
		e.journal.Close()
		e.journal = nil
	}
	e.mu.Unlock()
}

// UpdaterStats is the observable state of the online-update subsystem,
// exposed through the server's "stats" admin request.
type UpdaterStats struct {
	// Enabled reports whether the engine routes updates through the overlay.
	Enabled bool
	// OverlayRules and Tombstones are the pending delta sizes.
	OverlayRules int
	// Tombstones is the number of deleted-but-not-yet-compacted base rules.
	Tombstones int
	// Rules is the merged (live) rule count.
	Rules int
	// Version is the snapshot generation (one per update, replayed update,
	// compaction or artifact load).
	Version uint64
	// Compactions counts completed base rebuilds (the base generation).
	Compactions uint64
	// Compacting reports whether a background compaction is in flight.
	Compacting bool
	// CompactThreshold is the pending-update count that triggers compaction
	// (<= 0 when background compaction is disabled).
	CompactThreshold int
	// LastCompactNanos is the wall-clock cost of the latest compaction.
	LastCompactNanos int64
	// CompactFailures counts failed background compactions; LastCompactError
	// is the most recent failure ("" after a success).
	CompactFailures  uint64
	LastCompactError string
	// JournalPath, JournalRecords and JournalBytes describe the durable
	// journal ("" / 0 when journaling is disabled).
	JournalPath    string
	JournalRecords int
	JournalBytes   int64
}

// UpdaterStats reports the online-update subsystem's current state.
func (e *Engine) UpdaterStats() UpdaterStats {
	s := e.snap.Load()
	st := UpdaterStats{
		Enabled:          e.updaterOn,
		Rules:            s.set.Len(),
		Version:          s.version,
		Compactions:      e.compactions.Load(),
		Compacting:       e.compacting.Load(),
		CompactThreshold: e.compactThreshold,
		LastCompactNanos: e.lastCompactNanos.Load(),
		CompactFailures:  e.compactFailures.Load(),
	}
	if msg := e.lastCompactErr.Load(); msg != nil {
		st.LastCompactError = *msg
	}
	if oc, ok := s.cls.(*overlayClassifier); ok {
		st.OverlayRules = oc.view.OverlayLen()
		st.Tombstones = oc.view.Tombstones()
	}
	e.mu.Lock()
	if e.journal != nil {
		st.JournalPath = e.journal.Path()
		st.JournalRecords = e.journal.Records()
		st.JournalBytes = e.journal.Bytes()
	}
	e.mu.Unlock()
	return st
}
