package engine

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// allocTestSet builds a small deterministic classifier for the allocation
// budget tests.
func allocTestSet(t testing.TB, size int) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, 1)
}

// allocTestPackets draws rule-biased packets so lookups traverse real rules
// rather than falling straight through to no-match.
func allocTestPackets(set *rule.Set, n int) []rule.Packet {
	entries := classbench.GenerateTrace(set, n, 7)
	ps := make([]rule.Packet, len(entries))
	for i, e := range entries {
		ps[i] = e.Key
	}
	return ps
}

// zeroAllocBackends are the backends whose lookup paths must not allocate:
// the two flat non-tree structures the CI allocation gate has always pinned
// (linear, tss) plus compiled tree backends — hicuts (single tree,
// equal cuts) and cutsplit (multi-root, custom cuts, traversal stack) cover
// every instruction of the compiled Lookup path.
var zeroAllocBackends = []string{"linear", "tss", "hicuts", "cutsplit"}

// TestZeroAllocSinglePacket asserts the engine's single-packet lookup path
// performs zero heap allocations per operation.
func TestZeroAllocSinglePacket(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 1})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			p := ps[i%len(ps)]
			i++
			eng.Classify(p)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: single-packet Classify allocates %.1f allocs/op, want 0", backend, allocs)
		}
	}
}

// TestZeroAllocSinglePacketWithFlowCache asserts the flow-cache path (both
// miss+fill and hit) stays allocation-free.
func TestZeroAllocSinglePacketWithFlowCache(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 1, FlowCacheEntries: 1024})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			p := ps[i%len(ps)]
			i++
			eng.Classify(p)
		})
		hits, misses := eng.CacheStats()
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: cached Classify allocates %.1f allocs/op, want 0", backend, allocs)
		}
		if hits == 0 {
			t.Errorf("%s: flow cache never hit (hits=%d misses=%d)", backend, hits, misses)
		}
	}
}

// TestZeroAllocBatchInline asserts the inline (small-batch) ClassifyBatch
// path performs zero allocations per batch.
func TestZeroAllocBatchInline(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64) // below 2*minShardBatch: inline path
	out := make([]Result, len(ps))
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			eng.ClassifyBatch(ps, out)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: inline ClassifyBatch allocates %.1f allocs/batch, want 0", backend, allocs)
		}
	}
}

// TestZeroAllocBatchSharded asserts the fan-out path — persistent workers,
// pooled WaitGroups, by-value task dispatch — performs zero steady-state
// allocations per batch.
func TestZeroAllocBatchSharded(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 1024)
	out := make([]Result, len(ps))
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		eng.ClassifyBatch(ps, out) // warm up: start workers outside measurement
		allocs := testing.AllocsPerRun(100, func() {
			eng.ClassifyBatch(ps, out)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: sharded ClassifyBatch allocates %.1f allocs/batch, want 0", backend, allocs)
		}
	}
}

// allocTestTelemetry builds a telemetry instance in its most expensive
// configuration for the pins below: flight recorder at threshold 0, so
// every single lookup and every batch span records a histogram sample AND
// a flight-recorder entry.
func allocTestTelemetry() *telemetry.Telemetry {
	tel := telemetry.New(telemetry.Config{})
	tel.SetSlowThreshold(0)
	return tel
}

// TestZeroAllocTelemetrySingle pins the single-packet path with full
// telemetry enabled (histogram sample + flight-recorder capture per
// lookup, flow cache on so both the hit and miss+fill branches record).
func TestZeroAllocTelemetrySingle(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	for _, backend := range zeroAllocBackends {
		tel := allocTestTelemetry()
		eng, err := NewEngine(backend, set, Options{Shards: 1, FlowCacheEntries: 1024, Telemetry: tel})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			p := ps[i%len(ps)]
			i++
			eng.Classify(p)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: telemetry-enabled Classify allocates %.1f allocs/op, want 0", backend, allocs)
		}
		if tel.Lookup.Snapshot().Count() == 0 {
			t.Errorf("%s: telemetry recorded no single-lookup samples", backend)
		}
		if tel.Slow.Captured() == 0 {
			t.Errorf("%s: flight recorder captured nothing at threshold 0", backend)
		}
	}
}

// TestZeroAllocTelemetryBatch pins the inline and sharded batch paths with
// full telemetry enabled (per-span histogram sample + flight-recorder
// capture).
func TestZeroAllocTelemetryBatch(t *testing.T) {
	set := allocTestSet(t, 128)
	small := allocTestPackets(set, 64) // below 2*minShardBatch: inline path
	big := allocTestPackets(set, 1024) // fan-out path
	outSmall := make([]Result, len(small))
	outBig := make([]Result, len(big))
	for _, backend := range zeroAllocBackends {
		tel := allocTestTelemetry()
		eng, err := NewEngine(backend, set, Options{Shards: 4, Telemetry: tel})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		eng.ClassifyBatch(big, outBig) // warm up: start workers outside measurement
		allocs := testing.AllocsPerRun(100, func() {
			eng.ClassifyBatch(small, outSmall)
		})
		if allocs != 0 {
			t.Errorf("%s: telemetry-enabled inline ClassifyBatch allocates %.1f allocs/batch, want 0", backend, allocs)
		}
		allocs = testing.AllocsPerRun(100, func() {
			eng.ClassifyBatch(big, outBig)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: telemetry-enabled sharded ClassifyBatch allocates %.1f allocs/batch, want 0", backend, allocs)
		}
		if tel.LookupBatch.Snapshot().Count() == 0 {
			t.Errorf("%s: telemetry recorded no batch-span samples", backend)
		}
	}
}

// TestZeroAllocTelemetryOverlayUpdates pins the telemetry-enabled overlay
// serving path: with online updates pending (overlay + tombstones live),
// single lookups through the merged view must still record without
// allocating — including the flight recorder's overlay-winner attribution.
func TestZeroAllocTelemetryOverlayUpdates(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	tel := allocTestTelemetry()
	eng, err := NewEngine("hicuts", set, Options{Shards: 1, OnlineUpdates: true, CompactThreshold: -1, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r := set.Rules()[0]
	r.ID = 0
	if _, err := eng.Insert(0, r); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := ps[i%len(ps)]
		i++
		eng.Classify(p)
	})
	if allocs != 0 {
		t.Errorf("overlay-serving telemetry-enabled Classify allocates %.1f allocs/op, want 0", allocs)
	}
	if tel.UpdateInsert.Snapshot().Count() == 0 {
		t.Error("telemetry recorded no insert-apply samples")
	}
}

// TestZeroAllocPooledBuffers asserts a steady-state get/classify/put cycle
// through the engine buffer pools does not allocate.
func TestZeroAllocPooledBuffers(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	eng, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Prime the pools so the measurement sees steady state.
	PutResultBuf(GetResultBuf(len(ps)))
	allocs := testing.AllocsPerRun(100, func() {
		out := GetResultBuf(len(ps))
		eng.ClassifyBatch(ps, out)
		PutResultBuf(out)
	})
	// PutResultBuf re-boxes the slice header; allow that single bookkeeping
	// allocation but nothing proportional to the batch.
	if allocs > 1 {
		t.Errorf("pooled batch cycle allocates %.1f allocs, want <= 1", allocs)
	}
}
