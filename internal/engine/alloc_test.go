package engine

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// allocTestSet builds a small deterministic classifier for the allocation
// budget tests.
func allocTestSet(t testing.TB, size int) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, 1)
}

// allocTestPackets draws rule-biased packets so lookups traverse real rules
// rather than falling straight through to no-match.
func allocTestPackets(set *rule.Set, n int) []rule.Packet {
	entries := classbench.GenerateTrace(set, n, 7)
	ps := make([]rule.Packet, len(entries))
	for i, e := range entries {
		ps[i] = e.Key
	}
	return ps
}

// zeroAllocBackends are the backends whose lookup paths must not allocate:
// the two flat non-tree structures the CI allocation gate has always pinned
// (linear, tss) plus compiled tree backends — hicuts (single tree,
// equal cuts) and cutsplit (multi-root, custom cuts, traversal stack) cover
// every instruction of the compiled Lookup path.
var zeroAllocBackends = []string{"linear", "tss", "hicuts", "cutsplit"}

// TestZeroAllocSinglePacket asserts the engine's single-packet lookup path
// performs zero heap allocations per operation.
func TestZeroAllocSinglePacket(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 1})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			p := ps[i%len(ps)]
			i++
			eng.Classify(p)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: single-packet Classify allocates %.1f allocs/op, want 0", backend, allocs)
		}
	}
}

// TestZeroAllocSinglePacketWithFlowCache asserts the flow-cache path (both
// miss+fill and hit) stays allocation-free.
func TestZeroAllocSinglePacketWithFlowCache(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 1, FlowCacheEntries: 1024})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			p := ps[i%len(ps)]
			i++
			eng.Classify(p)
		})
		hits, misses := eng.CacheStats()
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: cached Classify allocates %.1f allocs/op, want 0", backend, allocs)
		}
		if hits == 0 {
			t.Errorf("%s: flow cache never hit (hits=%d misses=%d)", backend, hits, misses)
		}
	}
}

// TestZeroAllocBatchInline asserts the inline (small-batch) ClassifyBatch
// path performs zero allocations per batch.
func TestZeroAllocBatchInline(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64) // below 2*minShardBatch: inline path
	out := make([]Result, len(ps))
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			eng.ClassifyBatch(ps, out)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: inline ClassifyBatch allocates %.1f allocs/batch, want 0", backend, allocs)
		}
	}
}

// TestZeroAllocBatchSharded asserts the fan-out path — persistent workers,
// pooled WaitGroups, by-value task dispatch — performs zero steady-state
// allocations per batch.
func TestZeroAllocBatchSharded(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 1024)
	out := make([]Result, len(ps))
	for _, backend := range zeroAllocBackends {
		eng, err := NewEngine(backend, set, Options{Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		eng.ClassifyBatch(ps, out) // warm up: start workers outside measurement
		allocs := testing.AllocsPerRun(100, func() {
			eng.ClassifyBatch(ps, out)
		})
		eng.Close()
		if allocs != 0 {
			t.Errorf("%s: sharded ClassifyBatch allocates %.1f allocs/batch, want 0", backend, allocs)
		}
	}
}

// TestZeroAllocPooledBuffers asserts a steady-state get/classify/put cycle
// through the engine buffer pools does not allocate.
func TestZeroAllocPooledBuffers(t *testing.T) {
	set := allocTestSet(t, 128)
	ps := allocTestPackets(set, 64)
	eng, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Prime the pools so the measurement sees steady state.
	PutResultBuf(GetResultBuf(len(ps)))
	allocs := testing.AllocsPerRun(100, func() {
		out := GetResultBuf(len(ps))
		eng.ClassifyBatch(ps, out)
		PutResultBuf(out)
	})
	// PutResultBuf re-boxes the slice header; allow that single bookkeeping
	// allocation but nothing proportional to the batch.
	if allocs > 1 {
		t.Errorf("pooled batch cycle allocates %.1f allocs, want <= 1", allocs)
	}
}
