package engine

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// TestDifferentialAllBackends is the cross-backend property test: every
// registered backend must classify a large random packet sample exactly like
// reference linear search (same matched-rule priority, same no-match set).
// Because backends register themselves in the engine registry, any backend
// added in the future is picked up automatically.
//
// The sample mixes rule-directed packets (GenerateTrace samples inside rule
// boxes, so overlapping-rule tie-breaks are exercised) with uniform packets
// (which exercise the no-match path). Everything is seeded, so a failure
// reproduces deterministically.
func TestDifferentialAllBackends(t *testing.T) {
	const (
		seed        = 42
		rulesPerSet = 250
		perFamily   = 6000 // 5000 directed + 1000 uniform, x2 families >= 10k packets
	)
	scenarios := []string{"acl1", "fw1"}

	type sample struct {
		set     *rule.Set
		family  string
		packets []rule.Packet
		want    []int // matched rule priority, -1 for no match
	}
	var samples []sample
	total := 0
	for _, family := range scenarios {
		fam, err := classbench.FamilyByName(family)
		if err != nil {
			t.Fatal(err)
		}
		set := classbench.Generate(fam, rulesPerSet, seed)
		var packets []rule.Packet
		for _, e := range classbench.GenerateTrace(set, perFamily-1000, seed+1) {
			packets = append(packets, e.Key)
		}
		for _, e := range classbench.UniformTrace(set, 1000, seed+2) {
			packets = append(packets, e.Key)
		}
		want := make([]int, len(packets))
		for i, p := range packets {
			want[i] = set.MatchIndex(p) // == matched rule's priority, or -1
		}
		total += len(packets)
		samples = append(samples, sample{set: set, family: family, packets: packets, want: want})
	}
	if total < 10000 {
		t.Fatalf("sample too small: %d packets", total)
	}

	// Keep the learned backend affordable in the unit-test budget; every
	// other backend builds deterministically from the rule set alone.
	opts := Options{Timesteps: 600, Workers: 2, Seed: seed}

	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			if backend == "neurocuts" && testing.Short() {
				t.Skip("skipping learned backend in -short mode")
			}
			for _, s := range samples {
				eng, err := NewEngine(backend, s.set, opts)
				if err != nil {
					t.Fatalf("%s/%s: build: %v", backend, s.family, err)
				}
				// Classify through the sharded batch path so the differential
				// test also covers the Engine runtime, not just the adapter.
				out := make([]Result, len(s.packets))
				eng.ClassifyBatch(s.packets, out)
				mismatches := 0
				for i, want := range s.want {
					got := -1
					if out[i].OK {
						got = out[i].Rule.Priority
					}
					if got != want {
						mismatches++
						if mismatches <= 5 {
							t.Errorf("%s/%s: packet %d %v: got priority %d, linear search says %d",
								backend, s.family, i, s.packets[i], got, want)
						}
					}
				}
				if mismatches > 0 {
					t.Fatalf("%s/%s: %d/%d packets diverge from linear search",
						backend, s.family, mismatches, len(s.packets))
				}
			}
		})
	}
}
