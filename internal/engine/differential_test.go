package engine

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// diffSample is one family's differential workload: a classifier, a packet
// sample and the linear-search ground truth.
type diffSample struct {
	set     *rule.Set
	family  string
	packets []rule.Packet
	want    []int // matched rule priority, -1 for no match
}

// differentialSamples builds the shared 12k-packet workload: per family,
// rule-directed packets (GenerateTrace samples inside rule boxes, so
// overlapping-rule tie-breaks are exercised) plus uniform packets (the
// no-match path). Everything is seeded, so failures reproduce.
func differentialSamples(t *testing.T) []diffSample {
	t.Helper()
	const (
		seed        = 42
		rulesPerSet = 250
		perFamily   = 6000 // 5000 directed + 1000 uniform, x2 families >= 12k packets
	)
	var samples []diffSample
	total := 0
	for _, family := range []string{"acl1", "fw1"} {
		fam, err := classbench.FamilyByName(family)
		if err != nil {
			t.Fatal(err)
		}
		set := classbench.Generate(fam, rulesPerSet, seed)
		var packets []rule.Packet
		for _, e := range classbench.GenerateTrace(set, perFamily-1000, seed+1) {
			packets = append(packets, e.Key)
		}
		for _, e := range classbench.UniformTrace(set, 1000, seed+2) {
			packets = append(packets, e.Key)
		}
		want := make([]int, len(packets))
		for i, p := range packets {
			want[i] = set.MatchIndex(p) // == matched rule's priority, or -1
		}
		total += len(packets)
		samples = append(samples, diffSample{set: set, family: family, packets: packets, want: want})
	}
	if total < 12000 {
		t.Fatalf("sample too small: %d packets", total)
	}
	return samples
}

// TestDifferentialAllBackends is the cross-backend property test: every
// registered backend must classify a large random packet sample exactly like
// reference linear search (same matched-rule priority, same no-match set).
// Because backends register themselves in the engine registry, any backend
// added in the future is picked up automatically. Tree backends serve from
// the compiled flat-array form here, so this also exercises the full
// build -> compile -> serve pipeline through the sharded Engine runtime.
func TestDifferentialAllBackends(t *testing.T) {
	samples := differentialSamples(t)

	// Keep the learned backend affordable in the unit-test budget; every
	// other backend builds deterministically from the rule set alone.
	opts := Options{Timesteps: 600, Workers: 2, Seed: 42}

	for _, backend := range realBackends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			if backend == "neurocuts" && testing.Short() {
				t.Skip("skipping learned backend in -short mode")
			}
			for _, s := range samples {
				eng, err := NewEngine(backend, s.set, opts)
				if err != nil {
					t.Fatalf("%s/%s: build: %v", backend, s.family, err)
				}
				// Classify through the sharded batch path so the differential
				// test also covers the Engine runtime, not just the adapter.
				out := make([]Result, len(s.packets))
				eng.ClassifyBatch(s.packets, out)
				mismatches := 0
				for i, want := range s.want {
					got := -1
					if out[i].OK {
						got = out[i].Rule.Priority
					}
					if got != want {
						mismatches++
						if mismatches <= 5 {
							t.Errorf("%s/%s: packet %d %v: got priority %d, linear search says %d",
								backend, s.family, i, s.packets[i], got, want)
						}
					}
				}
				if mismatches > 0 {
					t.Fatalf("%s/%s: %d/%d packets diverge from linear search",
						backend, s.family, mismatches, len(s.packets))
				}
			}
		})
	}
}

// buildBackendTrees constructs each tree backend's pointer trees directly
// (bypassing the engine), so the compiled form can be compared against the
// original pointer-tree traversal it replaced.
func buildBackendTrees(t *testing.T, set *rule.Set, opts Options) map[string][]*tree.Tree {
	t.Helper()
	out := map[string][]*tree.Tree{}

	hcfg := hicuts.DefaultConfig()
	ht, err := hicuts.Build(set, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	out["hicuts"] = []*tree.Tree{ht}

	ycfg := hypercuts.DefaultConfig()
	yt, err := hypercuts.Build(set, ycfg)
	if err != nil {
		t.Fatal(err)
	}
	out["hypercuts"] = []*tree.Tree{yt}

	ec, err := efficuts.Build(set, efficuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["efficuts"] = ec.Trees

	cs, err := cutsplit.Build(set, cutsplit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["cutsplit"] = cs.Trees

	if !testing.Short() {
		cfg := core.Scaled(1000)
		cfg.MaxTimesteps = opts.Timesteps
		cfg.BatchTimesteps = maxInt(256, opts.Timesteps/10)
		cfg.Workers = opts.Workers
		cfg.Seed = opts.Seed
		cfg.Partition = env.PartitionNone
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			t.Fatal(err)
		}
		nt, _ := trainer.BestTree()
		if nt == nil {
			t.Fatal("neurocuts training produced no tree")
		}
		out["neurocuts"] = []*tree.Tree{nt}
	}
	return out
}

// TestDifferentialCompiledVsPointerTree is the three-way differential test
// for every tree backend: the compiled flat-array Lookup, the original
// pointer-tree traversal and reference linear search must agree on the full
// 12k-packet sample.
func TestDifferentialCompiledVsPointerTree(t *testing.T) {
	samples := differentialSamples(t)
	opts := Options{Timesteps: 600, Workers: 2, Seed: 42}.withDefaults()

	for _, s := range samples {
		trees := buildBackendTrees(t, s.set, opts)
		for backend, ts := range trees {
			cc, err := compiled.Compile(s.set, ts...)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", backend, s.family, err)
			}
			mismatches := 0
			for i, p := range s.packets {
				want := s.want[i]
				ptr := -1
				if r, ok := tree.ClassifyMulti(ts, p); ok {
					ptr = r.Priority
				}
				comp := -1
				if r, ok := cc.Lookup(p); ok {
					comp = r.Priority
				}
				if ptr != want || comp != want {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("%s/%s: packet %d %v: linear=%d pointer=%d compiled=%d",
							backend, s.family, i, p, want, ptr, comp)
					}
				}
			}
			if mismatches > 0 {
				t.Fatalf("%s/%s: %d/%d packets diverge across the three lookup paths",
					backend, s.family, mismatches, len(s.packets))
			}
		}
	}
}
