package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"neurocuts/internal/tree"

	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// Options carries the build parameters shared across backends. The zero
// value selects sensible defaults for every field.
type Options struct {
	// Binth is the leaf threshold for the tree-based backends
	// (0 selects tree.DefaultBinth).
	Binth int
	// Timesteps is the NeuroCuts training budget (0 selects 5000).
	Timesteps int
	// Workers is the NeuroCuts rollout worker count (0 selects 2).
	Workers int
	// Seed seeds stochastic backends (0 selects 1).
	Seed int64
	// TimeSpaceCoeff overrides the NeuroCuts time-space tradeoff coefficient
	// c (Equation 5 of the paper: 1 optimises classification time, 0 memory
	// footprint) when TimeSpaceCoeffSet is true. The pair exists because 0
	// is a meaningful coefficient, so the zero Options value alone cannot
	// distinguish "unset" from "space-optimised".
	TimeSpaceCoeff    float64
	TimeSpaceCoeffSet bool
	// LogReward makes NeuroCuts scale rewards with f(x) = log(x) instead of
	// the linear default — the paper's choice whenever c < 1, making time
	// and space commensurable in the combined objective.
	LogReward bool
	// SimplePartition allows NeuroCuts the coverage-threshold partition
	// action at the top node (the paper's "simple" partitioning); the
	// default trains a single unpartitioned tree.
	SimplePartition bool
	// TCAMExpandLimit bounds per-rule range expansion for the TCAM backend
	// (0 selects the tcam package default of 1024).
	TCAMExpandLimit int
	// Shards is the Engine's batch-lookup shard count (0 selects
	// GOMAXPROCS). It does not affect the underlying data structure.
	Shards int
	// FlowCacheEntries sizes the engine's sharded flow cache (rounded up to
	// a power of two per shard). 0 disables the cache. The cache memoises
	// (5-tuple -> result) per snapshot version, which pays off on skewed
	// traffic where few flows carry most packets.
	FlowCacheEntries int
	// FlowCacheShards overrides the flow cache's lock-shard count
	// (0 selects 64). Only meaningful when FlowCacheEntries > 0.
	FlowCacheShards int
	// LegacyTreeLookup makes tree backends serve lookups from the
	// build-time pointer-linked tree instead of the compiled flat-array
	// form. It exists for the perf lab's compiled-vs-legacy comparison and
	// as an escape hatch; compiled is the default serve path.
	LegacyTreeLookup bool
	// OnlineUpdates routes Insert/Delete through the delta-overlay update
	// subsystem (internal/updater): inserts land in a small TSS overlay,
	// deletes become tombstones, and a background compactor folds the delta
	// into a rebuilt base off the critical path. Without it every update
	// rebuilds the backend synchronously.
	OnlineUpdates bool
	// JournalPath enables the durable update journal at this path (and
	// implies OnlineUpdates): every acknowledged update is appended (and
	// synced) before its snapshot is published, and an existing journal is
	// replayed at engine construction for crash-consistent warm starts.
	JournalPath string
	// JournalNoSync disables the per-record fsync. Updates get faster but a
	// machine crash may lose the latest acknowledged records (a process
	// crash alone does not).
	JournalNoSync bool
	// CompactThreshold is the pending-update count (overlay rules plus
	// tombstones) that triggers background compaction. 0 selects
	// DefaultCompactThreshold; negative disables background compaction.
	CompactThreshold int
	// Telemetry, when non-nil, records every serving and update path into
	// the shared online-telemetry instance (internal/telemetry): latency
	// histograms on single/batch lookups and Insert/Delete/compaction, and
	// the slow-lookup flight recorder when its threshold is enabled. One
	// instance is typically shared by every engine (and the dataplane and
	// TCP server) of a process so one scrape covers it all.
	Telemetry *telemetry.Telemetry
	// TelemetryTable is the table label flight-recorder entries carry
	// ("default" when empty). Multi-table daemons set it per engine.
	TelemetryTable string
	// CompactMaxAge, when positive, compacts a non-empty overlay older than
	// this even below the size threshold, bounding how stale the delta can
	// get on a quiet ruleset. Note that compaction folds the in-memory
	// overlay only — the on-disk journal keeps growing until a checkpoint
	// (SaveArtifact over the engine's own artifact, or LoadArtifact)
	// rotates it; long-running journaling deployments should checkpoint
	// periodically to bound replay time.
	CompactMaxAge time.Duration
}

func (o Options) withDefaults() Options {
	if o.Binth <= 0 {
		o.Binth = tree.DefaultBinth
	}
	if o.Timesteps <= 0 {
		o.Timesteps = 5000
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Builder constructs a backend's classifier over a rule set.
type Builder func(set *rule.Set, opts Options) (Classifier, error)

// backendEntry is one registered backend.
type backendEntry struct {
	name    string
	display string
	build   Builder
}

var (
	registryMu sync.RWMutex
	registry   = map[string]backendEntry{}
)

// Register adds a backend to the registry under a lower-case name with a
// human-facing display name. It panics on duplicate registration, matching
// the behaviour of database/sql.Register.
func Register(name, display string, build Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	key := strings.ToLower(name)
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("engine: backend %q registered twice", key))
	}
	registry[key] = backendEntry{name: key, display: display, build: build}
}

func lookupBackend(name string) (backendEntry, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	entry, ok := registry[strings.ToLower(name)]
	if !ok {
		// Inline the name list: calling Backends() here would re-enter the
		// read lock, which deadlocks if a writer is queued between the two.
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return backendEntry{}, fmt.Errorf("engine: unknown backend %q (have: %s)",
			name, strings.Join(names, ", "))
	}
	return entry, nil
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DisplayName returns the backend's human-facing name ("hicuts" ->
// "HiCuts"), or the input unchanged when the name is not registered.
func DisplayName(name string) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if entry, ok := registry[strings.ToLower(name)]; ok {
		return entry.display
	}
	return name
}

// New builds the named backend over the rule set with default options and
// returns its Classifier. Use NewEngine for sharded batching and updates,
// or NewWithOptions to tune build parameters.
func New(name string, set *rule.Set) (Classifier, error) {
	return NewWithOptions(name, set, Options{})
}

// NewWithOptions builds the named backend with explicit options.
func NewWithOptions(name string, set *rule.Set, opts Options) (Classifier, error) {
	entry, err := lookupBackend(name)
	if err != nil {
		return nil, err
	}
	return entry.build(set, opts.withDefaults())
}
