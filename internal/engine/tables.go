package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Table is one named classification table: an Engine plus the identity the
// multi-table runtime serves it under. The wire protocol addresses tables by
// ID (a small integer that stays stable across Swap), humans and configs by
// Name. Table values are immutable once published; Swap publishes a new
// value under the same name and ID.
type Table struct {
	// Name is the table's unique name within its Tables manager.
	Name string
	// ID is the table's stable wire identifier, assigned at Create (>= 1;
	// ID 0 is the wire protocol's "default table" sentinel and is never
	// assigned). It survives Swap and is never reused after Drop.
	ID uint32
	// Engine serves the table.
	Engine *Engine
}

// tableState is one immutable generation of the table map. Readers load it
// with a single atomic pointer load, so a lookup can never observe a
// half-applied create/swap/drop.
type tableState struct {
	byName map[string]*Table
	byID   map[uint32]*Table
	// names is the sorted name list (computed once per mutation).
	names []string
	// def is the default table (the target of v1 requests and of v2 frames
	// addressed to table ID 0); nil only while the manager is empty.
	def *Table
}

// Tables manages a set of named, independently configured engines so one
// daemon can serve many rule sets (ACL + firewall + NAT tables
// simultaneously). Admin operations — Create, Swap, Drop, SetDefault — are
// atomic: they build a new immutable table map off-line and publish it with
// one pointer swap, so concurrent lookups always observe a coherent set and
// are never blocked.
//
// Engines displaced by Swap or Drop are not closed immediately: an in-flight
// batch pinned to the old engine must be allowed to finish. They are parked
// on a retired list and closed either by CloseAll (run after the serving
// layer has drained, e.g. after Server.Shutdown returns) or by the reaper:
// each admin operation closes retirees older than retireGrace, so a
// long-running daemon whose tables are repeatedly created, swapped and
// dropped over the wire does not accumulate goroutines, journal fds and
// classifier memory without bound.
type Tables struct {
	mu      sync.Mutex
	state   atomic.Pointer[tableState]
	nextID  uint32
	retired []retiredEngine
	// now is the reaper's clock; tests inject a fake one so grace expiry is
	// deterministic. Set once at construction (NewTables).
	now func() time.Time
}

// retiredEngine is one displaced engine awaiting closure.
type retiredEngine struct {
	eng *Engine
	at  time.Time
}

// retireGrace is how long a displaced engine stays open after Swap/Drop
// before the reaper may close it. Any request that can still reach a
// retired engine resolved it before the swap was published, and the serving
// layer bounds a request's lifetime (body read and response write deadlines,
// 30s by default) to far below this, so closing after the grace cannot cut
// a live lookup.
const retireGrace = 5 * time.Minute

// reapRetiredLocked closes retirees older than retireGrace. Caller holds
// t.mu.
func (t *Tables) reapRetiredLocked(now time.Time) {
	kept := t.retired[:0]
	for _, r := range t.retired {
		if now.Sub(r.at) >= retireGrace {
			r.eng.Close()
		} else {
			kept = append(kept, r)
		}
	}
	t.retired = kept
}

// NewTables returns an empty table manager.
func NewTables() *Tables {
	t := &Tables{nextID: 1, now: time.Now}
	t.state.Store(&tableState{byName: map[string]*Table{}, byID: map[uint32]*Table{}})
	return t
}

// clone copies the current state's maps so a mutation can be prepared
// off-line. Caller holds t.mu.
func (t *Tables) cloneLocked() *tableState {
	cur := t.state.Load()
	ns := &tableState{
		byName: make(map[string]*Table, len(cur.byName)+1),
		byID:   make(map[uint32]*Table, len(cur.byID)+1),
		def:    cur.def,
	}
	for k, v := range cur.byName {
		ns.byName[k] = v
	}
	for k, v := range cur.byID {
		ns.byID[k] = v
	}
	return ns
}

// publishLocked recomputes the sorted name list and publishes the new state.
// Caller holds t.mu.
func (t *Tables) publishLocked(ns *tableState) {
	ns.names = make([]string, 0, len(ns.byName))
	for name := range ns.byName {
		ns.names = append(ns.names, name)
	}
	sort.Strings(ns.names)
	t.state.Store(ns)
}

// MaxTableNameLen bounds table names: the v2 wire protocol's table list
// encodes name lengths in one byte.
const MaxTableNameLen = 255

// Create adds a new table serving eng under name and returns it. The first
// table created becomes the default (see SetDefault). Creating a name that
// already exists fails; use Swap to replace a live table's engine.
func (t *Tables) Create(name string, eng *Engine) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: table name must not be empty")
	}
	if len(name) > MaxTableNameLen {
		return nil, fmt.Errorf("engine: table name exceeds %d bytes", MaxTableNameLen)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Every admin mutation reaps: a daemon whose churn is create-only after
	// the last Swap/Drop must still close the engines those displaced, or
	// their compactor goroutines, journal fds and classifier memory stay
	// pinned for the daemon's lifetime.
	t.reapRetiredLocked(t.now())
	ns := t.cloneLocked()
	if _, dup := ns.byName[name]; dup {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	tab := &Table{Name: name, ID: t.nextID, Engine: eng}
	t.nextID++
	ns.byName[name] = tab
	ns.byID[tab.ID] = tab
	if ns.def == nil {
		ns.def = tab
	}
	t.publishLocked(ns)
	return tab, nil
}

// Swap atomically replaces the engine serving the named table, keeping the
// table's name and wire ID. The displaced engine is retired (kept open
// until the reaper's grace expires, or CloseAll) so requests pinned to it
// can finish. It returns the new Table value.
func (t *Tables) Swap(name string, eng *Engine) (*Table, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.reapRetiredLocked(now)
	ns := t.cloneLocked()
	old, ok := ns.byName[name]
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", name)
	}
	tab := &Table{Name: name, ID: old.ID, Engine: eng}
	ns.byName[name] = tab
	ns.byID[tab.ID] = tab
	if ns.def != nil && ns.def.ID == tab.ID {
		ns.def = tab
	}
	t.publishLocked(ns)
	t.retired = append(t.retired, retiredEngine{eng: old.Engine, at: now})
	return tab, nil
}

// Drop atomically removes the named table. Its wire ID is never reused, and
// its engine is retired (kept open until the reaper's grace expires, or
// CloseAll) so in-flight requests can finish. Dropping the default table always fails — it is the target of
// every v1 request and of v2 frames addressed to table 0, so it must be
// re-pointed first with SetDefault (which means the last remaining table
// can never be dropped: a serving manager never loses its default).
func (t *Tables) Drop(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.reapRetiredLocked(now)
	ns := t.cloneLocked()
	old, ok := ns.byName[name]
	if !ok {
		return fmt.Errorf("engine: table %q does not exist", name)
	}
	if ns.def != nil && ns.def.ID == old.ID {
		return fmt.Errorf("engine: table %q is the default table; SetDefault to another table before dropping it", name)
	}
	delete(ns.byName, name)
	delete(ns.byID, old.ID)
	t.publishLocked(ns)
	t.retired = append(t.retired, retiredEngine{eng: old.Engine, at: now})
	return nil
}

// SetDefault re-points the default table (the target of v1 requests and of
// v2 frames addressed to table ID 0) at the named table.
func (t *Tables) SetDefault(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapRetiredLocked(t.now())
	ns := t.cloneLocked()
	tab, ok := ns.byName[name]
	if !ok {
		return fmt.Errorf("engine: table %q does not exist", name)
	}
	ns.def = tab
	t.publishLocked(ns)
	return nil
}

// Get returns the named table.
func (t *Tables) Get(name string) (*Table, bool) {
	tab, ok := t.state.Load().byName[name]
	return tab, ok
}

// GetByID returns the table with the given wire ID. ID 0 resolves to the
// default table.
func (t *Tables) GetByID(id uint32) (*Table, bool) {
	st := t.state.Load()
	if id == 0 {
		if st.def == nil {
			return nil, false
		}
		return st.def, true
	}
	tab, ok := st.byID[id]
	return tab, ok
}

// Default returns the default table, or ok=false while the manager is empty.
func (t *Tables) Default() (*Table, bool) {
	tab := t.state.Load().def
	return tab, tab != nil
}

// Names returns the table names, sorted. The returned slice is immutable.
func (t *Tables) Names() []string { return t.state.Load().names }

// List returns the tables sorted by name.
func (t *Tables) List() []*Table {
	st := t.state.Load()
	out := make([]*Table, 0, len(st.names))
	for _, name := range st.names {
		out = append(out, st.byName[name])
	}
	return out
}

// Len returns the number of live tables.
func (t *Tables) Len() int { return len(t.state.Load().byName) }

// RetiredLen returns the number of displaced engines still awaiting the
// reaper's grace. Exposed for the admin plane's metrics — a value that only
// grows means retirees are not being reaped.
func (t *Tables) RetiredLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.retired)
}

// CloseAll closes every live and retired engine. Call it only after the
// serving layer has drained (no lookup may be in flight), e.g. after
// Server.Shutdown returns; an engine's batch workers must not be serving
// when it is closed.
func (t *Tables) CloseAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tab := range t.state.Load().byName {
		tab.Engine.Close()
	}
	for _, r := range t.retired {
		r.eng.Close()
	}
	t.retired = nil
	t.publishLocked(&tableState{byName: map[string]*Table{}, byID: map[uint32]*Table{}})
}
