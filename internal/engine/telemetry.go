package engine

import (
	"time"

	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// This file wires the online telemetry core (internal/telemetry) into the
// engine's serving and update paths. All recording is gated on e.tel being
// non-nil, costs one atomic add per histogram sample, and allocates
// nothing — the alloc_test.go pins cover every path below with recording
// (and the flight recorder at threshold 0) enabled.

// initTelemetry captures the engine's telemetry wiring from Options. Called
// once from NewEngine / NewEngineFromArtifact after the first snapshot is
// stored, before the engine is visible to any other goroutine.
func (e *Engine) initTelemetry() {
	e.tel = e.opts.Telemetry
	if e.tel == nil {
		return
	}
	table := e.opts.TelemetryTable
	if table == "" {
		table = "default"
	}
	e.telTableID = e.tel.Intern(table)
	e.telBackendID.Store(e.tel.Intern(e.snap.Load().backend))
}

// Telemetry returns the engine's telemetry instance (nil when disabled).
// Subsystems serving this engine's snapshots (the dataplane, the TCP
// server) share it so one scrape covers the whole process.
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.tel }

// TelemetrySlowIDs returns the interned (table, backend) flight-recorder
// IDs for entries attributed to this engine. The backend ID follows the
// serving snapshot (LoadArtifact can change it), so per-core consumers
// refresh on epoch reloads.
func (e *Engine) TelemetrySlowIDs() (table, backend uint32) {
	return e.telTableID, e.telBackendID.Load()
}

// classifyOneTimed is classifyOne plus telemetry: per-packet latency into
// the single-lookup histogram, and a flight-recorder capture when the
// sample crosses the slow threshold. Only called when e.tel != nil.
func (e *Engine) classifyOneTimed(s *snapshot, p rule.Packet) (rule.Rule, bool) {
	start := time.Now()
	var (
		r   rule.Rule
		ok  bool
		hit bool
	)
	if e.cache != nil {
		r, ok, hit = e.cache.get(p, s.version)
	}
	if !hit {
		r, ok = s.cls.Classify(p)
		if e.cache != nil {
			e.cache.put(p, s.version, r, ok)
		}
	}
	ns := time.Since(start).Nanoseconds()
	// The sample's own low bits spread concurrent callers across stripes
	// without any goroutine identity.
	e.tel.Lookup.RecordNanos(uint64(ns), ns)
	if e.tel.SlowEnough(ns) {
		e.recordSlow(s, start, ns, telemetry.PathSingle, 1, hit, r, ok)
	}
	return r, ok
}

// classifyChunkTimed is classifyChunk plus telemetry: one per-span sample
// into the batch histogram (the span is the serving unit — per-packet
// timing inside a batch would put a clock read on every packet), and a
// flight-recorder capture when the span's per-packet average crosses the
// slow threshold.
func (e *Engine) classifyChunkTimed(s *snapshot, ps []rule.Packet, out []Result) {
	if e.tel == nil {
		e.classifyChunk(s, ps, out)
		return
	}
	start := time.Now()
	e.classifyChunk(s, ps, out)
	ns := time.Since(start).Nanoseconds()
	e.tel.LookupBatch.RecordNanos(uint64(ns), ns)
	if n := int64(len(ps)); n > 0 && e.tel.SlowEnough(ns/n) {
		e.recordSlow(s, start, ns, telemetry.PathBatch, int32(len(ps)), false, rule.Rule{}, false)
	}
}

// recordSlow captures one flight-recorder entry for a lookup (or span)
// served from snapshot s. For single lookups r/ok carry the winner; span
// entries pass ok=false (a span has no single winning rule).
func (e *Engine) recordSlow(s *snapshot, start time.Time, ns int64, path uint32, packets int32, cacheHit bool, r rule.Rule, ok bool) {
	overlay := false
	if oc, isOverlay := s.cls.(*overlayClassifier); isOverlay && ok {
		overlay = oc.view.FromOverlay(r.ID)
	}
	ruleID := int32(-1)
	if ok {
		ruleID = int32(r.ID)
	}
	e.tel.Slow.Record(telemetry.Sample{
		UnixNanos:     start.UnixNano(),
		LatencyNanos:  ns,
		TableID:       e.telTableID,
		BackendID:     e.telBackendID.Load(),
		PathID:        path,
		Packets:       packets,
		Visits:        int32(s.cls.Metrics().LookupCost),
		RuleID:        ruleID,
		Version:       s.version,
		CacheHit:      cacheHit,
		OverlayWinner: overlay,
		Matched:       ok,
	})
}
