package engine

import (
	"sync"

	"neurocuts/internal/rule"
)

// Pooled batch buffers. Serving paths (internal/server's batch requests, the
// perf harness's throughput loops) need a packet slice and a result slice
// per batch; allocating them per request shows up directly as allocs/op.
// These pools hand out reusable buffers instead.
//
// Safety: a recycled buffer still holds the previous batch's contents, and a
// caller that classifies fewer packets than the buffer's capacity — or takes
// an error path that skips some slots — must never observe a stale match
// from an earlier batch. GetResultBuf therefore clears every slot it hands
// out before returning, and returns the slice length-reset to exactly n.

var resultBufPool = sync.Pool{New: func() any { s := make([]Result, 0, 1024); return &s }}
var packetBufPool = sync.Pool{New: func() any { s := make([]rule.Packet, 0, 1024); return &s }}

// GetResultBuf returns a cleared result buffer of length n from the pool.
// Every slot is zeroed (no rule, OK=false), so unwritten slots read as
// no-match rather than as a leftover from a previous batch.
func GetResultBuf(n int) []Result {
	p := resultBufPool.Get().(*[]Result)
	s := *p
	if cap(s) < n {
		// Too small for this batch: return it for smaller batches and
		// allocate a right-sized replacement.
		resultBufPool.Put(p)
		return make([]Result, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// PutResultBuf recycles a buffer obtained from GetResultBuf. The buffer must
// not be used after the call.
func PutResultBuf(s []Result) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	resultBufPool.Put(&s)
}

// GetPacketBuf returns a cleared packet buffer of length n from the pool.
func GetPacketBuf(n int) []rule.Packet {
	p := packetBufPool.Get().(*[]rule.Packet)
	s := *p
	if cap(s) < n {
		packetBufPool.Put(p)
		return make([]rule.Packet, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// PutPacketBuf recycles a buffer obtained from GetPacketBuf.
func PutPacketBuf(s []rule.Packet) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	packetBufPool.Put(&s)
}
