package engine

import (
	"errors"

	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tcam"
	"neurocuts/internal/tree"
	"neurocuts/internal/tss"
)

// adapter lifts a backend's single-packet lookup and metrics functions into
// the Classifier interface. ClassifyBatch is a sequential loop here; the
// Engine layers sharding on top of it.
type adapter struct {
	classify func(p rule.Packet) (rule.Rule, bool)
	metrics  func() Metrics
}

func (a *adapter) Classify(p rule.Packet) (rule.Rule, bool) { return a.classify(p) }

func (a *adapter) ClassifyBatch(ps []rule.Packet, out []Result) {
	for i, p := range ps {
		out[i].Rule, out[i].OK = a.classify(p)
	}
}

func (a *adapter) Metrics() Metrics { return a.metrics() }

// treeMetrics converts the shared decision-tree metrics into engine metrics.
func treeMetrics(backend string, rules int, m tree.Metrics) Metrics {
	return Metrics{
		Backend:      backend,
		Rules:        rules,
		LookupCost:   m.ClassificationTime,
		MemoryBytes:  m.MemoryBytes,
		BytesPerRule: m.BytesPerRule,
		Entries:      m.RuleRefs,
	}
}

// linearRuleBytes models one stored rule for the linear-search backend:
// five 16-byte ranges plus priority and ID.
const linearRuleBytes = rule.NumDims*16 + 16

func init() {
	Register("linear", "Linear", func(set *rule.Set, opts Options) (Classifier, error) {
		return &adapter{
			classify: set.Match,
			metrics: func() Metrics {
				n := set.Len()
				return Metrics{
					Backend:      "linear",
					Rules:        n,
					LookupCost:   n,
					MemoryBytes:  n * linearRuleBytes,
					BytesPerRule: linearRuleBytes,
					Entries:      n,
				}
			},
		}, nil
	})

	Register("hicuts", "HiCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := hicuts.DefaultConfig()
		cfg.Binth = opts.Binth
		t, err := hicuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: t.Classify,
			metrics:  func() Metrics { return treeMetrics("hicuts", set.Len(), t.ComputeMetrics()) },
		}, nil
	})

	Register("hypercuts", "HyperCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := hypercuts.DefaultConfig()
		cfg.Binth = opts.Binth
		t, err := hypercuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: t.Classify,
			metrics:  func() Metrics { return treeMetrics("hypercuts", set.Len(), t.ComputeMetrics()) },
		}, nil
	})

	Register("efficuts", "EffiCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := efficuts.DefaultConfig()
		cfg.Binth = opts.Binth
		c, err := efficuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: c.Classify,
			metrics:  func() Metrics { return treeMetrics("efficuts", set.Len(), c.Metrics()) },
		}, nil
	})

	Register("cutsplit", "CutSplit", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := cutsplit.DefaultConfig()
		cfg.Binth = opts.Binth
		c, err := cutsplit.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: c.Classify,
			metrics:  func() Metrics { return treeMetrics("cutsplit", set.Len(), c.Metrics()) },
		}, nil
	})

	Register("tss", "TSS", func(set *rule.Set, opts Options) (Classifier, error) {
		c, err := tss.Build(set)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: c.Classify,
			metrics: func() Metrics {
				m := c.Metrics()
				return Metrics{
					Backend:      "tss",
					Rules:        set.Len(),
					LookupCost:   m.Tuples,
					MemoryBytes:  m.MemoryBytes,
					BytesPerRule: m.BytesPerRule,
					Entries:      m.Entries,
				}
			},
		}, nil
	})

	Register("tcam", "TCAM", func(set *rule.Set, opts Options) (Classifier, error) {
		c, err := tcam.Build(set, opts.TCAMExpandLimit)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: c.Classify,
			metrics: func() Metrics {
				m := c.Metrics()
				em := Metrics{
					Backend:     "tcam",
					Rules:       set.Len(),
					LookupCost:  m.LookupTime,
					MemoryBytes: m.Bits / 8,
					Entries:     m.Entries,
				}
				if em.Rules > 0 {
					em.BytesPerRule = float64(em.MemoryBytes) / float64(em.Rules)
				}
				return em
			},
		}, nil
	})

	Register("neurocuts", "NeuroCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := core.Scaled(1000)
		cfg.Binth = opts.Binth
		cfg.MaxTimesteps = opts.Timesteps
		cfg.BatchTimesteps = maxInt(256, opts.Timesteps/10)
		cfg.Workers = opts.Workers
		cfg.Seed = opts.Seed
		cfg.Partition = env.PartitionNone
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			return nil, err
		}
		t, _ := trainer.BestTree()
		if t == nil {
			return nil, errors.New("engine: neurocuts training produced no tree")
		}
		return &adapter{
			classify: t.Classify,
			metrics:  func() Metrics { return treeMetrics("neurocuts", set.Len(), t.ComputeMetrics()) },
		}, nil
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
