package engine

import (
	"errors"
	"fmt"

	"neurocuts/internal/compiled"
	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tcam"
	"neurocuts/internal/tree"
	"neurocuts/internal/tss"
)

// adapter lifts a backend's single-packet lookup and metrics functions into
// the Classifier interface. ClassifyBatch is a sequential loop here; the
// Engine layers sharding on top of it.
type adapter struct {
	classify func(p rule.Packet) (rule.Rule, bool)
	metrics  func() Metrics
}

func (a *adapter) Classify(p rule.Packet) (rule.Rule, bool) { return a.classify(p) }

func (a *adapter) ClassifyBatch(ps []rule.Packet, out []Result) {
	for i, p := range ps {
		out[i].Rule, out[i].OK = a.classify(p)
	}
}

func (a *adapter) Metrics() Metrics { return a.metrics() }

// compiledClassifier serves lookups from the immutable flat-array form that
// Compile produces. This is the serve path for every tree backend: the
// pointer-linked build tree is discarded after compilation, and the same
// object is what SaveArtifact persists and warm starts reload.
type compiledClassifier struct {
	c *compiled.Classifier
	m Metrics
}

func (a *compiledClassifier) Classify(p rule.Packet) (rule.Rule, bool) { return a.c.Lookup(p) }

// idxBufs recycles the rule-index scratch that bridges LookupBatch (which
// reports int32 indices) to the engine's Result shape. A buffered channel
// rather than sync.Pool so the batch path's zero-alloc guarantee is
// deterministic under the race detector too (Pool drops a fraction of Puts
// there); extras beyond the freelist capacity simply allocate.
var idxBufs = make(chan *[]int32, 64)

func getIdxBuf(n int) *[]int32 {
	select {
	case bp := <-idxBufs:
		if cap(*bp) < n {
			*bp = make([]int32, n)
		}
		return bp
	default:
		b := make([]int32, n)
		return &b
	}
}

func putIdxBuf(bp *[]int32) {
	select {
	case idxBufs <- bp:
	default:
	}
}

// ClassifyBatch serves the whole span through the grouped compiled traversal
// (compiled.LookupBatch): packets advance through the node slab in an
// interleaved prefetching group instead of one dependent-load chain at a
// time. Results are identical to per-packet Classify calls.
func (a *compiledClassifier) ClassifyBatch(ps []rule.Packet, out []Result) {
	bp := getIdxBuf(len(ps))
	idx := (*bp)[:len(ps)]
	a.c.LookupBatch(ps, idx)
	rules := a.c.Rules()
	for i, ix := range idx {
		if ix >= 0 {
			out[i].Rule, out[i].OK = rules[ix], true
		} else {
			out[i].Rule, out[i].OK = rule.Rule{}, false
		}
	}
	putIdxBuf(bp)
}

func (a *compiledClassifier) Metrics() Metrics { return a.m }

// Compiled exposes the artifact-ready form (the CompiledProvider interface).
func (a *compiledClassifier) Compiled() *compiled.Classifier { return a.c }

// CompiledProvider is implemented by classifiers that serve from a compiled
// flat-array form; Engine.SaveArtifact requires it.
type CompiledProvider interface {
	Compiled() *compiled.Classifier
}

// newTreeClassifier is the shared back half of every tree backend: compute
// the paper's tree metrics once, then either compile the trees into the
// flat serving form (default) or keep the pointer trees (legacy mode, for
// the perf lab's compiled-vs-legacy axis).
func newTreeClassifier(backend string, set *rule.Set, trees []*tree.Tree, opts Options) (Classifier, error) {
	m := treeMetrics(backend, set.Len(), tree.MultiMetrics(trees))
	if opts.LegacyTreeLookup {
		classify := trees[0].Classify
		if len(trees) > 1 {
			classify = func(p rule.Packet) (rule.Rule, bool) { return tree.ClassifyMulti(trees, p) }
		}
		return &adapter{
			classify: classify,
			metrics:  func() Metrics { return m },
		}, nil
	}
	cc, err := compiled.Compile(set, trees...)
	if err != nil {
		return nil, fmt.Errorf("engine: compiling %s: %w", backend, err)
	}
	m.CompiledBytes = cc.Stats().MemoryBytes
	return &compiledClassifier{c: cc, m: m}, nil
}

// compiledMetrics derives engine metrics from a compiled classifier alone
// (used when an artifact is loaded and no build-time tree metrics exist).
func compiledMetrics(backend string, c *compiled.Classifier) Metrics {
	st := c.Stats()
	m := Metrics{
		Backend:       backend,
		Rules:         st.Rules,
		LookupCost:    st.WorstCaseVisits,
		MemoryBytes:   st.MemoryBytes,
		CompiledBytes: st.MemoryBytes,
		Entries:       st.LeafRuleRefs,
	}
	if m.Rules > 0 {
		m.BytesPerRule = float64(m.MemoryBytes) / float64(m.Rules)
	}
	return m
}

// treeMetrics converts the shared decision-tree metrics into engine metrics.
func treeMetrics(backend string, rules int, m tree.Metrics) Metrics {
	return Metrics{
		Backend:      backend,
		Rules:        rules,
		LookupCost:   m.ClassificationTime,
		MemoryBytes:  m.MemoryBytes,
		BytesPerRule: m.BytesPerRule,
		Entries:      m.RuleRefs,
	}
}

// linearRuleBytes models one stored rule for the linear-search backend:
// five 16-byte ranges plus priority and ID.
const linearRuleBytes = rule.NumDims*16 + 16

func init() {
	Register("linear", "Linear", func(set *rule.Set, opts Options) (Classifier, error) {
		return &adapter{
			classify: set.Match,
			metrics: func() Metrics {
				n := set.Len()
				return Metrics{
					Backend:      "linear",
					Rules:        n,
					LookupCost:   n,
					MemoryBytes:  n * linearRuleBytes,
					BytesPerRule: linearRuleBytes,
					Entries:      n,
				}
			},
		}, nil
	})

	Register("hicuts", "HiCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := hicuts.DefaultConfig()
		cfg.Binth = opts.Binth
		t, err := hicuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return newTreeClassifier("hicuts", set, []*tree.Tree{t}, opts)
	})

	Register("hypercuts", "HyperCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := hypercuts.DefaultConfig()
		cfg.Binth = opts.Binth
		t, err := hypercuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return newTreeClassifier("hypercuts", set, []*tree.Tree{t}, opts)
	})

	Register("efficuts", "EffiCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := efficuts.DefaultConfig()
		cfg.Binth = opts.Binth
		c, err := efficuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return newTreeClassifier("efficuts", set, c.Trees, opts)
	})

	Register("cutsplit", "CutSplit", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := cutsplit.DefaultConfig()
		cfg.Binth = opts.Binth
		c, err := cutsplit.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		return newTreeClassifier("cutsplit", set, c.Trees, opts)
	})

	Register("tss", "TSS", func(set *rule.Set, opts Options) (Classifier, error) {
		c, err := tss.Build(set)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: c.Classify,
			metrics: func() Metrics {
				m := c.Metrics()
				return Metrics{
					Backend:      "tss",
					Rules:        set.Len(),
					LookupCost:   m.Tuples,
					MemoryBytes:  m.MemoryBytes,
					BytesPerRule: m.BytesPerRule,
					Entries:      m.Entries,
				}
			},
		}, nil
	})

	Register("tcam", "TCAM", func(set *rule.Set, opts Options) (Classifier, error) {
		c, err := tcam.Build(set, opts.TCAMExpandLimit)
		if err != nil {
			return nil, err
		}
		return &adapter{
			classify: c.Classify,
			metrics: func() Metrics {
				m := c.Metrics()
				em := Metrics{
					Backend:     "tcam",
					Rules:       set.Len(),
					LookupCost:  m.LookupTime,
					MemoryBytes: m.Bits / 8,
					Entries:     m.Entries,
				}
				if em.Rules > 0 {
					em.BytesPerRule = float64(em.MemoryBytes) / float64(em.Rules)
				}
				return em
			},
		}, nil
	})

	Register("neurocuts", "NeuroCuts", func(set *rule.Set, opts Options) (Classifier, error) {
		cfg := core.Scaled(1000)
		cfg.Binth = opts.Binth
		if opts.TimeSpaceCoeffSet {
			cfg.TimeSpaceCoeff = opts.TimeSpaceCoeff
		}
		if opts.LogReward {
			cfg.Scale = env.ScaleLog
		}
		cfg.MaxTimesteps = opts.Timesteps
		cfg.BatchTimesteps = maxInt(256, opts.Timesteps/10)
		cfg.Workers = opts.Workers
		cfg.Seed = opts.Seed
		cfg.Partition = env.PartitionNone
		if opts.SimplePartition {
			cfg.Partition = env.PartitionSimple
		}
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			return nil, err
		}
		t, _ := trainer.BestTree()
		if t == nil {
			return nil, errors.New("engine: neurocuts training produced no tree")
		}
		return newTreeClassifier("neurocuts", set, []*tree.Tree{t}, opts)
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
