// Package engine unifies every packet-classification backend in this
// repository behind one interface and one serving runtime.
//
// The repository implements many interchangeable classification data
// structures — the learned NeuroCuts trees, the hand-tuned HiCuts /
// HyperCuts / EffiCuts / CutSplit trees, Tuple Space Search, a TCAM model
// and the linear-search reference. Each historically exposed its own Build
// and lookup shape. This package gives them a common face:
//
//   - Classifier is the uniform lookup interface (Classify, ClassifyBatch,
//     Metrics). Adapters in backends.go register every algorithm in a
//     name-keyed registry, so callers select backends by string
//     ("hicuts", "tss", ...) instead of switching over packages.
//   - Engine wraps a Classifier with a serving runtime: batch lookups are
//     sharded across a pool of workers, and rule updates (Insert / Delete)
//     rebuild the structure off-line and swap it in atomically
//     (RCU-style, via atomic.Pointer), so readers are never blocked and
//     every lookup observes one coherent snapshot.
//
// Engine itself satisfies Classifier, so anything that serves a backend
// (internal/server, cmd/classify, the benchmarks) can serve an Engine
// transparently.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
	"neurocuts/internal/updater"
)

// Result is the outcome of classifying one packet in a batch.
type Result struct {
	// Rule is the highest-priority matching rule when OK is true.
	Rule rule.Rule
	// OK reports whether any rule matched.
	OK bool
}

// Metrics is the backend-independent cost summary every classifier reports.
// Fields that do not apply to a backend are zero (e.g. Entries for linear
// search equals the rule count, LookupCost for a TCAM is 1).
type Metrics struct {
	// Backend is the registry name of the backend ("hicuts", "tss", ...).
	Backend string
	// Rules is the classifier size (rules, not expanded entries).
	Rules int
	// LookupCost is the worst-case number of sequential steps per lookup:
	// node visits for trees, tuple probes for TSS, rules scanned for linear
	// search, 1 for TCAM.
	LookupCost int
	// MemoryBytes is the modelled memory footprint.
	MemoryBytes int
	// BytesPerRule is MemoryBytes divided by Rules.
	BytesPerRule float64
	// Entries is the number of stored elements (tree rule references,
	// TSS/TCAM entries after range expansion); Entries / Rules is the
	// replication or expansion factor.
	Entries int
	// CompiledBytes is the actual footprint of the compiled flat-array
	// serving form for tree backends (0 for backends without one, or when
	// serving the legacy pointer tree). MemoryBytes stays the paper's
	// modelled cost so figures remain comparable across PRs.
	CompiledBytes int
}

// Classifier is the uniform interface every backend adapter satisfies.
type Classifier interface {
	// Classify returns the highest-priority rule matching p, or ok=false.
	Classify(p rule.Packet) (rule.Rule, bool)
	// ClassifyBatch classifies ps[i] into out[i] for every i. out must be
	// at least as long as ps.
	ClassifyBatch(ps []rule.Packet, out []Result)
	// Metrics summarises the backend's cost profile.
	Metrics() Metrics
}

// snapshot is one immutable (classifier, rule set) generation. Readers load
// it once per operation so a concurrent swap can never tear a lookup. The
// backend identity travels with the snapshot because LoadArtifact can swap
// in a classifier built by a different backend.
type snapshot struct {
	cls     Classifier
	set     *rule.Set
	version uint64
	// backend is the registry name of the backend that produced cls.
	backend string
	// build rebuilds the backend after a rule update. It is nil for engines
	// warm-started from an artifact whose backend is not registered; such
	// engines serve lookups but reject rebuild-path updates (overlay updates
	// still work when the updater is enabled).
	build Builder
	// baseCls is the underlying built classifier. It equals cls except when
	// the online-update subsystem is serving a delta overlay on top of it
	// (then cls is an *overlayClassifier wrapping baseCls).
	baseCls Classifier
	// base is the overlay subsystem's view-derivation base (nil when the
	// updater is disabled). It is replaced on every compaction.
	base *updater.Base
}

// Engine serves a registered backend with sharded batch lookups and
// non-blocking atomic rule updates.
type Engine struct {
	opts Options

	// snap is the current read snapshot (RCU-style: writers build a new
	// snapshot off-line and publish it with a single pointer swap).
	snap atomic.Pointer[snapshot]

	// mu serialises writers; readers never take it.
	mu     sync.Mutex
	nextID int

	shards int

	// cache is the optional sharded flow cache (nil when disabled).
	cache *flowCache

	// Persistent batch workers. Spawning a goroutine per shard per call
	// allocates on every batch; instead the first large batch starts a
	// fixed pool of workers that live for the engine's lifetime and pull
	// work spans off a preallocated channel. workersUp gates the fast path
	// with a single atomic load.
	workersUp atomic.Bool
	workOnce  sync.Once
	work      chan batchTask
	closeOnce sync.Once

	// Online-update subsystem state (see overlay.go). updaterOn and
	// compactThreshold are set once before the engine is shared; journal is
	// guarded by mu; the rest are atomics or owned by the compactor.
	updaterOn        bool
	compactThreshold int
	// artifactPath is the artifact this engine's state derives from (set by
	// NewEngineFromArtifact and LoadArtifact, "" for cold-built engines).
	// SaveArtifact uses it to decide whether a save is a checkpoint of the
	// engine's own pair (rotate the journal) or a side snapshot (leave the
	// journal describing the original start). Guarded by mu.
	artifactPath     string
	journal          *updater.Journal
	compactCh        chan struct{}
	stopCompact      chan struct{}
	compactorDone    chan struct{}
	compactions      atomic.Uint64
	compacting       atomic.Bool
	lastCompactNanos atomic.Int64
	// Compaction failure telemetry: count, latest message (nil after a
	// success) and the time of the latest failure (drives the compactor's
	// retry backoff).
	compactFailures   atomic.Uint64
	lastCompactErr    atomic.Pointer[string]
	lastCompactFailAt atomic.Int64
	// overlayDirty is the UnixNano timestamp of the oldest pending overlay
	// update (0 when the overlay is empty), driving age-based compaction.
	overlayDirty atomic.Int64

	// Serving counters (see Stats). lookups counts packets classified
	// through Classify; batches and batchPackets count ClassifyBatch calls
	// and the packets they carried. They are bumped once per entry-point
	// call, not per shard chunk, so the per-packet serving cost stays one
	// uncontended atomic add per call.
	lookups      atomic.Uint64
	batches      atomic.Uint64
	batchPackets atomic.Uint64
	// updates / updateFailures count Insert+Delete outcomes.
	updates        atomic.Uint64
	updateFailures atomic.Uint64

	// tel is the optional shared telemetry instance (nil: disabled).
	// telTableID is the interned flight-recorder table label; telBackendID
	// follows the serving snapshot's backend (LoadArtifact can change it)
	// and is refreshed on every publish.
	tel          *telemetry.Telemetry
	telTableID   uint32
	telBackendID atomic.Uint32

	// publishHook, when set, runs after every post-construction snapshot
	// publish (insert, delete, overlay apply, compaction, artifact load)
	// with the published version. The run-to-completion dataplane
	// (internal/dataplane) registers one to ship epoch-tagged update
	// messages to its per-core loops; see SetPublishHook.
	publishHook atomic.Pointer[func(version uint64)]

	// closers run at the start of Close, before the compactor stops and the
	// journal closes, so subsystems serving this engine's snapshots (the
	// dataplane's classify loops) drain and exit while the snapshot state is
	// still fully alive. Guarded by closersMu.
	closersMu sync.Mutex
	closers   []func()
}

// SetPublishHook registers fn to run after every post-construction snapshot
// publish, with the new snapshot's version. At most one hook is supported;
// registering replaces the previous one, and a nil fn unregisters. The hook
// runs on the publishing goroutine (writer lock held for updates, the
// compactor goroutine for background compactions), so it must be fast and
// must never call back into the engine's write path.
func (e *Engine) SetPublishHook(fn func(version uint64)) {
	if fn == nil {
		e.publishHook.Store(nil)
		return
	}
	e.publishHook.Store(&fn)
}

// AddCloser registers fn to run at the start of Close, before the engine
// tears down its own background state (compactor, journal, batch workers).
// Subsystems that serve the engine's snapshots from their own goroutines —
// the dataplane's per-core loops — register their drain here so Close
// ordering is: drain serving loops first, then stop the update machinery.
// Closers run in reverse registration order and must be idempotent.
func (e *Engine) AddCloser(fn func()) {
	e.closersMu.Lock()
	e.closers = append(e.closers, fn)
	e.closersMu.Unlock()
}

// publishSnap publishes a new snapshot and notifies the publish hook. Every
// post-construction snapshot swap goes through here so attached consumers
// (the dataplane) observe every generation exactly once.
func (e *Engine) publishSnap(ns *snapshot) {
	e.snap.Store(ns)
	if e.tel != nil {
		// Publishing is the cold path, so re-interning the backend name
		// (a mutexed map probe) is fine; it keeps the flight recorder's
		// backend attribution correct across artifact loads.
		e.telBackendID.Store(e.tel.Intern(ns.backend))
	}
	if fn := e.publishHook.Load(); fn != nil {
		(*fn)(ns.version)
	}
}

// View is a pinned read handle on one engine snapshot: an immutable
// (classifier, rule set) generation. The dataplane's per-core loops hold one
// View each and classify against it lock-free and load-free — no atomic
// snapshot load per packet or per batch — reloading only when an
// epoch-tagged update message tells them a newer generation exists. A View
// stays valid (and consistent) indefinitely; holding an old one merely
// serves an older rule-set generation, the usual RCU contract.
type View struct {
	s *snapshot
}

// CurrentView returns a View pinned to the engine's current snapshot.
func (e *Engine) CurrentView() View { return View{s: e.snap.Load()} }

// Version returns the pinned snapshot's generation counter.
func (v View) Version() uint64 { return v.s.version }

// Backend returns the registry name of the backend serving the pinned
// snapshot.
func (v View) Backend() string { return v.s.backend }

// Metrics reports the pinned snapshot's backend cost metrics
// (allocation-free; backends serve it from a cached value or a stack
// struct).
func (v View) Metrics() Metrics { return v.s.cls.Metrics() }

// Classify looks one packet up in the pinned snapshot. It bypasses the
// engine's shared flow cache: dataplane loops keep their own per-core
// caches, so consulting the shared one would reintroduce the very lock the
// per-core design removes.
func (v View) Classify(p rule.Packet) (rule.Rule, bool) { return v.s.cls.Classify(p) }

// ClassifyBatch classifies ps[i] into out[i] against the pinned snapshot.
// Like Classify it bypasses the engine's shared flow cache and worker pool —
// dataplane loops shard and cache themselves — but the backend sees the
// whole span at once, so compiled tree snapshots serve it through the
// grouped prefetching traversal instead of one dependent-load chain per
// packet. out must be at least as long as ps.
func (v View) ClassifyBatch(ps []rule.Packet, out []Result) { v.s.cls.ClassifyBatch(ps, out) }

// EngineStats is an operator-visible snapshot of an engine's serving state:
// identity, counters, flow-cache effectiveness and the online-update
// subsystem's state. It is what the HTTP admin plane's /metrics endpoint
// renders (internal/admin), one sample set per table.
type EngineStats struct {
	// Backend is the registry name of the backend serving the snapshot.
	Backend string
	// Rules is the live (merged) rule count.
	Rules int
	// Version is the snapshot generation counter.
	Version uint64
	// Lookups is the total number of packets classified (single lookups
	// plus every packet of every batch).
	Lookups uint64
	// Batches is the number of ClassifyBatch calls served.
	Batches uint64
	// Updates and UpdateFailures count Insert/Delete outcomes.
	Updates        uint64
	UpdateFailures uint64
	// CacheHits and CacheMisses are the flow cache's cumulative counters
	// (zero when the engine runs without a cache).
	CacheHits   uint64
	CacheMisses uint64
	// Updater is the online-update subsystem's state.
	Updater UpdaterStats
}

// Stats returns a point-in-time snapshot of the engine's serving counters.
func (e *Engine) Stats() EngineStats {
	s := e.snap.Load()
	hits, misses := e.CacheStats()
	return EngineStats{
		Backend:        s.backend,
		Rules:          s.set.Len(),
		Version:        s.version,
		Lookups:        e.lookups.Load() + e.batchPackets.Load(),
		Batches:        e.batches.Load(),
		Updates:        e.updates.Load(),
		UpdateFailures: e.updateFailures.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Updater:        e.UpdaterStats(),
	}
}

// batchTask is one span of a batch dispatched to a shard worker. The struct
// is sent by value over a buffered channel, so dispatch does not allocate.
type batchTask struct {
	snap *snapshot
	ps   []rule.Packet
	out  []Result
	wg   *sync.WaitGroup
}

// wgPool recycles the per-call WaitGroups of sharded batches so the fan-out
// path stays allocation-free in steady state.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// minShardBatch is the smallest per-shard slice worth dispatching to a
// worker; batches below 2*minShardBatch run inline on the caller's
// goroutine.
const minShardBatch = 64

// NewEngine builds the named backend over the rule set and wraps it in an
// Engine. Shard count comes from opts.Shards (0 selects GOMAXPROCS).
func NewEngine(name string, set *rule.Set, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	entry, err := lookupBackend(name)
	if err != nil {
		return nil, err
	}
	cls, err := entry.build(set, opts)
	if err != nil {
		return nil, err
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts, shards: shards}
	e.cache = newFlowCache(opts.FlowCacheEntries, opts.FlowCacheShards)
	e.snap.Store(&snapshot{cls: cls, set: set, version: 1, backend: entry.name, build: entry.build, baseCls: cls})
	for _, r := range set.Rules() {
		if r.ID >= e.nextID {
			e.nextID = r.ID + 1
		}
	}
	if err := e.initUpdater(); err != nil {
		return nil, err
	}
	e.initTelemetry()
	return e, nil
}

// Backend returns the registry name of the backend serving the current
// snapshot.
func (e *Engine) Backend() string { return e.snap.Load().backend }

// Version returns the current snapshot's generation counter; it increases by
// one per successful Insert or Delete.
func (e *Engine) Version() uint64 { return e.snap.Load().version }

// Rules returns the current snapshot's rule set. The returned set is
// immutable: updates replace it rather than mutating it.
func (e *Engine) Rules() *rule.Set { return e.snap.Load().set }

// Classify looks up one packet in the current snapshot, consulting the flow
// cache first when one is configured. The path performs zero heap
// allocations for allocation-free backends (linear, tss).
func (e *Engine) Classify(p rule.Packet) (rule.Rule, bool) {
	e.lookups.Add(1)
	s := e.snap.Load()
	if e.tel == nil {
		return e.classifyOne(s, p)
	}
	return e.classifyOneTimed(s, p)
}

// classifyOne is the cache-aware single-packet path against a pinned
// snapshot.
func (e *Engine) classifyOne(s *snapshot, p rule.Packet) (rule.Rule, bool) {
	if e.cache != nil {
		if r, ok, hit := e.cache.get(p, s.version); hit {
			return r, ok
		}
	}
	r, ok := s.cls.Classify(p)
	if e.cache != nil {
		e.cache.put(p, s.version, r, ok)
	}
	return r, ok
}

// missScratch holds one chunk's cache misses so they can be classified as a
// single backend batch (and so reach the compiled backends' grouped
// traversal) instead of one packet at a time.
type missScratch struct {
	ps  []rule.Packet
	out []Result
	pos []int32
}

// missScratches recycles miss-collection scratches. A buffered channel rather
// than sync.Pool so the cached batch path stays allocation-free under the
// race detector too (Pool drops a fraction of Puts there).
var missScratches = make(chan *missScratch, 64)

func getMissScratch(n int) *missScratch {
	var ms *missScratch
	select {
	case ms = <-missScratches:
	default:
		ms = new(missScratch)
	}
	if cap(ms.ps) < n {
		ms.ps = make([]rule.Packet, n)
		ms.out = make([]Result, n)
		ms.pos = make([]int32, n)
	}
	return ms
}

func putMissScratch(ms *missScratch) {
	select {
	case missScratches <- ms:
	default:
	}
}

// classifyChunk classifies one span of a batch against a pinned snapshot,
// through the flow cache when one is configured. With a cache, hits are
// served in place and the misses are gathered into one backend batch — the
// backend sees a dense span either way, so compiled classifiers run their
// grouped prefetching traversal even behind the cache.
func (e *Engine) classifyChunk(s *snapshot, ps []rule.Packet, out []Result) {
	if e.cache == nil {
		s.cls.ClassifyBatch(ps, out)
		return
	}
	ms := getMissScratch(len(ps))
	miss := 0
	for i, p := range ps {
		if r, ok, hit := e.cache.get(p, s.version); hit {
			out[i].Rule, out[i].OK = r, ok
			continue
		}
		ms.ps[miss] = p
		ms.pos[miss] = int32(i)
		miss++
	}
	if miss > 0 {
		s.cls.ClassifyBatch(ms.ps[:miss], ms.out[:miss])
		for j := 0; j < miss; j++ {
			out[ms.pos[j]] = ms.out[j]
			e.cache.put(ms.ps[j], s.version, ms.out[j].Rule, ms.out[j].OK)
		}
	}
	putMissScratch(ms)
}

// Metrics reports the current snapshot's metrics.
func (e *Engine) Metrics() Metrics { return e.snap.Load().cls.Metrics() }

// ClassifyBatch classifies every packet of the batch against one coherent
// snapshot, splitting the batch across the engine's persistent worker pool.
// Small batches run inline: fanning out costs more than it saves below
// roughly a hundred packets. The fan-out path reuses pooled WaitGroups and
// sends fixed-size task structs over a preallocated channel, so steady-state
// dispatch performs no heap allocations.
func (e *Engine) ClassifyBatch(ps []rule.Packet, out []Result) {
	snap := e.snap.Load()
	n := len(ps)
	e.batches.Add(1)
	e.batchPackets.Add(uint64(n))
	if e.shards <= 1 || n < 2*minShardBatch {
		e.classifyChunkTimed(snap, ps, out)
		return
	}
	if !e.workersUp.Load() {
		e.startWorkers()
		if !e.workersUp.Load() {
			// The engine was closed before its first large batch; degrade
			// to the inline path instead of touching the dead worker pool.
			e.classifyChunkTimed(snap, ps, out)
			return
		}
	}
	shards := e.shards
	if max := (n + minShardBatch - 1) / minShardBatch; shards > max {
		shards = max
	}
	chunk := (n + shards - 1) / shards
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		e.work <- batchTask{snap: snap, ps: ps[lo:hi], out: out[lo:hi], wg: wg}
	}
	wg.Wait()
	wgPool.Put(wg)
}

// startWorkers spawns the engine's persistent shard workers exactly once.
func (e *Engine) startWorkers() {
	e.workOnce.Do(func() {
		// Buffer one full fan-out's worth of tasks per worker so dispatch
		// rarely blocks even with several concurrent batch callers.
		e.work = make(chan batchTask, 4*e.shards)
		for i := 0; i < e.shards; i++ {
			go func() {
				for t := range e.work {
					e.classifyChunkTimed(t.snap, t.ps, t.out)
					t.wg.Done()
				}
			}()
		}
		e.workersUp.Store(true)
	})
}

// Close releases the engine's worker goroutines, stops the background
// compactor and closes the update journal. It is safe to call more than
// once; the engine must not be used for batch classification after Close.
// Engines that never saw a large batch hold no batch goroutines, so Close
// is optional for short-lived engines without the updater.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		// Attached serving loops (the dataplane) drain and exit first, while
		// the snapshot, compactor and journal are all still alive — a loop
		// mid-batch must never observe a half-torn-down engine.
		e.closersMu.Lock()
		closers := e.closers
		e.closers = nil
		e.closersMu.Unlock()
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		e.closeUpdater()
		// Consuming the Once first means a concurrent in-flight start
		// finishes before we observe workersUp, and no future call can
		// respawn workers.
		e.workOnce.Do(func() {})
		if e.workersUp.Load() {
			close(e.work)
		}
	})
}

// UpdateResult describes the snapshot published by one successful update.
// All three fields come from the same snapshot, so a caller can report a
// consistent (version, rule count) pair even under concurrent writers.
type UpdateResult struct {
	// ID is the rule affected: the ID assigned on Insert, the ID removed
	// on Delete.
	ID int
	// Version is the published snapshot's generation counter.
	Version uint64
	// Rules is the published snapshot's rule count.
	Rules int
}

// ErrRuleNotFound is wrapped by Delete when no live rule carries the
// requested ID (including a second delete of an already-removed rule).
var ErrRuleNotFound = errors.New("rule not found")

// Insert adds a rule at priority position pos and atomically swaps the new
// snapshot in; concurrent readers keep classifying against the old snapshot
// until the swap. Positions outside [0, Rules()] are clamped to the nearest
// bound (pos<0 inserts at the top, pos>len appends), so Insert never fails
// on position alone. With the online-update subsystem enabled the rule
// lands in the delta overlay (no backend rebuild); otherwise the backend is
// rebuilt off-line.
func (e *Engine) Insert(pos int, r rule.Rule) (UpdateResult, error) {
	if e.tel == nil {
		res, err := e.doInsert(pos, r)
		e.countUpdate(err)
		return res, err
	}
	t0 := time.Now()
	res, err := e.doInsert(pos, r)
	e.tel.UpdateInsert.RecordNanos(0, time.Since(t0).Nanoseconds())
	e.countUpdate(err)
	return res, err
}

// countUpdate bumps the update outcome counters after an Insert or Delete.
func (e *Engine) countUpdate(err error) {
	if err != nil {
		e.updateFailures.Add(1)
	} else {
		e.updates.Add(1)
	}
}

func (e *Engine) doInsert(pos int, r rule.Rule) (UpdateResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	// Clamp before journaling so replay applies the position actually used.
	if pos < 0 {
		pos = 0
	}
	if pos > cur.set.Len() {
		pos = cur.set.Len()
	}
	if e.updaterOn && cur.base != nil {
		r.ID = e.nextID
		next := cur.set.Clone()
		next.Insert(pos, r)
		res, err := e.applyOverlayLocked(cur, next, updater.Op{Kind: updater.OpInsert, Pos: pos, ID: r.ID, Rule: r})
		if err == nil {
			e.nextID++
		}
		return res, err
	}
	if cur.build == nil {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: backend %q is not registered; updates unavailable on this artifact-served engine", cur.backend)
	}
	next := cur.set.Clone()
	r.ID = e.nextID
	next.Insert(pos, r)
	cls, err := cur.build(next, e.opts)
	if err != nil {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: rebuild after insert of rule %d: %w", r.ID, err)
	}
	e.nextID++
	ns := &snapshot{cls: cls, set: next, version: cur.version + 1, backend: cur.backend, build: cur.build, baseCls: cls}
	e.publishSnap(ns)
	return UpdateResult{ID: r.ID, Version: ns.version, Rules: next.Len()}, nil
}

// Delete removes the rule with the given ID and swaps the new snapshot in.
// Deleting an ID with no live rule (never inserted, or already deleted)
// fails with an error wrapping ErrRuleNotFound that names the ID. With the
// online-update subsystem enabled the delete becomes a tombstone (no
// backend rebuild); otherwise the backend is rebuilt off-line.
func (e *Engine) Delete(id int) (UpdateResult, error) {
	if e.tel == nil {
		res, err := e.doDelete(id)
		e.countUpdate(err)
		return res, err
	}
	t0 := time.Now()
	res, err := e.doDelete(id)
	e.tel.UpdateDelete.RecordNanos(0, time.Since(t0).Nanoseconds())
	e.countUpdate(err)
	return res, err
}

func (e *Engine) doDelete(id int) (UpdateResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	idx := -1
	for i, r := range cur.set.Rules() {
		if r.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: delete rule %d: %w (%d rules live)", id, ErrRuleNotFound, cur.set.Len())
	}
	if e.updaterOn && cur.base != nil {
		next := cur.set.Clone()
		next.Remove(idx)
		return e.applyOverlayLocked(cur, next, updater.Op{Kind: updater.OpDelete, ID: id})
	}
	if cur.build == nil {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: backend %q is not registered; updates unavailable on this artifact-served engine", cur.backend)
	}
	next := cur.set.Clone()
	next.Remove(idx)
	cls, err := cur.build(next, e.opts)
	if err != nil {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: rebuild after delete of rule %d: %w", id, err)
	}
	ns := &snapshot{cls: cls, set: next, version: cur.version + 1, backend: cur.backend, build: cur.build, baseCls: cls}
	e.publishSnap(ns)
	return UpdateResult{ID: id, Version: ns.version, Rules: next.Len()}, nil
}
