package engine

import (
	"fmt"
	"runtime"
	"time"

	"neurocuts/internal/compiled"
)

// NewEngineFromArtifact warm-starts an engine from a compiled classifier
// artifact: it serves its first lookup straight from the loaded flat-array
// form, without invoking any backend build or train path. The artifact's
// backend name is resolved against the registry lazily and only matters for
// rule updates (which rebuild); if the name is not registered, the engine
// still serves lookups but Insert/Delete return an error.
func NewEngineFromArtifact(path string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	c, meta, err := compiled.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: loading artifact %s: %w", path, err)
	}
	set := c.RuleSet()
	cls := &compiledClassifier{c: c, m: compiledMetrics(meta.Backend, c)}

	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts, shards: shards}
	e.cache = newFlowCache(opts.FlowCacheEntries, opts.FlowCacheShards)
	var build Builder
	if entry, err := lookupBackend(meta.Backend); err == nil {
		build = entry.build
	}
	e.snap.Store(&snapshot{cls: cls, set: set, version: 1, backend: meta.Backend, build: build})
	for _, r := range set.Rules() {
		if r.ID >= e.nextID {
			e.nextID = r.ID + 1
		}
	}
	return e, nil
}

// ArtifactMetadata returns the metadata SaveArtifact would stamp on the
// current snapshot.
func (e *Engine) artifactMetadata(s *snapshot) compiled.Metadata {
	return compiled.Metadata{
		Backend:     s.backend,
		Rules:       s.set.Len(),
		Binth:       e.opts.Binth,
		CreatedUnix: time.Now().Unix(),
	}
}

// SaveArtifact persists the current snapshot's compiled classifier (and its
// rule set) as a versioned artifact at path. It fails for backends that have
// no compiled form (linear, tss, tcam) and for engines running with
// LegacyTreeLookup.
func (e *Engine) SaveArtifact(path string) error {
	s := e.snap.Load()
	cp, ok := s.cls.(CompiledProvider)
	if !ok {
		return fmt.Errorf("engine: backend %q has no compiled artifact form", s.backend)
	}
	return compiled.SaveFile(path, cp.Compiled(), e.artifactMetadata(s))
}

// LoadArtifact loads a compiled classifier artifact and atomically swaps it
// in as the next snapshot (same RCU discipline as Insert/Delete: in-flight
// lookups finish against the old snapshot). The engine's backend identity
// follows the artifact's metadata.
func (e *Engine) LoadArtifact(path string) (UpdateResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	c, meta, err := compiled.LoadFile(path)
	if err != nil {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: loading artifact %s: %w", path, err)
	}
	set := c.RuleSet()
	cls := &compiledClassifier{c: c, m: compiledMetrics(meta.Backend, c)}
	var build Builder
	if entry, err := lookupBackend(meta.Backend); err == nil {
		build = entry.build
	}
	ns := &snapshot{cls: cls, set: set, version: cur.version + 1, backend: meta.Backend, build: build}
	e.snap.Store(ns)
	for _, r := range set.Rules() {
		if r.ID >= e.nextID {
			e.nextID = r.ID + 1
		}
	}
	return UpdateResult{ID: -1, Version: ns.version, Rules: set.Len()}, nil
}
