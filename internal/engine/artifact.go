package engine

import (
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"neurocuts/internal/compiled"
	"neurocuts/internal/updater"
)

// JournalPathFor returns the conventional co-located journal path for a
// compiled artifact: the artifact path plus ".journal". Keeping the pair
// side by side means a warm start that finds both files can always
// reconstruct the exact acknowledged state.
func JournalPathFor(artifactPath string) string { return artifactPath + ".journal" }

// NewEngineFromArtifact warm-starts an engine from a compiled classifier
// artifact: it serves its first lookup straight from the loaded flat-array
// form, without invoking any backend build or train path. The artifact's
// backend name is resolved against the registry lazily and only matters for
// rebuild-path updates and compaction; if the name is not registered, the
// engine still serves lookups (and, with the updater enabled, still accepts
// overlay updates). When opts.JournalPath names an existing journal its
// records are replayed on top of the artifact before the engine is
// returned, restoring every update acknowledged before the last shutdown
// or crash.
func NewEngineFromArtifact(path string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	c, meta, err := compiled.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: loading artifact %s: %w", path, err)
	}
	set := c.RuleSet()
	cls := &compiledClassifier{c: c, m: compiledMetrics(meta.Backend, c)}

	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts, shards: shards}
	e.cache = newFlowCache(opts.FlowCacheEntries, opts.FlowCacheShards)
	var build Builder
	if entry, err := lookupBackend(meta.Backend); err == nil {
		build = entry.build
	}
	e.artifactPath = path
	e.snap.Store(&snapshot{cls: cls, set: set, version: 1, backend: meta.Backend, build: build, baseCls: cls})
	for _, r := range set.Rules() {
		if r.ID >= e.nextID {
			e.nextID = r.ID + 1
		}
	}
	if err := e.initUpdater(); err != nil {
		return nil, err
	}
	e.initTelemetry()
	return e, nil
}

// ArtifactMetadata returns the metadata SaveArtifact would stamp on the
// current snapshot.
func (e *Engine) artifactMetadata(s *snapshot) compiled.Metadata {
	return compiled.Metadata{
		Backend:     s.backend,
		Rules:       s.set.Len(),
		Binth:       e.opts.Binth,
		CreatedUnix: time.Now().Unix(),
	}
}

// SaveArtifact persists the current snapshot's compiled classifier (and its
// rule set) as a versioned artifact at path. It fails for backends that have
// no compiled form (linear, tss, tcam) and for engines running with
// LegacyTreeLookup. With the online-update subsystem enabled, any pending
// overlay updates are first folded in by a synchronous compaction so the
// artifact embodies every acknowledged update.
//
// The journal rotates (resets to empty over the new checkpoint) only when
// the save targets the engine's own pair: path is the journal's co-located
// companion (JournalPathFor(path) equals the configured journal path) or
// the artifact this engine was started from / last loaded. A save to any
// other path is a side snapshot: the journal must keep describing the
// engine's original starting list, or a crash after the save would leave
// the configured artifact+journal pair unable to reconstruct acknowledged
// updates.
//
// The checkpoint itself is two durable steps (artifact rename, then journal
// rotation), ordered so a crash between them never loses data: the new
// artifact already embodies every journaled update, and the stale journal
// fails the next warm start loudly (fingerprint mismatch) instead of
// replaying onto the wrong base — remove the stale journal to proceed.
func (e *Engine) SaveArtifact(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.snap.Load()
	if _, overlay := s.cls.(*overlayClassifier); overlay {
		if err := e.compactLocked(); err != nil {
			return err
		}
		s = e.snap.Load()
	}
	cp, ok := s.cls.(CompiledProvider)
	if !ok {
		return fmt.Errorf("engine: backend %q has no compiled artifact form", s.backend)
	}
	if err := compiled.SaveFile(path, cp.Compiled(), e.artifactMetadata(s)); err != nil {
		return err
	}
	if e.journal != nil && (samePath(JournalPathFor(path), e.journal.Path()) || samePath(path, e.artifactPath)) {
		return e.rotateJournalLocked(s)
	}
	return nil
}

// samePath compares two file paths by their canonical absolute form, so
// "policy.ncaf" and "./policy.ncaf" name the same checkpoint. Symlinked
// spellings can still differ — treated as distinct paths, which errs on the
// side of NOT rotating the journal (recoverable) rather than rotating for
// the wrong file.
func samePath(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	return aa == bb
}

// rotateJournalLocked resets the journal over the snapshot's rule list
// after a checkpoint (artifact save or load). Caller holds e.mu.
func (e *Engine) rotateJournalLocked(s *snapshot) error {
	if e.journal == nil {
		return nil
	}
	return e.journal.Rotate(updater.JournalMeta{
		Backend:     s.backend,
		BaseRules:   s.set.Len(),
		BaseCRC:     updater.Fingerprint(s.set),
		CreatedUnix: time.Now().Unix(),
	})
}

// LoadArtifact loads a compiled classifier artifact and atomically swaps it
// in as the next snapshot (same RCU discipline as Insert/Delete: in-flight
// lookups finish against the old snapshot). The engine's backend identity
// follows the artifact's metadata. With the updater enabled the overlay
// resets over the loaded base and the journal rotates: a load replaces the
// rule universe, so the previous update history cannot describe the new
// state — after a load, the journal (and crash recovery) pairs with the
// loaded artifact, and a restart from the pre-load artifact fails loudly
// with a fingerprint mismatch rather than silently serving stale rules.
func (e *Engine) LoadArtifact(path string) (UpdateResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	c, meta, err := compiled.LoadFile(path)
	if err != nil {
		return UpdateResult{Version: cur.version, Rules: cur.set.Len()},
			fmt.Errorf("engine: loading artifact %s: %w", path, err)
	}
	set := c.RuleSet()
	cls := &compiledClassifier{c: c, m: compiledMetrics(meta.Backend, c)}
	var build Builder
	if entry, err := lookupBackend(meta.Backend); err == nil {
		build = entry.build
	}
	ns := &snapshot{cls: cls, set: set, version: cur.version + 1, backend: meta.Backend, build: build, baseCls: cls}
	if e.updaterOn {
		base, err := newBase(cls, set)
		if err != nil {
			return UpdateResult{Version: cur.version, Rules: cur.set.Len()}, err
		}
		ns.base = base
	}
	e.publishSnap(ns)
	e.artifactPath = path
	e.overlayDirty.Store(0)
	for _, r := range set.Rules() {
		if r.ID >= e.nextID {
			e.nextID = r.ID + 1
		}
	}
	if err := e.rotateJournalLocked(ns); err != nil {
		return UpdateResult{ID: -1, Version: ns.version, Rules: set.Len()}, err
	}
	return UpdateResult{ID: -1, Version: ns.version, Rules: set.Len()}, nil
}
