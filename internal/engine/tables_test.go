package engine

import (
	"strings"
	"sync"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

func newTestEngine(t *testing.T, family string, size int) (*Engine, *rule.Set) {
	t.Helper()
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, size, 1)
	eng, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	return eng, set
}

func TestTablesCreateGetDrop(t *testing.T) {
	tabs := NewTables()
	if _, ok := tabs.Default(); ok {
		t.Fatal("empty manager should have no default")
	}

	acl, _ := newTestEngine(t, "acl1", 50)
	fw, _ := newTestEngine(t, "fw1", 50)
	defer tabs.CloseAll()

	aclTab, err := tabs.Create("acl", acl)
	if err != nil {
		t.Fatal(err)
	}
	if aclTab.ID == 0 {
		t.Fatal("table IDs must start at 1 (0 is the wire default sentinel)")
	}
	fwTab, err := tabs.Create("fw", fw)
	if err != nil {
		t.Fatal(err)
	}
	if fwTab.ID == aclTab.ID {
		t.Fatal("table IDs must be unique")
	}
	if _, err := tabs.Create("acl", fw); err == nil {
		t.Fatal("duplicate create must fail")
	}

	// First created table is the default, reachable by name, ID and ID 0.
	if def, ok := tabs.Default(); !ok || def.Name != "acl" {
		t.Fatalf("default = %v, want acl", def)
	}
	if tab, ok := tabs.GetByID(0); !ok || tab.Name != "acl" {
		t.Fatal("ID 0 must resolve to the default table")
	}
	if tab, ok := tabs.GetByID(fwTab.ID); !ok || tab.Name != "fw" {
		t.Fatal("lookup by ID failed")
	}
	if got := tabs.Names(); len(got) != 2 || got[0] != "acl" || got[1] != "fw" {
		t.Fatalf("Names() = %v", got)
	}

	// The default table cannot be dropped while others exist.
	if err := tabs.Drop("acl"); err == nil {
		t.Fatal("dropping the default table must fail")
	}
	if err := tabs.SetDefault("fw"); err != nil {
		t.Fatal(err)
	}
	if err := tabs.Drop("acl"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tabs.Get("acl"); ok {
		t.Fatal("dropped table still resolvable")
	}
	if _, ok := tabs.GetByID(aclTab.ID); ok {
		t.Fatal("dropped table still resolvable by ID")
	}
	if tabs.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tabs.Len())
	}
	if err := tabs.Drop("acl"); err == nil {
		t.Fatal("double drop must fail")
	}
	// The last remaining table is necessarily the default and can never be
	// dropped: a serving manager never loses its v1 / table-0 target.
	if err := tabs.Drop("fw"); err == nil {
		t.Fatal("dropping the last (default) table must fail")
	}
	if _, ok := tabs.Default(); !ok {
		t.Fatal("default lost")
	}

	// Table names are bounded by the wire protocol's one-byte name length.
	if _, err := tabs.Create(strings.Repeat("x", MaxTableNameLen+1), fw); err == nil {
		t.Fatal("over-long table name must be rejected")
	}
}

func TestTablesSwapKeepsIdentityAndRetiresOldEngine(t *testing.T) {
	tabs := NewTables()
	defer tabs.CloseAll()
	e1, _ := newTestEngine(t, "acl1", 40)
	e2, _ := newTestEngine(t, "acl2", 40)

	tab1, err := tabs.Create("acl", e1)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := tabs.Swap("acl", e2)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.ID != tab1.ID {
		t.Fatalf("swap changed the wire ID: %d -> %d", tab1.ID, tab2.ID)
	}
	if got, _ := tabs.Get("acl"); got.Engine != e2 {
		t.Fatal("swap did not publish the new engine")
	}
	// The displaced engine must still serve lookups (it is retired, not
	// closed) so requests pinned to it can finish.
	out := make([]Result, 1)
	e1.ClassifyBatch([]rule.Packet{{}}, out)

	if def, _ := tabs.Default(); def.Engine != e2 {
		t.Fatal("swap of the default table did not re-point the default")
	}
	if _, err := tabs.Swap("nat", e1); err == nil {
		t.Fatal("swap of a missing table must fail")
	}
}

// TestTablesConcurrentAdminAndLookup hammers lookups against concurrent
// create/swap/drop to prove readers always observe a coherent table map
// (run with -race).
func TestTablesConcurrentAdminAndLookup(t *testing.T) {
	tabs := NewTables()
	defer tabs.CloseAll()
	base, set := newTestEngine(t, "acl1", 60)
	if _, err := tabs.Create("base", base); err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(set, 200, 3)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tab, ok := tabs.GetByID(0)
				if !ok {
					t.Error("default table vanished")
					return
				}
				for _, e := range trace {
					tab.Engine.Classify(e.Key)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		eng, _ := newTestEngine(t, "acl2", 30)
		if _, err := tabs.Create("scratch", eng); err != nil {
			t.Fatal(err)
		}
		eng2, _ := newTestEngine(t, "fw1", 30)
		if _, err := tabs.Swap("scratch", eng2); err != nil {
			t.Fatal(err)
		}
		if err := tabs.Drop("scratch"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
