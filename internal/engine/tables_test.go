package engine

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

func newTestEngine(t *testing.T, family string, size int) (*Engine, *rule.Set) {
	t.Helper()
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, size, 1)
	eng, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	return eng, set
}

func TestTablesCreateGetDrop(t *testing.T) {
	tabs := NewTables()
	if _, ok := tabs.Default(); ok {
		t.Fatal("empty manager should have no default")
	}

	acl, _ := newTestEngine(t, "acl1", 50)
	fw, _ := newTestEngine(t, "fw1", 50)
	defer tabs.CloseAll()

	aclTab, err := tabs.Create("acl", acl)
	if err != nil {
		t.Fatal(err)
	}
	if aclTab.ID == 0 {
		t.Fatal("table IDs must start at 1 (0 is the wire default sentinel)")
	}
	fwTab, err := tabs.Create("fw", fw)
	if err != nil {
		t.Fatal(err)
	}
	if fwTab.ID == aclTab.ID {
		t.Fatal("table IDs must be unique")
	}
	if _, err := tabs.Create("acl", fw); err == nil {
		t.Fatal("duplicate create must fail")
	}

	// First created table is the default, reachable by name, ID and ID 0.
	if def, ok := tabs.Default(); !ok || def.Name != "acl" {
		t.Fatalf("default = %v, want acl", def)
	}
	if tab, ok := tabs.GetByID(0); !ok || tab.Name != "acl" {
		t.Fatal("ID 0 must resolve to the default table")
	}
	if tab, ok := tabs.GetByID(fwTab.ID); !ok || tab.Name != "fw" {
		t.Fatal("lookup by ID failed")
	}
	if got := tabs.Names(); len(got) != 2 || got[0] != "acl" || got[1] != "fw" {
		t.Fatalf("Names() = %v", got)
	}

	// The default table cannot be dropped while others exist.
	if err := tabs.Drop("acl"); err == nil {
		t.Fatal("dropping the default table must fail")
	}
	if err := tabs.SetDefault("fw"); err != nil {
		t.Fatal(err)
	}
	if err := tabs.Drop("acl"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tabs.Get("acl"); ok {
		t.Fatal("dropped table still resolvable")
	}
	if _, ok := tabs.GetByID(aclTab.ID); ok {
		t.Fatal("dropped table still resolvable by ID")
	}
	if tabs.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tabs.Len())
	}
	if err := tabs.Drop("acl"); err == nil {
		t.Fatal("double drop must fail")
	}
	// The last remaining table is necessarily the default and can never be
	// dropped: a serving manager never loses its v1 / table-0 target.
	if err := tabs.Drop("fw"); err == nil {
		t.Fatal("dropping the last (default) table must fail")
	}
	if _, ok := tabs.Default(); !ok {
		t.Fatal("default lost")
	}

	// Table names are bounded by the wire protocol's one-byte name length.
	if _, err := tabs.Create(strings.Repeat("x", MaxTableNameLen+1), fw); err == nil {
		t.Fatal("over-long table name must be rejected")
	}
}

func TestTablesSwapKeepsIdentityAndRetiresOldEngine(t *testing.T) {
	tabs := NewTables()
	defer tabs.CloseAll()
	e1, _ := newTestEngine(t, "acl1", 40)
	e2, _ := newTestEngine(t, "acl2", 40)

	tab1, err := tabs.Create("acl", e1)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := tabs.Swap("acl", e2)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.ID != tab1.ID {
		t.Fatalf("swap changed the wire ID: %d -> %d", tab1.ID, tab2.ID)
	}
	if got, _ := tabs.Get("acl"); got.Engine != e2 {
		t.Fatal("swap did not publish the new engine")
	}
	// The displaced engine must still serve lookups (it is retired, not
	// closed) so requests pinned to it can finish.
	out := make([]Result, 1)
	e1.ClassifyBatch([]rule.Packet{{}}, out)

	if def, _ := tabs.Default(); def.Engine != e2 {
		t.Fatal("swap of the default table did not re-point the default")
	}
	if _, err := tabs.Swap("nat", e1); err == nil {
		t.Fatal("swap of a missing table must fail")
	}
}

// TestTablesConcurrentAdminAndLookup hammers lookups against concurrent
// create/swap/drop to prove readers always observe a coherent table map
// (run with -race).
func TestTablesConcurrentAdminAndLookup(t *testing.T) {
	tabs := NewTables()
	defer tabs.CloseAll()
	base, set := newTestEngine(t, "acl1", 60)
	if _, err := tabs.Create("base", base); err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(set, 200, 3)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tab, ok := tabs.GetByID(0)
				if !ok {
					t.Error("default table vanished")
					return
				}
				for _, e := range trace {
					tab.Engine.Classify(e.Key)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		eng, _ := newTestEngine(t, "acl2", 30)
		if _, err := tabs.Create("scratch", eng); err != nil {
			t.Fatal(err)
		}
		eng2, _ := newTestEngine(t, "fw1", 30)
		if _, err := tabs.Swap("scratch", eng2); err != nil {
			t.Fatal(err)
		}
		if err := tabs.Drop("scratch"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// journaledTestEngine builds an engine whose closure is observable: while
// open, UpdaterStats reports its journal path; Close tears the journal down
// and the path reads back empty.
func journaledTestEngine(t *testing.T, dir, name string) *Engine {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 40, 7)
	eng, err := NewEngine("linear", set, Options{
		Shards:           1,
		CompactThreshold: -1,
		JournalPath:      filepath.Join(dir, name+".journal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func engineClosed(e *Engine) bool { return e.UpdaterStats().JournalPath == "" }

// TestTablesReaperLifecycle is the regression test for the reaper gap: only
// Swap and Drop used to reap, so a daemon whose churn after a swap was
// create-only (or SetDefault-only) pinned displaced engines forever. Every
// admin mutation must run the reaper.
func TestTablesReaperLifecycle(t *testing.T) {
	dir := t.TempDir()
	tabs := NewTables()
	defer tabs.CloseAll()
	now := time.Unix(1_700_000_000, 0)
	tabs.now = func() time.Time { return now }

	engA := journaledTestEngine(t, dir, "a")
	engB := journaledTestEngine(t, dir, "b")
	engB2 := journaledTestEngine(t, dir, "b2")
	if _, err := tabs.Create("acl", engA); err != nil {
		t.Fatal(err)
	}
	if _, err := tabs.Create("fw", engB); err != nil {
		t.Fatal(err)
	}
	if _, err := tabs.Swap("fw", engB2); err != nil {
		t.Fatal(err)
	}
	if got := tabs.RetiredLen(); got != 1 {
		t.Fatalf("RetiredLen after swap = %d, want 1", got)
	}

	// Within the grace the retiree stays open through any mutation.
	now = now.Add(retireGrace - time.Second)
	if _, err := tabs.Create("nat1", journaledTestEngine(t, dir, "n1")); err != nil {
		t.Fatal(err)
	}
	if engineClosed(engB) || tabs.RetiredLen() != 1 {
		t.Fatal("retiree reaped before its grace expired")
	}

	// Past the grace, a Create — the churn pattern that used to leak — must
	// close it.
	now = now.Add(2 * time.Second)
	if _, err := tabs.Create("nat2", journaledTestEngine(t, dir, "n2")); err != nil {
		t.Fatal(err)
	}
	if !engineClosed(engB) {
		t.Fatal("Create did not reap a retiree whose grace had expired")
	}
	if got := tabs.RetiredLen(); got != 0 {
		t.Fatalf("RetiredLen after reaping Create = %d, want 0", got)
	}

	// SetDefault is a mutation too: it must also reap.
	engB3 := journaledTestEngine(t, dir, "b3")
	if _, err := tabs.Swap("fw", engB3); err != nil {
		t.Fatal(err)
	}
	now = now.Add(retireGrace + time.Second)
	if err := tabs.SetDefault("fw"); err != nil {
		t.Fatal(err)
	}
	if !engineClosed(engB2) {
		t.Fatal("SetDefault did not reap a retiree whose grace had expired")
	}

	// Drop then CloseAll: the dropped engine is closed exactly once by
	// CloseAll (the deferred one above runs again on an empty manager — both
	// calls and any direct re-Close must be no-ops, not double-closes).
	if err := tabs.SetDefault("acl"); err != nil {
		t.Fatal(err)
	}
	if err := tabs.Drop("fw"); err != nil {
		t.Fatal(err)
	}
	tabs.CloseAll()
	for _, e := range []*Engine{engA, engB3} {
		if !engineClosed(e) {
			t.Fatal("CloseAll left an engine open")
		}
		e.Close() // idempotent
	}
	tabs.CloseAll()
}
