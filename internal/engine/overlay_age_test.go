package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"neurocuts/internal/rule"
)

// The blocking test backend parks inside its build while armed, so a test
// can deterministically land updates in the middle of a background
// compaction's rebuild window (the rebase branch of compactOnce).
var (
	blockBuildArm     atomic.Bool
	blockBuildEntered = make(chan struct{}, 4)
	blockBuildRelease = make(chan struct{})
)

func init() {
	Register("blocking-test-backend", "Blocking", func(set *rule.Set, opts Options) (Classifier, error) {
		if blockBuildArm.Load() {
			blockBuildEntered <- struct{}{}
			<-blockBuildRelease
		}
		return New("linear", set)
	})
}

// TestCompactRebaseRestartsAgeClock is the regression test for the stale
// age clock: when a compaction rebases updates that arrived mid-rebuild,
// the rebased overlay's dirty timestamp must restart at the compaction, not
// keep the pre-compaction value. Keeping it made CompactMaxAge see the
// just-rebased overlay as already past its age budget and fire a spurious
// back-to-back rebuild after every compaction under steady update load.
func TestCompactRebaseRestartsAgeClock(t *testing.T) {
	set := overlayTestSet(t, 100)
	eng, err := NewEngine("blocking-test-backend", set, Options{
		Shards: 1, OnlineUpdates: true, CompactThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// One pending update, with its dirty timestamp forced far into the past
	// (as if the overlay had been waiting out a long CompactMaxAge).
	if _, err := eng.Insert(0, set.Rule(1)); err != nil {
		t.Fatal(err)
	}
	ancient := time.Now().Add(-time.Hour).UnixNano()
	eng.overlayDirty.Store(ancient)

	// Compact with the rebuild parked, and land a second update inside the
	// window so the final swap must take the rebase branch.
	blockBuildArm.Store(true)
	done := make(chan struct{})
	go func() { eng.compactOnce(); close(done) }()
	<-blockBuildEntered
	if _, err := eng.Insert(1, set.Rule(2)); err != nil {
		t.Fatal(err)
	}
	blockBuildArm.Store(false)
	close(blockBuildRelease)
	<-done

	st := eng.UpdaterStats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	if st.OverlayRules != 1 {
		t.Fatalf("OverlayRules = %d, want the mid-rebuild insert rebased onto the new base", st.OverlayRules)
	}
	dirty := eng.overlayDirty.Load()
	if dirty == 0 {
		t.Fatal("overlayDirty = 0 after a rebase that carried an update forward")
	}
	if dirty == ancient {
		t.Fatal("rebase kept the pre-compaction dirty timestamp; CompactMaxAge would fire a spurious back-to-back rebuild")
	}
	if age := time.Since(time.Unix(0, dirty)); age > time.Minute {
		t.Fatalf("rebased overlay's age = %v, want restarted at the compaction", age)
	}
}
