package engine

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
)

// saveTestArtifact builds a HiCuts tree over the set, compiles it and
// writes an artifact stamped with the given backend name, returning the
// path. Stamping an arbitrary backend name lets tests prove that warm
// starts never touch the build path: an unregistered (or poisoned) backend
// can still serve.
func saveTestArtifact(t *testing.T, set *rule.Set, backend, dir string) string {
	t.Helper()
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiled.Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "artifact.ncaf")
	meta := compiled.Metadata{Backend: backend, Rules: set.Len(), Binth: 16}
	if err := compiled.SaveFile(path, c, meta); err != nil {
		t.Fatal(err)
	}
	return path
}

func artifactTestSet(t *testing.T, size int) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, 3)
}

// poisonedErr is returned by the poisoned backend's builder; any test that
// sees it has proven a build path ran when it must not have.
var poisonedErr = errors.New("build path invoked")

func init() {
	// A backend whose build always fails: artifacts stamped with this name
	// can only serve if the warm-start path truly skips building.
	Register("poisoned-test-backend", "Poisoned", func(set *rule.Set, opts Options) (Classifier, error) {
		return nil, poisonedErr
	})
}

// TestWarmStartServesWithoutBuilding is the acceptance test for artifact
// warm starts: an engine loaded from an artifact whose backend build always
// fails must still construct and serve correct lookups — proof that no
// backend build or train path is invoked before the first lookup.
func TestWarmStartServesWithoutBuilding(t *testing.T) {
	set := artifactTestSet(t, 200)
	path := saveTestArtifact(t, set, "poisoned-test-backend", t.TempDir())

	eng, err := NewEngineFromArtifact(path, Options{Shards: 2})
	if err != nil {
		t.Fatalf("warm start invoked the build path: %v", err)
	}
	defer eng.Close()
	if eng.Backend() != "poisoned-test-backend" {
		t.Fatalf("backend = %q, want artifact metadata name", eng.Backend())
	}
	if eng.Rules().Len() != set.Len() {
		t.Fatalf("rule set: %d rules, want %d", eng.Rules().Len(), set.Len())
	}
	mismatches := 0
	for _, e := range classbench.GenerateTrace(set, 3000, 9) {
		got := -1
		if r, ok := eng.Classify(e.Key); ok {
			got = r.Priority
		}
		if got != set.MatchIndex(e.Key) {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d lookups diverge from linear search after warm start", mismatches)
	}
	// Updates rebuild, so on this backend they must fail — with the
	// poisoned builder's error, proving the build path is reached only now.
	if _, err := eng.Insert(0, rule.NewWildcardRule(0)); !errors.Is(err, poisonedErr) {
		t.Fatalf("Insert after poisoned warm start: err = %v, want the build-path error", err)
	}
}

// TestWarmStartUnknownBackend: artifacts from unregistered backends serve
// lookups but reject updates with a clear error.
func TestWarmStartUnknownBackend(t *testing.T) {
	set := artifactTestSet(t, 100)
	path := saveTestArtifact(t, set, "no-such-backend", t.TempDir())
	eng, err := NewEngineFromArtifact(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if r, ok := eng.Classify(rule.Packet{Proto: 6}); !ok && set.MatchIndex(rule.Packet{Proto: 6}) >= 0 {
		t.Fatalf("lookup failed after warm start: %v %v", r, ok)
	}
	if _, err := eng.Insert(0, rule.NewWildcardRule(0)); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("Insert on unknown backend: err = %v, want 'not registered'", err)
	}
}

// TestEngineSaveLoadArtifact round-trips an engine-built classifier through
// SaveArtifact / NewEngineFromArtifact / LoadArtifact and checks the
// results and update behaviour are preserved.
func TestEngineSaveLoadArtifact(t *testing.T) {
	set := artifactTestSet(t, 250)
	dir := t.TempDir()
	path := filepath.Join(dir, "hicuts.ncaf")

	src, err := NewEngine("hicuts", set, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.SaveArtifact(path); err != nil {
		t.Fatal(err)
	}

	warm, err := NewEngineFromArtifact(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Backend() != "hicuts" {
		t.Fatalf("backend = %q, want hicuts", warm.Backend())
	}
	packets := make([]rule.Packet, 0, 2000)
	for _, e := range classbench.GenerateTrace(set, 2000, 21) {
		packets = append(packets, e.Key)
	}
	for _, p := range packets {
		ar, aok := src.Classify(p)
		br, bok := warm.Classify(p)
		if aok != bok || (aok && ar.Priority != br.Priority) {
			t.Fatalf("packet %v: built=(%v,%v) warm=(%v,%v)", p, ar.Priority, aok, br.Priority, bok)
		}
	}
	// A registered backend resolves lazily, so live updates work after a
	// warm start (they rebuild, as normal updates do).
	res, err := warm.Insert(0, rule.NewWildcardRule(0))
	if err != nil {
		t.Fatalf("Insert after warm start: %v", err)
	}
	if res.Version != 2 || res.Rules != set.Len()+1 {
		t.Fatalf("unexpected update result %+v", res)
	}
	if r, ok := warm.Classify(packets[0]); !ok || r.Priority != 0 {
		t.Fatalf("inserted top wildcard not winning: %v %v", r, ok)
	}

	// LoadArtifact swaps the artifact back in atomically, bumping the version.
	res, err = warm.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 3 || res.Rules != set.Len() {
		t.Fatalf("unexpected load result %+v", res)
	}
	for _, p := range packets[:200] {
		ar, aok := src.Classify(p)
		br, bok := warm.Classify(p)
		if aok != bok || (aok && ar.Priority != br.Priority) {
			t.Fatalf("after LoadArtifact, packet %v diverges", p)
		}
	}
}

// TestSaveArtifactUnsupportedBackend: backends with no compiled form
// refuse to save.
func TestSaveArtifactUnsupportedBackend(t *testing.T) {
	set := artifactTestSet(t, 50)
	eng, err := NewEngine("linear", set, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SaveArtifact(filepath.Join(t.TempDir(), "x.ncaf")); err == nil {
		t.Fatal("linear backend saved an artifact")
	}
	// Legacy pointer-tree mode keeps no compiled form either.
	leg, err := NewEngine("hicuts", set, Options{Shards: 1, LegacyTreeLookup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leg.Close()
	if err := leg.SaveArtifact(filepath.Join(t.TempDir(), "y.ncaf")); err == nil {
		t.Fatal("legacy-mode engine saved an artifact")
	}
}
