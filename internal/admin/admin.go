// Package admin is the daemon's HTTP management plane: Prometheus-format
// metrics, health and readiness probes, a JSON table listing and the
// standard pprof profiling endpoints, all served by the stdlib HTTP stack
// (no external dependencies).
//
// The wire protocols of internal/server exist to classify packets; this
// package exists to run the process that does. classifyd's rich internal
// telemetry — engine lookup/update counters, flow-cache effectiveness, the
// online-update subsystem's overlay/compaction/journal state, the wire
// server's request counters — was previously reachable only through the
// bespoke binary "stats" op, which no scrape-based monitoring stack speaks.
// Hanging a plain HTTP admin listener off the daemon (the way ndn-dpdk
// hangs its management plane off its service daemon) makes the system
// observable with the tools operators already run:
//
//	GET /metrics        Prometheus text exposition (see metrics.go)
//	GET /healthz        liveness: 200 once the process serves HTTP
//	GET /readyz         readiness: 200 while a default table is serving
//	GET /tables         JSON table listing (mirrors the v2 list-tables op)
//	GET /debug/slow     slow-lookup flight recorder dump (JSON, worst-first)
//	GET /debug/pprof/*  CPU/heap/goroutine/... profiles (net/http/pprof)
//
// When a telemetry instance is attached (Options.Telemetry), /metrics
// additionally exposes native Prometheus histogram families — lookup,
// dataplane-span, update and server-request latency — rendered from the
// lock-free striped histograms, and /debug/slow dumps the flight recorder.
// When a dataplane is attached (Options.Dataplane), /metrics gains per-core
// gauges: ring depth and high watermark, park/wake transition counts,
// epoch lag and flow-cache hit ratio.
//
// The admin listener is separate from the classification listener on
// purpose: it binds its own (typically loopback or cluster-internal)
// address, and shutting the daemon down stops it before the classification
// server drains, so a scrape can never observe a half-shut-down process as
// healthy.
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"neurocuts/internal/dataplane"
	"neurocuts/internal/engine"
	"neurocuts/internal/server"
	"neurocuts/internal/telemetry"
)

// Options selects the admin server's data sources. Exactly one of Tables
// and Engine is normally set: Tables for a multi-table daemon (per-table
// metric samples), Engine for a single-engine one (a single "default"
// table). Both nil is also valid — the admin plane then exposes only
// process-level metrics and pprof, which is what a bench run wants.
type Options struct {
	// Tables supplies per-table engine metrics and the /tables listing.
	Tables *engine.Tables
	// Engine supplies single-engine metrics under the EngineName label.
	Engine *engine.Engine
	// EngineName is the table label for Engine-mode metrics ("" selects
	// "default", matching the v2 protocol's single-table presentation).
	EngineName string
	// Server, when non-nil, contributes the wire server's request counters.
	Server *server.Server
	// Telemetry, when non-nil, contributes the latency histogram families
	// to /metrics and backs the /debug/slow flight-recorder dump.
	Telemetry *telemetry.Telemetry
	// Dataplane, when non-nil, contributes the per-core run-to-completion
	// gauges (ring depth/high-watermark, parks/wakes, epoch lag, hit ratio).
	Dataplane *dataplane.Dataplane
	// Ready overrides the readiness check: /readyz returns 200 exactly when
	// it returns nil. The default reports ready while a default table (or
	// the single engine) is present.
	Ready func() error
}

// Server is the HTTP admin plane. Construct with New, then either Listen
// (own listener + background serve loop, shut down with Shutdown) or embed
// Handler into an existing HTTP server.
type Server struct {
	mu      sync.Mutex
	tables  *engine.Tables
	eng     *engine.Engine
	engName string
	wire    *server.Server
	tel     *telemetry.Telemetry
	dp      *dataplane.Dataplane
	ready   func() error
	httpSrv *http.Server
	start   time.Time
}

// New builds an admin server over the given sources.
func New(opts Options) *Server {
	name := opts.EngineName
	if name == "" {
		name = "default"
	}
	return &Server{
		tables:  opts.Tables,
		eng:     opts.Engine,
		engName: name,
		wire:    opts.Server,
		tel:     opts.Telemetry,
		dp:      opts.Dataplane,
		ready:   opts.Ready,
		start:   time.Now(),
	}
}

// SetEngine (re-)points the single-engine source at eng, labelled name.
// The perf lab uses it to expose whichever cell's engine is currently under
// measurement; passing nil detaches the source.
func (s *Server) SetEngine(name string, eng *engine.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		name = "default"
	}
	s.engName = name
	s.eng = eng
}

// Handler returns the admin plane's route mux. It is safe to serve from any
// HTTP server; Listen is a convenience around it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/debug/slow", s.handleSlow)
	// pprof is wired explicitly instead of importing the package for its
	// DefaultServeMux side effect: the admin mux is the only place these
	// handlers exist, so a daemon that does not enable -admin exposes no
	// profiling surface at all.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Listen starts serving the admin plane on addr (e.g. "127.0.0.1:9100")
// and returns the bound address. The serve loop runs in a background
// goroutine until Shutdown.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	hs := &http.Server{
		Handler: s.Handler(),
		// An admin request is a scrape or a probe: small request, bounded
		// response. The exceptions are the pprof profile/trace endpoints,
		// whose responses stream for a caller-chosen number of seconds, so
		// only the request-reading side gets a deadline.
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.mu.Lock()
	s.httpSrv = hs
	s.mu.Unlock()
	go hs.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown gracefully stops the admin listener: in-flight scrapes finish,
// new connections are refused. Call it before draining the classification
// server so monitoring never sees a half-shut-down daemon as live.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	err := hs.Shutdown(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// tableStat is one table's snapshot, shared by /metrics and /tables.
type tableStat struct {
	Name    string `json:"name"`
	ID      uint32 `json:"id"`
	Default bool   `json:"default"`
	Backend string `json:"backend"`
	Rules   int    `json:"rules"`
	Version uint64 `json:"version"`

	stats engine.EngineStats
}

// snapshot captures everything one scrape renders, taken at one instant so
// /metrics is internally consistent per table.
type snapshot struct {
	tables []tableStat
	// retired is the retired-engine count (-1 when not in Tables mode).
	retired int
	// srv is the wire server's counters (nil when no server is attached).
	srv *server.Stats
	// hists is the telemetry histogram families (nil when no telemetry is
	// attached).
	hists []telemetry.FamilySnapshot
	// dp is the dataplane's per-core counters (nil when no dataplane is
	// attached).
	dp *dataplane.Stats
	// start is the process-start (admin-construction) time.
	start time.Time
}

// snapshot collects the current state of every source.
func (s *Server) snapshot() snapshot {
	s.mu.Lock()
	tables, eng, engName, wire, tel, dp := s.tables, s.eng, s.engName, s.wire, s.tel, s.dp
	s.mu.Unlock()

	snap := snapshot{retired: -1, start: s.start}
	switch {
	case tables != nil:
		def, _ := tables.Default()
		for _, tab := range tables.List() {
			st := tab.Engine.Stats()
			snap.tables = append(snap.tables, tableStat{
				Name:    tab.Name,
				ID:      tab.ID,
				Default: def != nil && def.ID == tab.ID,
				Backend: st.Backend,
				Rules:   st.Rules,
				Version: st.Version,
				stats:   st,
			})
		}
		snap.retired = tables.RetiredLen()
	case eng != nil:
		st := eng.Stats()
		snap.tables = append(snap.tables, tableStat{
			Name: engName, ID: 0, Default: true,
			Backend: st.Backend, Rules: st.Rules, Version: st.Version,
			stats: st,
		})
	}
	if wire != nil {
		st := wire.Stats()
		snap.srv = &st
	}
	snap.hists = tel.Families() // nil-safe: nil telemetry yields nil
	if dp != nil {
		st := dp.Stats()
		snap.dp = &st
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(renderMetrics(s.snapshot()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyErr reports why the daemon is not ready, or nil.
func (s *Server) readyErr() error {
	s.mu.Lock()
	ready, tables, eng := s.ready, s.tables, s.eng
	s.mu.Unlock()
	if ready != nil {
		return ready()
	}
	switch {
	case tables != nil:
		if _, ok := tables.Default(); !ok {
			return errors.New("no default table")
		}
		return nil
	case eng != nil:
		return nil
	default:
		return errors.New("no classification engine attached")
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.readyErr(); err != nil {
		http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// slowDump is the /debug/slow response shape.
type slowDump struct {
	// ThresholdNanos is the current capture threshold (negative: recorder
	// disabled).
	ThresholdNanos int64 `json:"threshold_nanos"`
	// Entries are the captured slow lookups, worst-first.
	Entries []telemetry.SlowEntry `json:"entries"`
}

// handleSlow dumps the slow-lookup flight recorder as JSON, worst-first.
// With no telemetry attached it serves an empty dump with threshold -1, so
// probers need not special-case a daemon running without -slow-threshold.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	tel := s.tel
	s.mu.Unlock()
	dump := slowDump{ThresholdNanos: tel.SlowThresholdNanos()}
	dump.Entries = tel.SlowEntries() // nil-safe
	if dump.Entries == nil {
		dump.Entries = []telemetry.SlowEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump)
}

// handleTables serves the JSON table listing, mirroring the v2 protocol's
// list-tables op (same identities, same default flag) with the engine
// summary fields a human debugging a daemon wants next to them.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if snap.tables == nil {
		snap.tables = []tableStat{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap.tables)
}
