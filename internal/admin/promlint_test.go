package admin

import (
	"strings"
	"testing"
)

const cleanDoc = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{table="acl"} 12
demo_requests_total{table="fw"} 3
# HELP demo_rules Rules loaded.
# TYPE demo_rules gauge
demo_rules 1.5e+03
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 4
demo_latency_seconds_bucket{le="+Inf"} 9
demo_latency_seconds_sum 0.8
demo_latency_seconds_count 9
`

func TestLintMetricsClean(t *testing.T) {
	if err := LintMetrics([]byte(cleanDoc)); err != nil {
		t.Fatalf("clean document rejected: %v", err)
	}
	escaped := "# HELP esc_gauge Escapes.\n# TYPE esc_gauge gauge\n" +
		`esc_gauge{err="path \"x\" broke \\ twice\nline two"} 1` + "\n"
	if err := LintMetrics([]byte(escaped)); err != nil {
		t.Fatalf("escaped label values rejected: %v", err)
	}
}

func TestLintMetricsViolations(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"empty", "", "empty document"},
		{"no-trailing-newline", "# HELP a_total A.\n# TYPE a_total counter\na_total 1", "end with a newline"},
		{"sample-without-type", "a_gauge 1\n", "no preceding # TYPE"},
		{"type-after-samples",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge 1\n# TYPE a_gauge gauge\n",
			"second TYPE"},
		{"late-type",
			"# HELP b_gauge B.\n# TYPE b_gauge gauge\nb_gauge 1\n# HELP a_gauge A.\na_gauge 2\n# TYPE a_gauge gauge\n",
			"no preceding # TYPE"},
		{"double-help",
			"# HELP a_gauge A.\n# HELP a_gauge A again.\n# TYPE a_gauge gauge\na_gauge 1\n",
			"second HELP"},
		{"bad-type", "# HELP a A.\n# TYPE a wibble\na 1\n", "invalid metric type"},
		{"counter-without-total",
			"# HELP a_requests A.\n# TYPE a_requests counter\na_requests 1\n",
			"must end in _total"},
		{"interleaved",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\n# HELP b_gauge B.\n# TYPE b_gauge gauge\n" +
				"a_gauge{t=\"x\"} 1\nb_gauge 2\na_gauge{t=\"y\"} 3\n",
			"interleaved"},
		{"duplicate-sample",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=\"x\"} 1\na_gauge{t=\"x\"} 2\n",
			"duplicate sample"},
		{"bad-metric-name", "# HELP 1bad A.\n# TYPE 1bad gauge\n1bad 1\n", "invalid metric name"},
		{"bad-label-name",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{1t=\"x\"} 1\n",
			"invalid label name"},
		{"unquoted-label",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=x} 1\n",
			"not quoted"},
		{"unterminated-label",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=\"x} 1\n",
			"unterminated"},
		{"bad-escape",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=\"\\t\"} 1\n",
			"invalid escape"},
		{"bad-value", "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge one\n", "not a float"},
		{"no-value", "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge\n", "no value"},
		{"blank-line", "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge 1\n\n", "empty line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintMetrics([]byte(tc.doc))
			if err == nil {
				t.Fatalf("document accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestLintMetricsAcceptsLiveRender pins the renderer and the linter to each
// other: whatever renderMetrics produces for an empty snapshot must lint.
func TestLintMetricsAcceptsLiveRender(t *testing.T) {
	adm := New(Options{})
	out := renderMetrics(adm.snapshot())
	if err := LintMetrics(out); err != nil {
		t.Fatalf("renderMetrics output fails its own lint: %v\n%s", err, out)
	}
}
