package admin

import (
	"strings"
	"testing"
)

const cleanDoc = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{table="acl"} 12
demo_requests_total{table="fw"} 3
# HELP demo_rules Rules loaded.
# TYPE demo_rules gauge
demo_rules 1.5e+03
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 4
demo_latency_seconds_bucket{le="+Inf"} 9
demo_latency_seconds_sum 0.8
demo_latency_seconds_count 9
`

// cleanLabelledHist is a histogram family with two labelled series — the
// per-series histogram checks must track each (non-le) label set
// independently, so the second series restarting at a low le is fine.
const cleanLabelledHist = `# HELP h_seconds H.
# TYPE h_seconds histogram
h_seconds_bucket{path="single",le="0.1"} 4
h_seconds_bucket{path="single",le="+Inf"} 9
h_seconds_sum{path="single"} 0.8
h_seconds_count{path="single"} 9
h_seconds_bucket{path="batch",le="0.01"} 0
h_seconds_bucket{path="batch",le="+Inf"} 2
h_seconds_sum{path="batch"} 0.1
h_seconds_count{path="batch"} 2
`

func TestLintMetricsClean(t *testing.T) {
	if err := LintMetrics([]byte(cleanDoc)); err != nil {
		t.Fatalf("clean document rejected: %v", err)
	}
	if err := LintMetrics([]byte(cleanLabelledHist)); err != nil {
		t.Fatalf("labelled histogram rejected: %v", err)
	}
	escaped := "# HELP esc_gauge Escapes.\n# TYPE esc_gauge gauge\n" +
		`esc_gauge{err="path \"x\" broke \\ twice\nline two"} 1` + "\n"
	if err := LintMetrics([]byte(escaped)); err != nil {
		t.Fatalf("escaped label values rejected: %v", err)
	}
}

func TestLintMetricsViolations(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"empty", "", "empty document"},
		{"no-trailing-newline", "# HELP a_total A.\n# TYPE a_total counter\na_total 1", "end with a newline"},
		{"sample-without-type", "a_gauge 1\n", "no preceding # TYPE"},
		{"type-after-samples",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge 1\n# TYPE a_gauge gauge\n",
			"second TYPE"},
		{"late-type",
			"# HELP b_gauge B.\n# TYPE b_gauge gauge\nb_gauge 1\n# HELP a_gauge A.\na_gauge 2\n# TYPE a_gauge gauge\n",
			"no preceding # TYPE"},
		{"double-help",
			"# HELP a_gauge A.\n# HELP a_gauge A again.\n# TYPE a_gauge gauge\na_gauge 1\n",
			"second HELP"},
		{"bad-type", "# HELP a A.\n# TYPE a wibble\na 1\n", "invalid metric type"},
		{"counter-without-total",
			"# HELP a_requests A.\n# TYPE a_requests counter\na_requests 1\n",
			"must end in _total"},
		{"interleaved",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\n# HELP b_gauge B.\n# TYPE b_gauge gauge\n" +
				"a_gauge{t=\"x\"} 1\nb_gauge 2\na_gauge{t=\"y\"} 3\n",
			"interleaved"},
		{"duplicate-sample",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=\"x\"} 1\na_gauge{t=\"x\"} 2\n",
			"duplicate sample"},
		{"bad-metric-name", "# HELP 1bad A.\n# TYPE 1bad gauge\n1bad 1\n", "invalid metric name"},
		{"bad-label-name",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{1t=\"x\"} 1\n",
			"invalid label name"},
		{"unquoted-label",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=x} 1\n",
			"not quoted"},
		{"unterminated-label",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=\"x} 1\n",
			"unterminated"},
		{"bad-escape",
			"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge{t=\"\\t\"} 1\n",
			"invalid escape"},
		{"bad-value", "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge one\n", "not a float"},
		{"no-value", "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge\n", "no value"},
		{"blank-line", "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge 1\n\n", "empty line"},
		{"hist-le-not-increasing",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.2\"} 1\nh_seconds_bucket{le=\"0.1\"} 2\n" +
				"h_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_sum 0.5\nh_seconds_count 3\n",
			"not strictly increasing"},
		{"hist-le-duplicate",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_bucket{le=\"0.10\"} 2\n" +
				"h_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_sum 0.5\nh_seconds_count 3\n",
			"not strictly increasing"},
		{"hist-missing-inf",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_bucket{le=\"0.2\"} 2\n" +
				"h_seconds_sum 0.5\nh_seconds_count 2\n",
			"no le=\"+Inf\" bucket"},
		{"hist-not-cumulative",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 5\nh_seconds_bucket{le=\"+Inf\"} 3\n" +
				"h_seconds_sum 0.5\nh_seconds_count 3\n",
			"not cumulative"},
		{"hist-bucket-after-inf",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_bucket{le=\"9\"} 3\n" +
				"h_seconds_sum 0.5\nh_seconds_count 3\n",
			"bucket after le=\"+Inf\""},
		{"hist-count-mismatch",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_bucket{le=\"+Inf\"} 3\n" +
				"h_seconds_sum 0.5\nh_seconds_count 4\n",
			"_count 4 disagrees with its +Inf bucket 3"},
		{"hist-missing-count",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_sum 0.5\n",
			"no _count sample"},
		{"hist-missing-sum",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_bucket{le=\"+Inf\"} 3\nh_seconds_count 3\n",
			"no _sum sample"},
		{"hist-bucket-without-le",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{path=\"x\"} 1\n",
			"no le label"},
		{"hist-bad-le",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"soon\"} 1\n",
			"not a float"},
		{"hist-bare-sample",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\nh_seconds 1\n",
			"must be _bucket, _sum or _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintMetrics([]byte(tc.doc))
			if err == nil {
				t.Fatalf("document accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestLintMetricsAcceptsLiveRender pins the renderer and the linter to each
// other: whatever renderMetrics produces for an empty snapshot must lint.
func TestLintMetricsAcceptsLiveRender(t *testing.T) {
	adm := New(Options{})
	out := renderMetrics(adm.snapshot())
	if err := LintMetrics(out); err != nil {
		t.Fatalf("renderMetrics output fails its own lint: %v\n%s", err, out)
	}
}
