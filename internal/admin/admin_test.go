package admin

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/dataplane"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

func adminTestSet(t testing.TB, size int) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, 23)
}

// get fetches path from the test server and returns status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts one sample's value from an exposition document.
// labels is the rendered label block including braces ("" for none).
func metricValue(t *testing.T, body, name, labels string) float64 {
	t.Helper()
	prefix := name + labels + " "
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
			if err != nil {
				t.Fatalf("sample %s%s: bad value in %q: %v", name, labels, line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s%s not found in /metrics output", name, labels)
	return 0
}

// TestAdminMetricsMatchEngineStats is the satellite acceptance test: after a
// scripted lookup/insert/delete/compact sequence, every per-table sample on
// /metrics must equal the corresponding UpdaterStats / CacheStats /
// EngineStats reading.
func TestAdminMetricsMatchEngineStats(t *testing.T) {
	set := adminTestSet(t, 300)
	jpath := filepath.Join(t.TempDir(), "admin.journal")
	eng, err := engine.NewEngine("hicuts", set, engine.Options{
		Shards:           1,
		OnlineUpdates:    true,
		CompactThreshold: -1, // compaction only when the script asks
		JournalPath:      jpath,
		FlowCacheEntries: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Script: lookups (repeated, so the flow cache records both misses and
	// hits), two inserts, one delete, then a synchronous compaction via
	// SaveArtifact.
	trace := classbench.GenerateTrace(set, 64, 29)
	for pass := 0; pass < 2; pass++ {
		for _, e2 := range trace {
			eng.Classify(e2.Key)
		}
	}
	if _, err := eng.Insert(10, set.Rule(1)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Insert(20, set.Rule(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Delete(res.ID); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveArtifact(filepath.Join(t.TempDir(), "a.ncc")); err != nil {
		t.Fatal(err)
	}
	// One more insert so the post-compaction overlay is non-empty.
	if _, err := eng.Insert(0, set.Rule(3)); err != nil {
		t.Fatal(err)
	}

	adm := New(Options{Engine: eng})
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := LintMetrics([]byte(body)); err != nil {
		t.Fatalf("/metrics failed the exposition-format lint: %v", err)
	}

	st := eng.Stats()
	hits, misses := eng.CacheStats()
	up := eng.UpdaterStats()
	lbl := `{table="default"}`
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"neurocuts_engine_rules", float64(st.Rules)},
		{"neurocuts_engine_snapshot_version", float64(st.Version)},
		{"neurocuts_engine_lookups_total", float64(st.Lookups)},
		{"neurocuts_engine_updates_total", float64(st.Updates)},
		{"neurocuts_engine_update_failures_total", 0},
		{"neurocuts_flowcache_hits_total", float64(hits)},
		{"neurocuts_flowcache_misses_total", float64(misses)},
		{"neurocuts_updater_enabled", 1},
		{"neurocuts_updater_overlay_rules", float64(up.OverlayRules)},
		{"neurocuts_updater_tombstones", float64(up.Tombstones)},
		{"neurocuts_updater_compactions_total", float64(up.Compactions)},
		{"neurocuts_updater_compact_failures_total", 0},
		{"neurocuts_updater_journal_records", float64(up.JournalRecords)},
		{"neurocuts_updater_journal_bytes", float64(up.JournalBytes)},
	} {
		if got := metricValue(t, body, tc.name, lbl); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Sanity-pin the script's own expectations so the test cannot pass
	// vacuously on all-zero stats.
	if st.Lookups != 128 {
		t.Errorf("scripted Lookups = %d, want 128", st.Lookups)
	}
	if st.Updates != 4 {
		t.Errorf("scripted Updates = %d, want 4", st.Updates)
	}
	if up.Compactions != 1 {
		t.Errorf("scripted Compactions = %d, want 1", up.Compactions)
	}
	if up.OverlayRules != 1 {
		t.Errorf("post-compaction OverlayRules = %d, want 1", up.OverlayRules)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("flow cache idle during script: hits=%d misses=%d", hits, misses)
	}
	if up.JournalRecords != 4 || up.JournalBytes <= 0 {
		t.Errorf("journal records=%d bytes=%d, want 4 records and a positive length",
			up.JournalRecords, up.JournalBytes)
	}
}

func TestAdminHealthAndReady(t *testing.T) {
	set := adminTestSet(t, 50)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	t.Run("engine-mode", func(t *testing.T) {
		ts := httptest.NewServer(New(Options{Engine: eng}).Handler())
		defer ts.Close()
		if code, body := get(t, ts, "/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
			t.Fatalf("/healthz = %d %q", code, body)
		}
		if code, body := get(t, ts, "/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ready" {
			t.Fatalf("/readyz = %d %q", code, body)
		}
	})

	t.Run("no-sources", func(t *testing.T) {
		ts := httptest.NewServer(New(Options{}).Handler())
		defer ts.Close()
		if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
			t.Fatalf("/healthz = %d, liveness must not depend on sources", code)
		}
		code, body := get(t, ts, "/readyz")
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "no classification engine") {
			t.Fatalf("/readyz = %d %q, want 503 naming the missing engine", code, body)
		}
		// Sourceless metrics still render a valid document (process metrics).
		code, body = get(t, ts, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		if err := LintMetrics([]byte(body)); err != nil {
			t.Fatalf("sourceless /metrics fails lint: %v", err)
		}
	})

	t.Run("ready-override", func(t *testing.T) {
		ts := httptest.NewServer(New(Options{
			Engine: eng,
			Ready:  func() error { return errors.New("warm-up in progress") },
		}).Handler())
		defer ts.Close()
		code, body := get(t, ts, "/readyz")
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "warm-up in progress") {
			t.Fatalf("/readyz = %d %q, want 503 with the override's error", code, body)
		}
	})
}

func TestAdminTablesMode(t *testing.T) {
	tables := engine.NewTables()
	defer tables.CloseAll()

	adm := New(Options{Tables: tables})
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	// Empty registry: not ready, /tables is an empty JSON array.
	if code, body := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no default table") {
		t.Fatalf("/readyz on empty tables = %d %q", code, body)
	}
	code, body := get(t, ts, "/tables")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/tables on empty registry = %d %q, want []", code, body)
	}

	set := adminTestSet(t, 60)
	for _, name := range []string{"acl", "fw"} {
		eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tables.Create(name, eng); err != nil {
			t.Fatal(err)
		}
	}

	if code, body := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with default table = %d %q", code, body)
	}

	code, body = get(t, ts, "/tables")
	if code != http.StatusOK {
		t.Fatalf("/tables = %d", code)
	}
	var listed []struct {
		Name    string `json:"name"`
		ID      uint32 `json:"id"`
		Default bool   `json:"default"`
		Backend string `json:"backend"`
		Rules   int    `json:"rules"`
	}
	if err := json.Unmarshal([]byte(body), &listed); err != nil {
		t.Fatalf("/tables is not JSON: %v\n%s", err, body)
	}
	if len(listed) != 2 {
		t.Fatalf("/tables listed %d tables, want 2", len(listed))
	}
	defaults := 0
	for _, e := range listed {
		if e.Default {
			defaults++
			if e.Name != "acl" {
				t.Errorf("default table = %q, want acl (first created)", e.Name)
			}
		}
		if e.Backend != "linear" || e.Rules != set.Len() {
			t.Errorf("table %q: backend=%q rules=%d, want linear/%d", e.Name, e.Backend, e.Rules, set.Len())
		}
	}
	if defaults != 1 {
		t.Fatalf("%d default tables in listing, want 1", defaults)
	}

	code, body = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := LintMetrics([]byte(body)); err != nil {
		t.Fatalf("tables-mode /metrics fails lint: %v", err)
	}
	if got := metricValue(t, body, "neurocuts_tables", ""); got != 2 {
		t.Errorf("neurocuts_tables = %v, want 2", got)
	}
	if got := metricValue(t, body, "neurocuts_tables_retired", ""); got != 0 {
		t.Errorf("neurocuts_tables_retired = %v, want 0", got)
	}
	for _, name := range []string{"acl", "fw"} {
		lbl := fmt.Sprintf("{table=%q}", name)
		if got := metricValue(t, body, "neurocuts_engine_rules", lbl); got != float64(set.Len()) {
			t.Errorf("neurocuts_engine_rules%s = %v, want %d", lbl, got, set.Len())
		}
	}
}

// TestAdminSetEngine exercises the perf lab's rotating-source hook.
func TestAdminSetEngine(t *testing.T) {
	set := adminTestSet(t, 40)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	adm := New(Options{})
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	adm.SetEngine("cell-0", eng)
	_, body := get(t, ts, "/metrics")
	if got := metricValue(t, body, "neurocuts_engine_rules", `{table="cell-0"}`); got != float64(set.Len()) {
		t.Errorf("after SetEngine: rules = %v, want %d", got, set.Len())
	}
	adm.SetEngine("", nil)
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after detaching the engine = %d, want 503", code)
	}
}

// TestAdminListenShutdown exercises the real listener path used by the
// daemons: bind, scrape over TCP, shut down, observe refusal.
func TestAdminListenShutdown(t *testing.T) {
	set := adminTestSet(t, 40)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	adm := New(Options{Engine: eng})
	addr, err := adm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatalf("scrape over TCP: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over TCP = %d", resp.StatusCode)
	}

	if err := adm.Shutdown(t.Context()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/healthz"); err == nil {
		t.Fatal("admin listener still accepting after Shutdown")
	}
	// Second Shutdown is a no-op, not a panic.
	if err := adm.Shutdown(t.Context()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestAdminTelemetryExposition drives a telemetry-instrumented engine and
// dataplane, then asserts /metrics exposes the native histogram families and
// the per-core gauges (lint-clean, counts matching the real traffic) and
// /debug/slow dumps the flight recorder.
func TestAdminTelemetryExposition(t *testing.T) {
	set := adminTestSet(t, 200)
	tel := telemetry.New(telemetry.Config{})
	tel.SetSlowThreshold(0) // capture everything
	eng, err := engine.NewEngine("tss", set, engine.Options{
		Shards:        1,
		OnlineUpdates: true,
		Telemetry:     tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dp, err := dataplane.Attach(eng, dataplane.Config{Cores: 2, CacheEntries: 512})
	if err != nil {
		t.Fatal(err)
	}

	trace := classbench.GenerateTrace(set, 256, 31)
	ps := make([]rule.Packet, len(trace))
	for i, e := range trace {
		ps[i] = e.Key
	}
	out := make([]engine.Result, len(ps))
	dp.ClassifyBatch(ps, out)
	eng.ClassifyBatch(ps, out)
	for _, p := range ps[:32] {
		eng.Classify(p)
	}
	if _, err := eng.Insert(0, set.Rule(1)); err != nil {
		t.Fatal(err)
	}

	adm := New(Options{Engine: eng, Telemetry: tel, Dataplane: dp})
	ts := httptest.NewServer(adm.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := LintMetrics([]byte(body)); err != nil {
		t.Fatalf("telemetry /metrics fails lint: %v\n%s", err, body)
	}

	// The histogram families' _count must equal what telemetry recorded.
	if got := metricValue(t, body, "neurocuts_lookup_latency_seconds_count", `{path="single"}`); got != float64(tel.Lookup.Snapshot().Count()) {
		t.Errorf("single lookup _count = %v, want %d", got, tel.Lookup.Snapshot().Count())
	}
	if got := metricValue(t, body, "neurocuts_lookup_latency_seconds_count", `{path="batch"}`); got == 0 {
		t.Error("batch lookup _count = 0, want recorded miss-batch spans")
	}
	if got := metricValue(t, body, "neurocuts_dataplane_batch_latency_seconds_count", ""); got == 0 {
		t.Error("dataplane span _count = 0, want recorded spans")
	}
	if got := metricValue(t, body, "neurocuts_update_latency_seconds_count", `{op="insert"}`); got != 1 {
		t.Errorf("insert _count = %v, want 1", got)
	}
	if !strings.Contains(body, `neurocuts_lookup_latency_seconds_bucket{path="single",le="+Inf"}`) {
		t.Error("single lookup family missing its +Inf bucket")
	}
	if !strings.Contains(body, "# TYPE neurocuts_server_request_latency_seconds histogram") {
		t.Error("server request family not declared as a histogram")
	}

	// Per-core gauges: one sample per core, counters matching dp.Stats().
	st := dp.Stats()
	if got := metricValue(t, body, "neurocuts_dataplane_cores", ""); got != float64(st.Cores) {
		t.Errorf("neurocuts_dataplane_cores = %v, want %d", got, st.Cores)
	}
	var packets float64
	for core := 0; core < st.Cores; core++ {
		lbl := fmt.Sprintf(`{core="%d"}`, core)
		packets += metricValue(t, body, "neurocuts_dataplane_packets_total", lbl)
		metricValue(t, body, "neurocuts_dataplane_ring_high_watermark", lbl)
		metricValue(t, body, "neurocuts_dataplane_epoch_lag", lbl)
		metricValue(t, body, "neurocuts_dataplane_cache_hit_ratio", lbl)
		metricValue(t, body, "neurocuts_dataplane_parks_total", lbl)
		metricValue(t, body, "neurocuts_dataplane_wakes_total", lbl)
	}
	if packets != float64(len(ps)) {
		t.Errorf("summed per-core packets = %v, want %d", packets, len(ps))
	}

	// /debug/slow: threshold 0 captured entries; worst-first JSON.
	code, body = get(t, ts, "/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", code)
	}
	var dump struct {
		ThresholdNanos int64 `json:"threshold_nanos"`
		Entries        []struct {
			LatencyNanos int64  `json:"latency_nanos"`
			Table        string `json:"table"`
			Path         string `json:"path"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v\n%s", err, body)
	}
	if dump.ThresholdNanos != 0 {
		t.Errorf("threshold_nanos = %d, want 0", dump.ThresholdNanos)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("/debug/slow captured no entries at threshold 0")
	}
	for i, e := range dump.Entries {
		if e.Table != "default" {
			t.Errorf("entry %d: table = %q, want default", i, e.Table)
		}
		if i > 0 && e.LatencyNanos > dump.Entries[i-1].LatencyNanos {
			t.Errorf("entries not sorted worst-first at %d", i)
		}
	}
}

// TestAdminSlowWithoutTelemetry pins the disabled shape: /debug/slow must
// answer (threshold -1, empty entries) rather than 404 when the daemon runs
// without telemetry.
func TestAdminSlowWithoutTelemetry(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", code)
	}
	var dump struct {
		ThresholdNanos int64             `json:"threshold_nanos"`
		Entries        []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v\n%s", err, body)
	}
	if dump.ThresholdNanos != -1 {
		t.Errorf("threshold_nanos = %d, want -1 (disabled)", dump.ThresholdNanos)
	}
	if dump.Entries == nil || len(dump.Entries) != 0 {
		t.Errorf("entries = %v, want present-and-empty", dump.Entries)
	}
}

func TestAdminPprofIndex(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, want the pprof index", code)
	}
	if code, _ := get(t, ts, "/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine = %d", code)
	}
}
