package admin

// promlint.go is a small, dependency-free checker for the Prometheus text
// exposition format (version 0.0.4). CI and the endpoint tests pipe a live
// /metrics response through LintMetrics so a formatting regression — a
// family announced twice, an unescaped label value, an interleaved family,
// a sample without a TYPE — fails the build instead of silently breaking
// every scraper pointed at the daemon.
//
// It deliberately checks more than the format strictly requires: every
// sample must belong to a family this document declared, and counters must
// end in _total. Those are conventions of this repo's exporter, and holding
// the output to them keeps the exposition predictable for dashboards.

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validMetricTypes are the exposition format's TYPE values.
var validMetricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// LintMetrics validates a Prometheus text-exposition document. It returns
// the first violation found, or nil for a clean document.
func LintMetrics(data []byte) error {
	text := string(data)
	if text == "" {
		return fmt.Errorf("promlint: empty document")
	}
	if !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("promlint: document must end with a newline")
	}

	types := map[string]string{} // family -> TYPE
	helped := map[string]bool{}  // family -> HELP seen
	sampled := map[string]bool{} // family -> samples seen
	seen := map[string]bool{}    // exact (name + label set) duplicates
	closed := map[string]bool{}  // family -> sample block ended
	lastFamily := ""
	hists := map[string]*histSeries{} // histogram series accumulator
	var histOrder []string            // deterministic end-of-document check order

	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := i + 1
		if line == "" {
			return fmt.Errorf("promlint: line %d: empty line", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, lineNo, types, helped, sampled); err != nil {
				return err
			}
			continue
		}
		name, labels, valueStr, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("promlint: line %d: %v", lineNo, err)
		}
		family := sampleFamily(name)
		typ, declared := types[family]
		if !declared {
			return fmt.Errorf("promlint: line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if typ == "counter" && !strings.HasSuffix(family, "_total") {
			return fmt.Errorf("promlint: line %d: counter %q must end in _total", lineNo, family)
		}
		if family != lastFamily {
			if closed[family] {
				return fmt.Errorf("promlint: line %d: family %q interleaved with other families", lineNo, family)
			}
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			lastFamily = family
		}
		sampled[family] = true
		key := name + "|" + strings.Join(labels, "|")
		if seen[key] {
			return fmt.Errorf("promlint: line %d: duplicate sample %s{%s}", lineNo, name, strings.Join(labels, ","))
		}
		seen[key] = true
		if _, err := strconv.ParseFloat(valueStr, 64); err != nil {
			// The format also allows the spelled-out specials.
			switch valueStr {
			case "+Inf", "-Inf", "NaN":
			default:
				return fmt.Errorf("promlint: line %d: value %q is not a float", lineNo, valueStr)
			}
		}
		if typ == "histogram" {
			if err := lintHistogramSample(lineNo, name, family, labels, valueStr, hists, &histOrder); err != nil {
				return err
			}
		}
	}
	for _, key := range histOrder {
		if err := hists[key].finish(); err != nil {
			return err
		}
	}
	return nil
}

// histSeries accumulates one histogram series' bucket/sum/count state: the
// per-line checks (le monotonicity, cumulative bucket counts) happen as the
// lines stream through LintMetrics, and finish runs the whole-series
// invariants (mandatory +Inf, _sum present, _count consistent) once the
// document ends.
type histSeries struct {
	family    string
	labels    string // non-le label set, for messages
	lastLe    float64
	lastCum   float64
	buckets   int
	hasInf    bool
	infCum    float64
	sumSeen   bool
	countSeen bool
	countVal  float64
}

// id renders the series for an error message.
func (h *histSeries) id() string {
	if h.labels == "" {
		return h.family
	}
	return h.family + "{" + h.labels + "}"
}

// finish checks the whole-series histogram invariants after the document is
// fully parsed.
func (h *histSeries) finish() error {
	if !h.hasInf {
		return fmt.Errorf("promlint: histogram %s has no le=\"+Inf\" bucket", h.id())
	}
	if !h.countSeen {
		return fmt.Errorf("promlint: histogram %s has no _count sample", h.id())
	}
	if h.countVal != h.infCum {
		return fmt.Errorf("promlint: histogram %s _count %g disagrees with its +Inf bucket %g", h.id(), h.countVal, h.infCum)
	}
	if !h.sumSeen {
		return fmt.Errorf("promlint: histogram %s has no _sum sample", h.id())
	}
	return nil
}

// lintHistogramSample checks one sample of a histogram-typed family: every
// sample must be a _bucket/_sum/_count, buckets must carry an `le` label
// whose bounds strictly increase (ending in +Inf, which must come last), and
// bucket values must be cumulative (non-decreasing).
func lintHistogramSample(lineNo int, name, family string, labels []string, valueStr string, hists map[string]*histSeries, order *[]string) error {
	suffix := strings.TrimPrefix(name, family)
	// Split the le label off the series identity: one logical series is the
	// non-le label set, and its buckets differ only in le.
	le := ""
	leFound := false
	rest := make([]string, 0, len(labels))
	for _, l := range labels {
		if strings.HasPrefix(l, "le=") {
			le = strings.TrimPrefix(l, "le=")
			leFound = true
			continue
		}
		rest = append(rest, l)
	}
	key := family + "|" + strings.Join(rest, "|")
	h := hists[key]
	if h == nil {
		h = &histSeries{family: family, labels: strings.Join(rest, ",")}
		hists[key] = h
		*order = append(*order, key)
	}
	v, verr := strconv.ParseFloat(valueStr, 64)
	switch suffix {
	case "_bucket":
		if !leFound {
			return fmt.Errorf("promlint: line %d: histogram bucket %s has no le label", lineNo, name)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("promlint: line %d: histogram %s le %q is not a float", lineNo, h.id(), le)
		}
		if verr != nil {
			return fmt.Errorf("promlint: line %d: histogram bucket value %q is not a float", lineNo, valueStr)
		}
		if h.hasInf {
			return fmt.Errorf("promlint: line %d: histogram %s has a bucket after le=\"+Inf\"", lineNo, h.id())
		}
		if h.buckets > 0 && bound <= h.lastLe {
			return fmt.Errorf("promlint: line %d: histogram %s le bounds not strictly increasing (%g after %g)", lineNo, h.id(), bound, h.lastLe)
		}
		if h.buckets > 0 && v < h.lastCum {
			return fmt.Errorf("promlint: line %d: histogram %s bucket counts not cumulative (%g after %g)", lineNo, h.id(), v, h.lastCum)
		}
		h.lastLe, h.lastCum = bound, v
		h.buckets++
		if math.IsInf(bound, 1) {
			h.hasInf = true
			h.infCum = v
		}
	case "_sum":
		h.sumSeen = true
	case "_count":
		if verr != nil {
			return fmt.Errorf("promlint: line %d: histogram _count value %q is not a float", lineNo, valueStr)
		}
		h.countSeen = true
		h.countVal = v
	default:
		return fmt.Errorf("promlint: line %d: histogram family %q sample %q must be _bucket, _sum or _count", lineNo, family, name)
	}
	return nil
}

// lintComment validates a # HELP / # TYPE line (other comments pass).
func lintComment(line string, lineNo int, types map[string]string, helped, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare "#" comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("promlint: line %d: HELP without a metric name", lineNo)
		}
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("promlint: line %d: invalid metric name %q", lineNo, name)
		}
		if helped[name] {
			return fmt.Errorf("promlint: line %d: second HELP for %q", lineNo, name)
		}
		helped[name] = true
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("promlint: line %d: TYPE needs a metric name and a type", lineNo)
		}
		name, typ := fields[2], fields[3]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("promlint: line %d: invalid metric name %q", lineNo, name)
		}
		if !validMetricTypes[typ] {
			return fmt.Errorf("promlint: line %d: invalid metric type %q", lineNo, typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("promlint: line %d: second TYPE for %q", lineNo, name)
		}
		if sampled[name] {
			return fmt.Errorf("promlint: line %d: TYPE for %q after its samples", lineNo, name)
		}
		types[name] = typ
	}
	return nil
}

// sampleFamily maps a sample name to its family: histogram and summary
// samples use suffixed names (_bucket, _sum, _count) under the family's
// TYPE declaration.
func sampleFamily(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// parseSample splits one sample line into name, canonical label strings and
// the value text.
func parseSample(line string) (name string, labels []string, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if space < 0 {
		return "", nil, "", fmt.Errorf("no value on sample line")
	}
	if brace >= 0 && brace < space {
		name = rest[:brace]
		rest = rest[brace+1:]
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, "", err
		}
		if !strings.HasPrefix(rest, " ") {
			return "", nil, "", fmt.Errorf("expected space after label set")
		}
		rest = rest[1:]
	} else {
		name = rest[:space]
		rest = rest[space+1:]
	}
	if !metricNameRe.MatchString(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	// An optional timestamp may follow the value.
	value = rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		value = rest[:sp]
		if _, terr := strconv.ParseInt(rest[sp+1:], 10, 64); terr != nil {
			return "", nil, "", fmt.Errorf("trailing timestamp %q is not an integer", rest[sp+1:])
		}
	}
	if value == "" {
		return "", nil, "", fmt.Errorf("no value on sample line")
	}
	return name, labels, value, nil
}

// parseLabels consumes a label set after its opening brace, returning the
// canonical labels and the unconsumed remainder (starting after '}').
func parseLabels(rest string) (labels []string, remainder string, err error) {
	for {
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		lname := rest[:eq]
		if !labelNameRe.MatchString(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %q value is not quoted", lname)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated label value for %q", lname)
			}
			c := rest[0]
			switch c {
			case '\\':
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %q", lname)
				}
				esc := rest[1]
				switch esc {
				case '\\', '"':
					val.WriteByte(esc)
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("invalid escape \\%c in label %q", esc, lname)
				}
				rest = rest[2:]
				continue
			case '"':
				rest = rest[1:]
			case '\n':
				return nil, "", fmt.Errorf("raw newline in label %q", lname)
			default:
				val.WriteByte(c)
				rest = rest[1:]
				continue
			}
			break
		}
		labels = append(labels, lname+"="+val.String())
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if !strings.HasPrefix(rest, "}") {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %q", lname)
		}
	}
}
