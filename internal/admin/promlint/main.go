// Command promlint validates Prometheus text-exposition documents with the
// repository's own checker (admin.LintMetrics) — the CI admin-plane job
// lints a live /metrics scrape with it, so no external promtool is needed.
//
//	promlint metrics.prom [more.prom ...]   # or read stdin with no args
//
// Exit status 1 carries the first violation per file on stderr.
package main

import (
	"fmt"
	"io"
	"os"

	"neurocuts/internal/admin"
)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal("stdin", err)
		}
		if err := admin.LintMetrics(data); err != nil {
			fatal("stdin", err)
		}
		return
	}
	bad := false
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err == nil {
			err = admin.LintMetrics(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", path, err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

func fatal(src string, err error) {
	fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", src, err)
	os.Exit(1)
}
