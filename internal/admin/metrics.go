package admin

// Prometheus text-exposition rendering (format version 0.0.4), written by
// hand against the stdlib so the daemon takes no client-library dependency.
// The rules the renderer upholds — and promlint.go enforces in tests and CI:
//
//   - every family is announced by # HELP and # TYPE before its first
//     sample, exactly once, and all of a family's samples are consecutive;
//   - label values are escaped (backslash, double-quote, newline);
//   - no two samples share a (name, label set).
//
// Metric names follow the conventions scrapers expect: counters end in
// _total, sizes in _bytes, timestamps in _seconds. Per-table samples carry
// a table="<name>" label so one daemon serving many rule sets exports one
// well-formed family per measure, not one family per table.

import (
	"bytes"
	"math"
	"runtime"
	"strconv"
	"strings"

	"neurocuts/internal/dataplane"
	"neurocuts/internal/telemetry"
)

// label is one name="value" pair.
type label struct{ k, v string }

// promWriter accumulates one exposition document.
type promWriter struct {
	b bytes.Buffer
}

// family announces a metric family. Call exactly once per family, before
// its samples.
func (p *promWriter) family(name, typ, help string) {
	p.b.WriteString("# HELP ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(help)
	p.b.WriteByte('\n')
	p.b.WriteString("# TYPE ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(typ)
	p.b.WriteByte('\n')
}

// escapeLabelValue applies the exposition format's label escaping.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// sample emits one sample line.
func (p *promWriter) sample(name string, labels []label, v float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			p.b.WriteString(l.k)
			p.b.WriteString(`="`)
			p.b.WriteString(escapeLabelValue(l.v))
			p.b.WriteString(`"`)
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.b.WriteByte('\n')
}

// perTableMetric describes one per-table family rendered from EngineStats.
type perTableMetric struct {
	name  string
	typ   string
	help  string
	value func(t tableStat) float64
}

// perTableMetrics is the fixed catalogue of per-table families. Order is
// the exposition order.
var perTableMetrics = []perTableMetric{
	{"neurocuts_engine_rules", "gauge", "Live (merged) rules served by the table.",
		func(t tableStat) float64 { return float64(t.stats.Rules) }},
	{"neurocuts_engine_snapshot_version", "gauge", "RCU snapshot generation counter (one per update, compaction or artifact load).",
		func(t tableStat) float64 { return float64(t.stats.Version) }},
	{"neurocuts_engine_lookups_total", "counter", "Packets classified (single lookups plus every packet of every batch).",
		func(t tableStat) float64 { return float64(t.stats.Lookups) }},
	{"neurocuts_engine_batches_total", "counter", "Sharded batch-classify calls served.",
		func(t tableStat) float64 { return float64(t.stats.Batches) }},
	{"neurocuts_engine_updates_total", "counter", "Successful rule inserts and deletes.",
		func(t tableStat) float64 { return float64(t.stats.Updates) }},
	{"neurocuts_engine_update_failures_total", "counter", "Failed rule inserts and deletes.",
		func(t tableStat) float64 { return float64(t.stats.UpdateFailures) }},
	{"neurocuts_flowcache_hits_total", "counter", "Flow-cache hits (zero when the cache is disabled).",
		func(t tableStat) float64 { return float64(t.stats.CacheHits) }},
	{"neurocuts_flowcache_misses_total", "counter", "Flow-cache misses (zero when the cache is disabled).",
		func(t tableStat) float64 { return float64(t.stats.CacheMisses) }},
	{"neurocuts_updater_enabled", "gauge", "1 while the table routes updates through the delta overlay.",
		func(t tableStat) float64 { return boolGauge(t.stats.Updater.Enabled) }},
	{"neurocuts_updater_overlay_rules", "gauge", "Pending inserted rules in the delta overlay.",
		func(t tableStat) float64 { return float64(t.stats.Updater.OverlayRules) }},
	{"neurocuts_updater_tombstones", "gauge", "Deleted-but-not-yet-compacted base rules.",
		func(t tableStat) float64 { return float64(t.stats.Updater.Tombstones) }},
	{"neurocuts_updater_compact_threshold", "gauge", "Pending-update count that triggers background compaction (<= 0 disabled).",
		func(t tableStat) float64 { return float64(t.stats.Updater.CompactThreshold) }},
	{"neurocuts_updater_compactions_total", "counter", "Completed base rebuilds (the base generation).",
		func(t tableStat) float64 { return float64(t.stats.Updater.Compactions) }},
	{"neurocuts_updater_compact_failures_total", "counter", "Failed background compactions.",
		func(t tableStat) float64 { return float64(t.stats.Updater.CompactFailures) }},
	{"neurocuts_updater_compacting", "gauge", "1 while a background compaction is in flight.",
		func(t tableStat) float64 { return boolGauge(t.stats.Updater.Compacting) }},
	{"neurocuts_updater_last_compact_seconds", "gauge", "Wall-clock cost of the latest compaction.",
		func(t tableStat) float64 { return float64(t.stats.Updater.LastCompactNanos) / 1e9 }},
	{"neurocuts_updater_journal_records", "gauge", "Records in the durable update journal (0 when journaling is disabled).",
		func(t tableStat) float64 { return float64(t.stats.Updater.JournalRecords) }},
	{"neurocuts_updater_journal_bytes", "gauge", "Durable length of the update journal file.",
		func(t tableStat) float64 { return float64(t.stats.Updater.JournalBytes) }},
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// renderMetrics renders one snapshot as a Prometheus exposition document.
func renderMetrics(snap snapshot) []byte {
	var p promWriter

	p.family("neurocuts_up", "gauge", "1 while the admin plane is serving.")
	p.sample("neurocuts_up", nil, 1)
	p.family("neurocuts_process_start_time_seconds", "gauge", "Unix time the admin plane was constructed.")
	p.sample("neurocuts_process_start_time_seconds", nil, float64(snap.start.UnixNano())/1e9)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.family("go_goroutines", "gauge", "Number of goroutines.")
	p.sample("go_goroutines", nil, float64(runtime.NumGoroutine()))
	p.family("go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	p.sample("go_memstats_heap_alloc_bytes", nil, float64(ms.HeapAlloc))

	p.family("neurocuts_tables", "gauge", "Live classification tables.")
	p.sample("neurocuts_tables", nil, float64(len(snap.tables)))
	if snap.retired >= 0 {
		p.family("neurocuts_tables_retired", "gauge", "Displaced engines awaiting the reaper's grace.")
		p.sample("neurocuts_tables_retired", nil, float64(snap.retired))
	}

	for _, m := range perTableMetrics {
		if len(snap.tables) == 0 {
			break
		}
		p.family(m.name, m.typ, m.help)
		for _, t := range snap.tables {
			p.sample(m.name, []label{{"table", t.Name}}, m.value(t))
		}
	}
	// The latest compaction failure, as an info-style gauge: the error text
	// travels in a label (sample value is always 1), present only while the
	// most recent compaction attempt failed.
	var failed []tableStat
	for _, t := range snap.tables {
		if t.stats.Updater.LastCompactError != "" {
			failed = append(failed, t)
		}
	}
	if len(failed) > 0 {
		p.family("neurocuts_updater_last_compact_error_info", "gauge",
			"Most recent background-compaction failure (error text in the label; absent after a success).")
		for _, t := range failed {
			p.sample("neurocuts_updater_last_compact_error_info",
				[]label{{"table", t.Name}, {"error", t.stats.Updater.LastCompactError}}, 1)
		}
	}

	renderHistograms(&p, snap.hists)
	if snap.dp != nil {
		renderDataplane(&p, snap.dp)
	}

	if s := snap.srv; s != nil {
		p.family("neurocuts_server_requests_total", "counter", "Classification and admin requests, counting each batched packet.")
		p.sample("neurocuts_server_requests_total", nil, float64(s.Requests))
		p.family("neurocuts_server_matches_total", "counter", "Lookups that matched a rule.")
		p.sample("neurocuts_server_matches_total", nil, float64(s.Matches))
		p.family("neurocuts_server_parse_failures_total", "counter", "Requests rejected as unparsable.")
		p.sample("neurocuts_server_parse_failures_total", nil, float64(s.ParseFails))
		p.family("neurocuts_server_batch_requests_total", "counter", "Batch requests served (v1 text and v2 framed).")
		p.sample("neurocuts_server_batch_requests_total", nil, float64(s.Batches))
		p.family("neurocuts_server_update_requests_total", "counter", "Live rule-update requests (add/del, insert/delete).")
		p.sample("neurocuts_server_update_requests_total", nil, float64(s.Updates))
		p.family("neurocuts_server_artifact_requests_total", "counter", "Artifact save/load admin requests.")
		p.sample("neurocuts_server_artifact_requests_total", nil, float64(s.ArtifactOps))
		p.family("neurocuts_server_table_requests_total", "counter", "Table admin requests (list/create/drop).")
		p.sample("neurocuts_server_table_requests_total", nil, float64(s.TableOps))
		p.family("neurocuts_server_active_connections", "gauge", "Currently connected classification clients.")
		p.sample("neurocuts_server_active_connections", nil, float64(s.ActiveConns))
	}

	return p.b.Bytes()
}

// leLabel formats bucket b's inclusive upper bound as a Prometheus `le`
// label value in seconds ("+Inf" for the overflow bucket).
func leLabel(b int) string {
	upper := telemetry.BucketUpperNanos(b)
	if math.IsInf(upper, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(upper/1e9, 'g', -1, 64)
}

// renderHistograms renders the telemetry families as native Prometheus
// histograms: per series, cumulative _bucket samples under strictly
// increasing `le` bounds ending in "+Inf", then the derived _sum (bucket
// midpoints, seconds) and _count. The scrape merges each histogram's
// stripes into one snapshot, so one family line per serving path comes out
// regardless of stripe count.
func renderHistograms(p *promWriter, fams []telemetry.FamilySnapshot) {
	for _, f := range fams {
		p.family(f.Name, "histogram", f.Help)
		for _, s := range f.Series {
			base := make([]label, 0, len(s.Labels)+1)
			for _, l := range s.Labels {
				base = append(base, label{l.Name, l.Value})
			}
			var cum uint64
			for b := 0; b < telemetry.NumBuckets; b++ {
				cum += s.Hist.Counts[b]
				p.sample(f.Name+"_bucket", append(base, label{"le", leLabel(b)}), float64(cum))
			}
			p.sample(f.Name+"_sum", base, s.Hist.SumNanos()/1e9)
			p.sample(f.Name+"_count", base, float64(cum))
		}
	}
}

// perCoreMetric describes one per-core family rendered from the dataplane's
// CoreStats.
type perCoreMetric struct {
	name  string
	typ   string
	help  string
	value func(cs dataplane.CoreStats) float64
}

// perCoreMetrics is the fixed catalogue of per-core dataplane families.
var perCoreMetrics = []perCoreMetric{
	{"neurocuts_dataplane_ring_depth", "gauge", "Queued items in the core's ingress ring at sample time.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.RingLen) }},
	{"neurocuts_dataplane_ring_high_watermark", "gauge", "Deepest ring occupancy the core's loop has observed at pop time.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.RingHighWatermark) }},
	{"neurocuts_dataplane_parks_total", "counter", "Times the core's loop went idle and parked.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.Parks) }},
	{"neurocuts_dataplane_wakes_total", "counter", "Times a producer roused the core's parked loop with a wake token.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.Wakes) }},
	{"neurocuts_dataplane_epoch_lag", "gauge", "Snapshot generations the core's pinned view trails the engine head.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.EpochLag) }},
	{"neurocuts_dataplane_cache_hit_ratio", "gauge", "Per-core flow-cache hit ratio in [0, 1] (0 with no cache or no traffic).",
		func(cs dataplane.CoreStats) float64 { return cs.HitRatio }},
	{"neurocuts_dataplane_batches_total", "counter", "Batch spans the core's loop has handled.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.Batches) }},
	{"neurocuts_dataplane_packets_total", "counter", "Packets the core's loop has classified.",
		func(cs dataplane.CoreStats) float64 { return float64(cs.Packets) }},
}

// renderDataplane renders the run-to-completion dataplane's gauges: the
// core/ring shape, then one sample per core for each per-core family.
func renderDataplane(p *promWriter, st *dataplane.Stats) {
	p.family("neurocuts_dataplane_cores", "gauge", "Run-to-completion core loops attached to the engine.")
	p.sample("neurocuts_dataplane_cores", nil, float64(st.Cores))
	p.family("neurocuts_dataplane_ring_capacity", "gauge", "Per-core ingress ring capacity in items.")
	p.sample("neurocuts_dataplane_ring_capacity", nil, float64(st.RingCapacity))
	for _, m := range perCoreMetrics {
		p.family(m.name, m.typ, m.help)
		for _, cs := range st.PerCore {
			p.sample(m.name, []label{{"core", strconv.Itoa(cs.Core)}}, m.value(cs))
		}
	}
}
