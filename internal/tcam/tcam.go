// Package tcam models a Ternary Content-Addressable Memory classifier — the
// hardware alternative the paper's introduction contrasts with algorithmic,
// decision-tree-based classification. The model captures the properties that
// drive the comparison: constant lookup time (every entry is matched in
// parallel), entry expansion caused by range fields (a TCAM entry is a
// value/mask pair, so arbitrary port ranges must be decomposed into
// prefixes), and the resulting bit count, which is what makes large TCAM
// classifiers expensive and power-hungry.
//
// The simulator performs the parallel match in software (a scan over all
// entries) purely to verify correctness; its cost metrics — entries, bits
// and modelled power — are the quantities a hardware evaluation would
// report.
package tcam

import (
	"fmt"

	"neurocuts/internal/rule"
)

// EntryBits is the width of one TCAM entry for the 5-tuple: 32+32+16+16+8
// value bits, and the same again for the mask.
const EntryBits = 2 * (32 + 32 + 16 + 16 + 8)

// NanowattsPerBit is a rough per-bit static power figure used for the power
// model (order of magnitude from published TCAM characterisations; the
// absolute value only matters for relative comparisons).
const NanowattsPerBit = 30.0

// entry is one value/mask row of the TCAM.
type entry struct {
	value    [rule.NumDims]uint64
	mask     [rule.NumDims]uint64
	priority int
	r        rule.Rule
}

// Classifier is a simulated TCAM.
type Classifier struct {
	entries   []entry
	ruleCount int
}

// Build programs the TCAM with the classifier, expanding range fields into
// prefixes. Rules whose expansion would exceed expandLimit entries are
// rejected (as real TCAM compilers do); expandLimit <= 0 selects 1024.
func Build(s *rule.Set, expandLimit int) (*Classifier, error) {
	if expandLimit <= 0 {
		expandLimit = 1024
	}
	c := &Classifier{}
	for _, r := range s.Rules() {
		rows, err := expandToEntries(r, expandLimit)
		if err != nil {
			return nil, fmt.Errorf("tcam: rule %d: %w", r.Priority, err)
		}
		c.entries = append(c.entries, rows...)
		c.ruleCount++
	}
	return c, nil
}

// Classify simulates the parallel match: every entry is compared and the
// highest-priority hit wins. In hardware this is a single-cycle operation;
// LookupTime below reports that constant cost.
func (c *Classifier) Classify(p rule.Packet) (rule.Rule, bool) {
	var best rule.Rule
	found := false
	for i := range c.entries {
		e := &c.entries[i]
		hit := true
		for _, d := range rule.Dimensions() {
			if (p.Field(d) & e.mask[d]) != e.value[d] {
				hit = false
				break
			}
		}
		if hit && (!found || e.priority < best.Priority) {
			best = e.r
			found = true
		}
	}
	return best, found
}

// Metrics describes the TCAM cost profile.
type Metrics struct {
	// Entries is the number of TCAM rows after range expansion.
	Entries int
	// ExpansionFactor is Entries divided by the number of rules.
	ExpansionFactor float64
	// Bits is the total ternary bit count (Entries * EntryBits).
	Bits int
	// PowerMilliwatts is the modelled static power draw.
	PowerMilliwatts float64
	// LookupTime is the constant number of sequential steps per lookup (1).
	LookupTime int
}

// Metrics computes the TCAM's cost metrics.
func (c *Classifier) Metrics() Metrics {
	m := Metrics{Entries: len(c.entries), LookupTime: 1}
	if c.ruleCount > 0 {
		m.ExpansionFactor = float64(len(c.entries)) / float64(c.ruleCount)
	}
	m.Bits = m.Entries * EntryBits
	m.PowerMilliwatts = float64(m.Bits) * NanowattsPerBit / 1e6
	return m
}

// expandToEntries converts one rule into TCAM rows: prefix dimensions map
// directly to value/mask pairs and range dimensions are decomposed into
// covering prefixes, taking the cross product.
func expandToEntries(r rule.Rule, limit int) ([]entry, error) {
	type vm struct{ value, mask uint64 }
	perDim := make([][]vm, rule.NumDims)
	total := 1
	for _, d := range rule.Dimensions() {
		var options []vm
		bits := d.Bits()
		rg := r.Ranges[d]
		if plen, ok := rg.PrefixLen(bits); ok {
			options = append(options, vm{value: rg.Lo, mask: prefixMask(plen, bits)})
		} else {
			for _, p := range rangeToPrefixes(rg, bits) {
				options = append(options, vm{value: p.val, mask: prefixMask(p.len, bits)})
			}
		}
		perDim[d] = options
		total *= len(options)
		if total > limit {
			return nil, fmt.Errorf("expansion exceeds %d entries", limit)
		}
	}
	out := make([]entry, 0, total)
	idx := make([]int, rule.NumDims)
	for {
		var e entry
		e.priority = r.Priority
		e.r = r
		for _, d := range rule.Dimensions() {
			opt := perDim[d][idx[d]]
			e.value[d] = opt.value & opt.mask
			e.mask[d] = opt.mask
		}
		out = append(out, e)
		i := rule.NumDims - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(perDim[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

func prefixMask(prefixLen, bits uint) uint64 {
	if prefixLen == 0 {
		return 0
	}
	if prefixLen > bits {
		prefixLen = bits
	}
	full := (uint64(1) << bits) - 1
	return full &^ ((uint64(1) << (bits - prefixLen)) - 1)
}

type prefix struct {
	len uint
	val uint64
}

// rangeToPrefixes decomposes an inclusive range into covering prefixes.
func rangeToPrefixes(r rule.Range, bits uint) []prefix {
	var out []prefix
	lo, hi := r.Lo, r.Hi
	maxVal := (uint64(1) << bits) - 1
	if hi > maxVal {
		hi = maxVal
	}
	for lo <= hi {
		size := uint64(1)
		plen := bits
		for plen > 0 {
			next := size << 1
			if lo%next != 0 || lo+next-1 > hi {
				break
			}
			size = next
			plen--
		}
		out = append(out, prefix{len: plen, val: lo})
		if lo+size-1 == maxVal {
			break
		}
		lo += size
	}
	return out
}
