package tcam

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

func TestBuildAndClassifyMatchesLinearSearch(t *testing.T) {
	for _, famName := range []string{"acl1", "ipc2"} {
		fam, _ := classbench.FamilyByName(famName)
		set := classbench.Generate(fam, 250, 1)
		c, err := Build(set, 0)
		if err != nil {
			t.Fatalf("%s: %v", famName, err)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1500; i++ {
			p := rule.Packet{
				SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: uint8(rng.Intn(256)),
			}
			want, okW := set.Match(p)
			got, okG := c.Classify(p)
			if okW != okG || (okW && got.Priority != want.Priority) {
				t.Fatalf("%s: mismatch on %v", famName, p)
			}
		}
	}
}

func TestMetricsAndExpansion(t *testing.T) {
	fam, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(fam, 300, 3)
	c, err := Build(set, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.LookupTime != 1 {
		t.Errorf("TCAM lookup time must be constant 1, got %d", m.LookupTime)
	}
	if m.Entries < set.Len() {
		t.Errorf("entries %d < rules %d", m.Entries, set.Len())
	}
	// Firewall rules carry arbitrary port ranges, so range expansion must
	// show up.
	if m.ExpansionFactor <= 1.0 {
		t.Errorf("expansion factor %v should exceed 1 on fw rules", m.ExpansionFactor)
	}
	if m.Bits != m.Entries*EntryBits {
		t.Errorf("bits %d inconsistent", m.Bits)
	}
	if m.PowerMilliwatts <= 0 {
		t.Errorf("power %v", m.PowerMilliwatts)
	}
}

func TestExpansionLimitRejectsPathologicalRules(t *testing.T) {
	r := rule.NewWildcardRule(0)
	r.Ranges[rule.DimSrcPort] = rule.Range{Lo: 1, Hi: 65534}
	r.Ranges[rule.DimDstPort] = rule.Range{Lo: 1, Hi: 65534}
	set := rule.NewSet([]rule.Rule{r})
	if _, err := Build(set, 64); err == nil {
		t.Error("expected expansion-limit error")
	}
	// With a generous limit the same rule programs fine.
	if _, err := Build(set, 1_000_000); err != nil {
		t.Errorf("generous limit should succeed: %v", err)
	}
}

func TestPriorityResolution(t *testing.T) {
	// Overlapping entries: the lower priority value must win even if it was
	// programmed later in the table.
	broad := rule.NewWildcardRule(1)
	narrow := rule.NewWildcardRule(0)
	narrow.Ranges[rule.DimProto] = rule.Range{Lo: 17, Hi: 17}
	set := rule.NewSet([]rule.Rule{narrow, broad})
	c, err := Build(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Classify(rule.Packet{Proto: 17})
	if !ok || got.Priority != 0 {
		t.Fatalf("got %v/%v", got.Priority, ok)
	}
	got, ok = c.Classify(rule.Packet{Proto: 6})
	if !ok || got.Priority != 1 {
		t.Fatalf("got %v/%v", got.Priority, ok)
	}
}

func TestEmptyClassifier(t *testing.T) {
	c, err := Build(rule.NewSet(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Classify(rule.Packet{}); ok {
		t.Error("empty TCAM matched something")
	}
	m := c.Metrics()
	if m.Entries != 0 || m.ExpansionFactor != 0 {
		t.Errorf("empty metrics %+v", m)
	}
}
