package hicuts

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

func checkTreeEquivalence(t *testing.T, tr *tree.Tree, set *rule.Set, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
		want, okWant := set.Match(p)
		got, okGot := tr.Classify(p)
		if okWant != okGot || (okWant && want.Priority != got.Priority) {
			t.Fatalf("packet %v: tree (%v,%v) vs linear (%v,%v)", p, got.Priority, okGot, want.Priority, okWant)
		}
	}
	for _, e := range classbench.GenerateTrace(set, n/2, seed+1) {
		got, ok := tr.Classify(e.Key)
		if !ok || got.Priority != e.MatchRule {
			t.Fatalf("trace packet %v: tree %v/%v want %d", e.Key, got.Priority, ok, e.MatchRule)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Binth != tree.DefaultBinth || cfg.SpFac != 2.0 || cfg.MaxCuts < 2 {
		t.Errorf("unexpected default config %+v", cfg)
	}
}

func TestBuildSmallClassifiers(t *testing.T) {
	for _, fam := range []string{"acl1", "fw1", "ipc1"} {
		f, _ := classbench.FamilyByName(fam)
		set := classbench.Generate(f, 300, 1)
		tr, err := Build(set, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		m := tr.ComputeMetrics()
		if m.Nodes < 2 {
			t.Errorf("%s: tree did not grow (%d nodes)", fam, m.Nodes)
		}
		if m.ClassificationTime < 2 {
			t.Errorf("%s: implausible classification time %d", fam, m.ClassificationTime)
		}
		if m.MaxDepth > DefaultConfig().MaxDepth {
			t.Errorf("%s: depth %d exceeds limit", fam, m.MaxDepth)
		}
		// Every HiCuts internal node cuts exactly one dimension.
		tr.Walk(func(n *tree.Node) bool {
			if n.Kind == tree.KindCut && len(n.CutDims) != 1 {
				t.Errorf("%s: HiCuts node cuts %d dimensions", fam, len(n.CutDims))
				return false
			}
			if n.Kind == tree.KindPartition {
				t.Errorf("%s: HiCuts must not partition", fam)
				return false
			}
			return true
		})
		checkTreeEquivalence(t, tr, set, 1500, 7)
	}
}

func TestBuildZeroConfigDefaults(t *testing.T) {
	f, _ := classbench.FamilyByName("acl2")
	set := classbench.Generate(f, 100, 2)
	tr, err := Build(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Binth != tree.DefaultBinth {
		t.Errorf("binth = %d", tr.Binth)
	}
	checkTreeEquivalence(t, tr, set, 500, 3)
}

func TestBuildTinyClassifierIsLeafOnly(t *testing.T) {
	set := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0)})
	tr, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() != 1 {
		t.Errorf("tiny classifier should stay a single leaf, got %d nodes", tr.NodeCount())
	}
}

func TestBuildAllWildcardRulesTerminates(t *testing.T) {
	// Identical unseparable rules: HiCuts must not loop forever; it accepts
	// an oversized leaf.
	rules := make([]rule.Rule, 40)
	for i := range rules {
		rules[i] = rule.NewWildcardRule(i)
	}
	set := rule.NewSet(rules)
	tr, err := Build(set, Config{Binth: 8, SpFac: 2, MaxCuts: 16, MaxDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	checkTreeEquivalence(t, tr, set, 200, 5)
}

func TestSpFacControlsTreeSize(t *testing.T) {
	f, _ := classbench.FamilyByName("acl3")
	set := classbench.Generate(f, 400, 4)
	small, err := Build(set, Config{Binth: 16, SpFac: 1.2, MaxCuts: 64, MaxDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(set, Config{Binth: 16, SpFac: 8, MaxCuts: 64, MaxDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	ms, mb := small.ComputeMetrics(), big.ComputeMetrics()
	// A larger space budget buys fan-out, which should not make the tree
	// deeper; usually it is shallower (that is the whole point of spfac).
	if mb.ClassificationTime > ms.ClassificationTime {
		t.Errorf("spfac=8 time %d worse than spfac=1.2 time %d", mb.ClassificationTime, ms.ClassificationTime)
	}
	checkTreeEquivalence(t, small, set, 500, 11)
	checkTreeEquivalence(t, big, set, 500, 12)
}

func TestDepthLimitRespected(t *testing.T) {
	f, _ := classbench.FamilyByName("fw5")
	set := classbench.Generate(f, 500, 9)
	tr, err := Build(set, Config{Binth: 2, SpFac: 1.5, MaxCuts: 4, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxDepth(); got > 6 {
		t.Errorf("depth %d exceeds MaxDepth 6", got)
	}
	checkTreeEquivalence(t, tr, set, 800, 21)
}
