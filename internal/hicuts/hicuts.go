// Package hicuts implements HiCuts (Hierarchical Intelligent Cuttings,
// Gupta & McKeown, Hot Interconnects 1999), the pioneering decision-tree
// packet classification algorithm and the first baseline in the paper's
// evaluation.
//
// At every node HiCuts picks one dimension and cuts the node's region into
// equal-sized pieces along it. Two hand-tuned heuristics drive the choice:
//
//  1. The cut dimension is the one whose rules project onto the largest
//     number of distinct ranges (maximising the chance that rules separate).
//  2. The number of cuts is grown geometrically from an initial guess until
//     a space-measure budget is exceeded: sm(v) = Σ_children rules(child) +
//     number of children must stay below spfac · rules(v).
//
// Nodes with at most binth rules become leaves.
package hicuts

import (
	"fmt"

	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Config holds the HiCuts tuning knobs.
type Config struct {
	// Binth is the leaf threshold (maximum rules per leaf).
	Binth int
	// SpFac is the space-measure factor controlling how aggressively a node
	// may be cut. The original paper uses values between 1 and 8; 2 is the
	// common default.
	SpFac float64
	// MaxCuts caps the fan-out of a single node.
	MaxCuts int
	// MaxDepth aborts pathological constructions; 0 means no limit.
	MaxDepth int
}

// DefaultConfig returns the configuration used in the paper's evaluation
// setting.
func DefaultConfig() Config {
	return Config{Binth: tree.DefaultBinth, SpFac: 2.0, MaxCuts: 64, MaxDepth: 256}
}

// Build constructs a HiCuts decision tree for the classifier.
func Build(s *rule.Set, cfg Config) (*tree.Tree, error) {
	if cfg.Binth <= 0 {
		cfg.Binth = tree.DefaultBinth
	}
	if cfg.SpFac <= 0 {
		cfg.SpFac = 2.0
	}
	if cfg.MaxCuts < 2 {
		cfg.MaxCuts = 64
	}
	t := tree.New(s, cfg.Binth)
	if err := buildNode(t, t.Root, cfg); err != nil {
		return nil, err
	}
	return t, nil
}

func buildNode(t *tree.Tree, n *tree.Node, cfg Config) error {
	if t.IsTerminal(n) {
		return nil
	}
	if cfg.MaxDepth > 0 && n.Depth >= cfg.MaxDepth {
		// Accept an oversized leaf rather than recursing forever on a node
		// whose rules cannot be separated (e.g. identical boxes).
		return nil
	}
	dim, ok := chooseDimension(n)
	if !ok {
		return nil
	}
	k := chooseCutCount(n, dim, cfg)
	if k < 2 {
		return nil
	}
	children, err := t.Cut(n, dim, k)
	if err != nil {
		return fmt.Errorf("hicuts: cutting node at depth %d: %w", n.Depth, err)
	}
	progress := false
	for _, c := range children {
		if c.NumRules() < n.NumRules() {
			progress = true
			break
		}
	}
	for _, c := range children {
		if !progress && c.NumRules() == n.NumRules() {
			// No child got smaller: further cuts in this subtree cannot make
			// progress either, so accept the oversized leaves.
			continue
		}
		if err := buildNode(t, c, cfg); err != nil {
			return err
		}
	}
	return nil
}

// chooseDimension returns the dimension with the most distinct rule ranges
// among those where the node's box can actually be subdivided. The boolean
// is false when no dimension can be cut.
func chooseDimension(n *tree.Node) (rule.Dimension, bool) {
	best := rule.DimSrcIP
	bestCount := -1
	found := false
	for _, d := range rule.Dimensions() {
		if n.Box[d].Size() < 2 {
			continue
		}
		count := rule.DistinctRangeCount(n.Rules, d)
		if count > bestCount {
			best, bestCount, found = d, count, true
		}
	}
	return best, found
}

// chooseCutCount grows the fan-out geometrically from 4 (or the square root
// of the rule count, whichever is larger) while the space measure stays
// within the spfac budget.
func chooseCutCount(n *tree.Node, dim rule.Dimension, cfg Config) int {
	budget := cfg.SpFac * float64(n.NumRules())
	// Initial guess from the original paper: max(4, sqrt(#rules)).
	k := 4
	for k*k < n.NumRules() {
		k *= 2
	}
	if k < 4 {
		k = 4
	}
	if k > cfg.MaxCuts {
		k = cfg.MaxCuts
	}
	// Shrink if even the initial guess blows the budget, then try doubling.
	for k >= 2 && spaceMeasure(n, dim, k) > budget {
		k /= 2
	}
	if k < 2 {
		return 2
	}
	for k*2 <= cfg.MaxCuts && spaceMeasure(n, dim, k*2) <= budget {
		k *= 2
	}
	return k
}

// spaceMeasure computes sm(v) for cutting node n along dim into k pieces:
// the total number of rule replicas across the children plus the number of
// children. It evaluates the cut without materialising child nodes.
func spaceMeasure(n *tree.Node, dim rule.Dimension, k int) float64 {
	box := n.Box[dim]
	size := box.Size()
	if uint64(k) > size {
		k = int(size)
	}
	if k < 2 {
		return float64(n.NumRules() + 1)
	}
	step := size / uint64(k)
	total := k
	lo := box.Lo
	for i := 0; i < k; i++ {
		hi := lo + step - 1
		if i == k-1 {
			hi = box.Hi
		}
		piece := rule.Range{Lo: lo, Hi: hi}
		for _, r := range n.Rules {
			if r.Ranges[dim].Overlaps(piece) {
				total++
			}
		}
		lo = hi + 1
	}
	return float64(total)
}
