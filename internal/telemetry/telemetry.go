// Package telemetry is the serving system's online observability core:
// lock-free, fully preallocated latency histograms recorded on every
// serving path, and a slow-lookup flight recorder capturing the worst
// recent lookups above a configurable threshold.
//
// The design constraint is the repository's standing 0 allocs/op pin on
// every hot path: a histogram sample is one atomic add into a
// power-of-two nanosecond bucket on a cache-line-padded stripe, and a
// flight-recorder capture is a fixed number of atomic word stores into a
// preallocated ring — no locks, no allocation, no sum register (the
// Prometheus _sum is derived from bucket midpoints at scrape time).
// Per-shard and per-core recorders pick their own stripes; a scrape
// merges stripes into one snapshot.
//
// One Telemetry instance is shared by everything serving a process: the
// engine's single and sharded-batch lookup paths, the dataplane's
// per-core loops, the updater's Insert/Delete apply and compaction, and
// the TCP server's v1/v2 request handling. The admin plane renders the
// histograms as native Prometheus histogram families on /metrics and the
// flight recorder as JSON on /debug/slow.
package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pre-seeded intern IDs for the serving paths. New pre-seeds these in
// order, so the constants hold for every Telemetry instance.
const (
	PathNone uint32 = iota
	PathSingle
	PathBatch
	PathDataplane
)

// Config sizes a Telemetry instance. The zero value selects defaults.
type Config struct {
	// Stripes is the per-histogram stripe count, rounded up to a power of
	// two (0 selects GOMAXPROCS rounded up, capped at 64). More stripes
	// cost memory (34 counters per stripe) and buy less cross-core
	// contention.
	Stripes int
	// SlowRing is the flight recorder's slot count, rounded up to a power
	// of two (0 selects 256).
	SlowRing int
}

// Telemetry aggregates the process's serving histograms and the slow
// flight recorder. All methods are safe for concurrent use; the recording
// methods are additionally lock-free and allocation-free. A nil *Telemetry
// is a valid "disabled" instance for the threshold helpers, but callers
// must nil-check before touching the histogram fields.
type Telemetry struct {
	// Lookup holds per-packet latencies from the engine's single-lookup
	// path; LookupBatch holds per-shard span latencies from the sharded
	// batch path (one sample per chunk, not per packet).
	Lookup      *Histogram
	LookupBatch *Histogram
	// DataplaneBatch holds per-core loop span latencies (one sample per
	// popped batch span).
	DataplaneBatch *Histogram
	// UpdateInsert / UpdateDelete hold the full apply latency of one
	// Insert/Delete (overlay derive + journal + publish, or rebuild);
	// Compaction holds background and synchronous compaction durations.
	UpdateInsert *Histogram
	UpdateDelete *Histogram
	Compaction   *Histogram
	// ServerV1 / ServerV2 hold per-request handling latencies of the TCP
	// front end's text and framed-binary protocols.
	ServerV1 *Histogram
	ServerV2 *Histogram

	// Slow is the flight recorder; it captures only when the slow
	// threshold is enabled (SetSlowThreshold with a non-negative value).
	Slow *Recorder

	// slowNanos is the capture threshold in nanoseconds; negative
	// disables the recorder.
	slowNanos atomic.Int64

	// Intern table: string -> dense ID, so hot-path flight-recorder
	// samples carry uint32s instead of string headers. Writes (Intern)
	// take the mutex and happen only on cold paths (engine construction,
	// snapshot publish, epoch reload); resolution at dump time takes it
	// once per dump.
	strMu  sync.Mutex
	strs   []string
	strIDs map[string]uint32
}

// New builds a Telemetry instance. The slow threshold starts disabled;
// enable it with SetSlowThreshold.
func New(cfg Config) *Telemetry {
	stripes := cfg.Stripes
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
		if stripes > 64 {
			stripes = 64
		}
	}
	ring := cfg.SlowRing
	if ring <= 0 {
		ring = 256
	}
	t := &Telemetry{
		Lookup:         NewHistogram(stripes),
		LookupBatch:    NewHistogram(stripes),
		DataplaneBatch: NewHistogram(stripes),
		UpdateInsert:   NewHistogram(1),
		UpdateDelete:   NewHistogram(1),
		Compaction:     NewHistogram(1),
		ServerV1:       NewHistogram(stripes),
		ServerV2:       NewHistogram(stripes),
		Slow:           NewRecorder(ring),
		strIDs:         map[string]uint32{},
	}
	t.slowNanos.Store(-1)
	// Seed the path IDs so the Path* constants hold.
	for _, s := range []string{"", "single", "batch", "dataplane"} {
		t.Intern(s)
	}
	return t
}

// Intern returns a dense ID for s, assigning one on first use. Cold-path
// only (takes a mutex): engine construction, snapshot publish and epoch
// reloads intern their table/backend names once and pass the IDs to
// Record.
func (t *Telemetry) Intern(s string) uint32 {
	t.strMu.Lock()
	defer t.strMu.Unlock()
	if id, ok := t.strIDs[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.strIDs[s] = id
	return id
}

// lookupString resolves an interned ID ("" for unknown IDs).
func (t *Telemetry) lookupString(id uint32) string {
	t.strMu.Lock()
	defer t.strMu.Unlock()
	if int(id) < len(t.strs) {
		return t.strs[id]
	}
	return ""
}

// SetSlowThreshold sets the flight recorder's capture threshold in
// nanoseconds: lookups at or above it are captured. 0 captures every
// lookup; negative disables the recorder.
func (t *Telemetry) SetSlowThreshold(ns int64) { t.slowNanos.Store(ns) }

// SlowThresholdNanos returns the current capture threshold (negative:
// disabled).
func (t *Telemetry) SlowThresholdNanos() int64 {
	if t == nil {
		return -1
	}
	return t.slowNanos.Load()
}

// SlowEnough reports whether a lookup of the given latency should be
// captured. Nil-safe and branch-cheap: one atomic load and a compare.
func (t *Telemetry) SlowEnough(ns int64) bool {
	if t == nil {
		return false
	}
	th := t.slowNanos.Load()
	return th >= 0 && ns >= th
}

// SlowEntries resolves the flight recorder's current contents, sorted
// worst-first.
func (t *Telemetry) SlowEntries() []SlowEntry {
	if t == nil {
		return nil
	}
	return t.Slow.entries(t.lookupString)
}

// Label is one exposition label pair.
type Label struct {
	Name  string
	Value string
}

// SeriesSnapshot is one labelled series of a histogram family at scrape
// time.
type SeriesSnapshot struct {
	Labels []Label
	Hist   HistogramSnapshot
}

// FamilySnapshot is one Prometheus histogram family at scrape time: its
// metric name, help string and labelled series. The admin plane renders
// each series as _bucket/_sum/_count samples with `le` labels.
type FamilySnapshot struct {
	Name   string
	Help   string
	Series []SeriesSnapshot
}

// Families returns the scrape-time snapshot of every histogram family.
// The family and label names are part of the exposition contract:
// neurocuts_lookup_latency_seconds{path=...},
// neurocuts_dataplane_batch_latency_seconds,
// neurocuts_update_latency_seconds{op=...} and
// neurocuts_server_request_latency_seconds{proto=...}.
func (t *Telemetry) Families() []FamilySnapshot {
	if t == nil {
		return nil
	}
	return []FamilySnapshot{
		{
			Name: "neurocuts_lookup_latency_seconds",
			Help: "Engine lookup latency: path=\"single\" is one packet through Classify, path=\"batch\" is one per-shard span through ClassifyBatch.",
			Series: []SeriesSnapshot{
				{Labels: []Label{{"path", "single"}}, Hist: t.Lookup.Snapshot()},
				{Labels: []Label{{"path", "batch"}}, Hist: t.LookupBatch.Snapshot()},
			},
		},
		{
			Name: "neurocuts_dataplane_batch_latency_seconds",
			Help: "Dataplane per-core loop latency of one popped batch span (cache hits plus the batched miss lookup).",
			Series: []SeriesSnapshot{
				{Hist: t.DataplaneBatch.Snapshot()},
			},
		},
		{
			Name: "neurocuts_update_latency_seconds",
			Help: "Rule update latency: op=\"insert\"/\"delete\" is one full apply (overlay derive, journal, publish — or rebuild), op=\"compact\" is one base compaction.",
			Series: []SeriesSnapshot{
				{Labels: []Label{{"op", "insert"}}, Hist: t.UpdateInsert.Snapshot()},
				{Labels: []Label{{"op", "delete"}}, Hist: t.UpdateDelete.Snapshot()},
				{Labels: []Label{{"op", "compact"}}, Hist: t.Compaction.Snapshot()},
			},
		},
		{
			Name: "neurocuts_server_request_latency_seconds",
			Help: "TCP front-end per-request handling latency by wire protocol.",
			Series: []SeriesSnapshot{
				{Labels: []Label{{"proto", "v1"}}, Hist: t.ServerV1.Snapshot()},
				{Labels: []Label{{"proto", "v2"}}, Hist: t.ServerV2.Snapshot()},
			},
		},
	}
}
