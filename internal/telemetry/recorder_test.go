package telemetry

import (
	"runtime"
	"sync"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	tel := New(Config{SlowRing: 16})
	tbl := tel.Intern("default")
	be := tel.Intern("hicuts")
	tel.Slow.Record(Sample{
		UnixNanos: 12345, LatencyNanos: 9000,
		TableID: tbl, BackendID: be, PathID: PathSingle,
		Packets: 1, Visits: 37, RuleID: 7, Version: 3,
		CacheHit: false, OverlayWinner: true, Matched: true,
	})
	es := tel.SlowEntries()
	if len(es) != 1 {
		t.Fatalf("got %d entries, want 1", len(es))
	}
	e := es[0]
	if e.Table != "default" || e.Backend != "hicuts" || e.Path != "single" {
		t.Fatalf("string round-trip failed: %+v", e)
	}
	if e.LatencyNanos != 9000 || e.UnixNanos != 12345 || e.Packets != 1 ||
		e.Visits != 37 || e.RuleID != 7 || e.Version != 3 {
		t.Fatalf("scalar round-trip failed: %+v", e)
	}
	if e.CacheHit || !e.OverlayWinner || !e.Matched {
		t.Fatalf("flag round-trip failed: %+v", e)
	}
	if e.DepthBucket != 6 { // 37 has bit length 6
		t.Fatalf("DepthBucket = %d, want 6", e.DepthBucket)
	}
	if tel.Slow.Captured() != 1 {
		t.Fatalf("Captured = %d, want 1", tel.Slow.Captured())
	}
}

func TestRecorderWrapKeepsMostRecent(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 100; i++ {
		r.Record(Sample{LatencyNanos: int64(i)})
	}
	es := r.entries(func(uint32) string { return "" })
	if len(es) != 16 {
		t.Fatalf("ring of 16 holds %d entries after wrap", len(es))
	}
	// Worst-first ordering, and only the most recent 16 survive.
	for i, e := range es {
		if want := int64(99 - i); e.LatencyNanos != want {
			t.Fatalf("entry %d latency %d, want %d", i, e.LatencyNanos, want)
		}
	}
	if r.Captured() != 100 {
		t.Fatalf("Captured = %d, want 100", r.Captured())
	}
}

func TestRecorderThreshold(t *testing.T) {
	tel := New(Config{})
	if tel.SlowEnough(1) {
		t.Fatal("recorder must start disabled")
	}
	tel.SetSlowThreshold(0)
	if !tel.SlowEnough(0) || !tel.SlowEnough(1) {
		t.Fatal("threshold 0 must capture everything")
	}
	tel.SetSlowThreshold(1000)
	if tel.SlowEnough(999) || !tel.SlowEnough(1000) {
		t.Fatal("threshold must be inclusive at the bound")
	}
	tel.SetSlowThreshold(-1)
	if tel.SlowEnough(1 << 40) {
		t.Fatal("negative threshold must disable capture")
	}
	var nilTel *Telemetry
	if nilTel.SlowEnough(1) {
		t.Fatal("nil Telemetry must never capture")
	}
	if nilTel.SlowThresholdNanos() >= 0 {
		t.Fatal("nil Telemetry must report a disabled threshold")
	}
	if nilTel.SlowEntries() != nil || nilTel.Families() != nil {
		t.Fatal("nil Telemetry must dump empty")
	}
}

// TestRecorderConcurrent races writers against a dumping reader; the
// seqlock protocol must keep every dumped entry internally consistent
// (latency mirrored into RuleID must match). Run under -race in CI.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	writers := runtime.GOMAXPROCS(0)
	const perWriter = 5000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	bad := make(chan string, 1)
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				for _, e := range r.entries(func(uint32) string { return "" }) {
					if int64(e.RuleID) != e.LatencyNanos {
						select {
						case bad <- "torn entry: RuleID does not mirror latency":
						default:
						}
						return
					}
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				r.Record(Sample{LatencyNanos: v, RuleID: int32(v)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
	if got, want := r.Captured(), uint64(writers*perWriter); got != want {
		t.Fatalf("Captured = %d, want %d", got, want)
	}
}
