package telemetry

import (
	"testing"
)

func TestTelemetryFamilies(t *testing.T) {
	tel := New(Config{})
	tel.Lookup.RecordNanos(0, 100)
	tel.LookupBatch.RecordNanos(1, 2000)
	tel.DataplaneBatch.RecordNanos(2, 3000)
	tel.UpdateInsert.RecordNanos(0, 40000)
	tel.ServerV2.RecordNanos(3, 500)

	fams := tel.Families()
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"neurocuts_lookup_latency_seconds",
		"neurocuts_dataplane_batch_latency_seconds",
		"neurocuts_update_latency_seconds",
		"neurocuts_server_request_latency_seconds",
	} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("family %s missing from Families()", want)
		}
	}
	lookup := byName["neurocuts_lookup_latency_seconds"]
	if len(lookup.Series) != 2 {
		t.Fatalf("lookup family has %d series, want 2", len(lookup.Series))
	}
	if lookup.Series[0].Labels[0] != (Label{"path", "single"}) || lookup.Series[0].Hist.Count() != 1 {
		t.Fatalf("path=single series wrong: %+v", lookup.Series[0])
	}
	upd := byName["neurocuts_update_latency_seconds"]
	if len(upd.Series) != 3 {
		t.Fatalf("update family has %d series, want 3 (insert/delete/compact)", len(upd.Series))
	}
}

func TestInternStability(t *testing.T) {
	tel := New(Config{})
	if tel.Intern("single") != PathSingle || tel.Intern("batch") != PathBatch ||
		tel.Intern("dataplane") != PathDataplane || tel.Intern("") != PathNone {
		t.Fatal("pre-seeded path IDs do not match the Path constants")
	}
	a := tel.Intern("tableA")
	if tel.Intern("tableA") != a {
		t.Fatal("Intern must be stable per string")
	}
	if tel.lookupString(a) != "tableA" {
		t.Fatal("lookupString must invert Intern")
	}
	if tel.lookupString(9999) != "" {
		t.Fatal("unknown IDs must resolve to the empty string")
	}
}

// TestRecordingZeroAlloc pins the recording primitives themselves at zero
// allocations — the serving-path pins in engine/dataplane build on this.
func TestRecordingZeroAlloc(t *testing.T) {
	tel := New(Config{})
	tel.SetSlowThreshold(0)
	tbl := tel.Intern("default")
	if allocs := testing.AllocsPerRun(1000, func() {
		tel.Lookup.RecordNanos(12345, 678)
	}); allocs != 0 {
		t.Fatalf("Histogram.RecordNanos allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if tel.SlowEnough(678) {
			tel.Slow.Record(Sample{
				UnixNanos: 1, LatencyNanos: 678, TableID: tbl,
				PathID: PathSingle, Packets: 1, Matched: true,
			})
		}
	}); allocs != 0 {
		t.Fatalf("Recorder.Record allocates %.1f/op, want 0", allocs)
	}
}
