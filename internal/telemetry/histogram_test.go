package telemetry

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 32, NumBuckets - 1}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramBoundsMonotonic(t *testing.T) {
	prev := -1.0
	for b := 0; b < NumBuckets; b++ {
		ub := BucketUpperNanos(b)
		if !(ub > prev) {
			t.Fatalf("bucket %d upper bound %g not above previous %g", b, ub, prev)
		}
		prev = ub
	}
	if !math.IsInf(BucketUpperNanos(NumBuckets-1), 1) {
		t.Fatalf("last bucket bound must be +Inf, got %g", BucketUpperNanos(NumBuckets-1))
	}
	// Every sample must land in a bucket whose upper bound covers it.
	for _, ns := range []int64{0, 1, 2, 3, 100, 999, 12345, 1 << 30, 1 << 40} {
		b := bucketOf(ns)
		if float64(ns) > BucketUpperNanos(b) {
			t.Errorf("sample %dns lands in bucket %d with bound %g", ns, b, BucketUpperNanos(b))
		}
	}
}

func TestHistogramRecordAndSnapshot(t *testing.T) {
	h := NewHistogram(4)
	samples := []int64{0, 1, 3, 100, 100, 5000, 1 << 20}
	for i, ns := range samples {
		h.RecordNanos(uint64(i), ns)
	}
	s := h.Snapshot()
	if got := s.Count(); got != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", got, len(samples))
	}
	if s.Counts[bucketOf(100)] != 2 {
		t.Fatalf("bucket for 100ns holds %d, want 2", s.Counts[bucketOf(100)])
	}
	if sum := s.SumNanos(); sum <= 0 {
		t.Fatalf("SumNanos = %g, want > 0", sum)
	}
	// The p100 must come from the highest occupied bucket.
	if q := s.Quantile(1.0); q < bucketMidNanos(bucketOf(1<<20)) {
		t.Fatalf("Quantile(1.0) = %g, below top bucket midpoint", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) over samples including 0 = %g, want 0", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.SumNanos() != 0 {
		t.Fatal("empty snapshot must report zero quantile and sum")
	}
}

// TestHistogramMergeCorrectness is the per-shard merge pin: recording the
// same sample stream into many striped instances (one per simulated shard)
// and merging their snapshots must equal a single instance fed everything.
func TestHistogramMergeCorrectness(t *testing.T) {
	const shards = 8
	single := NewHistogram(1)
	perShard := make([]*Histogram, shards)
	for i := range perShard {
		perShard[i] = NewHistogram(4)
	}
	rng := uint64(42)
	for i := 0; i < 10000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		ns := int64(rng >> 34)
		single.RecordNanos(rng, ns)
		perShard[i%shards].RecordNanos(rng, ns)
	}
	var merged HistogramSnapshot
	for _, h := range perShard {
		merged.Merge(h.Snapshot())
	}
	if merged != single.Snapshot() {
		t.Fatalf("merged per-shard snapshot differs from single instance:\nmerged: %v\nsingle: %v",
			merged.Counts, single.Snapshot().Counts)
	}
}

// TestHistogramConcurrent races GOMAXPROCS writers against a scraping
// reader; run under -race in CI's named step. The final snapshot must hold
// every sample.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(runtime.GOMAXPROCS(0))
	const perWriter = 20000
	writers := runtime.GOMAXPROCS(0)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // scraping reader, racing the writers
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot().Count()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.RecordNanos(uint64(w), int64(i%4096))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got, want := h.Snapshot().Count(), uint64(writers*perWriter); got != want {
		t.Fatalf("after concurrent recording Count = %d, want %d", got, want)
	}
}
