package telemetry

import (
	"sort"
	"sync/atomic"
)

// The slow-lookup flight recorder: a fixed-size lock-free ring holding the
// most recent lookups that crossed the slow threshold. Writers claim a slot
// with one atomic fetch-add on the cursor and publish the entry under a
// per-slot sequence word (odd while a write is in flight, even when
// stable); every entry field is a packed atomic word, so recording is a
// handful of atomic stores, zero allocations, and clean under the race
// detector. A dump walks the ring, skips slots whose sequence changed
// mid-copy, resolves interned string IDs and sorts worst-first.

// slotWords is the per-slot word count: sequence + 7 payload words.
const slotWords = 8

// Payload word layout (after the sequence word):
//
//	1: capture time, UnixNano
//	2: latency, nanoseconds
//	3: tableID<<32 | backendID
//	4: pathID<<32 | packets
//	5: visits<<32 | ruleID     (compiled worst-case node visits, matched rule)
//	6: snapshot version
//	7: flags (cache hit, overlay winner, matched)
const (
	slotSeq = iota
	slotTime
	slotLatency
	slotTableBackend
	slotPathPackets
	slotVisitsRule
	slotVersion
	slotFlags
)

const (
	flagCacheHit = 1 << iota
	flagOverlayWinner
	flagMatched
)

// Sample is one slow lookup in its hot-path form: plain scalars and
// interned string IDs only, so recording never allocates. The exposition
// form (resolved strings, JSON tags) is SlowEntry.
type Sample struct {
	// UnixNanos is the capture time; LatencyNanos the lookup latency (for
	// batch spans, the whole span — Packets says how many packets it
	// covered).
	UnixNanos    int64
	LatencyNanos int64
	// TableID, BackendID and PathID are interned string IDs
	// (Telemetry.Intern); PathSingle/PathBatch/PathDataplane are pre-seeded.
	TableID   uint32
	BackendID uint32
	PathID    uint32
	// Packets is the span width (1 for single lookups).
	Packets int32
	// Visits is the serving structure's worst-case lookup cost
	// (compiled.WorstCaseVisits for tree backends); DepthBucket in the
	// exposition is its power-of-two bucket.
	Visits int32
	// RuleID is the matched rule's ID (meaningful when Matched).
	RuleID  int32
	Version uint64
	// CacheHit reports the flow cache answered; OverlayWinner that the
	// winning rule came from the delta overlay rather than the compiled
	// base; Matched that any rule matched.
	CacheHit      bool
	OverlayWinner bool
	Matched       bool
}

// Recorder is the fixed-size lock-free flight-recorder ring.
type Recorder struct {
	slots    []atomic.Uint64 // len = ring size * slotWords
	mask     uint64
	cursor   atomic.Uint64
	captured atomic.Uint64
}

// NewRecorder builds a recorder with the given slot count, rounded up to a
// power of two (minimum 16).
func NewRecorder(size int) *Recorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Recorder{slots: make([]atomic.Uint64, n*slotWords), mask: uint64(n - 1)}
}

// Size returns the ring's slot count.
func (r *Recorder) Size() int { return len(r.slots) / slotWords }

// Captured returns the total number of entries ever recorded (the ring
// keeps only the most recent Size of them).
func (r *Recorder) Captured() uint64 { return r.captured.Load() }

// Record stores one sample. Lock-free and allocation-free: one fetch-add
// claims a slot, the per-slot sequence word brackets the payload stores.
func (r *Recorder) Record(s Sample) {
	idx := (r.cursor.Add(1) - 1) & r.mask
	w := r.slots[idx*slotWords : idx*slotWords+slotWords]
	w[slotSeq].Add(1) // odd: write in flight
	w[slotTime].Store(uint64(s.UnixNanos))
	w[slotLatency].Store(uint64(s.LatencyNanos))
	w[slotTableBackend].Store(uint64(s.TableID)<<32 | uint64(s.BackendID))
	w[slotPathPackets].Store(uint64(s.PathID)<<32 | uint64(uint32(s.Packets)))
	w[slotVisitsRule].Store(uint64(uint32(s.Visits))<<32 | uint64(uint32(s.RuleID)))
	w[slotVersion].Store(s.Version)
	var flags uint64
	if s.CacheHit {
		flags |= flagCacheHit
	}
	if s.OverlayWinner {
		flags |= flagOverlayWinner
	}
	if s.Matched {
		flags |= flagMatched
	}
	w[slotFlags].Store(flags)
	w[slotSeq].Add(1) // even: stable
	r.captured.Add(1)
}

// snapshot copies every stable slot out of the ring. A slot whose sequence
// word is odd (write in flight) or changes across the copy is skipped —
// the recorder never blocks a writer for a reader.
func (r *Recorder) snapshot() []Sample {
	n := r.Size()
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		w := r.slots[i*slotWords : i*slotWords+slotWords]
		seq := w[slotSeq].Load()
		if seq == 0 || seq&1 == 1 {
			continue // never written, or mid-write
		}
		var s Sample
		s.UnixNanos = int64(w[slotTime].Load())
		s.LatencyNanos = int64(w[slotLatency].Load())
		tb := w[slotTableBackend].Load()
		s.TableID, s.BackendID = uint32(tb>>32), uint32(tb)
		pp := w[slotPathPackets].Load()
		s.PathID, s.Packets = uint32(pp>>32), int32(uint32(pp))
		vr := w[slotVisitsRule].Load()
		s.Visits, s.RuleID = int32(uint32(vr>>32)), int32(uint32(vr))
		s.Version = w[slotVersion].Load()
		flags := w[slotFlags].Load()
		s.CacheHit = flags&flagCacheHit != 0
		s.OverlayWinner = flags&flagOverlayWinner != 0
		s.Matched = flags&flagMatched != 0
		if w[slotSeq].Load() != seq {
			continue // torn: a writer lapped us mid-copy
		}
		out = append(out, s)
	}
	return out
}

// SlowEntry is the exposition form of one captured slow lookup, served as
// JSON by the admin plane's /debug/slow endpoint.
type SlowEntry struct {
	UnixNanos    int64  `json:"unix_nanos"`
	LatencyNanos int64  `json:"latency_nanos"`
	Table        string `json:"table"`
	Backend      string `json:"backend"`
	// Path is the serving path that captured the entry: "single" (engine
	// per-packet), "batch" (engine shard span) or "dataplane" (per-core
	// loop span).
	Path string `json:"path"`
	// Packets is the span width the latency covers (1 for single lookups).
	Packets int `json:"packets"`
	// Visits is the serving structure's worst-case lookup cost at capture
	// time; DepthBucket is its power-of-two bucket (bit length), the
	// coarse "how deep is this tree" axis.
	Visits      int `json:"worst_case_visits"`
	DepthBucket int `json:"depth_bucket"`
	// CacheHit: the flow cache answered. OverlayWinner: the winning rule
	// came from the delta overlay, not the compiled base. Matched: any
	// rule matched (RuleID is its ID).
	CacheHit      bool   `json:"cache_hit"`
	OverlayWinner bool   `json:"overlay_winner"`
	Matched       bool   `json:"matched"`
	RuleID        int    `json:"rule_id"`
	Version       uint64 `json:"version"`
}

// entries resolves the ring's stable slots into exposition form, sorted
// worst (highest latency) first. resolve maps interned string IDs back to
// strings.
func (r *Recorder) entries(resolve func(uint32) string) []SlowEntry {
	samples := r.snapshot()
	out := make([]SlowEntry, len(samples))
	for i, s := range samples {
		out[i] = SlowEntry{
			UnixNanos:     s.UnixNanos,
			LatencyNanos:  s.LatencyNanos,
			Table:         resolve(s.TableID),
			Backend:       resolve(s.BackendID),
			Path:          resolve(s.PathID),
			Packets:       int(s.Packets),
			Visits:        int(s.Visits),
			DepthBucket:   depthBucket(int(s.Visits)),
			CacheHit:      s.CacheHit,
			OverlayWinner: s.OverlayWinner,
			Matched:       s.Matched,
			RuleID:        int(s.RuleID),
			Version:       s.Version,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyNanos > out[j].LatencyNanos })
	return out
}

// depthBucket buckets a worst-case visit count by bit length, the same
// power-of-two scheme the histograms use for nanoseconds.
func depthBucket(visits int) int {
	if visits <= 0 {
		return 0
	}
	b := 0
	for v := uint(visits); v != 0; v >>= 1 {
		b++
	}
	return b
}
