package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every latency histogram: bucket 0
// holds non-positive samples (a coarse clock can report 0ns), bucket b in
// [1, NumBuckets-2] holds samples whose nanosecond value has bit length b
// (i.e. ns in [2^(b-1), 2^b)), and the last bucket is the overflow for
// everything at or above 2^(NumBuckets-2) ns (~8.6 s) — rendered as the
// +Inf bucket in the Prometheus exposition.
const NumBuckets = 34

// stripeSize pads each stripe to a multiple of the cache line so concurrent
// recorders on different stripes never false-share a line.
const stripePad = 64 - (NumBuckets*8)%64

// stripe is one recorder lane: a fixed array of per-bucket counters.
type stripe struct {
	counts [NumBuckets]atomic.Uint64
	_      [stripePad]byte
}

// Histogram is a lock-free, fully preallocated log-bucketed latency
// histogram. Recording is one atomic add into a power-of-two nanosecond
// bucket; concurrent recorders spread across independent cache-line-padded
// stripes selected by a caller-supplied hint (a shard index, a core index,
// or the sample's own low bits), and a scrape merges the stripes into one
// HistogramSnapshot. There is no sum register on the write path — the
// Prometheus _sum is derived at scrape time from bucket midpoints — so the
// hot-path cost is exactly one uncontended atomic add and zero allocations.
type Histogram struct {
	stripes []stripe
	mask    uint64
}

// NewHistogram builds a histogram with the given stripe count, rounded up
// to a power of two (minimum 1).
func NewHistogram(stripes int) *Histogram {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &Histogram{stripes: make([]stripe, n), mask: uint64(n - 1)}
}

// bucketOf maps a nanosecond latency to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// RecordNanos records one latency sample. hint selects the stripe (any
// value works; recorders with a natural identity — a worker index, a core
// index — should pass it so they keep hitting the same cache line, and
// everyone else can pass the sample's own nanosecond value as a free
// pseudo-random spreader). One atomic add, no allocation.
func (h *Histogram) RecordNanos(hint uint64, ns int64) {
	h.stripes[hint&h.mask].counts[bucketOf(ns)].Add(1)
}

// Stripes returns the histogram's stripe count (after power-of-two
// rounding).
func (h *Histogram) Stripes() int { return len(h.stripes) }

// Snapshot merges every stripe into one point-in-time bucket vector. The
// merge reads each counter once with an atomic load; under concurrent
// recording the result is a consistent-enough scrape (each bucket is exact
// at its own read point), the usual Prometheus contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := 0; b < NumBuckets; b++ {
			s.Counts[b] += st.counts[b].Load()
		}
	}
	return s
}

// HistogramSnapshot is a merged point-in-time view of one or more
// histograms: a plain bucket vector plus derived aggregates.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64
}

// Merge adds another snapshot's buckets into s (per-shard instances merged
// at scrape time).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for b := 0; b < NumBuckets; b++ {
		s.Counts[b] += o.Counts[b]
	}
}

// Count returns the total number of recorded samples.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for b := 0; b < NumBuckets; b++ {
		n += s.Counts[b]
	}
	return n
}

// bucketMidNanos is the representative latency of one bucket: the midpoint
// of [2^(b-1), 2^b) for interior buckets, 0 for the non-positive bucket,
// and 1.5x the lower bound for the overflow bucket.
func bucketMidNanos(b int) float64 {
	switch {
	case b <= 0:
		return 0
	case b == 1:
		return 1
	default:
		return float64(uint64(3) << (b - 2))
	}
}

// SumNanos returns the approximate sum of all recorded samples in
// nanoseconds, derived from bucket midpoints (the write path keeps no sum
// register). The approximation error is bounded by the half-width of each
// power-of-two bucket, i.e. under 50% per sample and far less in aggregate.
func (s HistogramSnapshot) SumNanos() float64 {
	var sum float64
	for b := 0; b < NumBuckets; b++ {
		if c := s.Counts[b]; c != 0 {
			sum += float64(c) * bucketMidNanos(b)
		}
	}
	return sum
}

// Quantile returns the latency in nanoseconds at quantile q in [0, 1],
// interpolated to the representative midpoint of the bucket holding the
// rank. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += s.Counts[b]
		if cum >= rank {
			return bucketMidNanos(b)
		}
	}
	return bucketMidNanos(NumBuckets - 1)
}

// BucketUpperNanos returns bucket b's inclusive upper bound in nanoseconds
// (2^b - 1), or +Inf for the overflow bucket. The bounds are strictly
// increasing, which is what the Prometheus `le` labels render.
func BucketUpperNanos(b int) float64 {
	if b >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(b) - 1)
}
