//go:build race

package dataplane

// raceEnabled selects the race-detector-only single-producer check in
// ring.push. The constant folds the check away entirely in normal builds.
const raceEnabled = true

// enterProducer asserts that exactly one goroutine is inside push at a
// time. SPSC correctness rests on that invariant — two concurrent producers
// can both read the same tail and silently overwrite each other's slot, a
// corruption the race detector alone may miss because the colliding writes
// go through the same atomic cursors. Under -race the guard turns any
// producer overlap into a loud panic at the violation site.
func (r *ring) enterProducer() {
	if !r.producing.CompareAndSwap(false, true) {
		panic("dataplane: SPSC ring push from concurrent producers (single-producer contract violated)")
	}
}

// exitProducer re-opens the guard; deferred by push. A plain method (not a
// returned closure) so the guarded push stays allocation-free — the alloc
// gate runs under -race too.
func (r *ring) exitProducer() { r.producing.Store(false) }
