package dataplane

import (
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// The demux stage decides which core owns a packet: hash the 5-tuple, map
// the hash onto [0, cores). Because the mapping is a pure function of the
// header fields, every packet of a flow lands on the same core for the
// lifetime of the dataplane — which is the property the whole design leans
// on. Per-flow state (the flow cache entry) lives on exactly one core, so it
// needs no locks; and packets of one flow are classified in submission
// order by one loop, so a flow never observes rule generations out of
// order.
//
// The hash is engine.HashPacket — the same function the engine's sharded
// flow cache uses — so "flow identity" means one thing across the stack.

// coreOf maps a packet to its owning core index in [0, cores).
//
// The reduction is Lemire's multiply-shift ("fastrange"): take the high 32
// bits of the hash and scale them by cores. Unlike `h % cores` it compiles
// to one multiply for any core count (no division, no power-of-two
// requirement), and unlike masking low bits it draws on the hash's
// well-mixed high half.
func coreOf(p rule.Packet, cores int) int {
	h := engine.HashPacket(p)
	return int(((h >> 32) * uint64(cores)) >> 32)
}
