package dataplane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// testSet builds a deterministic ClassBench rule set.
func testSet(t testing.TB, size int, seed int64) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, seed)
}

// testPackets draws rule-biased packets (with flow bursts) so lookups
// traverse real rules and the flow caches see recurring tuples.
func testPackets(set *rule.Set, n int, seed int64) []rule.Packet {
	entries := classbench.GenerateTrace(set, n, seed)
	ps := make([]rule.Packet, len(entries))
	for i, e := range entries {
		ps[i] = e.Key
	}
	return ps
}

// TestDifferentialAgainstWorkerPool is the dataplane's ground-truth test:
// the same engine serves the same packets through both architectures — the
// worker-pool ClassifyBatch and the demux/ring/loop path — interleaved
// with live rule updates, across several backends. Every result must be
// identical: the dataplane is a serving architecture, not a semantics
// change.
func TestDifferentialAgainstWorkerPool(t *testing.T) {
	const packetsPerRound = 3000
	const rounds = 4 // 12k packets total, with updates between rounds
	for _, backend := range []string{"hicuts", "tss", "linear"} {
		for _, online := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s_online=%v", backend, online), func(t *testing.T) {
				set := testSet(t, 400, 3)
				eng, err := engine.NewEngine(backend, set, engine.Options{OnlineUpdates: online})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				dp, err := Attach(eng, Config{Cores: 4, CacheEntries: 2048})
				if err != nil {
					t.Fatal(err)
				}

				ps := testPackets(set, packetsPerRound, 11)
				got := make([]engine.Result, packetsPerRound)
				want := make([]engine.Result, packetsPerRound)
				for round := 0; round < rounds; round++ {
					dp.ClassifyBatch(ps, got)
					eng.ClassifyBatch(ps, want)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("round %d packet %d: dataplane %+v, worker pool %+v", round, i, got[i], want[i])
						}
					}
					// Mutate the rule set between rounds: a top-priority rule
					// matching everything on round 0 and 2, removed on 1 and 3.
					if round%2 == 0 {
						if _, err := eng.Insert(0, rule.NewWildcardRule(-1)); err != nil {
							t.Fatal(err)
						}
					} else {
						live := eng.Rules().Rules()
						if _, err := eng.Delete(live[0].ID); err != nil {
							t.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// TestEpochOrdering pins the update guarantee: a lookup submitted after
// Insert (or Delete) returned must observe the new rule generation — the
// epoch message is queued behind nothing and ahead of the lookup in every
// ring. Run many times so a lost or reordered epoch would be caught.
func TestEpochOrdering(t *testing.T) {
	set := testSet(t, 200, 5)
	eng, err := engine.NewEngine("tss", set, engine.Options{OnlineUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dp, err := Attach(eng, Config{Cores: 4, CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}

	p := testPackets(set, 1, 9)[0]
	for i := 0; i < 50; i++ {
		// A top-priority wildcard matches every packet, including p.
		res, err := eng.Insert(0, rule.NewWildcardRule(-1))
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := dp.Classify(p); !ok || r.ID != res.ID {
			t.Fatalf("iteration %d: lookup after Insert returned rule %d (ok=%v), want the just-inserted %d", i, r.ID, ok, res.ID)
		}
		if _, err := eng.Delete(res.ID); err != nil {
			t.Fatal(err)
		}
		if r, ok := dp.Classify(p); ok && r.ID == res.ID {
			t.Fatalf("iteration %d: lookup after Delete still matched the deleted rule %d", i, res.ID)
		}
	}
	if st := dp.Stats(); st.PerCore[coreOf(p, 4)].Epochs == 0 {
		t.Fatal("the looked-up packet's loop observed no epochs")
	}
}

// TestZeroAllocHotPath asserts the steady-state submit path allocates
// nothing: pooled scratch, by-value ring items, completion vectors embedded
// in the scratch. Engine caches are off and the per-core caches on — the
// exact opt-in dataplane configuration.
//
// Race builds are excluded: sync.Pool deliberately drops 25% of Puts on the
// floor under the race detector (sync/pool.go, "Randomly drop x on floor"),
// so the scratch pool re-runs New and the measurement reports the race
// runtime's sabotage, not a hot-path allocation. CI runs this test in a
// non-race pass alongside the bench gate.
func TestZeroAllocHotPath(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally drops Puts under -race; alloc gate runs in the non-race CI pass")
	}
	set := testSet(t, 128, 1)
	eng, err := engine.NewEngine("tss", set, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dp, err := Attach(eng, Config{Cores: 2, CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ps := testPackets(set, 256, 7)
	out := make([]engine.Result, len(ps))
	dp.ClassifyBatch(ps, out) // warm the scratch pool

	if allocs := testing.AllocsPerRun(100, func() {
		dp.ClassifyBatch(ps, out)
	}); allocs != 0 {
		t.Errorf("ClassifyBatch allocates %.1f allocs/op, want 0", allocs)
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		dp.Classify(ps[i%len(ps)])
		i++
	}); allocs != 0 {
		t.Errorf("Classify allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocHotPathTelemetry re-pins the steady-state submit path with
// full telemetry enabled — per-span histogram samples on every core loop
// and the flight recorder capturing every span (threshold 0). Same race
// exclusion as TestZeroAllocHotPath (the scratch pool is sync.Pool).
func TestZeroAllocHotPathTelemetry(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally drops Puts under -race; alloc gate runs in the non-race CI pass")
	}
	set := testSet(t, 128, 1)
	tel := telemetry.New(telemetry.Config{})
	tel.SetSlowThreshold(0)
	eng, err := engine.NewEngine("tss", set, engine.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dp, err := Attach(eng, Config{Cores: 2, CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ps := testPackets(set, 256, 7)
	out := make([]engine.Result, len(ps))
	dp.ClassifyBatch(ps, out) // warm the scratch pool

	if allocs := testing.AllocsPerRun(100, func() {
		dp.ClassifyBatch(ps, out)
	}); allocs != 0 {
		t.Errorf("telemetry-enabled ClassifyBatch allocates %.1f allocs/op, want 0", allocs)
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		dp.Classify(ps[i%len(ps)])
		i++
	}); allocs != 0 {
		t.Errorf("telemetry-enabled Classify allocates %.1f allocs/op, want 0", allocs)
	}
	if tel.DataplaneBatch.Snapshot().Count() == 0 {
		t.Error("telemetry recorded no dataplane span samples")
	}
	if tel.Slow.Captured() == 0 {
		t.Error("flight recorder captured nothing at threshold 0")
	}
}

// TestStatsSurfacesParkWakeRing drives the dataplane through an
// idle-park-wake cycle and asserts the new per-core gauges surface through
// Stats(): park/wake transition counts, the ring-occupancy high watermark,
// the flow-cache hit ratio, and (once the rings drain) zero epoch lag.
func TestStatsSurfacesParkWakeRing(t *testing.T) {
	set := testSet(t, 128, 1)
	eng, err := engine.NewEngine("tss", set, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dp, err := Attach(eng, Config{Cores: 2, CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ps := testPackets(set, 512, 7)
	out := make([]engine.Result, len(ps))
	dp.ClassifyBatch(ps, out)

	// The loops drain their rings and, after the spin budget, park. Wait
	// for every core to record at least one park transition.
	deadline := time.Now().Add(5 * time.Second)
	for {
		parked := 0
		for _, cs := range dp.Stats().PerCore {
			if cs.Parks > 0 {
				parked++
			}
		}
		if parked == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loops never parked: %+v", dp.Stats().PerCore)
		}
		time.Sleep(time.Millisecond)
	}

	// Submitting into a parked loop forces the wake-token path. Repeats of
	// the same trace also exercise the per-core flow caches.
	dp.ClassifyBatch(ps, out)
	dp.ClassifyBatch(ps, out)

	var woke, hw int
	for _, cs := range dp.Stats().PerCore {
		if cs.Wakes > 0 {
			woke++
		}
		if cs.RingHighWatermark > hw {
			hw = cs.RingHighWatermark
		}
		if cs.CacheHits+cs.CacheMisses > 0 && (cs.HitRatio < 0 || cs.HitRatio > 1) {
			t.Errorf("core %d: hit ratio %v out of [0,1]", cs.Core, cs.HitRatio)
		}
	}
	if woke == 0 {
		t.Errorf("no core recorded a wake after submitting into parked loops: %+v", dp.Stats().PerCore)
	}
	if hw < 1 {
		t.Errorf("ring high watermark never reached 1: %+v", dp.Stats().PerCore)
	}

	// With no traffic in flight and no pending updates the pinned views
	// must converge to the engine head.
	deadline = time.Now().Add(5 * time.Second)
	for {
		lag := uint64(0)
		for _, cs := range dp.Stats().PerCore {
			lag += cs.EpochLag
		}
		if lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch lag never drained: %+v", dp.Stats().PerCore)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPerCoreCacheHits checks the per-core caches actually serve repeats:
// a recurring trace must produce hits, and the hit results must stay
// correct (covered by the differential test; here we pin the counters).
func TestPerCoreCacheHits(t *testing.T) {
	set := testSet(t, 128, 1)
	eng, err := engine.NewEngine("linear", set, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dp, err := Attach(eng, Config{Cores: 2, CacheEntries: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ps := testPackets(set, 512, 7)
	out := make([]engine.Result, len(ps))
	dp.ClassifyBatch(ps, out)
	dp.ClassifyBatch(ps, out) // second pass: every flow repeats
	st := dp.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no per-core cache hits after a repeated trace (misses=%d)", st.CacheMisses)
	}
	if st.CacheHits+st.CacheMisses != st.Packets {
		t.Fatalf("cache accounting: hits %d + misses %d != packets %d", st.CacheHits, st.CacheMisses, st.Packets)
	}
}

// TestCloseDrainsInFlight is the shutdown-ordering regression test: close
// the ENGINE (not the dataplane) while submitters are mid-flight. The
// dataplane's closer runs first, loops drain their rings against a fully
// live engine, every accepted batch completes with correct results, and
// late submissions fall back to inline classification instead of touching
// the dead worker pool.
func TestCloseDrainsInFlight(t *testing.T) {
	set := testSet(t, 200, 3)
	eng, err := engine.NewEngine("tss", set, engine.Options{OnlineUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Attach(eng, Config{Cores: 4, CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}

	ps := testPackets(set, 512, 13)
	want := make([]engine.Result, len(ps))
	eng.ClassifyBatch(ps, want)

	const submitters = 4
	var wg sync.WaitGroup
	var batches atomic.Int64
	stop := make(chan struct{})
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]engine.Result, len(ps))
			for {
				select {
				case <-stop:
					return
				default:
				}
				dp.ClassifyBatch(ps, out)
				batches.Add(1)
				for i := range out {
					if out[i] != want[i] {
						t.Errorf("in-flight batch corrupted at packet %d: %+v want %+v", i, out[i], want[i])
						return
					}
				}
			}
		}()
	}
	// Let the submitters get going, then pull the rug: engine Close while
	// batches are in flight.
	for batches.Load() < 8 {
		runtime.Gosched()
	}
	eng.Close()
	close(stop)
	wg.Wait()

	// After close, lookups still answer (inline fallback against the last
	// snapshot) rather than hanging or panicking.
	out := make([]engine.Result, len(ps))
	dp.ClassifyBatch(ps, out)
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("post-close fallback wrong at packet %d: %+v want %+v", i, out[i], want[i])
		}
	}
	if _, ok := dp.Classify(ps[0]); ok != want[0].OK {
		t.Fatal("post-close single-packet fallback disagrees")
	}
	dp.Close() // idempotent: already closed via the engine closer
}

// TestAttachDefaultsAndLimits pins Attach's configuration handling.
func TestAttachDefaultsAndLimits(t *testing.T) {
	set := testSet(t, 64, 1)
	eng, err := engine.NewEngine("linear", set, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := Attach(eng, Config{Cores: maxCores + 1}); err == nil {
		t.Fatal("Attach accepted an absurd core count")
	}
	dp, err := Attach(eng, Config{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if dp.Cores() < 1 {
		t.Fatalf("defaulted cores = %d", dp.Cores())
	}
	if dp.Engine() != eng {
		t.Fatal("Engine() does not return the fronted engine")
	}
	if st := dp.Stats(); st.RingCapacity != defaultRingSize {
		t.Fatalf("default ring capacity = %d, want %d", st.RingCapacity, defaultRingSize)
	}
}
