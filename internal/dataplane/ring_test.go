package dataplane

import (
	"runtime"
	"sync"
	"testing"
)

// TestRingCapacityRounding pins newRing's power-of-two sizing: requested
// capacities round up, and degenerate requests get the minimum of 2.
func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{-1, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := newRing(c.ask).capacity(); got != c.want {
			t.Errorf("newRing(%d).capacity() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestRingFIFOWraparound pushes and pops many more items than the ring
// holds, in varying burst sizes, and checks every item comes out in FIFO
// order — which exercises the cursor wraparound (masking) many times over.
func TestRingFIFOWraparound(t *testing.T) {
	r := newRing(4)
	var next, drained uint64
	var it item
	// Burst sizes are coprime with the capacity so the cursors land on
	// every alignment relative to the buffer.
	for _, burst := range []int{1, 3, 4, 1, 3, 2, 4, 3, 1, 2, 3, 4} {
		for i := 0; i < burst; i++ {
			if !r.push(item{kind: itemEpoch, seq: next}) {
				t.Fatalf("push %d refused with %d queued (capacity %d)", next, r.len(), r.capacity())
			}
			next++
		}
		for r.pop(&it) {
			if it.seq != drained {
				t.Fatalf("popped seq %d, want %d (FIFO violated)", it.seq, drained)
			}
			drained++
		}
	}
	if drained != next {
		t.Fatalf("drained %d of %d pushed items", drained, next)
	}
	if next <= uint64(r.capacity()) {
		t.Fatalf("test pushed only %d items, not enough to wrap a capacity-%d ring", next, r.capacity())
	}
}

// TestRingFullEmptyBoundaries pins the boundary behaviour: push fails
// exactly when len == capacity, pop fails exactly when the ring is empty,
// and one slot of headroom reopens each.
func TestRingFullEmptyBoundaries(t *testing.T) {
	r := newRing(4)
	var it item
	if r.pop(&it) {
		t.Fatal("pop succeeded on a fresh (empty) ring")
	}
	if !r.empty() || r.len() != 0 {
		t.Fatalf("fresh ring: empty=%v len=%d", r.empty(), r.len())
	}
	for i := 0; i < r.capacity(); i++ {
		if !r.push(item{seq: uint64(i)}) {
			t.Fatalf("push %d/%d refused before full", i, r.capacity())
		}
	}
	if r.push(item{seq: 99}) {
		t.Fatal("push succeeded on a full ring")
	}
	if r.len() != r.capacity() {
		t.Fatalf("full ring len = %d, want %d", r.len(), r.capacity())
	}
	if !r.pop(&it) || it.seq != 0 {
		t.Fatalf("pop after full: ok with seq %d, want seq 0", it.seq)
	}
	if !r.push(item{seq: 100}) {
		t.Fatal("push refused after one slot was freed")
	}
	for r.pop(&it) {
	}
	if !r.empty() {
		t.Fatal("ring not empty after draining")
	}
	if r.pop(&it) {
		t.Fatal("pop succeeded on a drained ring")
	}
}

// TestRingDrainedSlotZeroed checks pop zeroes the vacated slot, so a
// completed batch's packet and result buffers are not pinned against the
// GC for a full cursor lap.
func TestRingDrainedSlotZeroed(t *testing.T) {
	r := newRing(2)
	done := &completion{}
	r.push(item{kind: itemBatch, idx: []int32{0}, done: done})
	var it item
	r.pop(&it)
	if it.done != done {
		t.Fatal("popped item lost its payload")
	}
	for i := range r.buf {
		if r.buf[i].idx != nil || r.buf[i].done != nil {
			t.Fatalf("slot %d still holds payload after pop", i)
		}
	}
}

// TestRingWakeToken checks the park/wake handshake from the producer side:
// no token is posted while the consumer is awake, exactly one is posted
// (without blocking) once the sleeping flag is armed, and repeated pushes
// do not overflow the buffered channel.
func TestRingWakeToken(t *testing.T) {
	r := newRing(8)
	r.push(item{seq: 1})
	select {
	case <-r.wake:
		t.Fatal("wake token posted while consumer was not sleeping")
	default:
	}
	r.sleeping.Store(true)
	r.push(item{seq: 2})
	r.push(item{seq: 3}) // second push must not block on the full token buffer
	select {
	case <-r.wake:
	default:
		t.Fatal("no wake token after push with sleeping armed")
	}
	select {
	case <-r.wake:
		t.Fatal("more than one wake token buffered")
	default:
	}
}

// TestRingSingleProducerViolation checks the race-build guard: a second
// concurrent producer must panic loudly instead of silently corrupting the
// ring. The overlap is staged deterministically by marking the guard taken,
// exactly as a push frozen mid-flight would leave it.
func TestRingSingleProducerViolation(t *testing.T) {
	if !raceEnabled {
		t.Skip("single-producer guard is compiled in race builds only (go test -race)")
	}
	r := newRing(8)
	r.producing.Store(true) // a producer is "inside push"
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent push did not panic with the guard held")
		}
	}()
	r.push(item{seq: 1})
}

// TestRingSPSCConcurrent drives one producer against one consumer over a
// deliberately tiny ring and checks nothing is lost, duplicated or
// reordered. Under -race this doubles as a memory-model check on the
// cursor protocol.
func TestRingSPSCConcurrent(t *testing.T) {
	r := newRing(4)
	const total = 100000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.push(item{kind: itemEpoch, seq: i}) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var it item
	for want := uint64(0); want < total; {
		if !r.pop(&it) {
			runtime.Gosched()
			continue
		}
		if it.seq != want {
			t.Fatalf("popped seq %d, want %d", it.seq, want)
		}
		want++
	}
	wg.Wait()
	if !r.empty() {
		t.Fatalf("ring not empty after %d items: len=%d", total, r.len())
	}
}
