//go:build !race

package dataplane

// raceEnabled is false in normal builds: ring.push compiles down to the bare
// SPSC cursor protocol with no producer guard. See ring_race.go.
const raceEnabled = false

// enterProducer and exitProducer are unreachable when raceEnabled is false;
// they exist so ring.go compiles identically under both build modes.
func (r *ring) enterProducer() {}
func (r *ring) exitProducer()  {}
