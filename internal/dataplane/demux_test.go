package dataplane

import (
	"math/rand"
	"testing"

	"neurocuts/internal/rule"
)

// randomPacket draws a packet from a bounded flow population, so the same
// 5-tuples recur across the trace the way flows recur in traffic.
func randomPacket(rng *rand.Rand, flows int) rule.Packet {
	f := rng.Intn(flows)
	// Derive the 5-tuple deterministically from the flow number so equal
	// flow numbers are equal tuples.
	return rule.Packet{
		SrcIP:   uint32(f) * 2654435761,
		DstIP:   uint32(f) ^ 0x5bd1e995,
		SrcPort: uint16(f * 31),
		DstPort: uint16(f >> 3),
		Proto:   uint8(6 + f%2*11), // TCP or UDP
	}
}

// TestDemuxStability is the property the dataplane's correctness leans on:
// the same 5-tuple maps to the same core, every time, across a million
// packets — so per-flow state (the per-core cache slot, update ordering)
// lives on exactly one core.
func TestDemuxStability(t *testing.T) {
	const cores = 8
	const packets = 1_000_000
	const flows = 4096
	rng := rand.New(rand.NewSource(42))
	pinned := make(map[rule.Packet]int, flows)
	for i := 0; i < packets; i++ {
		p := randomPacket(rng, flows)
		c := coreOf(p, cores)
		if c < 0 || c >= cores {
			t.Fatalf("coreOf returned %d, outside [0,%d)", c, cores)
		}
		if prev, seen := pinned[p]; seen {
			if prev != c {
				t.Fatalf("flow %+v moved from core %d to core %d at packet %d", p, prev, c, i)
			}
		} else {
			pinned[p] = c
		}
		// A freshly constructed identical tuple must agree with the stored
		// one: the mapping is a pure function of the header fields, not of
		// packet identity.
		q := p
		if coreOf(q, cores) != c {
			t.Fatalf("copied tuple %+v mapped to a different core", q)
		}
	}
	if len(pinned) < flows/2 {
		t.Fatalf("trace exercised only %d distinct flows, want >= %d", len(pinned), flows/2)
	}
}

// TestDemuxBalance checks the fastrange reduction spreads uniform flows
// roughly evenly for several core counts, including non-powers-of-two
// (which a mask-based reduction could not serve at all).
func TestDemuxBalance(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 5, 8, 13, 16} {
		rng := rand.New(rand.NewSource(int64(cores)))
		const flows = 100000
		counts := make([]int, cores)
		for i := 0; i < flows; i++ {
			p := rule.Packet{
				SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: uint8(rng.Intn(256)),
			}
			counts[coreOf(p, cores)]++
		}
		expect := flows / cores
		for c, n := range counts {
			if n < expect/2 || n > expect*2 {
				t.Errorf("cores=%d: core %d received %d of %d flows (expected about %d)", cores, c, n, flows, expect)
			}
		}
	}
}
