package dataplane

import (
	"sync/atomic"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// Item kinds carried on a core's ring. Batch spans and epoch-tagged rule
// updates travel in the same FIFO, which is what makes update semantics
// simple: any batch submitted after an update was published necessarily sits
// behind that update's epoch message in every ring, so it is classified
// against the new generation without any locking on the lookup path.
const (
	// itemBatch is one core's span of a submitted batch.
	itemBatch = uint8(iota)
	// itemEpoch tells the loop a new engine snapshot generation was
	// published: reload the View, retire the per-core cache's entries (they
	// carry the old version and silently miss).
	itemEpoch
)

// item is one ring entry, sent by value so pushing never allocates.
type item struct {
	kind uint8
	// Batch payload: the staged packets this core owns, the original
	// positions of those packets in the caller's out slice, the caller's out
	// slice itself (cores write disjoint positions), and the batch's
	// completion vector.
	ps   []rule.Packet
	idx  []int32
	out  []engine.Result
	done *completion
	// Epoch payload: the published snapshot version. Monotonically
	// increasing; a loop that sees several queued epochs reloads on each,
	// which is idempotent.
	seq uint64
}

// ring is a bounded single-producer/single-consumer queue of items. The
// producer side is the demux stage (ingress callers serialised by the
// dataplane's ingress mutex, plus the engine's publish hook for epoch
// messages, under the same mutex); the consumer side is exactly one core
// loop. With one goroutine on each side, two atomic cursors are the whole
// synchronisation story: the producer publishes a slot by storing tail+1
// (everything written to the slot happens-before the store), the consumer
// releases a slot by storing head+1. No locks, no allocation, no CAS on the
// hot path.
//
// The padding between the cursors keeps producer and consumer from false
// sharing one cache line — each side spins only on the other's cursor plus
// its own, so the two hot words must live apart.
type ring struct {
	buf  []item
	mask uint64

	_    [64]byte
	head atomic.Uint64 // next slot the consumer will read
	_    [64]byte
	tail atomic.Uint64 // next slot the producer will write
	_    [64]byte

	// producing detects single-producer violations in race-detector builds
	// (see push and ring_race.go); it is dead weight otherwise.
	producing atomic.Bool

	// Consumer parking: busy-polling an idle ring would pin a core per loop
	// even with no traffic, so after a spin budget the loop parks on wake.
	// The producer checks sleeping after every push (one atomic load on the
	// hot path) and posts a wake token only when the consumer armed it.
	sleeping atomic.Bool
	wake     chan struct{}

	// Occupancy high watermark, observed by the consumer at pop time from
	// cursors it already loaded. hw is the consumer-owned running max (plain
	// int, no synchronisation); hwShared publishes it for Stats and is
	// stored only when the max grows, so the steady-state pop path performs
	// no additional atomic operations.
	hw       int
	hwShared atomic.Int64
}

// defaultRingSize is each core's ring capacity in items. A batch occupies
// one item per core it touches, so 1024 outstanding spans per core is far
// beyond any realistic submit depth; the bound exists to make backpressure
// explicit rather than to be reached.
const defaultRingSize = 1024

// newRing builds a ring with at least the requested capacity, rounded up to
// a power of two so the cursors wrap with a mask instead of a modulo.
func newRing(capacity int) *ring {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &ring{
		buf:  make([]item, size),
		mask: uint64(size - 1),
		wake: make(chan struct{}, 1),
	}
}

// capacity returns the ring's item capacity.
func (r *ring) capacity() int { return len(r.buf) }

// len returns the number of items currently queued. Racy by nature (either
// cursor may move concurrently); used for stats and tests only.
func (r *ring) len() int { return int(r.tail.Load() - r.head.Load()) }

// push enqueues one item, returning false when the ring is full. Producer
// side only: the caller must be the ring's single producer (the dataplane's
// ingress mutex enforces this; race-detector builds additionally verify it —
// see enterProducer).
func (r *ring) push(it item) bool {
	if raceEnabled {
		r.enterProducer()
		defer r.exitProducer()
	}
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = it
	r.tail.Store(t + 1)
	r.wakeConsumer()
	return true
}

// wakeConsumer posts a wake token if the consumer armed parking. The
// sleeping load is the producer's entire idle-coordination cost; the token
// send happens only around park/unpark transitions.
func (r *ring) wakeConsumer() {
	if r.sleeping.Load() {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// pop dequeues one item into *it, returning false when the ring is empty.
// Consumer side only: the owning core loop. The drained slot is zeroed so
// the ring does not pin a completed batch's buffers against the GC for a
// full lap of the cursor.
func (r *ring) pop(it *item) bool {
	h := r.head.Load()
	t := r.tail.Load()
	if h == t {
		return false
	}
	if occ := int(t - h); occ > r.hw {
		r.hw = occ
		r.hwShared.Store(int64(occ))
	}
	*it = r.buf[h&r.mask]
	r.buf[h&r.mask] = item{}
	r.head.Store(h + 1)
	return true
}

// highWatermark returns the deepest occupancy the consumer has observed.
func (r *ring) highWatermark() int { return int(r.hwShared.Load()) }

// empty reports whether the ring has no queued items (racy, like len).
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }
