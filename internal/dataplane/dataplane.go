// Package dataplane implements a run-to-completion serving path: long-lived
// per-core classify loops, each owning one slice of the serving state
// outright, fed by bounded single-producer/single-consumer rings behind a
// flow-hash demux.
//
// The worker-pool engine (internal/engine) already keeps the lookup path
// lock-free via RCU snapshots, but every request still crosses shared
// machinery: the sharded flow cache takes a shard mutex per packet, batch
// fan-out rendezvouses on a WaitGroup barrier, and each worker re-loads the
// snapshot pointer per span. This package removes even that residual
// sharing. Ingress hashes each packet's 5-tuple (engine.HashPacket — the
// same flow identity the engine uses) and routes it to the core that owns
// the flow; that core's loop classifies the span against a View it pinned
// once and re-pins only when told to, writes results straight into the
// caller's output slice, and signals a per-batch completion vector. Between
// the demux handoff and the completion signal there are no locks, no shared
// caches, and no snapshot loads — the loop runs each span to completion
// against state only it touches.
//
// Rule updates ride the same rings as traffic: when the engine publishes a
// new snapshot generation, the publish hook enqueues an epoch message on
// every core's ring under the same ingress mutex that serialises batch
// submission. Per-ring FIFO order then gives the only update guarantee that
// matters: a batch submitted after an update returned is classified entirely
// against the new generation, and a single flow (pinned to one core) never
// observes generations out of order. Per-core caches version-check their
// entries against the loop's View, so stale entries expire by missing — no
// invalidation pass, no stop-the-world.
//
// The dataplane is opt-in (classifier.WithDataplane, classifyd -cores); the
// worker-pool path remains the default. See docs/ARCHITECTURE.md for where
// this sits in the full picture.
package dataplane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// Config parameterises Attach.
type Config struct {
	// Cores is the number of classify loops (and rings, and per-core
	// caches). 0 means runtime.GOMAXPROCS(0).
	Cores int
	// RingSize is each core's ring capacity in items; 0 means
	// defaultRingSize.
	RingSize int
	// CacheEntries is the per-core flow cache size in entries; 0 disables
	// the per-core caches. Callers moving from the engine's sharded cache
	// should disable that cache (engine.Options.FlowCacheEntries = 0) and
	// put the budget here instead — with the dataplane in front the engine
	// cache would never be consulted, only allocated.
	CacheEntries int
}

// maxCores bounds Config.Cores. The demux stage stages core indexes as
// uint16, and a dataplane beyond a few thousand loops is a configuration
// error, not a deployment.
const maxCores = 1 << 12

// Dataplane fronts an Engine with per-core run-to-completion loops. It
// implements the same serving surface the engine exposes to
// internal/server (Classify, ClassifyBatch, Insert, Delete, artifact
// save/load, updater stats), so a server can be pointed at either
// interchangeably; control-plane calls pass through to the engine, data-
// plane calls route through the rings.
type Dataplane struct {
	eng   *engine.Engine
	loops []*loop
	cores int

	// ingressMu serialises everything that produces into the rings: batch
	// submission (the demux stage) and epoch publication (the engine's
	// publish hook). Holding one mutex across all pushes is what lets each
	// ring be single-producer — and, because epoch messages take the same
	// mutex, what makes "submitted after the update returned" a total order
	// every ring agrees on.
	ingressMu sync.Mutex
	closed    atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup

	scratchPool sync.Pool
}

// loop is one core's classify goroutine and everything it owns: its ring,
// its flow cache, and its pinned View of the rule set. Fields below the
// View are the loop's published counters — written only by the loop, read
// by Stats.
type loop struct {
	ring  *ring
	cache *coreCache
	view  engine.View

	// missPs/missOut/missPos stage one span's cache misses (or, with no
	// cache, the whole span) so the View classifies them as a single batch —
	// compiled snapshots then run their grouped prefetching traversal.
	// Touched only by the loop goroutine; grown to the largest span seen.
	missPs  []rule.Packet
	missOut []engine.Result
	missPos []int32

	// Telemetry wiring, fixed at Attach (nil tel disables all recording).
	// core doubles as the loop's histogram stripe; tableID/backendID are
	// interned flight-recorder labels, backendID refreshed on epoch reloads
	// (an artifact load can change the serving backend). Only the loop
	// goroutine touches backendID after Attach.
	core      int
	tel       *telemetry.Telemetry
	tableID   uint32
	backendID uint32

	batches atomic.Uint64
	packets atomic.Uint64
	epochs  atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	// parks/wakes are bumped only at park/unpark transitions, never on the
	// pop-and-handle hot path; viewVer mirrors the pinned View's generation
	// (written on epoch reloads) so Stats can report epoch lag without
	// touching the loop's View.
	parks   atomic.Uint64
	wakes   atomic.Uint64
	viewVer atomic.Uint64
}

// completion is a batch's completion vector: a count of outstanding core
// spans, decremented by each loop as it finishes its span. The submitter
// waits for zero instead of rendezvousing on a barrier, so cores that
// finish early are released immediately and the batch costs no mutex or
// channel on the completion edge. Pool-safety note: the finishing loop's
// last touch of the batch is the atomic decrement itself, so once wait
// observes zero the scratch that embeds this completion can be reused.
type completion struct {
	remaining atomic.Int64
}

func (c *completion) arm(n int64)   { c.remaining.Store(n) }
func (c *completion) finish()       { c.remaining.Add(-1) }
func (c *completion) pending() bool { return c.remaining.Load() != 0 }

// waitSpins and parkSpins are the busy-wait budgets before a waiter (a
// batch submitter, a parking loop) stops yielding and blocks properly.
// Spinning only pays when the goroutine being waited on can run on another
// processor; on a single-P runtime every spin merely delays the goroutine
// that would produce the result, so the budgets collapse to near zero.
var waitSpins, parkSpins = func() (int, int) {
	if runtime.GOMAXPROCS(0) <= 1 {
		return 4, 1
	}
	return 1024, 256
}()

// wait spins briefly (a submitted span's service time is typically well
// under a microsecond per packet), then degrades to short sleeps so a
// submitter stuck behind a long span does not burn a core.
func (c *completion) wait() {
	for spins := 0; c.pending(); spins++ {
		if spins < waitSpins {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// batchScratch is the pooled per-submission staging area: packets grouped
// by owning core, their original positions, the per-core histogram used to
// carve spans, and the batch's completion vector. One Get/Put pair per
// ClassifyBatch keeps the steady-state submit path at zero allocations.
type batchScratch struct {
	ps      []rule.Packet // packets, permuted so each core's span is contiguous
	idx     []int32       // idx[i] = original position of ps[i] in the caller's batch
	cores   []uint16      // pass-1 core assignment per original position
	counts  []int32       // per-core packet counts
	offs    []int32       // per-core span start offsets (prefix sums of counts)
	cursors []int32       // per-core scatter cursors for pass 2
	resOne  [1]engine.Result
	done    completion
}

// Attach builds a dataplane over eng and starts its loops. At most one
// dataplane may be attached to an engine (Attach claims the engine's
// publish hook). The dataplane registers itself as an engine closer, so
// eng.Close() tears it down first — loops drain their rings and complete
// in-flight batches while the engine underneath is still fully alive, then
// the engine's own teardown proceeds. Callers that close the engine do not
// need to close the dataplane separately (Close is idempotent).
func Attach(eng *engine.Engine, cfg Config) (*Dataplane, error) {
	cores := cfg.Cores
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	if cores > maxCores {
		return nil, fmt.Errorf("dataplane: %d cores exceeds the maximum of %d", cfg.Cores, maxCores)
	}
	ringSize := cfg.RingSize
	if ringSize <= 0 {
		ringSize = defaultRingSize
	}
	perCoreCache := 0
	if cfg.CacheEntries > 0 {
		// Split the total budget across cores, with a floor so tiny budgets
		// still yield a working cache per core.
		perCoreCache = cfg.CacheEntries / cores
		if perCoreCache < 64 {
			perCoreCache = 64
		}
	}

	d := &Dataplane{
		eng:   eng,
		cores: cores,
		stop:  make(chan struct{}),
	}
	d.scratchPool.New = func() any {
		return &batchScratch{
			counts:  make([]int32, cores),
			offs:    make([]int32, cores),
			cursors: make([]int32, cores),
		}
	}

	view := eng.CurrentView()
	tel := eng.Telemetry()
	tableID, backendID := eng.TelemetrySlowIDs()
	d.loops = make([]*loop, cores)
	for i := range d.loops {
		d.loops[i] = &loop{
			ring:      newRing(ringSize),
			cache:     newCoreCache(perCoreCache),
			view:      view,
			core:      i,
			tel:       tel,
			tableID:   tableID,
			backendID: backendID,
		}
		d.loops[i].viewVer.Store(view.Version())
	}

	// Order matters here: the publish hook must be live before the loops
	// start so no generation published after this point can be missed, and
	// the closer registration ties our lifetime to the engine's.
	eng.SetPublishHook(d.publishEpoch)
	eng.AddCloser(d.Close)

	for i := range d.loops {
		d.wg.Add(1)
		go d.run(d.loops[i])
	}
	return d, nil
}

// Cores returns the number of classify loops.
func (d *Dataplane) Cores() int { return d.cores }

// Engine returns the engine this dataplane fronts, for control-plane
// surfaces (admin, artifact tooling) that want the engine directly.
func (d *Dataplane) Engine() *engine.Engine { return d.eng }

// scratch checks a staging area out of the pool, sized for n packets.
func (d *Dataplane) scratch(n int) *batchScratch {
	sc := d.scratchPool.Get().(*batchScratch)
	if cap(sc.ps) < n {
		sc.ps = make([]rule.Packet, n)
		sc.idx = make([]int32, n)
		sc.cores = make([]uint16, n)
	}
	sc.ps = sc.ps[:n]
	sc.idx = sc.idx[:n]
	sc.cores = sc.cores[:n]
	return sc
}

func (d *Dataplane) release(sc *batchScratch) { d.scratchPool.Put(sc) }

// Classify routes a single packet through its owning core's loop, so even
// one-off lookups get the per-core cache and generation ordering of the
// flow's home core.
func (d *Dataplane) Classify(p rule.Packet) (rule.Rule, bool) {
	sc := d.scratch(1)
	sc.ps[0] = p
	sc.idx[0] = 0
	sc.resOne[0] = engine.Result{}
	sc.done.arm(1)

	core := coreOf(p, d.cores)
	it := item{kind: itemBatch, ps: sc.ps[:1], idx: sc.idx[:1], out: sc.resOne[:], done: &sc.done}

	d.ingressMu.Lock()
	if d.closed.Load() {
		d.ingressMu.Unlock()
		d.release(sc)
		r, ok := d.eng.CurrentView().Classify(p)
		return r, ok
	}
	for !d.loops[core].ring.push(it) {
		runtime.Gosched()
	}
	d.ingressMu.Unlock()

	sc.done.wait()
	r, ok := sc.resOne[0].Rule, sc.resOne[0].OK
	d.release(sc)
	return r, ok
}

// ClassifyBatch classifies ps into out (out must be at least as long as
// ps), demuxing the batch into per-core spans and waiting on the batch's
// completion vector. The steady-state path allocates nothing: staging
// buffers are pooled, spans are slices into them, and results are written
// directly into out at each packet's original position.
func (d *Dataplane) ClassifyBatch(ps []rule.Packet, out []engine.Result) {
	n := len(ps)
	if n == 0 {
		return
	}
	if len(out) < n {
		panic("dataplane: ClassifyBatch out slice shorter than packet slice")
	}

	sc := d.scratch(n)

	// Pass 1: histogram the batch by owning core, remembering each packet's
	// core so pass 2 does not rehash.
	counts := sc.counts[:d.cores]
	for i := range counts {
		counts[i] = 0
	}
	for i := range ps {
		c := coreOf(ps[i], d.cores)
		sc.cores[i] = uint16(c)
		counts[c]++
	}

	// Prefix sums carve one contiguous span per core out of the staging
	// buffer; the cursors are the running scatter positions.
	off := int32(0)
	spans := int64(0)
	for c := range counts {
		sc.offs[c] = off
		sc.cursors[c] = off
		off += counts[c]
		if counts[c] > 0 {
			spans++
		}
	}

	// Pass 2: scatter packets into their core's span, preserving submission
	// order within each core (the cursors only move forward).
	for i := range ps {
		c := sc.cores[i]
		pos := sc.cursors[c]
		sc.cursors[c] = pos + 1
		sc.ps[pos] = ps[i]
		sc.idx[pos] = int32(i)
	}

	sc.done.arm(spans)

	// Submission: one ring push per non-empty core, all under the ingress
	// mutex so each ring sees a single producer. A full ring is drained by
	// its consumer independently of this mutex (loops never take it), so
	// spinning here cannot deadlock — it is plain backpressure.
	d.ingressMu.Lock()
	if d.closed.Load() {
		d.ingressMu.Unlock()
		d.release(sc)
		// Inline against the current snapshot rather than through the
		// engine's worker pool: the pool may already be torn down when the
		// dataplane was closed by the engine's own Close, and the snapshot
		// outlives both.
		v := d.eng.CurrentView()
		for i := range ps {
			out[i].Rule, out[i].OK = v.Classify(ps[i])
		}
		return
	}
	for c := 0; c < d.cores; c++ {
		if counts[c] == 0 {
			continue
		}
		lo, hi := sc.offs[c], sc.offs[c]+counts[c]
		it := item{kind: itemBatch, ps: sc.ps[lo:hi], idx: sc.idx[lo:hi], out: out, done: &sc.done}
		for !d.loops[c].ring.push(it) {
			runtime.Gosched()
		}
	}
	d.ingressMu.Unlock()

	sc.done.wait()
	d.release(sc)
}

// publishEpoch is the engine's publish hook: fan an epoch message out to
// every core's ring. It runs with the engine's update mutex held, and takes
// the ingress mutex on top — that nesting is safe because no code path
// acquires them in the opposite order (ingress submission never calls into
// the engine's update path), and it is exactly what pins the update's
// position in every ring's FIFO relative to batch submissions.
func (d *Dataplane) publishEpoch(version uint64) {
	d.ingressMu.Lock()
	defer d.ingressMu.Unlock()
	if d.closed.Load() {
		return
	}
	it := item{kind: itemEpoch, seq: version}
	for _, lp := range d.loops {
		for !lp.ring.push(it) {
			runtime.Gosched()
		}
	}
}

// run is one core's loop: drain the ring, spin briefly when it runs dry,
// then park until the producer posts a wake. On stop the loop drains the
// ring to empty before exiting — every accepted span completes, which is
// what makes shutdown safe for submitters already waiting on a completion
// vector.
func (d *Dataplane) run(lp *loop) {
	defer d.wg.Done()
	var it item
	spins := 0
	for {
		if lp.ring.pop(&it) {
			d.handle(lp, &it)
			spins = 0
			continue
		}
		select {
		case <-d.stop:
			d.drain(lp)
			return
		default:
		}
		spins++
		if spins < parkSpins {
			runtime.Gosched()
			continue
		}
		// Park. Arm the sleeping flag, then re-check the ring: a producer
		// that pushed between our last pop and the arm saw sleeping==false
		// and sent no token, so the re-check is what closes that window
		// (both sides are sequentially consistent atomics). The park/wake
		// counters live on this transition path only — the pop-and-handle
		// hot path above never touches them.
		lp.ring.sleeping.Store(true)
		if !lp.ring.empty() {
			lp.ring.sleeping.Store(false)
			spins = 0
			continue
		}
		lp.parks.Add(1)
		select {
		case <-lp.ring.wake:
			lp.ring.sleeping.Store(false)
			lp.wakes.Add(1)
			spins = 0
		case <-d.stop:
			lp.ring.sleeping.Store(false)
			d.drain(lp)
			return
		}
	}
}

// drain empties the ring on shutdown. The engine is still fully alive here:
// the dataplane's Close runs as the first engine closer, before the
// engine's own updater and worker teardown — that ordering is the point of
// the closer registration in Attach.
func (d *Dataplane) drain(lp *loop) {
	var it item
	for lp.ring.pop(&it) {
		d.handle(lp, &it)
	}
}

// handle dispatches one ring item on the loop goroutine.
func (d *Dataplane) handle(lp *loop, it *item) {
	switch it.kind {
	case itemEpoch:
		lp.view = d.eng.CurrentView()
		lp.epochs.Add(1)
		lp.viewVer.Store(lp.view.Version())
		if lp.tel != nil {
			// Epoch reloads are rare; refreshing the interned backend ID here
			// keeps flight-recorder attribution correct across artifact loads.
			_, lp.backendID = d.eng.TelemetrySlowIDs()
		}
	case itemBatch:
		var start time.Time
		if lp.tel != nil {
			start = time.Now()
		}
		v := lp.view
		ver := v.Version()
		n := len(it.ps)
		if cap(lp.missPs) < n {
			lp.missPs = make([]rule.Packet, n)
			lp.missOut = make([]engine.Result, n)
			lp.missPos = make([]int32, n)
		}
		var hits uint64
		miss := 0
		if lp.cache != nil {
			// Serve hits in place; gather the misses into the loop's staging
			// buffers so they hit the backend as one dense span.
			for i := range it.ps {
				p := it.ps[i]
				if cr, cok, hit := lp.cache.get(p, ver); hit {
					o := &it.out[it.idx[i]]
					o.Rule, o.OK = cr, cok
					hits++
					continue
				}
				lp.missPs[miss] = p
				lp.missPos[miss] = it.idx[i]
				miss++
			}
		} else {
			copy(lp.missPs[:n], it.ps)
			copy(lp.missPos[:n], it.idx)
			miss = n
		}
		if miss > 0 {
			v.ClassifyBatch(lp.missPs[:miss], lp.missOut[:miss])
			for j := 0; j < miss; j++ {
				r := &lp.missOut[j]
				it.out[lp.missPos[j]] = *r
				if lp.cache != nil {
					lp.cache.put(lp.missPs[j], ver, r.Rule, r.OK)
				}
			}
		}
		if hits != 0 {
			lp.hits.Add(hits)
		}
		if lp.cache != nil && miss != 0 {
			lp.misses.Add(uint64(miss))
		}
		lp.packets.Add(uint64(len(it.ps)))
		lp.batches.Add(1)
		if lp.tel != nil {
			// Record from locals only — never from *it — so the completion
			// decrement below stays the loop's final touch of the batch.
			ns := time.Since(start).Nanoseconds()
			lp.tel.DataplaneBatch.RecordNanos(uint64(lp.core), ns)
			if nn := int64(n); nn > 0 && lp.tel.SlowEnough(ns/nn) {
				lp.tel.Slow.Record(telemetry.Sample{
					UnixNanos:    start.UnixNano(),
					LatencyNanos: ns,
					TableID:      lp.tableID,
					BackendID:    lp.backendID,
					PathID:       telemetry.PathDataplane,
					Packets:      int32(n),
					Visits:       int32(v.Metrics().LookupCost),
					RuleID:       -1,
					Version:      ver,
					CacheHit:     lp.cache != nil && miss == 0,
				})
			}
		}
		// The decrement must be the loop's final touch of the batch: the
		// submitter's wait returns the scratch (which embeds the completion
		// and backs it.ps/it.idx) to the pool the moment it observes zero.
		it.done.finish()
	}
}

// Close stops the loops, draining all accepted work first. Idempotent;
// normally invoked by the engine's own Close via the closer registered in
// Attach. After Close, Classify/ClassifyBatch fall through to the engine.
func (d *Dataplane) Close() {
	d.ingressMu.Lock()
	if d.closed.Load() {
		d.ingressMu.Unlock()
		return
	}
	d.closed.Store(true)
	close(d.stop)
	d.ingressMu.Unlock()
	d.wg.Wait()
}

// --- Control-plane passthroughs -----------------------------------------
//
// These let a Dataplane stand in for an Engine wherever the server's
// interfaces are concerned; updates fan out to the loops via the publish
// hook as a side effect of the engine publishing a new snapshot.

// Insert adds a rule via the engine's online-update path.
func (d *Dataplane) Insert(pos int, r rule.Rule) (engine.UpdateResult, error) {
	return d.eng.Insert(pos, r)
}

// Delete removes a rule via the engine's online-update path.
func (d *Dataplane) Delete(id int) (engine.UpdateResult, error) { return d.eng.Delete(id) }

// SaveArtifact passes through to the engine.
func (d *Dataplane) SaveArtifact(path string) error { return d.eng.SaveArtifact(path) }

// LoadArtifact passes through to the engine; the resulting snapshot
// publication reaches every loop as an epoch message.
func (d *Dataplane) LoadArtifact(path string) (engine.UpdateResult, error) {
	return d.eng.LoadArtifact(path)
}

// UpdaterStats passes through to the engine.
func (d *Dataplane) UpdaterStats() engine.UpdaterStats { return d.eng.UpdaterStats() }

// CoreStats is one loop's published counters.
type CoreStats struct {
	Core        int
	Batches     uint64 // spans handled (a submitted batch counts once per core it touched)
	Packets     uint64
	Epochs      uint64 // snapshot generations observed
	CacheHits   uint64
	CacheMisses uint64
	RingLen     int // queued items at sample time (racy snapshot)
	// RingHighWatermark is the deepest ring occupancy the loop has observed
	// at pop time — the per-core backpressure gauge.
	RingHighWatermark int
	// Parks and Wakes count the loop's park transitions and wake-token
	// wakeups (bumped only when the loop goes idle or is roused, never on
	// the pop-and-handle hot path).
	Parks uint64
	Wakes uint64
	// EpochLag is how many snapshot generations the loop's pinned View
	// trails the engine head at sample time (0 when caught up; transiently
	// nonzero while an epoch message is still queued in the ring).
	EpochLag uint64
	// HitRatio is the per-core flow cache hit ratio in [0, 1] (0 with no
	// cache or no traffic).
	HitRatio float64
}

// Stats is a point-in-time view of the dataplane's counters.
type Stats struct {
	Cores        int
	RingCapacity int
	Batches      uint64
	Packets      uint64
	CacheHits    uint64
	CacheMisses  uint64
	PerCore      []CoreStats
}

// Stats samples every loop's counters.
func (d *Dataplane) Stats() Stats {
	s := Stats{
		Cores:        d.cores,
		RingCapacity: d.loops[0].ring.capacity(),
		PerCore:      make([]CoreStats, d.cores),
	}
	engVer := d.eng.Version()
	for i, lp := range d.loops {
		cs := CoreStats{
			Core:              i,
			Batches:           lp.batches.Load(),
			Packets:           lp.packets.Load(),
			Epochs:            lp.epochs.Load(),
			CacheHits:         lp.hits.Load(),
			CacheMisses:       lp.misses.Load(),
			RingLen:           lp.ring.len(),
			RingHighWatermark: lp.ring.highWatermark(),
			Parks:             lp.parks.Load(),
			Wakes:             lp.wakes.Load(),
		}
		if ver := lp.viewVer.Load(); engVer > ver {
			cs.EpochLag = engVer - ver
		}
		if total := cs.CacheHits + cs.CacheMisses; total > 0 {
			cs.HitRatio = float64(cs.CacheHits) / float64(total)
		}
		s.PerCore[i] = cs
		s.Batches += cs.Batches
		s.Packets += cs.Packets
		s.CacheHits += cs.CacheHits
		s.CacheMisses += cs.CacheMisses
	}
	return s
}
