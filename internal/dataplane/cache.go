package dataplane

import (
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// coreCache is a per-core, direct-mapped flow cache. It is the dataplane's
// replacement for the engine's sharded flow cache: because the demux stage
// pins every flow to one core, a flow's cache entry is only ever read and
// written by that core's loop goroutine — so the locking the sharded cache
// needs (a mutex acquire/release around every get and put) disappears
// entirely. A cached hit is one hash, one masked index and one struct
// compare, with no synchronisation at all.
//
// Correctness under rule updates is inherited from the shared design: every
// slot records the snapshot version it was filled from, and a hit requires
// that version to equal the loop's current View version. Epoch messages
// advance the loop's View, so every stale entry silently becomes a miss —
// no invalidation pass, and a hit can never surface a retired rule set's
// result.
type coreCache struct {
	slots []coreSlot
	mask  uint64
}

// coreSlot is one direct-mapped entry.
type coreSlot struct {
	key     rule.Packet
	version uint64
	rule    rule.Rule
	ok      bool
	valid   bool
}

// newCoreCache builds a cache with at least the requested number of entries
// (rounded up to a power of two), or returns nil when entries <= 0 so the
// loop serves uncached.
func newCoreCache(entries int) *coreCache {
	if entries <= 0 {
		return nil
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	return &coreCache{slots: make([]coreSlot, size), mask: uint64(size - 1)}
}

// get returns the cached result for p at the given snapshot version; the
// third return reports whether the lookup hit. Loop goroutine only.
func (c *coreCache) get(p rule.Packet, version uint64) (rule.Rule, bool, bool) {
	// The slot index uses the hash's low half: the demux stage consumed the
	// high half to pick this core (see coreOf), so the low half is the part
	// still uniformly distributed within one core's flow population.
	slot := &c.slots[engine.HashPacket(p)&c.mask]
	if slot.valid && slot.version == version && slot.key == p {
		return slot.rule, slot.ok, true
	}
	return rule.Rule{}, false, false
}

// put stores the result for p computed against the given snapshot version,
// evicting whatever occupied the slot. Loop goroutine only.
func (c *coreCache) put(p rule.Packet, version uint64, r rule.Rule, ok bool) {
	c.slots[engine.HashPacket(p)&c.mask] = coreSlot{key: p, version: version, rule: r, ok: ok, valid: true}
}
