package server

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// FuzzFrame fuzzes the v2 frame decoder: arbitrary bytes must never panic,
// and any frame the decoder accepts must re-encode to an equivalent frame
// (decode is the inverse of encode on the accepted set).
func FuzzFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Op: OpPing}))
	f.Add(AppendFrame(nil, Frame{Op: OpClassify, Table: 3, Payload: make([]byte, packedPacketLen)}))
	f.Add(AppendFrame(nil, Frame{Op: OpError, Table: 0xFFFFFFFF, Payload: []byte("boom")}))
	f.Add([]byte{0xF2, 'N', 'C', '2'})
	f.Add([]byte("batch 3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		reencoded := AppendFrame(nil, fr)
		fr2, err := ReadFrame(bytes.NewReader(reencoded))
		if err != nil {
			t.Fatalf("re-encoded accepted frame rejected: %v", err)
		}
		if fr2.Op != fr.Op || fr2.Table != fr.Table || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame did not round-trip: %+v vs %+v", fr, fr2)
		}
	})
}

// fuzzServer is a process-wide server for FuzzProtoDetect: built once, it
// serves a tiny engine so fuzz inputs exercise the real connection handler
// (protocol sniffing, v1 parsing, v2 framing) end to end.
var (
	fuzzServerOnce sync.Once
	fuzzSrv        *Server
)

func fuzzServerInit() {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		panic(err)
	}
	set := classbench.Generate(fam, 30, 1)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		panic(err)
	}
	fuzzSrv = New(eng)
	// Keep stalled fuzz inputs from dragging the fuzzing loop.
	fuzzSrv.BatchReadTimeout = 200 * time.Millisecond
}

// FuzzProtoDetect throws arbitrary first bytes at a served connection: the
// protocol sniffer must route them to v1 or v2 without panicking or
// hanging, whatever the split between text, framing and garbage.
func FuzzProtoDetect(f *testing.F) {
	f.Add([]byte("1 2 3 4 5\n"))
	f.Add([]byte("batch 2\n1 2 3 4 5\n6 7 8 9 10\n"))
	f.Add([]byte("stats\nquit\n"))
	f.Add(AppendFrame(nil, Frame{Op: OpPing}))
	f.Add(AppendFrame(nil, Frame{Op: OpClassify, Payload: appendPacket(nil, rule.Packet{SrcIP: 1})}))
	f.Add(append(AppendFrame(nil, Frame{Op: OpListTables}), []byte("trailing garbage")...))
	f.Add([]byte{0xF2})
	f.Add([]byte{0xF2, 'N', 'C', '2', 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzServerOnce.Do(fuzzServerInit)
		client, server := net.Pipe()
		sc := &servedConn{Conn: server}
		done := make(chan struct{})
		go func() {
			defer close(done)
			fuzzSrv.handle(sc)
		}()
		// Feed the input and close the write side; drain whatever the
		// server answers so its writes never block the pipe.
		go func() {
			client.SetWriteDeadline(time.Now().Add(2 * time.Second))
			client.Write(data)
			time.Sleep(2 * time.Millisecond)
			client.Close()
		}()
		io.Copy(io.Discard, client) //nolint:errcheck // drained best-effort
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("handler did not terminate for input %q", data)
		}
	})
}
