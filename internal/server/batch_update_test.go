package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// startEngineServer serves an engine.Engine so the batch and live-update
// request forms are available.
func startEngineServer(t *testing.T, backend string) (*engine.Engine, *rule.Set, string) {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 1)
	eng, err := engine.NewEngine(backend, set, engine.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return eng, set, addr.String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBatchRequest(t *testing.T) {
	eng, set, addr := startEngineServer(t, "hicuts")
	c := dialTest(t, addr)

	var packets []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 200, 9) {
		packets = append(packets, e.Key)
	}
	results, err := c.ClassifyBatch(packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(packets) {
		t.Fatalf("got %d results for %d packets", len(results), len(packets))
	}
	for i, p := range packets {
		want, wantOK := eng.Classify(p)
		if results[i].OK != wantOK {
			t.Fatalf("packet %d: ok=%v, want %v", i, results[i].OK, wantOK)
		}
		if wantOK && results[i].Rule.Priority != want.Priority {
			t.Fatalf("packet %d: priority %d, want %d", i, results[i].Rule.Priority, want.Priority)
		}
	}
}

// TestBatchMalformedLine checks that a bad line inside a batch produces an
// error response in its slot without poisoning the rest of the batch.
func TestBatchMalformedLine(t *testing.T) {
	_, _, addr := startEngineServer(t, "linear")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "batch 2\nnot a packet\n1 2 3 4 6\n")
	sc := bufio.NewScanner(conn)
	var lines []string
	for len(lines) < 2 && sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 2 {
		t.Fatalf("got %d response lines: %v", len(lines), lines)
	}
	if lines[0] == "" || lines[0][:5] != "error" {
		t.Errorf("line 1 = %q, want error response", lines[0])
	}
	if lines[1] != "no-match" && lines[1][:5] != "match" {
		t.Errorf("line 2 = %q, want a classification", lines[1])
	}
}

func TestBatchSizeLimit(t *testing.T) {
	_, _, addr := startEngineServer(t, "linear")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "batch %d\n", MaxBatch+1)
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no response")
	}
	if got := sc.Text(); got[:5] != "error" {
		t.Errorf("response = %q, want error", got)
	}
}

// TestLiveRuleUpdate drives the add/del endpoints end to end: an inserted
// top-priority wildcard must win every lookup, and deleting it must restore
// the previous behaviour, with the version advancing on each update.
func TestLiveRuleUpdate(t *testing.T) {
	eng, _, addr := startEngineServer(t, "tss")
	c := dialTest(t, addr)

	p := rule.Packet{SrcIP: 99, DstIP: 98, SrcPort: 97, DstPort: 96, Proto: 250}
	beforeID, beforePrio, beforeOK, err := c.Classify(p)
	if err != nil {
		t.Fatal(err)
	}

	// add: full wildcard in ClassBench format at the top priority slot.
	wildcard := "@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00"
	id, v1, err := c.AddRule(0, wildcard)
	if err != nil {
		t.Fatal(err)
	}
	gotID, _, ok, err := c.Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || gotID != id {
		t.Fatalf("after add: got (id=%d, ok=%v), want inserted id %d", gotID, ok, id)
	}

	v2, err := c.DeleteRule(id)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Errorf("version did not advance: %d -> %d", v1, v2)
	}
	afterID, afterPrio, afterOK, err := c.Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if afterOK != beforeOK || afterID != beforeID || afterPrio != beforePrio {
		t.Fatalf("after delete: (id=%d prio=%d ok=%v), want original (id=%d prio=%d ok=%v)",
			afterID, afterPrio, afterOK, beforeID, beforePrio, beforeOK)
	}
	if eng.Version() != v2 {
		t.Errorf("engine version %d != client-visible %d", eng.Version(), v2)
	}

	// Deleting again must fail cleanly.
	if _, err := c.DeleteRule(id); err == nil {
		t.Error("second delete should report an error")
	}
}

// TestUpdateUnsupported checks the graceful error when the served
// classifier is a bare tree without the Updater interface.
func TestUpdateUnsupported(t *testing.T) {
	_, _, addr := startTestServer(t) // plain hicuts tree, no Updater
	c := dialTest(t, addr)
	if _, _, err := c.AddRule(0, "@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00"); err == nil {
		t.Error("AddRule against a non-updatable classifier should error")
	}
}
