package server

// Wire protocol v2: length-prefixed binary frames.
//
// The v1 text protocol spends most of its serving cost parsing dotted quads
// and formatting response lines. v2 replaces both directions with fixed
// binary frames, adds table addressing so one connection can query many rule
// sets, and is CRC-guarded like the compiled-artifact format. Both protocols
// are served on the same port: the first byte of a connection selects the
// handler (frameMagic0 is deliberately a non-ASCII byte no v1 request can
// start with), so existing v1 clients keep working unchanged.
//
// Frame layout (all integers little-endian, like the NCAF artifact format):
//
//	offset  size  field
//	0       4     magic     0xF2 'N' 'C' '2'
//	4       1     version   2
//	5       1     op        request/response opcode (Op* constants)
//	6       2     flags     reserved, must be 0
//	8       4     table     table ID (0 = the server's default table)
//	12      4     payloadLen
//	16      n     payload   op-specific (see proto2.go)
//	16+n    4     crc       CRC-32 (IEEE) of bytes [0, 16+n)
//
// A frame is rejected — and the connection closed, since framing can no
// longer be trusted — on bad magic, unknown version, non-zero flags,
// oversized payload or CRC mismatch. Errors inside a well-framed request
// (unknown table, unparsable payload, a failed update) are answered with an
// OpError frame and the connection stays usable, mirroring v1's "error ..."
// lines.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// frameMagic opens every v2 frame. The first byte is non-ASCII so the
// protocol sniffer can tell a v2 connection from any v1 text request.
var frameMagic = [4]byte{0xF2, 'N', 'C', '2'}

// ProtoVersion2 is the frame version this package speaks.
const ProtoVersion2 = 2

// frameHeaderLen is the fixed byte length before the payload; frameCRCLen
// trails the payload.
const (
	frameHeaderLen = 16
	frameCRCLen    = 4
)

// MaxFramePayload bounds a frame's payload. It fits a MaxBatch-packet
// batch request (13 bytes per packet) with room to spare.
const MaxFramePayload = 1 << 20

// Request opcodes.
const (
	// OpPing answers OpPong with an empty payload (liveness/latency probe).
	OpPing uint8 = 1
	// OpClassify carries one 13-byte packet; answered with OpResult.
	OpClassify uint8 = 2
	// OpBatch carries uint32 n + n packed packets; answered with
	// OpBatchResult. Frames may be pipelined: a client can send many OpBatch
	// frames before reading the first response; responses come back in
	// request order.
	OpBatch uint8 = 3
	// OpInsert carries int32 pos + an 80-byte packed rule; answered with
	// OpUpdated.
	OpInsert uint8 = 4
	// OpDelete carries int32 rule ID; answered with OpUpdated.
	OpDelete uint8 = 5
	// OpSave carries an artifact path; answered with OpUpdated (id -1).
	OpSave uint8 = 6
	// OpLoad carries an artifact path; answered with OpUpdated (id -1).
	OpLoad uint8 = 7
	// OpStats has an empty payload; answered with OpStatsResult (the v1
	// stats line as text, so both protocols expose one stats format).
	OpStats uint8 = 8
	// OpListTables has an empty payload; answered with OpTableList.
	OpListTables uint8 = 9
	// OpCreateTable carries uint8 nameLen + name + artifact path. The server
	// creates a new table warm-started from the artifact; answered with
	// OpTableInfo. Multi-table servers only.
	OpCreateTable uint8 = 10
	// OpDropTable drops the table addressed by the frame header (the
	// payload is empty); answered with OpTableInfo. Multi-table servers
	// only; the default table cannot be dropped.
	OpDropTable uint8 = 11
)

// Response opcodes.
const (
	// OpPong answers OpPing.
	OpPong uint8 = 64
	// OpResult answers OpClassify: status uint8 (0 no-match, 1 match) +
	// int32 rule ID + int32 priority.
	OpResult uint8 = 65
	// OpBatchResult answers OpBatch: uint32 n + n packed results (9 bytes
	// each, same shape as OpResult's payload).
	OpBatchResult uint8 = 66
	// OpUpdated answers OpInsert/OpDelete/OpSave/OpLoad: int32 affected rule
	// ID (-1 when not applicable) + uint64 version + uint32 live rule count.
	OpUpdated uint8 = 67
	// OpStatsResult answers OpStats with the stats line as text.
	OpStatsResult uint8 = 68
	// OpTableList answers OpListTables: uint16 n, then per table uint32 ID +
	// uint8 flags (1 = default) + uint8 nameLen + name.
	OpTableList uint8 = 69
	// OpTableInfo answers OpCreateTable/OpDropTable: uint32 table ID +
	// uint32 live rule count.
	OpTableInfo uint8 = 70
	// OpError carries a human-readable error message; the connection stays
	// usable.
	OpError uint8 = 127
)

// Frame is one decoded v2 frame.
type Frame struct {
	// Op is the request or response opcode.
	Op uint8
	// Table addresses the table the op applies to; 0 means the server's
	// default table.
	Table uint32
	// Payload is the op-specific body (may be empty, never retained by the
	// codec).
	Payload []byte
}

// Frame decode errors. errFrameMagic specifically marks a connection whose
// first bytes are not a v2 frame at all.
var (
	errFrameMagic    = errors.New("server: bad frame magic")
	errFrameVersion  = errors.New("server: unsupported frame version")
	errFrameFlags    = errors.New("server: reserved frame flags must be zero")
	errFrameOversize = fmt.Errorf("server: frame payload exceeds %d bytes", MaxFramePayload)
	errFrameCRC      = errors.New("server: frame CRC mismatch")
)

// AppendFrame appends the encoded frame to dst and returns the result.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, ProtoVersion2, f.Op, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, f.Table)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// WriteFrame encodes the frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, frameHeaderLen+len(f.Payload)+frameCRCLen), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame from r. The returned payload is
// freshly allocated, so callers may retain it. io.EOF is returned unwrapped
// when the stream ends cleanly between frames.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := readFrameInto(r, nil)
	return f, err
}

// readFrameInto is ReadFrame with a reusable body buffer: when buf has the
// capacity it is reused (the returned frame's payload aliases it), so a
// long-lived caller — the server's per-connection v2 loop — reads frames
// without a per-frame allocation once the buffer has grown to the
// connection's working size. The possibly-grown buffer is returned for the
// next call; it must not be reused while the frame's payload is live.
func readFrameInto(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Frame{}, buf, io.EOF
		}
		return Frame{}, buf, fmt.Errorf("server: reading frame: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Frame{}, buf, fmt.Errorf("server: reading frame header: %w", err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return Frame{}, buf, errFrameMagic
	}
	if hdr[4] != ProtoVersion2 {
		return Frame{}, buf, errFrameVersion
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, buf, errFrameFlags
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[12:16])
	if payloadLen > MaxFramePayload {
		return Frame{}, buf, errFrameOversize
	}
	need := int(payloadLen) + frameCRCLen
	rest := buf
	if cap(rest) < need {
		rest = make([]byte, need)
		buf = rest
	}
	rest = rest[:need]
	if _, err := io.ReadFull(r, rest); err != nil {
		return Frame{}, buf, fmt.Errorf("server: reading frame body: %w", err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, rest[:payloadLen])
	if got := binary.LittleEndian.Uint32(rest[payloadLen:]); got != crc {
		return Frame{}, buf, errFrameCRC
	}
	return Frame{
		Op:      hdr[5],
		Table:   binary.LittleEndian.Uint32(hdr[8:12]),
		Payload: rest[:payloadLen:payloadLen],
	}, buf, nil
}

// packedPacketLen is the wire size of one packet key: srcIP(4) + dstIP(4) +
// srcPort(2) + dstPort(2) + proto(1).
const packedPacketLen = 13

// packedResultLen is the wire size of one classification result: status(1)
// + ruleID(4) + priority(4).
const packedResultLen = 9

// packedRuleLen is the wire size of one rule: five (lo, hi) uint64 ranges.
const packedRuleLen = 80
