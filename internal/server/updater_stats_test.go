package server

import (
	"bufio"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
)

// rawRequest sends one request line and returns the single response line.
func rawRequest(t *testing.T, addr, line string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

// TestStatsExposesUpdaterState: an engine with the online-update subsystem
// enabled surfaces overlay size, tombstones, generation, compaction and
// journal state through the "stats" request; live add/del through the
// protocol move those fields.
func TestStatsExposesUpdaterState(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 150, 1)
	journal := filepath.Join(t.TempDir(), "srv.journal")
	eng, err := engine.NewEngine("hicuts", set, engine.Options{
		Shards: 1, JournalPath: journal, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	resp := rawRequest(t, addr.String(), "stats")
	for _, field := range []string{"overlay=0", "tombstones=0", "rules=150", "compactions=0", "journal-records=0"} {
		if !strings.Contains(resp, field) {
			t.Fatalf("stats %q missing %q", resp, field)
		}
	}

	c := dialTest(t, addr.String())
	id, _, err := c.AddRule(0, "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteRule(set.Rule(3).ID); err != nil {
		t.Fatal(err)
	}
	resp = rawRequest(t, addr.String(), "stats")
	for _, field := range []string{"overlay=1", "tombstones=1", "rules=150", "journal-records=2"} {
		if !strings.Contains(resp, field) {
			t.Fatalf("stats after updates %q missing %q", resp, field)
		}
	}
	if !strings.Contains(resp, "generation=") {
		t.Fatalf("stats %q missing generation", resp)
	}
	// The added rule must be live through the overlay.
	p, err := ParseRequest("10.1.2.3 4.5.6.7 1234 80 6")
	if err != nil {
		t.Fatal(err)
	}
	gotID, _, ok, err := c.Classify(p)
	if err != nil || !ok || gotID != id {
		t.Fatalf("overlay-inserted rule not served: id=%d ok=%v err=%v want id=%d", gotID, ok, err, id)
	}
}

// TestStatsPlainEngineUnchanged: without the updater the stats line keeps
// its original three-field shape.
func TestStatsPlainEngineUnchanged(t *testing.T) {
	_, _, addr := startEngineServer(t, "linear")
	resp := rawRequest(t, addr, "stats")
	if !strings.HasPrefix(resp, "stats requests=") || strings.Contains(resp, "overlay=") {
		t.Fatalf("plain stats line changed shape: %q", resp)
	}
}
