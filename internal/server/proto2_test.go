package server

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

func dialV2Test(t *testing.T, addr string) *ClientV2 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func buildTestEngine(t *testing.T, family, backend string, size int) (*engine.Engine, *rule.Set) {
	t.Helper()
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, size, 1)
	eng, err := engine.NewEngine(backend, set, engine.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return eng, set
}

// startTablesServer serves two tables — "acl" (default, hicuts) and "fw"
// (tss) — from one multi-table server.
func startTablesServer(t *testing.T) (*engine.Tables, map[string]*rule.Set, string) {
	t.Helper()
	tabs := engine.NewTables()
	sets := map[string]*rule.Set{}
	aclEng, aclSet := buildTestEngine(t, "acl1", "hicuts", 200)
	fwEng, fwSet := buildTestEngine(t, "fw2", "tss", 150)
	sets["acl"], sets["fw"] = aclSet, fwSet
	if _, err := tabs.Create("acl", aclEng); err != nil {
		t.Fatal(err)
	}
	if _, err := tabs.Create("fw", fwEng); err != nil {
		t.Fatal(err)
	}
	srv := NewTables(tabs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		tabs.CloseAll()
	})
	return tabs, sets, addr.String()
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpPing},
		{Op: OpClassify, Table: 7, Payload: appendPacket(nil, rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5})},
		{Op: OpError, Table: 0xFFFFFFFF, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Op: OpStats, Payload: []byte{}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.Table != want.Table || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	good := AppendFrame(nil, Frame{Op: OpClassify, Table: 1, Payload: make([]byte, packedPacketLen)})

	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0x40
		return b
	}
	cases := map[string][]byte{
		"magic":   flip(1),
		"version": flip(4),
		"flags":   flip(6),
		"payload": flip(frameHeaderLen + 2),
		"crc":     flip(len(good) - 1),
	}
	for name, b := range cases {
		if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
	// Oversized payload length is rejected before any allocation.
	huge := append([]byte(nil), good...)
	huge[12], huge[13], huge[14], huge[15] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadFrame(bytes.NewReader(huge)); err != errFrameOversize {
		t.Errorf("oversized payload: err = %v", err)
	}
}

// TestV2ClassifyAndBatch proves the binary protocol returns the same
// matches as direct engine lookups, single and batched.
func TestV2ClassifyAndBatch(t *testing.T) {
	eng, set, addr := startEngineServer(t, "hicuts")
	c := dialV2Test(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	trace := classbench.GenerateTrace(set, 500, 2)
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}

	for _, key := range keys[:50] {
		want, wantOK := eng.Classify(key)
		id, priority, ok, err := c.Classify(key)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK || id != want.ID || priority != want.Priority {
			t.Fatalf("v2 classify %v: got (%d,%d,%v) want (%d,%d,%v)", key, id, priority, ok, want.ID, want.Priority, wantOK)
		}
	}

	results, err := c.ClassifyBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(results), len(keys))
	}
	for i, key := range keys {
		want, wantOK := eng.Classify(key)
		if results[i].OK != wantOK || (wantOK && results[i].Rule.ID != want.ID) {
			t.Fatalf("v2 batch slot %d disagrees with engine", i)
		}
	}
}

// TestV2ClassifyBatchBeyondMaxBatch is the regression test for the
// chunked-batch deadlock: a batch larger than MaxBatch must be split into
// sequential request/response rounds (writing all chunks up front can
// deadlock both ends once socket buffers fill) and still return every
// result in order.
func TestV2ClassifyBatchBeyondMaxBatch(t *testing.T) {
	eng, set, addr := startEngineServer(t, "linear")
	c := dialV2Test(t, addr)

	trace := classbench.GenerateTrace(set, MaxBatch+1500, 4)
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}
	done := make(chan error, 1)
	var results []engine.Result
	go func() {
		var err error
		results, err = c.ClassifyBatch(keys)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("oversized ClassifyBatch deadlocked")
	}
	if len(results) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(results), len(keys))
	}
	for _, i := range []int{0, MaxBatch - 1, MaxBatch, len(keys) - 1} {
		want, wantOK := eng.Classify(keys[i])
		if results[i].OK != wantOK || (wantOK && results[i].Rule.ID != want.ID) {
			t.Fatalf("slot %d disagrees with engine", i)
		}
	}
}

// TestV2MultiTable serves two rule sets concurrently and checks per-table
// addressing, live updates and stats isolation.
func TestV2MultiTable(t *testing.T) {
	tabs, sets, addr := startTablesServer(t)
	c := dialV2Test(t, addr)

	tables, err := c.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("ListTables: %+v", tables)
	}
	aclID, err := c.ResolveTable("acl")
	if err != nil {
		t.Fatal(err)
	}
	fwID, err := c.ResolveTable("fw")
	if err != nil {
		t.Fatal(err)
	}

	// Per-table lookups agree with each table's own linear search.
	for name, id := range map[string]uint32{"acl": aclID, "fw": fwID} {
		set := sets[name]
		c.UseTable(id)
		trace := classbench.GenerateTrace(set, 300, 3)
		keys := make([]rule.Packet, len(trace))
		for i, e := range trace {
			keys[i] = e.Key
		}
		results, err := c.ClassifyBatch(keys)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, key := range keys {
			want, wantOK := set.Match(key)
			if results[i].OK != wantOK || (wantOK && results[i].Rule.Priority != want.Priority) {
				t.Fatalf("table %s slot %d disagrees with its rule set", name, i)
			}
		}
	}

	// An insert in one table must not leak into the other.
	r := rule.NewWildcardRule(-1)
	r.Ranges[rule.DimProto] = rule.Range{Lo: 201, Hi: 201}
	c.UseTable(aclID)
	id, _, err := c.AddRule(0, r)
	if err != nil {
		t.Fatal(err)
	}
	probe := rule.Packet{Proto: 201}
	gotID, _, ok, err := c.Classify(probe)
	if err != nil || !ok || gotID != id {
		t.Fatalf("acl insert not visible: id=%d ok=%v err=%v", gotID, ok, err)
	}
	c.UseTable(fwID)
	if _, _, ok, _ := c.Classify(probe); ok {
		fwTab, _ := tabs.Get("fw")
		if _, really := fwTab.Engine.Classify(probe); !really {
			t.Fatal("insert into acl leaked into fw")
		}
	}
	c.UseTable(aclID)
	if _, err := c.DeleteRule(id); err != nil {
		t.Fatal(err)
	}

	// Unknown table IDs error without killing the connection.
	c.UseTable(9999)
	if _, _, _, err := c.Classify(probe); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("unknown table: err = %v", err)
	}
	c.UseTable(0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestV2TableAdmin exercises create-from-artifact and drop over the wire.
func TestV2TableAdmin(t *testing.T) {
	_, _, addr := startTablesServer(t)
	c := dialV2Test(t, addr)

	// Save the default table as an artifact, then create a new table from it.
	artifact := filepath.Join(t.TempDir(), "acl.ncaf")
	c.UseTable(0)
	if err := c.SaveArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	id, rules, err := c.CreateTable("acl-copy", artifact)
	if err != nil {
		t.Fatal(err)
	}
	if rules != 200 {
		t.Fatalf("created table has %d rules, want 200", rules)
	}
	tables, err := c.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("expected 3 tables after create, got %+v", tables)
	}
	// The new table serves lookups.
	c.UseTable(id)
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Classify(rule.Packet{}); err != nil {
		t.Fatal(err)
	}
	// Duplicate names are rejected.
	if _, _, err := c.CreateTable("acl-copy", artifact); err == nil {
		t.Fatal("duplicate create-table must fail")
	}
	if err := c.DropTable(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveTable("acl-copy"); err == nil {
		t.Fatal("dropped table still listed")
	}
	// Dropping the default table is refused.
	if err := c.DropTable(0); err == nil {
		t.Fatal("dropping the default table must fail")
	}
}

// TestV2CreateTableReplaysJournal pins the crash-recovery contract of
// wire-created tables: when the artifact has a co-located journal holding
// acknowledged updates, OpCreateTable must replay them rather than silently
// serving the stale checkpoint.
func TestV2CreateTableReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "policy.ncaf")

	// A journaled engine: checkpoint the artifact, then acknowledge one
	// more insert into the co-located journal and "crash" (close).
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 120, 1)
	eng, err := engine.NewEngine("hicuts", set, engine.Options{
		Shards: 1, JournalPath: engine.JournalPathFor(artifact), CompactThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	r := rule.NewWildcardRule(-1)
	r.Ranges[rule.DimProto] = rule.Range{Lo: 212, Hi: 212}
	ins, err := eng.Insert(0, r)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()

	_, _, addr := startTablesServer(t)
	c := dialV2Test(t, addr)
	_, rules, err := c.CreateTable("recovered", artifact)
	if err != nil {
		t.Fatal(err)
	}
	if rules != 121 {
		t.Fatalf("recovered table has %d rules; want 121 (the journaled insert must replay)", rules)
	}
	id, err := c.ResolveTable("recovered")
	if err != nil {
		t.Fatal(err)
	}
	c.UseTable(id)
	gotID, _, ok, err := c.Classify(rule.Packet{Proto: 212})
	if err != nil || !ok || gotID != ins.ID {
		t.Fatalf("journaled insert not served: id=%d ok=%v err=%v want id=%d", gotID, ok, err, ins.ID)
	}
}

// TestV1AgainstTablesServer proves the v1 text protocol transparently
// serves the default table of a multi-table server.
func TestV1AgainstTablesServer(t *testing.T) {
	_, sets, addr := startTablesServer(t)
	c := dialTest(t, addr)
	set := sets["acl"]
	for _, e := range classbench.GenerateTrace(set, 200, 5) {
		_, priority, ok, err := c.Classify(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || priority != e.MatchRule {
			t.Fatalf("v1 against tables server: %v got prio=%d ok=%v want %d", e.Key, priority, ok, e.MatchRule)
		}
	}
}

// TestV1AndV2ShareOneServer interleaves both protocols against the same
// server instance (different connections, one port).
func TestV1AndV2ShareOneServer(t *testing.T) {
	eng, set, addr := startEngineServer(t, "tss")
	v1 := dialTest(t, addr)
	v2 := dialV2Test(t, addr)
	for _, e := range classbench.GenerateTrace(set, 100, 9) {
		want, wantOK := eng.Classify(e.Key)
		_, p1, ok1, err := v1.Classify(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		_, p2, ok2, err := v2.Classify(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if ok1 != wantOK || ok2 != wantOK || (wantOK && (p1 != want.Priority || p2 != want.Priority)) {
			t.Fatalf("protocol divergence on %v: v1=(%d,%v) v2=(%d,%v) want (%d,%v)",
				e.Key, p1, ok1, p2, ok2, want.Priority, wantOK)
		}
	}
}

// TestV2GarbageFrameClosesConnection sends a corrupted frame and expects an
// error response followed by connection teardown (framing cannot be
// resynchronised after corruption).
func TestV2GarbageFrameClosesConnection(t *testing.T) {
	_, _, addr := startEngineServer(t, "tss")
	c := dialV2Test(t, addr)
	// Valid magic byte so the connection sniffs as v2, then garbage.
	bad := AppendFrame(nil, Frame{Op: OpPing})
	bad[len(bad)-1] ^= 0xFF // corrupt CRC
	if _, err := c.conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	// The server answers with an OpError frame (when framing allowed it to)
	// and then tears the connection down — the next read must hit EOF.
	f, err := ReadFrame(c.r)
	if err == nil {
		if f.Op != OpError {
			t.Fatalf("expected OpError after corrupt frame, got op %d", f.Op)
		}
		if _, err := ReadFrame(c.r); err == nil {
			t.Fatal("connection must close after a framing error")
		}
	}
}
