package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
)

// startTestServer builds a HiCuts tree over a small classifier and serves it
// on a loopback port.
func startTestServer(t *testing.T) (*Server, *rule.Set, string) {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 1)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(tr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, set, addr.String()
}

func TestParseRequest(t *testing.T) {
	p, err := ParseRequest("10.0.0.1 192.168.1.1 1234 80 6")
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcIP != 0x0A000001 || p.DstIP != 0xC0A80101 || p.SrcPort != 1234 || p.DstPort != 80 || p.Proto != 6 {
		t.Errorf("parsed %+v", p)
	}
	// Decimal IPs are accepted too.
	p, err = ParseRequest("167772161 3232235777 53 53 17")
	if err != nil || p.SrcIP != 167772161 {
		t.Errorf("decimal parse: %+v %v", p, err)
	}
	bad := []string{
		"1 2 3 4",                 // too few fields
		"x 2 3 4 5",               // bad src
		"1 y 3 4 5",               // bad dst
		"1 2 99999999 4 5",        // port overflow
		"1 2 3 99999999 5",        // port overflow
		"1 2 3 4 999",             // proto overflow
		"300.0.0.1 1.2.3.4 1 2 3", // bad dotted quad
	}
	for _, line := range bad {
		if _, err := ParseRequest(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestServerClassifiesOverTCP(t *testing.T) {
	_, set, addr := startTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	trace := classbench.GenerateTrace(set, 200, 2)
	for _, e := range trace {
		id, priority, ok, err := client.Classify(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || priority != e.MatchRule {
			t.Fatalf("packet %v: got id=%d prio=%d ok=%v, want priority %d", e.Key, id, priority, ok, e.MatchRule)
		}
	}
}

func TestServerTextProtocol(t *testing.T) {
	srv, set, addr := startTestServer(t)
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(line string) string {
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	// A well-formed request using dotted quads.
	e := classbench.GenerateTrace(set, 1, 3)[0]
	resp := send(fmt.Sprintf("%s %s %d %d %d",
		rule.FormatIPv4(e.Key.SrcIP), rule.FormatIPv4(e.Key.DstIP), e.Key.SrcPort, e.Key.DstPort, e.Key.Proto))
	if !strings.HasPrefix(resp, "match ") {
		t.Errorf("response %q", resp)
	}
	// Malformed request.
	if resp := send("garbage"); !strings.HasPrefix(resp, "error ") {
		t.Errorf("response %q", resp)
	}
	// Stats request.
	if resp := send("stats"); !strings.HasPrefix(resp, "stats requests=") {
		t.Errorf("response %q", resp)
	}
	// Quit closes the connection.
	if _, err := fmt.Fprintln(conn, "quit"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Error("connection should be closed after quit")
	}

	st := srv.Stats()
	if st.Requests < 2 || st.ParseFails < 1 || st.Matches < 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestServerNoMatch(t *testing.T) {
	// A classifier without a default rule produces no-match responses.
	r0 := rule.NewWildcardRule(0)
	r0.Ranges[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
	set := rule.NewSet([]rule.Rule{r0})
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(tr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	client, err := Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, _, ok, err := client.Classify(rule.Packet{Proto: 17})
	if err != nil || ok {
		t.Errorf("expected no-match, got ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := client.Classify(rule.Packet{Proto: 6}); err != nil || !ok {
		t.Errorf("expected match, got ok=%v err=%v", ok, err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, set, addr := startTestServer(t)
	trace := classbench.GenerateTrace(set, 100, 5)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			client, err := Dial(ctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				e := trace[(offset*50+i)%len(trace)]
				_, priority, ok, err := client.Classify(e.Key)
				if err != nil {
					errs <- err
					return
				}
				if !ok || priority != e.MatchRule {
					errs <- fmt.Errorf("wrong result for %v", e.Key)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseAndDialErrors(t *testing.T) {
	srv, _, addr := startTestServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Listening again on a closed server fails.
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("listening on a closed server should fail")
	}
	// Dialing the now-closed address eventually fails.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if client, err := Dial(ctx, addr); err == nil {
		// Some platforms accept then reset; a classify call must then fail.
		if _, _, _, err := client.Classify(rule.Packet{}); err == nil {
			t.Error("expected failure against closed server")
		}
		client.Close()
	}
	// Dialing a bogus address fails.
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Skip("port 1 unexpectedly open")
	}
}
