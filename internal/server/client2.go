package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// ClientV2 speaks wire protocol v2 (framed binary, see frame.go) to a
// classification server. Every method operates on the client's current
// table (UseTable; the default table, ID 0, initially), so one connection
// can work many tables. ClientV2 is not safe for concurrent use; open one
// per goroutine, or pipeline explicitly.
type ClientV2 struct {
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	table uint32
}

// TableInfo describes one table of a multi-table server.
type TableInfo struct {
	ID      uint32
	Name    string
	Default bool
}

// DialV2 connects to a classification server speaking protocol v2.
func DialV2(ctx context.Context, addr string) (*ClientV2, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &ClientV2{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriterSize(conn, 64<<10)}, nil
}

// Close closes the connection.
func (c *ClientV2) Close() error { return c.conn.Close() }

// UseTable selects the table subsequent operations address (0 = the
// server's default table). Use ResolveTable to map a name to an ID.
func (c *ClientV2) UseTable(id uint32) { c.table = id }

// Table returns the currently selected table ID.
func (c *ClientV2) Table() uint32 { return c.table }

// roundTrip sends one frame and reads one response, surfacing OpError
// responses as errors.
func (c *ClientV2) roundTrip(f Frame) (Frame, error) {
	if err := WriteFrame(c.w, f); err != nil {
		return Frame{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Frame{}, err
	}
	return c.readResponse()
}

func (c *ClientV2) readResponse() (Frame, error) {
	resp, err := ReadFrame(c.r)
	if err != nil {
		return Frame{}, err
	}
	if resp.Op == OpError {
		return Frame{}, fmt.Errorf("server: %s", resp.Payload)
	}
	return resp, nil
}

// Ping round-trips an empty frame (liveness and latency probe).
func (c *ClientV2) Ping() error {
	resp, err := c.roundTrip(Frame{Op: OpPing, Table: c.table})
	if err != nil {
		return err
	}
	if resp.Op != OpPong {
		return fmt.Errorf("server: unexpected response op %d to ping", resp.Op)
	}
	return nil
}

// ResolveTable returns the ID of the named table.
func (c *ClientV2) ResolveTable(name string) (uint32, error) {
	tables, err := c.ListTables()
	if err != nil {
		return 0, err
	}
	for _, t := range tables {
		if t.Name == name {
			return t.ID, nil
		}
	}
	return 0, fmt.Errorf("server: no table named %q", name)
}

// ListTables returns the server's tables. Single-table servers report one
// default table on ID 0.
func (c *ClientV2) ListTables() ([]TableInfo, error) {
	resp, err := c.roundTrip(Frame{Op: OpListTables, Table: c.table})
	if err != nil {
		return nil, err
	}
	if resp.Op != OpTableList || len(resp.Payload) < 2 {
		return nil, errors.New("server: malformed table list")
	}
	n := int(binary.LittleEndian.Uint16(resp.Payload[:2]))
	b := resp.Payload[2:]
	out := make([]TableInfo, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 6 {
			return nil, errors.New("server: truncated table list")
		}
		info := TableInfo{ID: binary.LittleEndian.Uint32(b[:4]), Default: b[4]&1 != 0}
		nameLen := int(b[5])
		b = b[6:]
		if len(b) < nameLen {
			return nil, errors.New("server: truncated table name")
		}
		info.Name = string(b[:nameLen])
		b = b[nameLen:]
		out = append(out, info)
	}
	return out, nil
}

// Classify looks one packet up in the current table. It returns the rule ID
// and priority, or ok=false when no rule matches.
func (c *ClientV2) Classify(p rule.Packet) (id, priority int, ok bool, err error) {
	resp, err := c.roundTrip(Frame{Op: OpClassify, Table: c.table,
		Payload: appendPacket(make([]byte, 0, packedPacketLen), p)})
	if err != nil {
		return 0, 0, false, err
	}
	if resp.Op != OpResult || len(resp.Payload) != packedResultLen {
		return 0, 0, false, errors.New("server: malformed classify response")
	}
	res := decodeResult(resp.Payload)
	return res.Rule.ID, res.Rule.Priority, res.OK, nil
}

// ClassifyBatch classifies all packets against the current table and
// returns one Result per packet, in order. Batches beyond MaxBatch are
// split into sequential request/response rounds: each multi-hundred-KB
// frame is fully answered before the next is written, because the server
// answers frames serially — writing them all up front could deadlock both
// ends once the kernel socket buffers fill with unread responses. Callers
// that want deeper pipelining can issue frames themselves with WriteFrame,
// sized so the in-flight volume stays within the transport's buffering.
func (c *ClientV2) ClassifyBatch(ps []rule.Packet) ([]engine.Result, error) {
	if len(ps) == 0 {
		return nil, nil
	}
	out := make([]engine.Result, 0, len(ps))
	var payload []byte
	for lo := 0; lo < len(ps); lo += MaxBatch {
		hi := lo + MaxBatch
		if hi > len(ps) {
			hi = len(ps)
		}
		payload = binary.LittleEndian.AppendUint32(payload[:0], uint32(hi-lo))
		for _, p := range ps[lo:hi] {
			payload = appendPacket(payload, p)
		}
		if err := WriteFrame(c.w, Frame{Op: OpBatch, Table: c.table, Payload: payload}); err != nil {
			return nil, err
		}
		if err := c.w.Flush(); err != nil {
			return nil, err
		}
		resp, err := c.readResponse()
		if err != nil {
			return nil, err
		}
		if resp.Op != OpBatchResult || len(resp.Payload) < 4 {
			return nil, errors.New("server: malformed batch response")
		}
		n := int(binary.LittleEndian.Uint32(resp.Payload[:4]))
		if len(resp.Payload) != 4+n*packedResultLen {
			return nil, errors.New("server: truncated batch response")
		}
		for j := 0; j < n; j++ {
			out = append(out, decodeResult(resp.Payload[4+j*packedResultLen:]))
		}
	}
	if len(out) != len(ps) {
		return nil, fmt.Errorf("server: batch returned %d results for %d packets", len(out), len(ps))
	}
	return out, nil
}

// decodeUpdated unpacks an OpUpdated payload.
func decodeUpdated(f Frame) (id int, version uint64, rules int, err error) {
	if f.Op != OpUpdated || len(f.Payload) != 16 {
		return 0, 0, 0, errors.New("server: malformed update response")
	}
	id = int(int32(binary.LittleEndian.Uint32(f.Payload[:4])))
	version = binary.LittleEndian.Uint64(f.Payload[4:12])
	rules = int(binary.LittleEndian.Uint32(f.Payload[12:16]))
	return id, version, rules, nil
}

// AddRule inserts a rule at priority position pos in the current table and
// returns the assigned rule ID and new snapshot version. Only the rule's
// ranges travel; identity is assigned by the server.
func (c *ClientV2) AddRule(pos int, r rule.Rule) (id int, version uint64, err error) {
	payload := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+packedRuleLen), uint32(int32(pos)))
	payload = appendRule(payload, r)
	resp, err := c.roundTrip(Frame{Op: OpInsert, Table: c.table, Payload: payload})
	if err != nil {
		return 0, 0, err
	}
	id, version, _, err = decodeUpdated(resp)
	return id, version, err
}

// DeleteRule removes the rule with the given ID from the current table.
func (c *ClientV2) DeleteRule(id int) (version uint64, err error) {
	payload := binary.LittleEndian.AppendUint32(make([]byte, 0, 4), uint32(int32(id)))
	resp, err := c.roundTrip(Frame{Op: OpDelete, Table: c.table, Payload: payload})
	if err != nil {
		return 0, err
	}
	_, version, _, err = decodeUpdated(resp)
	return version, err
}

// SaveArtifact asks the server to persist the current table's classifier as
// a compiled artifact at path (on the server's filesystem).
func (c *ClientV2) SaveArtifact(path string) error {
	resp, err := c.roundTrip(Frame{Op: OpSave, Table: c.table, Payload: []byte(path)})
	if err != nil {
		return err
	}
	_, _, _, err = decodeUpdated(resp)
	return err
}

// LoadArtifact asks the server to hot-swap the compiled artifact at path in
// as the current table's classifier.
func (c *ClientV2) LoadArtifact(path string) (version uint64, rules int, err error) {
	resp, err := c.roundTrip(Frame{Op: OpLoad, Table: c.table, Payload: []byte(path)})
	if err != nil {
		return 0, 0, err
	}
	_, version, rules, err = decodeUpdated(resp)
	return version, rules, err
}

// Stats returns the server's one-line stats summary for the current table
// (the same line the v1 "stats" request produces).
func (c *ClientV2) Stats() (string, error) {
	resp, err := c.roundTrip(Frame{Op: OpStats, Table: c.table})
	if err != nil {
		return "", err
	}
	if resp.Op != OpStatsResult {
		return "", errors.New("server: malformed stats response")
	}
	return string(resp.Payload), nil
}

// CreateTable asks a multi-table server to create a new table warm-started
// from the compiled artifact at path (on the server's filesystem). It
// returns the new table's wire ID and rule count.
func (c *ClientV2) CreateTable(name, artifactPath string) (id uint32, rules int, err error) {
	if len(name) > 255 {
		return 0, 0, errors.New("server: table name too long")
	}
	payload := append([]byte{byte(len(name))}, name...)
	payload = append(payload, artifactPath...)
	resp, err := c.roundTrip(Frame{Op: OpCreateTable, Table: c.table, Payload: payload})
	if err != nil {
		return 0, 0, err
	}
	if resp.Op != OpTableInfo || len(resp.Payload) != 8 {
		return 0, 0, errors.New("server: malformed create-table response")
	}
	return binary.LittleEndian.Uint32(resp.Payload[:4]),
		int(binary.LittleEndian.Uint32(resp.Payload[4:8])), nil
}

// DropTable asks a multi-table server to drop the table with the given ID.
func (c *ClientV2) DropTable(id uint32) error {
	resp, err := c.roundTrip(Frame{Op: OpDropTable, Table: id})
	if err != nil {
		return err
	}
	if resp.Op != OpTableInfo {
		return errors.New("server: malformed drop-table response")
	}
	return nil
}
