// This differential test lives in the external test package: it drives the
// server through pkg/classifier, whose admin plane imports internal/server,
// so an in-package test would be an import cycle.
package server_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
	"neurocuts/pkg/classifier"
)

// TestProtocolDifferential is the cross-protocol ground-truth check: the
// same 12k-packet trace per table must produce identical matches through
//
//  1. the v1 text protocol,
//  2. the v2 binary protocol, and
//  3. an in-process pkg/classifier opened over the same rules and backend,
//
// for two tables served concurrently by one multi-table server. Every
// backend is exact (it agrees with linear search), so any divergence is a
// protocol bug: encoding, framing, table routing or response ordering.
func TestProtocolDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("12k-packet differential per table is not short")
	}
	const tracePackets = 12000

	type tableSpec struct {
		name    string
		family  string
		backend string
		size    int
	}
	specs := []tableSpec{
		{name: "acl", family: "acl1", backend: "hicuts", size: 400},
		{name: "fw", family: "fw2", backend: "tss", size: 300},
	}

	// One multi-table server carries all tables for v2; each table also
	// gets a dedicated single-table v1 server over the same engine, since
	// v1 has no table addressing.
	tabs := engine.NewTables()
	defer tabs.CloseAll()
	sets := map[string]*rule.Set{}
	v1Addrs := map[string]string{}
	for _, spec := range specs {
		fam, err := classbench.FamilyByName(spec.family)
		if err != nil {
			t.Fatal(err)
		}
		set := classbench.Generate(fam, spec.size, 1)
		sets[spec.name] = set
		eng, err := engine.NewEngine(spec.backend, set, engine.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tabs.Create(spec.name, eng); err != nil {
			t.Fatal(err)
		}
		v1 := server.New(eng)
		addr, err := v1.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { v1.Close() })
		v1Addrs[spec.name] = addr.String()
	}
	multi := server.NewTables(tabs)
	multiAddr, err := multi.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { multi.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec tableSpec) {
			defer wg.Done()
			set := sets[spec.name]
			trace := classbench.GenerateTrace(set, tracePackets, 42)
			keys := make([]rule.Packet, len(trace))
			for i, e := range trace {
				keys[i] = e.Key
			}

			// In-process SDK classifier over the same rules and backend.
			sdk, err := classifier.Open(set.Clone(), classifier.WithBackend(spec.backend), classifier.WithShards(2))
			if err != nil {
				t.Errorf("%s: sdk open: %v", spec.name, err)
				return
			}
			defer sdk.Close()
			sdkResults, err := sdk.ClassifyBatch(ctx, keys)
			if err != nil {
				t.Errorf("%s: sdk batch: %v", spec.name, err)
				return
			}

			// v1 text protocol against this table's dedicated server.
			v1c, err := server.Dial(ctx, v1Addrs[spec.name])
			if err != nil {
				t.Errorf("%s: v1 dial: %v", spec.name, err)
				return
			}
			defer v1c.Close()
			v1Results, err := v1c.ClassifyBatch(keys)
			if err != nil {
				t.Errorf("%s: v1 batch: %v", spec.name, err)
				return
			}

			// v2 binary protocol against the shared multi-table server,
			// addressed by table.
			v2c, err := server.DialV2(ctx, multiAddr.String())
			if err != nil {
				t.Errorf("%s: v2 dial: %v", spec.name, err)
				return
			}
			defer v2c.Close()
			id, err := v2c.ResolveTable(spec.name)
			if err != nil {
				t.Errorf("%s: resolve: %v", spec.name, err)
				return
			}
			v2c.UseTable(id)
			v2Results, err := v2c.ClassifyBatch(keys)
			if err != nil {
				t.Errorf("%s: v2 batch: %v", spec.name, err)
				return
			}

			if len(v1Results) != len(keys) || len(v2Results) != len(keys) || len(sdkResults) != len(keys) {
				t.Errorf("%s: result count mismatch: v1=%d v2=%d sdk=%d want %d",
					spec.name, len(v1Results), len(v2Results), len(sdkResults), len(keys))
				return
			}
			mismatches := 0
			for i := range keys {
				want, wantOK := set.Match(keys[i])
				for path, got := range map[string]engine.Result{
					"v1": v1Results[i], "v2": v2Results[i], "sdk": sdkResults[i],
				} {
					if got.OK != wantOK || (wantOK && got.Rule.Priority != want.Priority) {
						mismatches++
						if mismatches <= 5 {
							t.Errorf("%s/%s packet %d (%v): got (prio=%d ok=%v) want (prio=%d ok=%v)",
								spec.name, path, i, keys[i], got.Rule.Priority, got.OK, want.Priority, wantOK)
						}
					}
				}
			}
			if mismatches > 0 {
				t.Errorf("%s: %d total mismatches across protocols", spec.name, mismatches)
			}
		}(spec)
	}
	wg.Wait()
}
