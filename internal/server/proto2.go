package server

// Server side of wire protocol v2 (see frame.go for the frame layout).
// Every v1 capability is reachable — classification, pipelined batches,
// live updates, artifact save/load, stats — plus the v2-only table
// addressing: each frame names the table it operates on, so one connection
// can query and administer many rule sets concurrently.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// appendPacket packs one packet key (13 bytes, little-endian).
func appendPacket(dst []byte, p rule.Packet) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, p.SrcIP)
	dst = binary.LittleEndian.AppendUint32(dst, p.DstIP)
	dst = binary.LittleEndian.AppendUint16(dst, p.SrcPort)
	dst = binary.LittleEndian.AppendUint16(dst, p.DstPort)
	return append(dst, p.Proto)
}

// decodePacket unpacks one packet key; b must hold packedPacketLen bytes.
func decodePacket(b []byte) rule.Packet {
	return rule.Packet{
		SrcIP:   binary.LittleEndian.Uint32(b[0:4]),
		DstIP:   binary.LittleEndian.Uint32(b[4:8]),
		SrcPort: binary.LittleEndian.Uint16(b[8:10]),
		DstPort: binary.LittleEndian.Uint16(b[10:12]),
		Proto:   b[12],
	}
}

// appendRule packs a rule's five ranges (80 bytes). Priority and ID travel
// separately where needed: an inserted rule's identity is assigned by the
// server.
func appendRule(dst []byte, r rule.Rule) []byte {
	for _, d := range rule.Dimensions() {
		dst = binary.LittleEndian.AppendUint64(dst, r.Ranges[d].Lo)
		dst = binary.LittleEndian.AppendUint64(dst, r.Ranges[d].Hi)
	}
	return dst
}

// decodeRule unpacks a rule packed by appendRule; b must hold packedRuleLen
// bytes. The decoded rule is validated (rule.Rule.Validate) so a malicious
// frame cannot smuggle an ill-formed rule into a backend.
func decodeRule(b []byte) (rule.Rule, error) {
	var r rule.Rule
	for _, d := range rule.Dimensions() {
		r.Ranges[d] = rule.Range{
			Lo: binary.LittleEndian.Uint64(b[0:8]),
			Hi: binary.LittleEndian.Uint64(b[8:16]),
		}
		b = b[16:]
	}
	if err := r.Validate(); err != nil {
		return rule.Rule{}, err
	}
	return r, nil
}

// appendResult packs one classification result (9 bytes).
func appendResult(dst []byte, res engine.Result) []byte {
	status := byte(0)
	if res.OK {
		status = 1
	}
	dst = append(dst, status)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(res.Rule.ID)))
	return binary.LittleEndian.AppendUint32(dst, uint32(int32(res.Rule.Priority)))
}

// decodeResult unpacks one classification result; b must hold
// packedResultLen bytes.
func decodeResult(b []byte) engine.Result {
	return engine.Result{
		OK: b[0] != 0,
		Rule: rule.Rule{
			ID:       int(int32(binary.LittleEndian.Uint32(b[1:5]))),
			Priority: int(int32(binary.LittleEndian.Uint32(b[5:9]))),
		},
	}
}

// v2Buffers are one connection's scratch buffers, reused frame to frame so
// the v2 hot path (pipelined batches) performs no per-frame heap
// allocations once they have grown to the connection's working size. They
// are owned by the single handler goroutine; a frame's request payload and
// its response never overlap in time (the response is fully encoded before
// the next frame is read).
type v2Buffers struct {
	// body backs the request frame's payload (+ CRC tail).
	body []byte
	// resp backs the batch response payload (the hot response).
	resp []byte
	// enc backs the encoded response frame written to the socket.
	enc []byte
}

// handleV2 serves one v2 connection: a sequence of frames, answered in
// order. Clients may pipeline (send many frames before reading responses);
// the write buffer is only flushed when no further request bytes are
// already buffered, so pipelined batches do not pay one syscall per frame.
func (s *Server) handleV2(conn *servedConn, br *bufio.Reader, w *bufio.Writer) {
	var bufs v2Buffers
	for {
		// Wait between requests with no deadline (drain arms its own); the
		// body deadline only covers reading the rest of a started frame.
		if _, err := br.Peek(1); err != nil {
			return
		}
		conn.beginRequest(s.batchReadTimeout())
		f, body, err := readFrameInto(br, bufs.body)
		bufs.body = body
		if err != nil {
			// A framing error poisons the stream — close rather than guess
			// at the next frame boundary. Say why when the framing itself
			// was intact enough to answer.
			if err != io.EOF {
				_ = WriteFrame(w, errorFrame(0, err.Error()))
				w.Flush()
			}
			conn.endRequest()
			return
		}
		var resp Frame
		if s.Telemetry != nil {
			t0 := time.Now()
			resp = s.respondFrame(f, &bufs)
			ns := time.Since(t0).Nanoseconds()
			s.Telemetry.ServerV2.RecordNanos(uint64(ns), ns)
		} else {
			resp = s.respondFrame(f, &bufs)
		}
		bufs.enc = AppendFrame(bufs.enc[:0], resp)
		if _, err := w.Write(bufs.enc); err != nil {
			conn.endRequest()
			return
		}
		if br.Buffered() == 0 {
			if w.Flush() != nil {
				conn.endRequest()
				return
			}
		}
		if conn.endRequest() {
			w.Flush()
			return
		}
	}
}

// errorFrame builds an OpError response.
func errorFrame(table uint32, msg string) Frame {
	return Frame{Op: OpError, Table: table, Payload: []byte(msg)}
}

// respondFrame answers one request frame. All errors inside a well-formed
// frame come back as OpError frames; the connection stays usable. The
// batch path builds its response into bufs.resp; every other response is
// small and freshly allocated.
func (s *Server) respondFrame(f Frame, bufs *v2Buffers) Frame {
	switch f.Op {
	case OpPing:
		return Frame{Op: OpPong, Table: f.Table}
	case OpClassify:
		return s.frameClassify(f)
	case OpBatch:
		return s.frameBatch(f, bufs)
	case OpInsert:
		return s.frameInsert(f)
	case OpDelete:
		return s.frameDelete(f)
	case OpSave:
		return s.frameSave(f)
	case OpLoad:
		return s.frameLoad(f)
	case OpStats:
		s.requests.Add(1)
		cls, err := s.tableClassifier(f.Table)
		if err != nil {
			return errorFrame(f.Table, err.Error())
		}
		return Frame{Op: OpStatsResult, Table: f.Table, Payload: []byte(s.statsLine(cls))}
	case OpListTables:
		s.requests.Add(1)
		s.tableOps.Add(1)
		return s.frameListTables(f)
	case OpCreateTable:
		s.requests.Add(1)
		s.tableOps.Add(1)
		return s.frameCreateTable(f)
	case OpDropTable:
		s.requests.Add(1)
		s.tableOps.Add(1)
		return s.frameDropTable(f)
	default:
		return errorFrame(f.Table, fmt.Sprintf("unknown op %d", f.Op))
	}
}

func (s *Server) frameClassify(f Frame) Frame {
	s.requests.Add(1)
	cls, err := s.tableClassifier(f.Table)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	if len(f.Payload) != packedPacketLen {
		s.parseFails.Add(1)
		return errorFrame(f.Table, fmt.Sprintf("classify payload must be %d bytes, got %d", packedPacketLen, len(f.Payload)))
	}
	r, ok := cls.Classify(decodePacket(f.Payload))
	if ok {
		s.matches.Add(1)
	}
	return Frame{Op: OpResult, Table: f.Table,
		Payload: appendResult(make([]byte, 0, packedResultLen), engine.Result{Rule: r, OK: ok})}
}

func (s *Server) frameBatch(f Frame, bufs *v2Buffers) Frame {
	cls, err := s.tableClassifier(f.Table)
	if err != nil {
		s.requests.Add(1)
		return errorFrame(f.Table, err.Error())
	}
	if len(f.Payload) < 4 {
		s.requests.Add(1)
		s.parseFails.Add(1)
		return errorFrame(f.Table, "batch payload too short")
	}
	n := int(binary.LittleEndian.Uint32(f.Payload[:4]))
	if n <= 0 || n > MaxBatch {
		s.requests.Add(1)
		return errorFrame(f.Table, fmt.Sprintf("batch size must be in [1, %d]", MaxBatch))
	}
	if want := 4 + n*packedPacketLen; len(f.Payload) != want {
		s.requests.Add(1)
		s.parseFails.Add(1)
		return errorFrame(f.Table, fmt.Sprintf("batch payload must be %d bytes for %d packets, got %d", want, n, len(f.Payload)))
	}
	s.requests.Add(int64(n))
	s.batches.Add(1)
	packets := engine.GetPacketBuf(n)
	defer engine.PutPacketBuf(packets)
	body := f.Payload[4:]
	for i := 0; i < n; i++ {
		packets[i] = decodePacket(body[i*packedPacketLen:])
	}
	out := engine.GetResultBuf(n)
	defer engine.PutResultBuf(out)
	if bc, ok := cls.(BatchClassifier); ok {
		bc.ClassifyBatch(packets, out)
	} else {
		for i, p := range packets {
			out[i].Rule, out[i].OK = cls.Classify(p)
		}
	}
	payload := binary.LittleEndian.AppendUint32(bufs.resp[:0], uint32(n))
	for i := 0; i < n; i++ {
		if out[i].OK {
			s.matches.Add(1)
		}
		payload = appendResult(payload, out[i])
	}
	bufs.resp = payload
	return Frame{Op: OpBatchResult, Table: f.Table, Payload: payload}
}

// updatedFrame packs an OpUpdated response.
func updatedFrame(table uint32, id int, res engine.UpdateResult) Frame {
	payload := make([]byte, 0, 16)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(int32(id)))
	payload = binary.LittleEndian.AppendUint64(payload, res.Version)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(res.Rules))
	return Frame{Op: OpUpdated, Table: table, Payload: payload}
}

func (s *Server) frameInsert(f Frame) Frame {
	s.requests.Add(1)
	s.updates.Add(1)
	cls, err := s.tableClassifier(f.Table)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	up, ok := cls.(Updater)
	if !ok {
		return errorFrame(f.Table, "classifier does not support live updates")
	}
	if len(f.Payload) != 4+packedRuleLen {
		s.parseFails.Add(1)
		return errorFrame(f.Table, fmt.Sprintf("insert payload must be %d bytes, got %d", 4+packedRuleLen, len(f.Payload)))
	}
	pos := int(int32(binary.LittleEndian.Uint32(f.Payload[:4])))
	r, err := decodeRule(f.Payload[4:])
	if err != nil {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "rule: "+err.Error())
	}
	res, err := up.Insert(pos, r)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	return updatedFrame(f.Table, res.ID, res)
}

func (s *Server) frameDelete(f Frame) Frame {
	s.requests.Add(1)
	s.updates.Add(1)
	cls, err := s.tableClassifier(f.Table)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	up, ok := cls.(Updater)
	if !ok {
		return errorFrame(f.Table, "classifier does not support live updates")
	}
	if len(f.Payload) != 4 {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "delete payload must be 4 bytes")
	}
	id := int(int32(binary.LittleEndian.Uint32(f.Payload)))
	res, err := up.Delete(id)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	return updatedFrame(f.Table, id, res)
}

func (s *Server) frameSave(f Frame) Frame {
	s.requests.Add(1)
	s.artifactOps.Add(1)
	cls, err := s.tableClassifier(f.Table)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	st, ok := cls.(ArtifactStore)
	if !ok {
		return errorFrame(f.Table, "classifier does not support artifacts")
	}
	path := string(f.Payload)
	if path == "" {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "save needs a path payload")
	}
	if err := st.SaveArtifact(path); err != nil {
		return errorFrame(f.Table, err.Error())
	}
	return updatedFrame(f.Table, -1, engine.UpdateResult{})
}

func (s *Server) frameLoad(f Frame) Frame {
	s.requests.Add(1)
	s.artifactOps.Add(1)
	cls, err := s.tableClassifier(f.Table)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	st, ok := cls.(ArtifactStore)
	if !ok {
		return errorFrame(f.Table, "classifier does not support artifacts")
	}
	path := string(f.Payload)
	if path == "" {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "load needs a path payload")
	}
	res, err := st.LoadArtifact(path)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	return updatedFrame(f.Table, -1, res)
}

func (s *Server) frameListTables(f Frame) Frame {
	type entry struct {
		id   uint32
		name string
		def  bool
	}
	var entries []entry
	if s.tables != nil {
		def, _ := s.tables.Default()
		for _, tab := range s.tables.List() {
			entries = append(entries, entry{id: tab.ID, name: tab.Name, def: def != nil && def.ID == tab.ID})
		}
	} else {
		// A single-table server presents its classifier as one default
		// table on ID 0, so v2 clients need no special case.
		entries = []entry{{id: 0, name: "default", def: true}}
	}
	payload := binary.LittleEndian.AppendUint16(nil, uint16(len(entries)))
	for _, e := range entries {
		payload = binary.LittleEndian.AppendUint32(payload, e.id)
		flags := byte(0)
		if e.def {
			flags = 1
		}
		payload = append(payload, flags, byte(len(e.name)))
		payload = append(payload, e.name...)
	}
	return Frame{Op: OpTableList, Table: f.Table, Payload: payload}
}

func (s *Server) frameCreateTable(f Frame) Frame {
	if s.tables == nil {
		return errorFrame(f.Table, "not a multi-table server")
	}
	if len(f.Payload) < 1 {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "create-table payload too short")
	}
	nameLen := int(f.Payload[0])
	if len(f.Payload) < 1+nameLen {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "create-table payload shorter than its name length")
	}
	name := string(f.Payload[1 : 1+nameLen])
	artifact := string(f.Payload[1+nameLen:])
	if name == "" || artifact == "" {
		s.parseFails.Add(1)
		return errorFrame(f.Table, "create-table needs a name and an artifact path")
	}
	opts := s.TableCreateOptions
	// A co-located journal is the artifact's crash-recovery companion: a
	// table recreated from an artifact whose journal still holds acknowledged
	// updates must replay them, not silently serve the stale checkpoint.
	if jp := engine.JournalPathFor(artifact); opts.JournalPath == "" {
		if _, err := os.Stat(jp); err == nil {
			opts.JournalPath = jp
		}
	}
	eng, err := engine.NewEngineFromArtifact(artifact, opts)
	if err != nil {
		return errorFrame(f.Table, err.Error())
	}
	tab, err := s.tables.Create(name, eng)
	if err != nil {
		eng.Close()
		return errorFrame(f.Table, err.Error())
	}
	payload := binary.LittleEndian.AppendUint32(nil, tab.ID)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(tab.Engine.Rules().Len()))
	return Frame{Op: OpTableInfo, Table: tab.ID, Payload: payload}
}

func (s *Server) frameDropTable(f Frame) Frame {
	if s.tables == nil {
		return errorFrame(f.Table, "not a multi-table server")
	}
	tab, ok := s.tables.GetByID(f.Table)
	if !ok {
		return errorFrame(f.Table, fmt.Sprintf("unknown table %d", f.Table))
	}
	if err := s.tables.Drop(tab.Name); err != nil {
		return errorFrame(f.Table, err.Error())
	}
	payload := binary.LittleEndian.AppendUint32(nil, tab.ID)
	payload = binary.LittleEndian.AppendUint32(payload, 0)
	return Frame{Op: OpTableInfo, Table: tab.ID, Payload: payload}
}
