// Package server exposes packet classifiers over TCP so that the decision
// trees built by this repository can be queried by external tools (or by the
// bundled cmd/classifyd client). Two wire protocols are spoken on one port,
// selected per connection by its first byte: the framed binary protocol v2
// (table-addressed, pipelined, CRC-guarded — see frame.go and proto2.go)
// and the original v1 text line protocol described here:
//
//	request:  "<srcIP> <dstIP> <srcPort> <dstPort> <proto>\n"
//	          where the IPs are dotted quads or decimal integers
//	response: "match <ruleID> priority <priority>\n"  or
//	          "no-match\n"                            or
//	          "error <message>\n"
//
// Batch lookups amortise round trips: "batch <n>\n" followed by n packet
// lines returns exactly n response lines in order. When the classifier is an
// engine.Engine (or anything implementing BatchClassifier) the whole batch
// is classified against one coherent snapshot with sharded lookup.
//
// Live rule updates are available when the classifier implements Updater
// (engine.Engine does):
//
//	"add <pos> @<classbench rule line>\n" -> "ok id=<id> version=<v> rules=<n>\n"
//	"del <ruleID>\n"                      -> "ok version=<v> rules=<n>\n"
//
// Compiled-artifact administration is available when the classifier
// implements ArtifactStore (engine.Engine does, for compiled tree
// backends):
//
//	"save <path>\n" -> "ok saved <path>\n"
//	"load <path>\n" -> "ok version=<v> rules=<n>\n"
//
// The served classifier is any Classifier implementation: an engine.Engine
// directly (the worker-pool path), or a dataplane.Dataplane fronting one
// (classifyd -cores) — the dataplane satisfies every optional interface
// below, so handlers submit batches to its per-core rings without knowing
// which serving architecture is behind them.
//
// The special request "stats\n" returns one line of server statistics
// (request counters, plus the online-update subsystem's overlay size,
// tombstones, generation, compaction and journal state when the served
// engine has it enabled — see UpdaterStatser) and "quit\n" closes the
// connection. One goroutine serves each connection; the
// classifier lookup itself is read-only and shared, and updates swap in new
// snapshots without blocking in-flight lookups.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// Classifier is the minimal lookup interface the server exposes; decision
// trees, multi-tree classifiers, the linear-search reference and
// engine.Engine all satisfy it.
type Classifier interface {
	Classify(p rule.Packet) (rule.Rule, bool)
}

// BatchClassifier is the optional batch interface. When the served
// classifier implements it (engine.Engine does), "batch" requests are
// classified in one sharded call against a single snapshot instead of one
// lookup per line.
type BatchClassifier interface {
	ClassifyBatch(ps []rule.Packet, out []engine.Result)
}

// Updater is the optional live-update interface behind the "add" and "del"
// requests. engine.Engine implements it with RCU snapshot swaps.
type Updater interface {
	Insert(pos int, r rule.Rule) (engine.UpdateResult, error)
	Delete(id int) (engine.UpdateResult, error)
}

// ArtifactStore is the optional interface behind the "save" and "load"
// admin requests: persisting the served classifier as a compiled artifact
// and hot-swapping an artifact in (another RCU snapshot swap).
// engine.Engine implements it for compiled tree backends.
type ArtifactStore interface {
	SaveArtifact(path string) error
	LoadArtifact(path string) (engine.UpdateResult, error)
}

// UpdaterStatser is the optional interface that lets "stats" expose the
// online-update subsystem's state (overlay size, tombstones, generation,
// compactions, journal). engine.Engine implements it.
type UpdaterStatser interface {
	UpdaterStats() engine.UpdaterStats
}

// MaxBatch bounds the packet count of one "batch" request.
const MaxBatch = 65536

// DefaultBatchReadTimeout bounds how long a handler waits for the rest of a
// request whose header has been read (a v1 batch body, a v2 frame body).
// Without it a client that sends "batch 1000\n" and then stalls would pin
// its connection goroutine — and the engine pool buffers it holds — forever.
const DefaultBatchReadTimeout = 30 * time.Second

// Server serves classification requests over TCP. Both wire protocols are
// spoken on the same port: the v1 text protocol described above, and the
// framed binary protocol v2 (see frame.go), selected per connection by its
// first byte.
type Server struct {
	classifier Classifier
	// tables, when non-nil, makes this a multi-table server: v1 requests
	// and v2 frames addressed to table 0 go to the default table, other v2
	// frames to the table their header names.
	tables *engine.Tables

	// BatchReadTimeout overrides DefaultBatchReadTimeout when positive; a
	// negative value disables the deadline. Set it before Listen.
	BatchReadTimeout time.Duration

	// TableCreateOptions is the engine option base for tables created over
	// the wire (OpCreateTable), so wire-created tables inherit the daemon's
	// serving defaults (shards, binth, compaction) instead of zero options.
	// Set it before Listen; multi-table servers only.
	TableCreateOptions engine.Options

	// Telemetry, when non-nil, records per-request handling latency into
	// the shared online-telemetry histograms (proto=v1/v2). Set it before
	// Listen; typically the same instance the engines record into.
	Telemetry *telemetry.Telemetry

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
	// conns tracks live connections so Shutdown can drain them: handlers
	// waiting for a next request are unblocked immediately, handlers inside
	// a request finish it first, and stragglers are force-closed when the
	// drain context expires.
	conns map[*servedConn]struct{}

	// counters (atomic).
	requests    atomic.Int64
	matches     atomic.Int64
	parseFails  atomic.Int64
	batches     atomic.Int64
	updates     atomic.Int64
	artifactOps atomic.Int64
	tableOps    atomic.Int64
}

// New creates a single-table server around the classifier.
func New(c Classifier) *Server {
	return &Server{classifier: c}
}

// NewTables creates a multi-table server: the v1 text protocol (and v2
// frames addressed to table 0) serve the manager's default table, and v2
// frames can address — and administer — every table by ID.
func NewTables(t *engine.Tables) *Server {
	return &Server{tables: t}
}

// tableClassifier resolves the classifier a request addresses. Table 0 is
// the default table; non-zero IDs exist only on multi-table servers.
func (s *Server) tableClassifier(id uint32) (Classifier, error) {
	if s.tables != nil {
		tab, ok := s.tables.GetByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown table %d", id)
		}
		return tab.Engine, nil
	}
	if id != 0 {
		return nil, fmt.Errorf("not a multi-table server (table %d unavailable)", id)
	}
	return s.classifier, nil
}

// batchReadTimeout returns the effective deadline for reading the body of a
// started request.
func (s *Server) batchReadTimeout() time.Duration {
	switch {
	case s.BatchReadTimeout > 0:
		return s.BatchReadTimeout
	case s.BatchReadTimeout < 0:
		return 0
	default:
		return DefaultBatchReadTimeout
	}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines until
// Close is called.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &servedConn{Conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.conns == nil {
			s.conns = make(map[*servedConn]struct{})
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, sc)
				s.mu.Unlock()
			}()
			s.handle(sc)
		}()
	}
}

// servedConn pairs a connection with its drain state. Draining must never
// cut a request in half: a batch whose header has been read is always fully
// read, classified and answered. The deadline that unblocks an idle
// handler is therefore only armed while the handler sits between requests.
type servedConn struct {
	net.Conn
	mu sync.Mutex
	// busy is true while the handler is inside one request (reading a batch
	// body, classifying, writing responses).
	busy bool
	// drainOnIdle asks the handler to exit once the current request ends.
	drainOnIdle bool
}

// beginRequest marks the handler busy and replaces any drain deadline with
// the body deadline, on both directions: the request's remaining reads (a
// batch body, a frame body) and its response writes must finish within it,
// so a client that stalls mid-request — or stops reading responses while
// its pipelined requests keep the server writing — cannot pin its handler
// goroutine and the pooled buffers it holds forever. bodyTimeout 0 means
// no deadline.
func (c *servedConn) beginRequest(bodyTimeout time.Duration) {
	c.mu.Lock()
	c.busy = true
	if bodyTimeout > 0 {
		c.Conn.SetDeadline(time.Now().Add(bodyTimeout))
	} else {
		c.Conn.SetDeadline(time.Time{})
	}
	c.mu.Unlock()
}

// endRequest marks the handler idle again and reports whether it should
// exit because a drain started while the request was in flight. When the
// handler stays, the body deadline is disarmed so the idle wait for the
// next request is unbounded again.
func (c *servedConn) endRequest() (draining bool) {
	c.mu.Lock()
	c.busy = false
	draining = c.drainOnIdle
	if !draining {
		c.Conn.SetDeadline(time.Time{})
	}
	c.mu.Unlock()
	return draining
}

// drainGrace is how long an idle connection's handler keeps reading after a
// drain starts. Requests already on the wire (a batch whose header the
// handler has not scanned yet) are picked up and served within the grace;
// truly idle connections exit when it expires.
const drainGrace = 50 * time.Millisecond

// drain asks the connection's handler to exit as soon as it is between
// requests; if it is idle right now, the grace read deadline bounds how
// long it may keep waiting for one last request.
func (c *servedConn) drain() {
	c.mu.Lock()
	c.drainOnIdle = true
	if !c.busy {
		c.Conn.SetReadDeadline(time.Now().Add(drainGrace))
	}
	c.mu.Unlock()
}

// Close stops the listener and waits for in-flight connections to finish.
// Connected idle clients keep their handlers alive, so Close can block
// indefinitely; servers exposed to external clients should prefer Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown gracefully stops the server: it stops accepting connections,
// lets every in-flight request (including a batch mid-classification)
// finish and be answered, unblocks handlers that are idle waiting for a
// next request, and waits for all of them to exit. If the context expires
// first, remaining connections are force-closed before returning the
// context's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.drain()
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats summarises the server's request counters. Requests counts every
// classified packet and admin request (the original three fields keep their
// v1 meanings); the finer-grained counters below slice the same traffic by
// kind for the admin plane's /metrics endpoint.
type Stats struct {
	Requests   int64
	Matches    int64
	ParseFails int64
	// Batches counts batch requests served (v1 "batch" plus v2 OpBatch),
	// each of which contributes its packet count to Requests.
	Batches int64
	// Updates counts live rule updates (v1 add/del, v2 insert/delete).
	Updates int64
	// ArtifactOps counts artifact admin requests (save/load).
	ArtifactOps int64
	// TableOps counts table admin requests (v2 list/create/drop-table).
	TableOps int64
	// ActiveConns is the number of currently connected clients.
	ActiveConns int64
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Stats{
		Requests:    s.requests.Load(),
		Matches:     s.matches.Load(),
		ParseFails:  s.parseFails.Load(),
		Batches:     s.batches.Load(),
		Updates:     s.updates.Load(),
		ArtifactOps: s.artifactOps.Load(),
		TableOps:    s.tableOps.Load(),
		ActiveConns: active,
	}
}

// handle serves one connection until EOF, "quit", a write error or a
// drain. The wire protocol is selected by the connection's first byte: a
// frame-magic byte (which no v1 text request can start with) selects the
// framed binary protocol v2, anything else the v1 text protocol, so v1
// clients keep working against a v2-capable server unchanged.
func (s *Server) handle(conn *servedConn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4096)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	w := bufio.NewWriter(conn)
	if first[0] == frameMagic[0] {
		s.handleV2(conn, br, w)
		return
	}
	s.handleV1(conn, br, w)
}

// handleV1 serves the v1 text protocol. Each request is bracketed by the
// connection's busy state so a concurrent Shutdown never interrupts it
// mid-request.
func (s *Server) handleV1(conn *servedConn, br *bufio.Reader, w *bufio.Writer) {
	scanner := bufio.NewScanner(br)
	scanner.Buffer(make([]byte, 0, 4096), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			w.Flush()
			return
		}
		conn.beginRequest(s.batchReadTimeout())
		var ok bool
		if s.Telemetry != nil {
			t0 := time.Now()
			ok = s.serveLine(scanner, w, line)
			ns := time.Since(t0).Nanoseconds()
			s.Telemetry.ServerV1.RecordNanos(uint64(ns), ns)
		} else {
			ok = s.serveLine(scanner, w, line)
		}
		draining := conn.endRequest()
		if !ok {
			return
		}
		if draining {
			w.Flush()
			return
		}
	}
}

// v1Classifier resolves the classifier v1 requests target: the default
// table on a multi-table server (resolved per request, since Swap can
// re-point it), the wrapped classifier otherwise.
func (s *Server) v1Classifier() (Classifier, error) {
	return s.tableClassifier(0)
}

// statsLine renders the one-line stats response shared by both protocols.
func (s *Server) statsLine(cls Classifier) string {
	st := s.Stats()
	line := fmt.Sprintf("stats requests=%d matches=%d parse-failures=%d", st.Requests, st.Matches, st.ParseFails)
	// The online-update subsystem's state rides on the same line so old
	// clients that parse the leading fields keep working.
	if us, ok := cls.(UpdaterStatser); ok {
		if u := us.UpdaterStats(); u.Enabled {
			compacting := 0
			if u.Compacting {
				compacting = 1
			}
			line += fmt.Sprintf(" overlay=%d tombstones=%d rules=%d generation=%d compactions=%d compacting=%d journal-records=%d",
				u.OverlayRules, u.Tombstones, u.Rules, u.Version, u.Compactions, compacting, u.JournalRecords)
		}
	}
	return line
}

// serveLine answers one request line (reading a batch body from the
// scanner when needed) and reports whether the connection is still usable.
func (s *Server) serveLine(scanner *bufio.Scanner, w *bufio.Writer, line string) bool {
	cls, err := s.v1Classifier()
	if err != nil {
		return writeLine(w, "error "+err.Error())
	}
	if line == "stats" {
		return writeLine(w, s.statsLine(cls))
	}
	if n, ok := parseBatchHeader(line); ok {
		return s.handleBatch(scanner, w, cls, n)
	}
	if rest, ok := strings.CutPrefix(line, "add "); ok {
		return writeLine(w, s.respondAdd(cls, rest))
	}
	if rest, ok := strings.CutPrefix(line, "del "); ok {
		return writeLine(w, s.respondDel(cls, rest))
	}
	if rest, ok := strings.CutPrefix(line, "save "); ok {
		return writeLine(w, s.respondSave(cls, rest))
	}
	if rest, ok := strings.CutPrefix(line, "load "); ok {
		return writeLine(w, s.respondLoad(cls, rest))
	}
	return writeLine(w, s.respond(cls, line))
}

// writeLine writes one response line, reporting whether the connection is
// still usable.
func writeLine(w *bufio.Writer, resp string) bool {
	if _, err := w.WriteString(resp + "\n"); err != nil {
		return false
	}
	return w.Flush() == nil
}

// parseBatchHeader recognises "batch <n>" requests.
func parseBatchHeader(line string) (int, bool) {
	rest, ok := strings.CutPrefix(line, "batch ")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil {
		return 0, false
	}
	return n, true
}

// handleBatch reads n packet lines and answers each in order. It reports
// whether the connection is still usable. Lines that fail to parse yield
// "error ..." responses in their slot; the rest of the batch still runs.
func (s *Server) handleBatch(scanner *bufio.Scanner, w *bufio.Writer, cls Classifier, n int) bool {
	if n <= 0 || n > MaxBatch {
		return writeLine(w, fmt.Sprintf("error batch size must be in [1, %d]", MaxBatch))
	}
	s.batches.Add(1)
	// Batch buffers come from the engine's pools: handleBatch runs once per
	// "batch" request, and per-request make() calls dominate the serving
	// path's allocation profile. The pool clears recycled buffers before
	// handing them out, so a parse error that leaves a slot unwritten reads
	// as the zero packet / no-match, never as data from a previous batch.
	packets := engine.GetPacketBuf(n)
	defer engine.PutPacketBuf(packets)
	parseErrs := make([]error, n)
	for i := 0; i < n; i++ {
		if !scanner.Scan() {
			return false // connection dropped mid-batch
		}
		s.requests.Add(1)
		p, err := ParseRequest(strings.TrimSpace(scanner.Text()))
		if err != nil {
			s.parseFails.Add(1)
			parseErrs[i] = err
			continue
		}
		packets[i] = p
	}
	out := engine.GetResultBuf(n)
	defer engine.PutResultBuf(out)
	if bc, ok := cls.(BatchClassifier); ok {
		bc.ClassifyBatch(packets, out)
	} else {
		for i, p := range packets {
			out[i].Rule, out[i].OK = cls.Classify(p)
		}
	}
	for i := 0; i < n; i++ {
		var resp string
		switch {
		case parseErrs[i] != nil:
			resp = "error " + parseErrs[i].Error()
		case !out[i].OK:
			resp = "no-match"
		default:
			s.matches.Add(1)
			resp = fmt.Sprintf("match %d priority %d", out[i].Rule.ID, out[i].Rule.Priority)
		}
		if _, err := w.WriteString(resp + "\n"); err != nil {
			return false
		}
	}
	return w.Flush() == nil
}

// respondAdd handles "add <pos> @<rule>": parse the ClassBench rule line and
// insert it at priority position pos through the Updater interface.
func (s *Server) respondAdd(cls Classifier, rest string) string {
	s.requests.Add(1)
	s.updates.Add(1)
	up, ok := cls.(Updater)
	if !ok {
		return "error classifier does not support live updates"
	}
	posStr, ruleStr, found := strings.Cut(strings.TrimSpace(rest), " ")
	if !found {
		s.parseFails.Add(1)
		return "error expected: add <pos> @<rule>"
	}
	pos, err := strconv.Atoi(posStr)
	if err != nil {
		s.parseFails.Add(1)
		return "error position: " + err.Error()
	}
	r, err := rule.ParseClassBenchLine(strings.TrimSpace(ruleStr))
	if err != nil {
		s.parseFails.Add(1)
		return "error rule: " + err.Error()
	}
	res, err := up.Insert(pos, r)
	if err != nil {
		return "error " + err.Error()
	}
	return fmt.Sprintf("ok id=%d version=%d rules=%d", res.ID, res.Version, res.Rules)
}

// respondDel handles "del <ruleID>".
func (s *Server) respondDel(cls Classifier, rest string) string {
	s.requests.Add(1)
	s.updates.Add(1)
	up, ok := cls.(Updater)
	if !ok {
		return "error classifier does not support live updates"
	}
	id, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil {
		s.parseFails.Add(1)
		return "error rule id: " + err.Error()
	}
	res, err := up.Delete(id)
	if err != nil {
		return "error " + err.Error()
	}
	return fmt.Sprintf("ok version=%d rules=%d", res.Version, res.Rules)
}

// respondSave handles "save <path>": persist the served classifier as a
// compiled artifact through the ArtifactStore interface.
func (s *Server) respondSave(cls Classifier, rest string) string {
	s.requests.Add(1)
	s.artifactOps.Add(1)
	st, ok := cls.(ArtifactStore)
	if !ok {
		return "error classifier does not support artifacts"
	}
	path := strings.TrimSpace(rest)
	if path == "" {
		s.parseFails.Add(1)
		return "error expected: save <path>"
	}
	if err := st.SaveArtifact(path); err != nil {
		return "error " + err.Error()
	}
	return "ok saved " + path
}

// respondLoad handles "load <path>": hot-swap a compiled artifact in as the
// served classifier (an RCU snapshot swap; in-flight lookups finish against
// the old snapshot).
func (s *Server) respondLoad(cls Classifier, rest string) string {
	s.requests.Add(1)
	s.artifactOps.Add(1)
	st, ok := cls.(ArtifactStore)
	if !ok {
		return "error classifier does not support artifacts"
	}
	path := strings.TrimSpace(rest)
	if path == "" {
		s.parseFails.Add(1)
		return "error expected: load <path>"
	}
	res, err := st.LoadArtifact(path)
	if err != nil {
		return "error " + err.Error()
	}
	return fmt.Sprintf("ok version=%d rules=%d", res.Version, res.Rules)
}

// respond processes one request line and returns the response line.
func (s *Server) respond(cls Classifier, line string) string {
	s.requests.Add(1)
	p, err := ParseRequest(line)
	if err != nil {
		s.parseFails.Add(1)
		return "error " + err.Error()
	}
	r, ok := cls.Classify(p)
	if !ok {
		return "no-match"
	}
	s.matches.Add(1)
	return fmt.Sprintf("match %d priority %d", r.ID, r.Priority)
}

// ParseRequest parses a request line into a packet key. IP fields accept
// dotted-quad or decimal notation.
func ParseRequest(line string) (rule.Packet, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return rule.Packet{}, fmt.Errorf("expected 5 fields, got %d", len(fields))
	}
	src, err := parseIPField(fields[0])
	if err != nil {
		return rule.Packet{}, fmt.Errorf("src ip: %v", err)
	}
	dst, err := parseIPField(fields[1])
	if err != nil {
		return rule.Packet{}, fmt.Errorf("dst ip: %v", err)
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return rule.Packet{}, fmt.Errorf("src port: %v", err)
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return rule.Packet{}, fmt.Errorf("dst port: %v", err)
	}
	proto, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return rule.Packet{}, fmt.Errorf("proto: %v", err)
	}
	return rule.Packet{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(proto),
	}, nil
}

func parseIPField(s string) (uint32, error) {
	if strings.Contains(s, ".") {
		return rule.ParseIPv4(s)
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// Client is a minimal client for the server's protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a classification server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Classify sends one request and parses the response. It returns the rule ID
// and priority, or ok=false for a "no-match" response.
func (c *Client) Classify(p rule.Packet) (id, priority int, ok bool, err error) {
	req := fmt.Sprintf("%d %d %d %d %d\n", p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto)
	if _, err = c.w.WriteString(req); err != nil {
		return 0, 0, false, err
	}
	if err = c.w.Flush(); err != nil {
		return 0, 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, 0, false, err
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "no-match":
		return 0, 0, false, nil
	case strings.HasPrefix(line, "match "):
		if _, err := fmt.Sscanf(line, "match %d priority %d", &id, &priority); err != nil {
			return 0, 0, false, fmt.Errorf("server: malformed response %q", line)
		}
		return id, priority, true, nil
	default:
		return 0, 0, false, fmt.Errorf("server: %s", line)
	}
}

// ClassifyBatch sends "batch" requests for all packets and returns one
// Result per packet, in order. Batches larger than MaxBatch are split into
// multiple requests transparently (the server rejects oversized headers).
// A per-line server error (e.g. an unparsable packet) surfaces as OK=false
// for that slot only.
func (c *Client) ClassifyBatch(ps []rule.Packet) ([]engine.Result, error) {
	out := make([]engine.Result, 0, len(ps))
	for lo := 0; lo < len(ps); lo += MaxBatch {
		hi := lo + MaxBatch
		if hi > len(ps) {
			hi = len(ps)
		}
		chunk, err := c.classifyBatchChunk(ps[lo:hi])
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func (c *Client) classifyBatchChunk(ps []rule.Packet) ([]engine.Result, error) {
	if len(ps) == 0 {
		return nil, nil
	}
	fmt.Fprintf(c.w, "batch %d\n", len(ps))
	for _, p := range ps {
		fmt.Fprintf(c.w, "%d %d %d %d %d\n", p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto)
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]engine.Result, len(ps))
	for i := range ps {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "match ") {
			var id, priority int
			if _, err := fmt.Sscanf(line, "match %d priority %d", &id, &priority); err != nil {
				return nil, fmt.Errorf("server: malformed response %q", line)
			}
			out[i] = engine.Result{Rule: rule.Rule{ID: id, Priority: priority}, OK: true}
		}
	}
	return out, nil
}

// AddRule inserts a ClassBench-format rule at priority position pos on the
// server and returns the assigned rule ID and new snapshot version.
func (c *Client) AddRule(pos int, classBenchLine string) (id int, version uint64, err error) {
	fmt.Fprintf(c.w, "add %d %s\n", pos, strings.TrimSpace(classBenchLine))
	if err := c.w.Flush(); err != nil {
		return 0, 0, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, 0, err
	}
	line = strings.TrimSpace(line)
	var rules int
	if _, err := fmt.Sscanf(line, "ok id=%d version=%d rules=%d", &id, &version, &rules); err != nil {
		return 0, 0, fmt.Errorf("server: %s", line)
	}
	return id, version, nil
}

// SaveArtifact asks the server to persist its classifier as a compiled
// artifact at path (a path on the server's filesystem).
func (c *Client) SaveArtifact(path string) error {
	fmt.Fprintf(c.w, "save %s\n", strings.TrimSpace(path))
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "ok saved ") {
		return fmt.Errorf("server: %s", line)
	}
	return nil
}

// LoadArtifact asks the server to hot-swap the compiled artifact at path
// (on the server's filesystem) in as the served classifier, returning the
// new snapshot version and rule count.
func (c *Client) LoadArtifact(path string) (version uint64, rules int, err error) {
	fmt.Fprintf(c.w, "load %s\n", strings.TrimSpace(path))
	if err := c.w.Flush(); err != nil {
		return 0, 0, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, 0, err
	}
	line = strings.TrimSpace(line)
	if _, err := fmt.Sscanf(line, "ok version=%d rules=%d", &version, &rules); err != nil {
		return 0, 0, fmt.Errorf("server: %s", line)
	}
	return version, rules, nil
}

// DeleteRule removes the rule with the given ID on the server and returns
// the new snapshot version.
func (c *Client) DeleteRule(id int) (version uint64, err error) {
	fmt.Fprintf(c.w, "del %d\n", id)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, err
	}
	line = strings.TrimSpace(line)
	var rules int
	if _, err := fmt.Sscanf(line, "ok version=%d rules=%d", &version, &rules); err != nil {
		return 0, fmt.Errorf("server: %s", line)
	}
	return version, nil
}
