// Package server exposes a packet classifier over TCP so that the decision
// trees built by this repository can be queried by external tools (or by the
// bundled cmd/classifyd client). The protocol is a plain text line protocol:
//
//	request:  "<srcIP> <dstIP> <srcPort> <dstPort> <proto>\n"
//	          where the IPs are dotted quads or decimal integers
//	response: "match <ruleID> priority <priority>\n"  or
//	          "no-match\n"                            or
//	          "error <message>\n"
//
// The special request "stats\n" returns one line of server statistics and
// "quit\n" closes the connection. One goroutine serves each connection; the
// classifier lookup itself is read-only and shared.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"neurocuts/internal/rule"
)

// Classifier is the lookup interface the server exposes; decision trees,
// multi-tree classifiers and the linear-search reference all satisfy it.
type Classifier interface {
	Classify(p rule.Packet) (rule.Rule, bool)
}

// Server serves classification requests over TCP.
type Server struct {
	classifier Classifier

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool

	// counters (atomic).
	requests   atomic.Int64
	matches    atomic.Int64
	parseFails atomic.Int64
}

// New creates a server around the classifier.
func New(c Classifier) *Server {
	return &Server{classifier: c}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines until
// Close is called.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Stats summarises the server's request counters.
type Stats struct {
	Requests   int64
	Matches    int64
	ParseFails int64
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:   s.requests.Load(),
		Matches:    s.matches.Load(),
		ParseFails: s.parseFails.Load(),
	}
}

// handle serves one connection until EOF, "quit" or a write error.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			w.Flush()
			return
		}
		if line == "stats" {
			st := s.Stats()
			fmt.Fprintf(w, "stats requests=%d matches=%d parse-failures=%d\n", st.Requests, st.Matches, st.ParseFails)
			if w.Flush() != nil {
				return
			}
			continue
		}
		resp := s.respond(line)
		if _, err := w.WriteString(resp + "\n"); err != nil {
			return
		}
		if w.Flush() != nil {
			return
		}
	}
}

// respond processes one request line and returns the response line.
func (s *Server) respond(line string) string {
	s.requests.Add(1)
	p, err := ParseRequest(line)
	if err != nil {
		s.parseFails.Add(1)
		return "error " + err.Error()
	}
	r, ok := s.classifier.Classify(p)
	if !ok {
		return "no-match"
	}
	s.matches.Add(1)
	return fmt.Sprintf("match %d priority %d", r.ID, r.Priority)
}

// ParseRequest parses a request line into a packet key. IP fields accept
// dotted-quad or decimal notation.
func ParseRequest(line string) (rule.Packet, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return rule.Packet{}, fmt.Errorf("expected 5 fields, got %d", len(fields))
	}
	src, err := parseIPField(fields[0])
	if err != nil {
		return rule.Packet{}, fmt.Errorf("src ip: %v", err)
	}
	dst, err := parseIPField(fields[1])
	if err != nil {
		return rule.Packet{}, fmt.Errorf("dst ip: %v", err)
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return rule.Packet{}, fmt.Errorf("src port: %v", err)
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return rule.Packet{}, fmt.Errorf("dst port: %v", err)
	}
	proto, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return rule.Packet{}, fmt.Errorf("proto: %v", err)
	}
	return rule.Packet{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(proto),
	}, nil
}

func parseIPField(s string) (uint32, error) {
	if strings.Contains(s, ".") {
		return rule.ParseIPv4(s)
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// Client is a minimal client for the server's protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a classification server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Classify sends one request and parses the response. It returns the rule ID
// and priority, or ok=false for a "no-match" response.
func (c *Client) Classify(p rule.Packet) (id, priority int, ok bool, err error) {
	req := fmt.Sprintf("%d %d %d %d %d\n", p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto)
	if _, err = c.w.WriteString(req); err != nil {
		return 0, 0, false, err
	}
	if err = c.w.Flush(); err != nil {
		return 0, 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, 0, false, err
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "no-match":
		return 0, 0, false, nil
	case strings.HasPrefix(line, "match "):
		if _, err := fmt.Sscanf(line, "match %d priority %d", &id, &priority); err != nil {
			return 0, 0, false, fmt.Errorf("server: malformed response %q", line)
		}
		return id, priority, true, nil
	default:
		return 0, 0, false, fmt.Errorf("server: %s", line)
	}
}
