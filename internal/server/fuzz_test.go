package server

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseRequest asserts that no wire line, however malformed, can panic
// the request parser — a hostile client must get an "error" response, not
// crash the server. Successful parses are round-tripped through the decimal
// request encoding to pin down the field order.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		"10.0.0.1 192.168.1.1 1234 80 6",
		"167772161 3232235777 53 53 17",
		"0.0.0.0 255.255.255.255 0 65535 255",
		"", " ", "stats", "quit", "batch 3",
		"1 2 3 4", "1 2 3 4 5 6",
		"x y z w v",
		"300.0.0.1 1.2.3.4 1 2 3",
		"-1 2 3 4 5",
		"1 2 99999 4 5",
		"1.2.3.4.5 6.7.8.9 1 2 3",
		"\x00\xff 1 2 3 4",
		"4294967296 1 2 3 4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		p, err := ParseRequest(line)
		if err != nil {
			return
		}
		if got := len(strings.Fields(line)); got != 5 {
			t.Errorf("ParseRequest(%q) succeeded with %d fields", line, got)
		}
		decimal := fmt.Sprintf("%d %d %d %d %d", p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto)
		again, err := ParseRequest(decimal)
		if err != nil || again != p {
			t.Errorf("round trip of %q via %q: got %+v err %v, want %+v", line, decimal, again, err, p)
		}
	})
}
