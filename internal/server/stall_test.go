package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// startTimeoutServer serves a small engine with a short batch-body deadline
// and returns the server for direct control.
func startTimeoutServer(t *testing.T, timeout time.Duration) (*Server, string) {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 100, 1)
	eng, err := engine.NewEngine("tss", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	srv.BatchReadTimeout = timeout
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Registered before any client dials, so it runs after their cleanups:
	// Close waits for handlers, and idle v1 handlers only exit when their
	// client hangs up.
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

// TestStalledBatchReaderCannotPinWorker is the regression test for the
// batch-body deadline: a client that announces a batch and then stalls must
// have its connection cut after BatchReadTimeout — freeing the handler
// goroutine and the pooled buffers it holds — while the server keeps
// serving other clients and Close does not hang.
func TestStalledBatchReaderCannotPinWorker(t *testing.T) {
	srv, addr := startTimeoutServer(t, 150*time.Millisecond)

	// A well-behaved client, connected before the stall begins.
	good := dialTest(t, addr)

	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	// Promise 5 packets, deliver 2, then stall.
	if _, err := fmt.Fprintf(stalled, "batch 5\n1 2 3 4 5\n6 7 8 9 10\n"); err != nil {
		t.Fatal(err)
	}

	// The server must give up on the stalled body within the timeout (plus
	// slack) by closing the connection: the pending read errors instead of
	// delivering a response line.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, err := bufio.NewReader(stalled).ReadString('\n'); err == nil {
		t.Fatalf("stalled batch got response %q; expected the connection to be cut", line)
	}

	// The healthy client was never blocked.
	if _, _, _, err := good.Classify(rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5}); err != nil {
		t.Fatalf("healthy client broken after stall: %v", err)
	}
	good.Close()

	// Close must not hang on the stalled connection's handler.
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after a stalled batch reader")
	}
}

// TestStalledV2FrameReaderCannotPinWorker is the same regression for v2: a
// frame header promising a payload that never arrives must not pin the
// handler.
func TestStalledV2FrameReaderCannotPinWorker(t *testing.T) {
	_, addr := startTimeoutServer(t, 150*time.Millisecond)

	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	// A valid header for a 100-byte payload, but only the header is sent.
	full := AppendFrame(nil, Frame{Op: OpBatch, Payload: make([]byte, 100)})
	if _, err := stalled.Write(full[:frameHeaderLen]); err != nil {
		t.Fatal(err)
	}
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		// Whatever the server may emit (an error frame), the connection must
		// end; a timeout on OUR read means the handler kept waiting for the
		// body past its deadline.
		if _, err := stalled.Read(buf); err != nil {
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				t.Fatal("server kept the stalled v2 connection open past its body deadline")
			}
			break // closed by the server: the regression is fixed
		}
	}

	// The server still serves fresh v2 connections.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("healthy v2 client broken after stall: %v", err)
	}
}

// TestIdleConnectionOutlivesBatchTimeout pins the deadline's scope: it must
// only cover a started request's body, never an idle connection waiting for
// its next request.
func TestIdleConnectionOutlivesBatchTimeout(t *testing.T) {
	_, addr := startTimeoutServer(t, 100*time.Millisecond)
	c := dialTest(t, addr)
	if _, _, _, err := c.Classify(rule.Packet{SrcIP: 1}); err != nil {
		t.Fatal(err)
	}
	// Sit idle well past the batch timeout, then issue another request on
	// the same connection.
	time.Sleep(400 * time.Millisecond)
	if _, _, _, err := c.Classify(rule.Packet{SrcIP: 1}); err != nil {
		t.Fatalf("idle connection was killed by the batch-body deadline: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v2, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if err := v2.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := v2.Ping(); err != nil {
		t.Fatalf("idle v2 connection was killed by the batch-body deadline: %v", err)
	}
}
