package server

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

func artifactTestEngine(t *testing.T, backend string, size int) (*engine.Engine, *rule.Set) {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, size, 5)
	eng, err := engine.NewEngine(backend, set, engine.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng, set
}

// TestSaveLoadEndpoints drives the "save"/"load" admin requests end to end:
// save the served tree as an artifact, mutate the rule set live, then load
// the artifact back and verify the original classification behaviour
// returns with a bumped snapshot version.
func TestSaveLoadEndpoints(t *testing.T) {
	eng, set := artifactTestEngine(t, "hicuts", 200)
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) // registered before the client's cleanup, so the client closes first
	client := dialTest(t, addr.String())

	path := filepath.Join(t.TempDir(), "served.ncaf")
	if err := client.SaveArtifact(path); err != nil {
		t.Fatalf("save endpoint: %v", err)
	}

	// Shadow everything with a top-priority wildcard so lookups change.
	id, _, err := client.AddRule(0, "@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00")
	if err != nil {
		t.Fatal(err)
	}
	probe := classbench.GenerateTrace(set, 1, 3)[0].Key
	gotID, _, ok, err := client.Classify(probe)
	if err != nil || !ok || gotID != id {
		t.Fatalf("wildcard not winning after add: id=%d ok=%v err=%v", gotID, ok, err)
	}

	version, rules, err := client.LoadArtifact(path)
	if err != nil {
		t.Fatalf("load endpoint: %v", err)
	}
	if rules != set.Len() {
		t.Fatalf("loaded artifact has %d rules, want %d", rules, set.Len())
	}
	if version != 3 { // build=1, add=2, load=3
		t.Fatalf("version after load = %d, want 3", version)
	}
	want := set.MatchIndex(probe)
	_, prio, ok, err := client.Classify(probe)
	if err != nil {
		t.Fatal(err)
	}
	got := -1
	if ok {
		got = prio
	}
	if got != want {
		t.Fatalf("after artifact reload: got priority %d, linear search says %d", got, want)
	}
}

// TestArtifactEndpointsUnsupported: classifiers without an ArtifactStore
// answer with a protocol error, not a dropped connection.
func TestArtifactEndpointsUnsupported(t *testing.T) {
	eng, _ := artifactTestEngine(t, "linear", 50)
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) // registered before the client's cleanup, so the client closes first
	client := dialTest(t, addr.String())
	// linear has no compiled form: engine.Engine implements ArtifactStore
	// but SaveArtifact must fail cleanly over the wire.
	if err := client.SaveArtifact(filepath.Join(t.TempDir(), "x.ncaf")); err == nil {
		t.Fatal("save succeeded for a backend with no compiled form")
	}
	if _, _, err := client.LoadArtifact(filepath.Join(t.TempDir(), "missing.ncaf")); err == nil {
		t.Fatal("load succeeded for a missing artifact")
	}
	// The connection must still be usable afterwards.
	if _, _, _, err := client.Classify(rule.Packet{Proto: 6}); err != nil {
		t.Fatalf("connection unusable after artifact errors: %v", err)
	}
}

// TestShutdownDrainsIdleConnections: Shutdown must complete even while a
// client sits connected and idle (where Close would block forever), and
// requests answered before the signal must have been fully served.
func TestShutdownDrainsIdleConnections(t *testing.T) {
	eng, set := artifactTestEngine(t, "hicuts", 100)
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := dialTest(t, addr.String())

	// A served batch completes before shutdown begins.
	var packets []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 300, 7) {
		packets = append(packets, e.Key)
	}
	results, err := client.ClassifyBatch(packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(packets) {
		t.Fatalf("batch returned %d results, want %d", len(results), len(packets))
	}

	// The client stays connected and idle; Shutdown must still return.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %s with an idle connection", elapsed)
	}
}

// TestShutdownAnswersInFlightBatch: a batch whose lines are already on the
// wire when Shutdown fires still receives all of its responses.
func TestShutdownAnswersInFlightBatch(t *testing.T) {
	eng, set := artifactTestEngine(t, "hicuts", 100)
	srv := New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := dialTest(t, addr.String())

	var packets []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 2000, 9) {
		packets = append(packets, e.Key)
	}
	type batchResult struct {
		n   int
		err error
	}
	resCh := make(chan batchResult, 1)
	go func() {
		rs, err := client.ClassifyBatch(packets)
		resCh <- batchResult{n: len(rs), err: err}
	}()
	// Begin draining while the batch is (very likely) in flight. Whatever
	// the interleaving, the batch was fully written before Shutdown's read
	// deadlines can interrupt a not-yet-started read loop only between
	// requests — a batch being read or classified is answered in full.
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight batch failed during shutdown: %v", res.err)
	}
	if res.n != len(packets) {
		t.Fatalf("in-flight batch got %d responses, want %d", res.n, len(packets))
	}
}
