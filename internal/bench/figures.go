package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"neurocuts/internal/analysis"
	"neurocuts/internal/core"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Figure8Result holds the classification-time comparison of Figure 8 plus
// the Section 6.1 headline summary (NeuroCuts improvement over the best
// baseline per classifier).
type Figure8Result struct {
	Rows    []Row
	Summary analysis.ImprovementSummary
}

// Figure8 reproduces Figure 8: classification time (tree depth / node
// visits) for HiCuts, HyperCuts, EffiCuts, CutSplit and time-optimised
// NeuroCuts across the ClassBench classifiers.
func Figure8(scenarios []Scenario, opts Options) (Figure8Result, error) {
	opts = opts.withDefaults()
	var out Figure8Result
	for i, sc := range scenarios {
		set, err := sc.Generate()
		if err != nil {
			return out, err
		}
		results, err := runBaselines(set, opts.Binth)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name(), err)
		}
		// Time-optimised NeuroCuts: c=1, linear scaling, no partitioning
		// (Section 6.1: the best time-optimised trees use no or simple
		// top-node partitioning).
		cfg := neuroCutsConfig(opts, 1.0, env.ScaleLinear, env.PartitionNone, opts.Seed+int64(i))
		nc, _, err := trainNeuroCuts(set, cfg, NameNeuroCuts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name(), err)
		}
		results = append(results, nc)
		out.Rows = append(out.Rows, Row{Scenario: sc, Results: results})
	}
	sortRowsByName(out.Rows)
	summary, err := summarizeAgainstBestBaseline(out.Rows, NameNeuroCuts, true)
	if err != nil {
		return out, err
	}
	out.Summary = summary
	return out, nil
}

// Write renders the figure data and summary as text.
func (f Figure8Result) Write(w io.Writer) {
	writeTable(w, "Figure 8: classification time (node visits), lower is better", f.Rows, true)
	fmt.Fprintf(w, "NeuroCuts vs best baseline (classification time): %s\n", f.Summary)
}

// Figure9Result holds the memory-footprint comparison of Figure 9 plus the
// Section 6.2 summaries against EffiCuts and CutSplit.
type Figure9Result struct {
	Rows            []Row
	VsBestBaseline  analysis.ImprovementSummary
	VsEffiCuts      analysis.ImprovementSummary
	VsCutSplit      analysis.ImprovementSummary
	MedianBytesRule float64
}

// Figure9 reproduces Figure 9: memory footprint (bytes per rule) for the
// baselines and space-optimised NeuroCuts (c=0, log scaling, EffiCuts
// top-node partitioning).
func Figure9(scenarios []Scenario, opts Options) (Figure9Result, error) {
	opts = opts.withDefaults()
	var out Figure9Result
	for i, sc := range scenarios {
		set, err := sc.Generate()
		if err != nil {
			return out, err
		}
		results, err := runBaselines(set, opts.Binth)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name(), err)
		}
		cfg := neuroCutsConfig(opts, 0.0, env.ScaleLog, env.PartitionEffiCuts, opts.Seed+int64(i))
		nc, _, err := trainNeuroCuts(set, cfg, NameNeuroCuts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name(), err)
		}
		results = append(results, nc)
		out.Rows = append(out.Rows, Row{Scenario: sc, Results: results})
	}
	sortRowsByName(out.Rows)

	var ncBytes, effiBytes, csBytes []float64
	for _, r := range out.Rows {
		nc, _ := r.Get(NameNeuroCuts)
		ef, _ := r.Get(NameEffiCuts)
		cs, _ := r.Get(NameCutSplit)
		ncBytes = append(ncBytes, nc.BytesPerRule)
		effiBytes = append(effiBytes, ef.BytesPerRule)
		csBytes = append(csBytes, cs.BytesPerRule)
	}
	var err error
	if out.VsBestBaseline, err = summarizeAgainstBestBaseline(out.Rows, NameNeuroCuts, false); err != nil {
		return out, err
	}
	if out.VsEffiCuts, err = analysis.Summarize(ncBytes, effiBytes); err != nil {
		return out, err
	}
	if out.VsCutSplit, err = analysis.Summarize(ncBytes, csBytes); err != nil {
		return out, err
	}
	out.MedianBytesRule = analysis.Median(ncBytes)
	return out, nil
}

// Write renders the figure data and summaries as text.
func (f Figure9Result) Write(w io.Writer) {
	writeTable(w, "Figure 9: memory footprint (bytes per rule), lower is better", f.Rows, false)
	fmt.Fprintf(w, "NeuroCuts vs best baseline (bytes/rule): %s\n", f.VsBestBaseline)
	fmt.Fprintf(w, "NeuroCuts vs EffiCuts  (bytes/rule): %s\n", f.VsEffiCuts)
	fmt.Fprintf(w, "NeuroCuts vs CutSplit  (bytes/rule): %s\n", f.VsCutSplit)
}

// Figure10Result holds the sorted per-classifier improvements of NeuroCuts
// (restricted to the EffiCuts partition action) over EffiCuts, for space and
// time — the two panels of Figure 10.
type Figure10Result struct {
	Scenarios []string
	// SpaceImprovements and TimeImprovements are sorted ascending
	// (1 - NeuroCuts/EffiCuts); positive means NeuroCuts wins.
	SpaceImprovements []float64
	TimeImprovements  []float64
	SpaceSummary      analysis.ImprovementSummary
	TimeSummary       analysis.ImprovementSummary
}

// Figure10 reproduces Figure 10: NeuroCuts constrained to the EffiCuts
// top-node partition, compared against EffiCuts itself on every classifier.
func Figure10(scenarios []Scenario, opts Options) (Figure10Result, error) {
	opts = opts.withDefaults()
	var out Figure10Result
	var ncSpace, efSpace, ncTime, efTime []float64
	for i, sc := range scenarios {
		set, err := sc.Generate()
		if err != nil {
			return out, err
		}
		ecfg := efficuts.DefaultConfig()
		ecfg.Binth = opts.Binth
		ef, err := efficuts.Build(set, ecfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name(), err)
		}
		em := ef.Metrics()

		// NeuroCuts with only the EffiCuts partition allowed, optimising a
		// blended objective (the Section 6.3 configuration).
		cfg := neuroCutsConfig(opts, 0.5, env.ScaleLog, env.PartitionEffiCuts, opts.Seed+int64(i))
		nc, _, err := trainNeuroCuts(set, cfg, NameNeuroCutsEffi)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name(), err)
		}

		out.Scenarios = append(out.Scenarios, sc.Name())
		ncSpace = append(ncSpace, float64(nc.MemoryBytes))
		efSpace = append(efSpace, float64(em.MemoryBytes))
		ncTime = append(ncTime, float64(nc.Time))
		efTime = append(efTime, float64(em.ClassificationTime))
	}
	out.SpaceImprovements = analysis.SortedImprovements(ncSpace, efSpace)
	out.TimeImprovements = analysis.SortedImprovements(ncTime, efTime)
	var err error
	if out.SpaceSummary, err = analysis.Summarize(ncSpace, efSpace); err != nil {
		return out, err
	}
	if out.TimeSummary, err = analysis.Summarize(ncTime, efTime); err != nil {
		return out, err
	}
	return out, nil
}

// Write renders the two panels of Figure 10 as text.
func (f Figure10Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 10(a): sorted space improvement of NeuroCuts(EffiCuts partition) over EffiCuts (1 - a/b)")
	for i, v := range f.SpaceImprovements {
		fmt.Fprintf(w, "  rank %2d: %+.2f\n", i+1, v)
	}
	fmt.Fprintf(w, "  summary: %s\n", f.SpaceSummary)
	fmt.Fprintln(w, "Figure 10(b): sorted time improvement of NeuroCuts(EffiCuts partition) over EffiCuts (1 - a/b)")
	for i, v := range f.TimeImprovements {
		fmt.Fprintf(w, "  rank %2d: %+.2f\n", i+1, v)
	}
	fmt.Fprintf(w, "  summary: %s\n", f.TimeSummary)
}

// Figure11Point is one point of the c-sweep in Figure 11.
type Figure11Point struct {
	C                  float64
	MedianTime         float64
	MedianBytesPerRule float64
}

// Figure11Result holds the time-space tradeoff sweep of Figure 11.
type Figure11Result struct {
	Points []Figure11Point
}

// Figure11 reproduces Figure 11: for each value of the time-space
// coefficient c, NeuroCuts (simple partitioning, log reward scaling) is
// trained on every scenario and the medians of the best classification time
// and bytes per rule are reported.
func Figure11(scenarios []Scenario, opts Options, cValues []float64) (Figure11Result, error) {
	opts = opts.withDefaults()
	if len(cValues) == 0 {
		cValues = []float64{0, 0.1, 0.5, 1}
	}
	var out Figure11Result
	for ci, c := range cValues {
		var times, bytes []float64
		for i, sc := range scenarios {
			set, err := sc.Generate()
			if err != nil {
				return out, err
			}
			cfg := neuroCutsConfig(opts, c, env.ScaleLog, env.PartitionSimple, opts.Seed+int64(1000*ci+i))
			nc, _, err := trainNeuroCuts(set, cfg, NameNeuroCuts)
			if err != nil {
				return out, fmt.Errorf("%s (c=%.1f): %w", sc.Name(), c, err)
			}
			times = append(times, float64(nc.Time))
			bytes = append(bytes, nc.BytesPerRule)
		}
		out.Points = append(out.Points, Figure11Point{
			C:                  c,
			MedianTime:         analysis.Median(times),
			MedianBytesPerRule: analysis.Median(bytes),
		})
	}
	return out, nil
}

// Write renders the sweep as text.
func (f Figure11Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: time-space tradeoff sweep (simple partitioning, log reward scaling)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "c\tmedian classification time\tmedian bytes per rule")
	for _, p := range f.Points {
		fmt.Fprintf(tw, "%.1f\t%.1f\t%.1f\n", p.C, p.MedianTime, p.MedianBytesPerRule)
	}
	tw.Flush()
}

// Figure5Snapshot captures the tree shape at one point during training: the
// number of nodes per level and the distribution of cut dimensions per
// level.
type Figure5Snapshot struct {
	// Label names the snapshot ("random policy", "mid training",
	// "converged", "HiCuts").
	Label string
	// LevelSizes[d] is the number of nodes at depth d.
	LevelSizes []int
	// CutDims[d][dim] counts cut nodes at depth d cutting dimension dim.
	CutDims []map[rule.Dimension]int
	// Time and MemoryBytes summarise the tree.
	Time        int
	MemoryBytes int
}

// Figure5Result holds the learning-visualisation data of Figure 5.
type Figure5Result struct {
	Scenario  Scenario
	Snapshots []Figure5Snapshot
}

// Figure5 reproduces Figure 5: how the NeuroCuts policy's trees evolve while
// learning to split the fw5 classifier, against the HiCuts tree for the same
// rules. The snapshots are (1) a tree from the randomly initialised policy,
// (2) a tree from a partially trained policy, (3) the best tree after
// training, and (4) HiCuts.
func Figure5(sc Scenario, opts Options) (Figure5Result, error) {
	opts = opts.withDefaults()
	out := Figure5Result{Scenario: sc}
	set, err := sc.Generate()
	if err != nil {
		return out, err
	}

	snapshot := func(label string, t *tree.Tree) Figure5Snapshot {
		m := t.ComputeMetrics()
		return Figure5Snapshot{
			Label:       label,
			LevelSizes:  t.LevelSizes(),
			CutDims:     t.CutDimensionHistogram(),
			Time:        m.ClassificationTime,
			MemoryBytes: m.MemoryBytes,
		}
	}

	cfg := neuroCutsConfig(opts, 1.0, env.ScaleLinear, env.PartitionNone, opts.Seed)
	trainer := core.NewTrainer(set, cfg)

	// Random policy tree.
	randomTree, _ := trainer.SampleTree(opts.Seed, false)
	out.Snapshots = append(out.Snapshots, snapshot("random policy", randomTree))

	// Half the budget, then snapshot again.
	half := cfg
	half.MaxTimesteps = cfg.MaxTimesteps / 2
	halfTrainer := core.NewTrainer(set, half)
	if _, err := halfTrainer.Train(); err != nil {
		return out, err
	}
	midTree, _ := halfTrainer.SampleTree(opts.Seed+1, true)
	out.Snapshots = append(out.Snapshots, snapshot("mid training", midTree))

	// Full budget.
	if _, err := trainer.Train(); err != nil {
		return out, err
	}
	best, _ := trainer.BestTree()
	out.Snapshots = append(out.Snapshots, snapshot("converged", best))

	// HiCuts comparison (Figure 5b).
	hcfg := hicuts.DefaultConfig()
	hcfg.Binth = opts.Binth
	hi, err := hicuts.Build(set, hcfg)
	if err != nil {
		return out, err
	}
	out.Snapshots = append(out.Snapshots, snapshot("HiCuts", hi))
	return out, nil
}

// Write renders each snapshot's per-level node counts and cut dimensions.
func (f Figure5Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: tree shape while learning %s\n", f.Scenario.Name())
	for _, s := range f.Snapshots {
		fmt.Fprintf(w, "  [%s] time=%d memory=%dB levels=%d\n", s.Label, s.Time, s.MemoryBytes, len(s.LevelSizes))
		for depth, n := range s.LevelSizes {
			line := fmt.Sprintf("    level %2d: %6d nodes", depth, n)
			if depth < len(s.CutDims) && len(s.CutDims[depth]) > 0 {
				line += "  cuts:"
				for _, d := range rule.Dimensions() {
					if c := s.CutDims[depth][d]; c > 0 {
						line += fmt.Sprintf(" %s=%d", d, c)
					}
				}
			}
			fmt.Fprintln(w, line)
		}
	}
}

// Figure6Variation describes one tree sampled from the stochastic policy.
type Figure6Variation struct {
	Seed        int64
	Time        int
	MemoryBytes int
	Nodes       int
	LevelSizes  []int
}

// Figure6Result holds the tree variations of Figure 6.
type Figure6Result struct {
	Scenario   Scenario
	Variations []Figure6Variation
}

// Figure6 reproduces Figure 6: after training a single stochastic policy on
// the acl4 classifier, several random tree variations are drawn from it.
func Figure6(sc Scenario, opts Options, variations int) (Figure6Result, error) {
	opts = opts.withDefaults()
	if variations <= 0 {
		variations = 4
	}
	out := Figure6Result{Scenario: sc}
	set, err := sc.Generate()
	if err != nil {
		return out, err
	}
	cfg := neuroCutsConfig(opts, 1.0, env.ScaleLinear, env.PartitionNone, opts.Seed)
	trainer := core.NewTrainer(set, cfg)
	if _, err := trainer.Train(); err != nil {
		return out, err
	}
	for i := 0; i < variations; i++ {
		seed := opts.Seed + int64(100+i)
		t, m := trainer.SampleTree(seed, false)
		out.Variations = append(out.Variations, Figure6Variation{
			Seed:        seed,
			Time:        m.ClassificationTime,
			MemoryBytes: m.MemoryBytes,
			Nodes:       m.Nodes,
			LevelSizes:  t.LevelSizes(),
		})
	}
	return out, nil
}

// Write renders the variations as text.
func (f Figure6Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: tree variations sampled from one stochastic policy on %s\n", f.Scenario.Name())
	for i, v := range f.Variations {
		fmt.Fprintf(w, "  variation %d (seed %d): time=%d memory=%dB nodes=%d levels=%v\n",
			i+1, v.Seed, v.Time, v.MemoryBytes, v.Nodes, v.LevelSizes)
	}
}

// Table1 renders the hyperparameter table of the paper (Table 1) from the
// defaults encoded in core.DefaultConfig and rl.DefaultConfig.
func Table1(w io.Writer) {
	cfg := core.DefaultConfig()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: NeuroCuts hyperparameters")
	fmt.Fprintln(tw, "hyperparameter\tvalue")
	fmt.Fprintln(tw, "Time-space coefficient c\t<set by user>")
	fmt.Fprintln(tw, "Top-node partitioning\t{none, simple, EffiCuts}")
	fmt.Fprintln(tw, "Reward scaling function f\t{x, log(x)}")
	fmt.Fprintln(tw, "Max timesteps per rollout\t{1000, 5000, 15000}")
	fmt.Fprintln(tw, "Max tree depth\t{100, 500}")
	fmt.Fprintf(tw, "Max timesteps to train\t%d\n", cfg.MaxTimesteps)
	fmt.Fprintf(tw, "Max timesteps per batch\t%d\n", cfg.BatchTimesteps)
	fmt.Fprintln(tw, "Model type\tfully-connected")
	fmt.Fprintln(tw, "Model nonlinearity\ttanh")
	fmt.Fprintf(tw, "Model hidden layers\t%v\n", cfg.HiddenLayers)
	fmt.Fprintln(tw, "Weight sharing between theta, theta_v\ttrue")
	fmt.Fprintf(tw, "Learning rate\t%g\n", cfg.PPO.LearningRate)
	fmt.Fprintln(tw, "Discount factor gamma\t1.0")
	fmt.Fprintf(tw, "PPO entropy coefficient\t%g\n", cfg.PPO.EntropyCoeff)
	fmt.Fprintf(tw, "PPO clip param\t%g\n", cfg.PPO.ClipParam)
	fmt.Fprintf(tw, "PPO VF clip param\t%g\n", cfg.PPO.VFClipParam)
	fmt.Fprintf(tw, "PPO KL target\t%g\n", cfg.PPO.KLTarget)
	fmt.Fprintf(tw, "SGD iterations per batch\t%d\n", cfg.PPO.Epochs)
	fmt.Fprintf(tw, "SGD minibatch size\t%d\n", cfg.PPO.MinibatchSize)
	tw.Flush()
}
