// Package bench is the evaluation harness: it rebuilds, for every table and
// figure in the paper's evaluation section, the data series the paper plots,
// using the algorithms implemented in this repository. Absolute numbers
// differ from the paper (different rule generators, training budgets and
// cost constants), but the harness reports the same rows/series so the
// qualitative comparison — who wins, by roughly what factor — can be checked
// directly.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"neurocuts/internal/analysis"
	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/engine"
	"neurocuts/internal/env"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Scenario identifies one classifier of the evaluation: a ClassBench family
// at a given size.
type Scenario struct {
	// Family is the seed family name (acl1..acl5, fw1..fw5, ipc1, ipc2).
	Family string
	// Size is the number of rules.
	Size int
	// Seed makes generation deterministic.
	Seed int64
}

// Name returns the paper-style scenario name, e.g. "acl1_1k".
func (s Scenario) Name() string {
	switch {
	case s.Size >= 1000 && s.Size%1000 == 0:
		return fmt.Sprintf("%s_%dk", s.Family, s.Size/1000)
	default:
		return fmt.Sprintf("%s_%d", s.Family, s.Size)
	}
}

// Generate builds the scenario's classifier.
func (s Scenario) Generate() (*rule.Set, error) {
	fam, err := classbench.FamilyByName(s.Family)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(fam, s.Size, s.Seed), nil
}

// DefaultScenarios returns one scenario per ClassBench family at the given
// size (the paper uses 1k, 10k and 100k; the harness default keeps the full
// 12-family sweep at whatever size the caller affords).
func DefaultScenarios(size int) []Scenario {
	var out []Scenario
	for _, f := range classbench.Families() {
		out = append(out, Scenario{Family: f.Name, Size: size, Seed: 1})
	}
	return out
}

// Options tunes how much work the harness does, so the same code can drive
// quick regression runs and full-scale reproductions.
type Options struct {
	// Size is the classifier size per scenario.
	Size int
	// Seed seeds classifier generation and training.
	Seed int64
	// TrainTimesteps is the NeuroCuts training budget per classifier; the
	// paper uses up to 10M, the quick defaults a few thousand.
	TrainTimesteps int
	// BatchTimesteps is the PPO batch size.
	BatchTimesteps int
	// Workers is the number of parallel rollout workers per trainer.
	Workers int
	// Binth is the leaf threshold shared by all algorithms.
	Binth int
	// Backends restricts ApproachAblation to a subset of engine registry
	// names; empty selects the full default set.
	Backends []string
}

// QuickOptions returns a configuration that finishes in seconds per
// classifier (for tests and smoke benchmarks).
func QuickOptions() Options {
	return Options{
		Size:           300,
		Seed:           1,
		TrainTimesteps: 1500,
		BatchTimesteps: 500,
		Workers:        2,
		Binth:          tree.DefaultBinth,
	}
}

// PaperOptions returns a configuration at the paper's 1k scale with a
// meaningful (but still laptop-sized) training budget.
func PaperOptions() Options {
	return Options{
		Size:           1000,
		Seed:           1,
		TrainTimesteps: 50_000,
		BatchTimesteps: 5_000,
		Workers:        4,
		Binth:          tree.DefaultBinth,
	}
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 300
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TrainTimesteps <= 0 {
		o.TrainTimesteps = 1500
	}
	if o.BatchTimesteps <= 0 {
		o.BatchTimesteps = 500
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Binth <= 0 {
		o.Binth = tree.DefaultBinth
	}
	return o
}

// AlgorithmResult is one algorithm's outcome on one classifier.
type AlgorithmResult struct {
	// Algorithm is the display name.
	Algorithm string
	// Time is the worst-case classification time (node visits).
	Time int
	// BytesPerRule is the memory footprint divided by the rule count.
	BytesPerRule float64
	// MemoryBytes is the total memory footprint.
	MemoryBytes int
}

// Row is the full comparison on one classifier.
type Row struct {
	Scenario Scenario
	Results  []AlgorithmResult
}

// Get returns the named algorithm's result in the row.
func (r Row) Get(name string) (AlgorithmResult, bool) {
	for _, a := range r.Results {
		if a.Algorithm == name {
			return a, true
		}
	}
	return AlgorithmResult{}, false
}

// Algorithm display names used across the harness.
const (
	NameHiCuts         = "HiCuts"
	NameHyperCuts      = "HyperCuts"
	NameEffiCuts       = "EffiCuts"
	NameCutSplit       = "CutSplit"
	NameNeuroCuts      = "NeuroCuts"
	NameNeuroCutsTime  = "NeuroCuts(time)"
	NameNeuroCutsSpace = "NeuroCuts(space)"
	NameNeuroCutsEffi  = "NeuroCuts(EffiCuts)"
)

// baselineBackends are the hand-tuned tree algorithms the paper compares
// NeuroCuts against, by engine registry name.
var baselineBackends = []string{"hicuts", "hypercuts", "efficuts", "cutsplit"}

// runBaselines executes the four hand-tuned algorithms on the classifier
// through the engine registry.
func runBaselines(set *rule.Set, binth int) ([]AlgorithmResult, error) {
	var out []AlgorithmResult
	for _, name := range baselineBackends {
		cls, err := engine.NewWithOptions(name, set, engine.Options{Binth: binth})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", engine.DisplayName(name), err)
		}
		m := cls.Metrics()
		out = append(out, AlgorithmResult{engine.DisplayName(name), m.LookupCost, m.BytesPerRule, m.MemoryBytes})
	}
	return out, nil
}

// neuroCutsConfig builds a trainer configuration for the harness.
func neuroCutsConfig(o Options, c float64, scale env.RewardScale, part env.PartitionMode, seed int64) core.Config {
	cfg := core.Scaled(1000)
	cfg.TimeSpaceCoeff = c
	cfg.Scale = scale
	cfg.Partition = part
	cfg.Binth = o.Binth
	cfg.MaxTimesteps = o.TrainTimesteps
	cfg.BatchTimesteps = o.BatchTimesteps
	// Rollout truncation follows Section 5.1: it must scale with the
	// classifier ("large enough to enable solving the problem, but not so
	// large that it slows down the initial phase of training"). Untruncated
	// rollouts from the random initial policy would otherwise swallow the
	// whole batch budget.
	cfg.MaxTimestepsPerRollout = clampInt(2*o.Size, 500, 15000)
	cfg.Workers = o.Workers
	cfg.Seed = seed
	return cfg
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// trainNeuroCuts trains NeuroCuts with the given objective and returns the
// best tree's metrics.
func trainNeuroCuts(set *rule.Set, cfg core.Config, name string) (AlgorithmResult, *core.Trainer, error) {
	trainer := core.NewTrainer(set, cfg)
	if _, err := trainer.Train(); err != nil {
		return AlgorithmResult{}, nil, fmt.Errorf("bench: training %s: %w", name, err)
	}
	best, _ := trainer.BestTree()
	m := best.ComputeMetrics()
	return AlgorithmResult{name, m.ClassificationTime, m.BytesPerRule, m.MemoryBytes}, trainer, nil
}

// writeTable renders rows of (scenario, per-algorithm metric) as a text
// table to w; metric selects Time (true) or BytesPerRule (false).
func writeTable(w io.Writer, title string, rows []Row, timeMetric bool) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(rows) == 0 {
		tw.Flush()
		return
	}
	header := "classifier"
	for _, a := range rows[0].Results {
		header += "\t" + a.Algorithm
	}
	fmt.Fprintln(tw, header)
	for _, r := range rows {
		line := r.Scenario.Name()
		for _, a := range r.Results {
			if timeMetric {
				line += fmt.Sprintf("\t%d", a.Time)
			} else {
				line += fmt.Sprintf("\t%.1f", a.BytesPerRule)
			}
		}
		fmt.Fprintln(tw, line)
	}
	tw.Flush()
}

// summarizeAgainstBestBaseline computes the Section 6.1-style improvement
// summary of the NeuroCuts column against the minimum of the four baselines,
// per classifier.
func summarizeAgainstBestBaseline(rows []Row, neuroName string, timeMetric bool) (analysis.ImprovementSummary, error) {
	var ours, best []float64
	for _, r := range rows {
		nc, ok := r.Get(neuroName)
		if !ok {
			continue
		}
		bestBaseline := -1.0
		for _, a := range r.Results {
			if a.Algorithm == neuroName || a.Algorithm == NameNeuroCutsTime ||
				a.Algorithm == NameNeuroCutsSpace || a.Algorithm == NameNeuroCutsEffi {
				continue
			}
			v := float64(a.Time)
			if !timeMetric {
				v = a.BytesPerRule
			}
			if bestBaseline < 0 || v < bestBaseline {
				bestBaseline = v
			}
		}
		if bestBaseline <= 0 {
			continue
		}
		v := float64(nc.Time)
		if !timeMetric {
			v = nc.BytesPerRule
		}
		ours = append(ours, v)
		best = append(best, bestBaseline)
	}
	return analysis.Summarize(ours, best)
}

// sortRowsByName keeps the paper's classifier ordering (acl*, fw*, ipc*).
func sortRowsByName(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Scenario.Name() < rows[j].Scenario.Name() })
}

// generateTrace builds a rule-biased header trace for a classifier (thin
// wrapper so other files in this package do not import classbench twice).
func generateTrace(set *rule.Set, n int, seed int64) []packet.TraceEntry {
	return classbench.GenerateTrace(set, n, seed)
}
