package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestApproachAblation(t *testing.T) {
	res, err := ApproachAblation(microScenarios()[:2], microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Results) != 6 {
			t.Fatalf("%s: %d approaches, want 6", row.Scenario.Name(), len(row.Results))
		}
		byName := map[string]ApproachResult{}
		for _, r := range row.Results {
			byName[r.Approach] = r
			if r.LookupCost <= 0 || r.MemoryBytes <= 0 || r.Entries <= 0 {
				t.Errorf("%s/%s: degenerate result %+v", row.Scenario.Name(), r.Approach, r)
			}
		}
		// The structural trade-offs the ablation is meant to show: TCAM has
		// constant lookup cost, and TSS stores at least one entry per rule.
		if byName["TCAM"].LookupCost != 1 {
			t.Errorf("TCAM lookup cost %d", byName["TCAM"].LookupCost)
		}
		if byName["TSS"].Entries < row.Scenario.Size/2 {
			t.Errorf("TSS entries %d suspiciously low", byName["TSS"].Entries)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	for _, want := range []string{"TSS", "TCAM", "HiCuts", "CutSplit"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestTrafficAblation(t *testing.T) {
	res, err := TrafficAblation(microScenarios()[:1], microOptions(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r.WorstTrainedWorst <= 0 || r.TrafficTrainedWorst <= 0 {
		t.Errorf("degenerate worst-case metrics %+v", r)
	}
	if r.WorstTrainedAvg <= 0 || r.TrafficTrainedAvg <= 0 {
		t.Errorf("degenerate average metrics %+v", r)
	}
	// The average can never exceed the worst case for the same tree.
	if r.WorstTrainedAvg > float64(r.WorstTrainedWorst)+1e-9 {
		t.Errorf("average %v exceeds worst %d", r.WorstTrainedAvg, r.WorstTrainedWorst)
	}
	if r.TrafficTrainedAvg > float64(r.TrafficTrainedWorst)+1e-9 {
		t.Errorf("average %v exceeds worst %d", r.TrafficTrainedAvg, r.TrafficTrainedWorst)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "traffic-aware") {
		t.Error("missing header")
	}
	// Default trace length path.
	if _, err := TrafficAblation(nil, microOptions(), 0); err != nil {
		t.Fatal(err)
	}
}
