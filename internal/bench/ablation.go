package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"neurocuts/internal/core"
	"neurocuts/internal/engine"
	"neurocuts/internal/env"
	"neurocuts/internal/perf"
	"neurocuts/internal/rule"
)

// This file holds the ablation studies that go beyond the paper's figures:
//
//   - ApproachAblation places the decision-tree algorithms next to the two
//     alternative classification approaches the paper's introduction and
//     related-work sections discuss — Tuple Space Search (hash tables, O(1)
//     updates, lookup cost grows with the number of tuples) and TCAM
//     (constant time, entry expansion and power cost) — on the same
//     classifiers, quantifying the trade-offs that motivate decision trees.
//   - TrafficAblation compares worst-case-trained NeuroCuts against
//     traffic-aware NeuroCuts (the average-time objective from the paper's
//     conclusion) on skewed traces.

// ApproachRow is one classifier's comparison across approaches.
type ApproachRow struct {
	Scenario Scenario
	// Entries per approach (tree nodes / TSS entries / TCAM entries).
	Results []ApproachResult
}

// ApproachResult is one approach's cost profile on one classifier.
type ApproachResult struct {
	Approach string
	// LookupCost is the approach's sequential lookup cost: node visits for
	// trees, tuple probes for TSS, 1 for TCAM.
	LookupCost int
	// MemoryBytes is the modelled memory footprint (tree bytes, TSS table
	// bytes, TCAM entry bits / 8).
	MemoryBytes int
	// Entries is the number of stored elements (tree rule refs, TSS/TCAM
	// entries after expansion).
	Entries int
	// P50Nanos / P99Nanos / ThroughputPPS are live measurements from the
	// perf lab (uniform traffic, read-only), so the ablation reports wall
	// clock next to the modelled costs.
	P50Nanos      float64
	P99Nanos      float64
	ThroughputPPS float64
}

// ApproachAblationResult holds every row of the ablation plus the underlying
// perf-lab report the rows were rendered from; the text table and the JSON
// artifact are two views of the same measurement.
type ApproachAblationResult struct {
	Rows []ApproachRow
	// Report is the perf-lab measurement backing the rows, ready for
	// perf.WriteArtifact / perf.Compare.
	Report perf.Report
}

// ablationBackends is the default approach set, by engine registry name.
var ablationBackends = []string{"hicuts", "hypercuts", "efficuts", "cutsplit", "tss", "tcam"}

// Measurement effort per ablation cell; modest because the ablation runs
// over many (scenario, backend) pairs inside tests.
const (
	ablationOps     = 2000
	ablationPackets = 1024
	ablationWarmup  = 200
)

// ApproachAblation measures every selected backend over the scenarios
// through the perf lab. opts.Backends restricts the set; the default covers
// the four tree algorithms, TSS and TCAM.
func ApproachAblation(scenarios []Scenario, opts Options) (ApproachAblationResult, error) {
	opts = opts.withDefaults()
	backends := opts.Backends
	if len(backends) == 0 {
		backends = ablationBackends
	}
	var out ApproachAblationResult
	grid := perf.Grid{Skews: []perf.Skew{perf.SkewUniform}, Churns: []perf.Churn{perf.ChurnNone}, Backends: backends}
	seenFam, seenSize := map[string]bool{}, map[int]bool{}
	for _, sc := range scenarios {
		if !seenFam[sc.Family] {
			seenFam[sc.Family] = true
			grid.Families = append(grid.Families, sc.Family)
		}
		if !seenSize[sc.Size] {
			seenSize[sc.Size] = true
			grid.Sizes = append(grid.Sizes, sc.Size)
		}
	}
	out.Report = perf.Report{
		SchemaVersion: perf.SchemaVersion,
		Tool:          "evalbench-ablation",
		Grid:          grid,
	}
	// Record the shared measurement config once. The per-cell seed follows
	// each scenario's own Seed; scenarios built by this package share it, so
	// the recorded config is faithful (and MeasureCell receives the
	// scenario-accurate value either way).
	if len(scenarios) > 0 {
		out.Report.Config = perf.RunConfig{Seed: scenarios[0].Seed, Ops: ablationOps,
			Packets: ablationPackets, Warmup: ablationWarmup, Binth: opts.Binth, Shards: 1}.WithDefaults()
	}
	for _, sc := range scenarios {
		row := ApproachRow{Scenario: sc}
		for _, name := range backends {
			cell := perf.Cell{Family: sc.Family, Size: sc.Size,
				Skew: perf.SkewUniform, Churn: perf.ChurnNone, Backend: name}
			cfg := perf.RunConfig{Seed: sc.Seed, Ops: ablationOps, Packets: ablationPackets,
				Warmup: ablationWarmup, Binth: opts.Binth, Shards: 1}
			res, err := perf.MeasureCell(cell, cfg)
			if err != nil {
				return out, fmt.Errorf("%s: %s: %w", sc.Name(), engine.DisplayName(name), err)
			}
			out.Report.Cells = append(out.Report.Cells, res)
			m := res.Metrics
			row.Results = append(row.Results, ApproachResult{
				Approach:      engine.DisplayName(name),
				LookupCost:    m.LookupCost,
				MemoryBytes:   m.MemoryBytes,
				Entries:       m.Entries,
				P50Nanos:      m.P50Nanos,
				P99Nanos:      m.P99Nanos,
				ThroughputPPS: m.ThroughputPPS,
			})
		}
		out.Rows = append(out.Rows, row)
	}
	out.Report.SortCells()
	return out, nil
}

// WriteJSON writes the ablation's perf-lab report as a versioned JSON
// artifact.
func (a ApproachAblationResult) WriteJSON(path string) error {
	return perf.WriteArtifact(path, a.Report)
}

// Write renders the ablation as a text table — the human view of the same
// measurements the JSON artifact carries.
func (a ApproachAblationResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Ablation: decision trees vs Tuple Space Search vs TCAM")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "classifier\tapproach\tlookup cost\tp50 ns\tp99 ns\tMpps\tmemory bytes\tentries")
	for _, row := range a.Rows {
		for _, r := range row.Results {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.0f\t%.2f\t%d\t%d\n",
				row.Scenario.Name(), r.Approach, r.LookupCost,
				r.P50Nanos, r.P99Nanos, r.ThroughputPPS/1e6, r.MemoryBytes, r.Entries)
		}
	}
	tw.Flush()
}

// TrafficAblationRow compares worst-case-trained and traffic-trained
// NeuroCuts on the same classifier and skewed trace.
type TrafficAblationRow struct {
	Scenario Scenario
	// WorstTrained* are the metrics of the tree trained on the worst-case
	// objective; TrafficTrained* of the tree trained on the average-time
	// objective. AvgTime is measured over the evaluation trace in both
	// cases.
	WorstTrainedWorst   int
	WorstTrainedAvg     float64
	TrafficTrainedWorst int
	TrafficTrainedAvg   float64
}

// TrafficAblationResult holds the traffic-aware objective ablation.
type TrafficAblationResult struct {
	Rows []TrafficAblationRow
}

// TrafficAblation trains NeuroCuts twice per scenario — once with the
// paper's worst-case time objective and once with the traffic-aware
// average-time objective over a skewed trace — and reports both trees'
// worst-case and average lookup times on a held-out trace drawn from the
// same distribution.
func TrafficAblation(scenarios []Scenario, opts Options, traceLen int) (TrafficAblationResult, error) {
	opts = opts.withDefaults()
	if traceLen <= 0 {
		traceLen = 2000
	}
	var out TrafficAblationResult
	for i, sc := range scenarios {
		set, err := sc.Generate()
		if err != nil {
			return out, err
		}
		trainTrace := tracePackets(set, traceLen, opts.Seed+int64(10*i))
		evalTrace := tracePackets(set, traceLen, opts.Seed+int64(10*i)+5)

		worstCfg := neuroCutsConfig(opts, 1.0, env.ScaleLinear, env.PartitionNone, opts.Seed+int64(i))
		worstTrainer := core.NewTrainer(set, worstCfg)
		if _, err := worstTrainer.Train(); err != nil {
			return out, fmt.Errorf("%s: worst-case training: %w", sc.Name(), err)
		}
		worstTree, _ := worstTrainer.BestTree()

		trafficCfg := worstCfg
		trafficCfg.TrafficTrace = trainTrace
		trafficCfg.Seed = opts.Seed + int64(i) + 500
		trafficTrainer := core.NewTrainer(set, trafficCfg)
		if _, err := trafficTrainer.Train(); err != nil {
			return out, fmt.Errorf("%s: traffic-aware training: %w", sc.Name(), err)
		}
		trafficTree, _ := trafficTrainer.BestTree()

		out.Rows = append(out.Rows, TrafficAblationRow{
			Scenario:            sc,
			WorstTrainedWorst:   worstTree.ComputeMetrics().ClassificationTime,
			WorstTrainedAvg:     worstTree.AverageLookupTime(evalTrace),
			TrafficTrainedWorst: trafficTree.ComputeMetrics().ClassificationTime,
			TrafficTrainedAvg:   trafficTree.AverageLookupTime(evalTrace),
		})
	}
	return out, nil
}

// Write renders the traffic ablation as a text table.
func (a TrafficAblationResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Ablation: worst-case vs traffic-aware (average-time) NeuroCuts objective")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "classifier\tworst-trained: worst/avg\ttraffic-trained: worst/avg")
	for _, r := range a.Rows {
		fmt.Fprintf(tw, "%s\t%d / %.2f\t%d / %.2f\n",
			r.Scenario.Name(), r.WorstTrainedWorst, r.WorstTrainedAvg, r.TrafficTrainedWorst, r.TrafficTrainedAvg)
	}
	tw.Flush()
}

// tracePackets generates a rule-biased trace and strips it to packet keys.
func tracePackets(set *rule.Set, n int, seed int64) []rule.Packet {
	entries := generateTrace(set, n, seed)
	out := make([]rule.Packet, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}
