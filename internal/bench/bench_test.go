package bench

import (
	"bytes"
	"strings"
	"testing"
)

// microOptions keeps harness tests fast: tiny classifiers and tiny training
// budgets. The point of these tests is that the harness produces complete,
// well-formed results, not that the trained policies are good.
func microOptions() Options {
	return Options{
		Size:           120,
		Seed:           1,
		TrainTimesteps: 400,
		BatchTimesteps: 200,
		Workers:        2,
		Binth:          16,
	}
}

// microScenarios picks three families (one per category) at micro size.
func microScenarios() []Scenario {
	return []Scenario{
		{Family: "acl1", Size: 120, Seed: 1},
		{Family: "fw1", Size: 120, Seed: 1},
		{Family: "ipc1", Size: 120, Seed: 1},
	}
}

func TestScenarioNameAndGenerate(t *testing.T) {
	s := Scenario{Family: "acl1", Size: 1000, Seed: 1}
	if s.Name() != "acl1_1k" {
		t.Errorf("Name = %q", s.Name())
	}
	s = Scenario{Family: "fw3", Size: 500, Seed: 1}
	if s.Name() != "fw3_500" {
		t.Errorf("Name = %q", s.Name())
	}
	set, err := s.Generate()
	if err != nil || set.Len() == 0 {
		t.Fatalf("Generate: %v", err)
	}
	if _, err := (Scenario{Family: "nope", Size: 10}).Generate(); err == nil {
		t.Error("unknown family should fail")
	}
}

func TestDefaultScenariosCoverAllFamilies(t *testing.T) {
	s := DefaultScenarios(1000)
	if len(s) != 12 {
		t.Fatalf("got %d scenarios", len(s))
	}
	names := map[string]bool{}
	for _, sc := range s {
		names[sc.Family] = true
	}
	for _, want := range []string{"acl1", "acl5", "fw1", "fw5", "ipc1", "ipc2"} {
		if !names[want] {
			t.Errorf("missing family %s", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Size <= 0 || o.TrainTimesteps <= 0 || o.Workers <= 0 || o.Binth <= 0 {
		t.Errorf("defaults missing: %+v", o)
	}
	if QuickOptions().Size <= 0 || PaperOptions().Size != 1000 {
		t.Error("canned options wrong")
	}
}

func TestRunBaselines(t *testing.T) {
	set, err := (Scenario{Family: "acl1", Size: 200, Seed: 1}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	results, err := runBaselines(set, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d baseline results", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Algorithm] = true
		if r.Time <= 0 || r.BytesPerRule <= 0 || r.MemoryBytes <= 0 {
			t.Errorf("%s: degenerate result %+v", r.Algorithm, r)
		}
	}
	for _, want := range []string{NameHiCuts, NameHyperCuts, NameEffiCuts, NameCutSplit} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestFigure8(t *testing.T) {
	res, err := Figure8(microScenarios(), microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Results) != 5 {
			t.Fatalf("%s: %d algorithms", row.Scenario.Name(), len(row.Results))
		}
		if _, ok := row.Get(NameNeuroCuts); !ok {
			t.Fatalf("%s: NeuroCuts missing", row.Scenario.Name())
		}
		if _, ok := row.Get("nonexistent"); ok {
			t.Fatal("Get should miss unknown algorithms")
		}
	}
	if res.Summary.Count != 3 {
		t.Errorf("summary count %d", res.Summary.Count)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "acl1_120") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestFigure9(t *testing.T) {
	res, err := Figure9(microScenarios()[:2], microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.MedianBytesRule <= 0 {
		t.Error("median bytes/rule should be positive")
	}
	if res.VsEffiCuts.Count != 2 || res.VsCutSplit.Count != 2 {
		t.Error("summaries incomplete")
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("missing header")
	}
}

func TestFigure10(t *testing.T) {
	res, err := Figure10(microScenarios()[:2], microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 || len(res.SpaceImprovements) != 2 || len(res.TimeImprovements) != 2 {
		t.Fatalf("incomplete result %+v", res)
	}
	// Sorted ascending.
	for i := 1; i < len(res.SpaceImprovements); i++ {
		if res.SpaceImprovements[i] < res.SpaceImprovements[i-1] {
			t.Error("space improvements not sorted")
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 10(a)") || !strings.Contains(buf.String(), "Figure 10(b)") {
		t.Error("missing panels")
	}
}

func TestFigure11(t *testing.T) {
	res, err := Figure11(microScenarios()[:1], microOptions(), []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MedianTime <= 0 || p.MedianBytesPerRule <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("missing header")
	}
	// Default c values.
	res2, err := Figure11(microScenarios()[:1], microOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Points) != 4 {
		t.Errorf("default sweep has %d points", len(res2.Points))
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(Scenario{Family: "fw5", Size: 120, Seed: 1}, microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 4 {
		t.Fatalf("snapshots = %d", len(res.Snapshots))
	}
	labels := []string{"random policy", "mid training", "converged", "HiCuts"}
	for i, s := range res.Snapshots {
		if s.Label != labels[i] {
			t.Errorf("snapshot %d label %q", i, s.Label)
		}
		if len(s.LevelSizes) == 0 || s.LevelSizes[0] != 1 {
			t.Errorf("snapshot %q level sizes %v", s.Label, s.LevelSizes)
		}
		if s.Time <= 0 || s.MemoryBytes <= 0 {
			t.Errorf("snapshot %q degenerate metrics", s.Label)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "fw5_120") {
		t.Error("missing scenario name")
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(Scenario{Family: "acl4", Size: 120, Seed: 1}, microOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variations) != 3 {
		t.Fatalf("variations = %d", len(res.Variations))
	}
	for _, v := range res.Variations {
		if v.Time <= 0 || v.Nodes <= 0 {
			t.Errorf("degenerate variation %+v", v)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("missing header")
	}
	// Default variation count.
	res2, err := Figure6(Scenario{Family: "acl4", Size: 100, Seed: 2}, microOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Variations) != 4 {
		t.Errorf("default variations = %d", len(res2.Variations))
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "10000000", "60000", "512", "tanh", "5e-05", "0.01", "0.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}
