package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
)

// tinyConfig returns a training configuration small enough for unit tests
// (a few hundred environment steps) while exercising the full pipeline.
func tinyConfig() Config {
	cfg := Scaled(1000)
	cfg.MaxTimesteps = 600
	cfg.BatchTimesteps = 200
	cfg.MaxTimestepsPerRollout = 400
	cfg.HiddenLayers = []int{32}
	cfg.Workers = 2
	cfg.PPO.Epochs = 2
	cfg.PPO.MinibatchSize = 64
	cfg.Seed = 3
	return cfg
}

func testSet(t *testing.T, fam string, size int, seed int64) *rule.Set {
	t.Helper()
	f, err := classbench.FamilyByName(fam)
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(f, size, seed)
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MaxTimesteps != 10_000_000 || cfg.BatchTimesteps != 60_000 {
		t.Errorf("timestep budgets %d/%d", cfg.MaxTimesteps, cfg.BatchTimesteps)
	}
	if len(cfg.HiddenLayers) != 2 || cfg.HiddenLayers[0] != 512 {
		t.Errorf("hidden layers %v", cfg.HiddenLayers)
	}
	if cfg.PPO.LearningRate != 5e-5 || cfg.PPO.ClipParam != 0.3 {
		t.Errorf("PPO params %+v", cfg.PPO)
	}
	if cfg.MaxTimestepsPerRollout != 15000 {
		t.Errorf("rollout truncation %d", cfg.MaxTimestepsPerRollout)
	}
	// Scaled keeps the algorithm but shrinks budgets.
	s := Scaled(100)
	if s.MaxTimesteps >= cfg.MaxTimesteps || s.BatchTimesteps >= cfg.BatchTimesteps {
		t.Error("Scaled did not shrink budgets")
	}
	if got := Scaled(0); got.MaxTimesteps != cfg.MaxTimesteps {
		t.Error("Scaled(0) should return the full config")
	}
}

func TestTrainerProducesCorrectTree(t *testing.T) {
	set := testSet(t, "acl1", 120, 1)
	tr := NewTrainer(set, tinyConfig())
	history, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(history) == 0 {
		t.Fatal("no training iterations ran")
	}
	best, objective := tr.BestTree()
	if best == nil {
		t.Fatal("no best tree")
	}
	if objective <= 0 {
		t.Errorf("objective %v should be positive (classification time)", objective)
	}
	if tr.TreesBuilt() == 0 || tr.TotalSteps() == 0 {
		t.Error("counters not updated")
	}
	// The learned tree must classify identically to linear search.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		p := rule.Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: uint8(rng.Intn(256)),
		}
		want, okW := set.Match(p)
		got, okG := best.Classify(p)
		if okW != okG || (okW && got.Priority != want.Priority) {
			t.Fatalf("mismatch on %v", p)
		}
	}
	// History invariants: timesteps increase, best objective never worsens.
	for i := 1; i < len(history); i++ {
		if history[i].Timesteps < history[i-1].Timesteps {
			t.Error("timesteps decreased")
		}
		if history[i].BestObjective > history[i-1].BestObjective {
			t.Error("best objective worsened")
		}
	}
}

func TestTrainerImprovesOverRandomPolicy(t *testing.T) {
	// With a modest budget, the best tree found by training should be no
	// worse than the first tree a random (untrained) policy produces.
	set := testSet(t, "fw5", 150, 2)
	cfg := tinyConfig()
	cfg.MaxTimesteps = 1500
	cfg.BatchTimesteps = 400
	cfg.TimeSpaceCoeff = 1
	tr := NewTrainer(set, cfg)
	firstTree, firstMetrics := tr.SampleTree(1, false)
	if firstTree == nil {
		t.Fatal("sample tree failed")
	}
	if _, err := tr.Train(); err != nil {
		t.Fatal(err)
	}
	_, bestObjective := tr.BestTree()
	if bestObjective > float64(firstMetrics.ClassificationTime) {
		t.Errorf("best objective %v worse than a random tree's %d", bestObjective, firstMetrics.ClassificationTime)
	}
}

func TestSampleTreeGreedyIsDeterministic(t *testing.T) {
	set := testSet(t, "acl4", 100, 3)
	tr := NewTrainer(set, tinyConfig())
	a, am := tr.SampleTree(7, true)
	b, bm := tr.SampleTree(8, true)
	if a == nil || b == nil {
		t.Fatal("sampling failed")
	}
	if am.ClassificationTime != bm.ClassificationTime || am.MemoryBytes != bm.MemoryBytes {
		t.Error("greedy trees should be identical regardless of seed")
	}
	// Stochastic sampling with different seeds typically differs (Figure 6);
	// at minimum it must produce valid trees.
	c, _ := tr.SampleTree(7, false)
	d, _ := tr.SampleTree(8, false)
	if c == nil || d == nil {
		t.Fatal("stochastic sampling failed")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	set := testSet(t, "acl1", 80, 4)
	cfg := tinyConfig()
	tr := NewTrainer(set, cfg)
	path := filepath.Join(t.TempDir(), "policy.ckpt")
	if err := tr.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	// A fresh trainer with different seed loads the checkpoint and produces
	// the same greedy tree.
	beforeTree, beforeMetrics := tr.SampleTree(1, true)
	_ = beforeTree
	cfg2 := cfg
	cfg2.Seed = 99
	tr2 := NewTrainer(set, cfg2)
	if err := tr2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	_, afterMetrics := tr2.SampleTree(1, true)
	if beforeMetrics.ClassificationTime != afterMetrics.ClassificationTime ||
		beforeMetrics.MemoryBytes != afterMetrics.MemoryBytes {
		t.Error("checkpointed policy behaves differently")
	}
	if err := tr2.LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("missing checkpoint should fail")
	}
}

func TestSpaceOptimizedConfigUsesLogScale(t *testing.T) {
	set := testSet(t, "fw1", 120, 5)
	cfg := tinyConfig()
	cfg.TimeSpaceCoeff = 0
	cfg.Scale = env.ScaleLog
	cfg.Partition = env.PartitionEffiCuts
	cfg.MaxTimesteps = 500
	cfg.BatchTimesteps = 250
	tr := NewTrainer(set, cfg)
	if _, err := tr.Train(); err != nil {
		t.Fatal(err)
	}
	best, obj := tr.BestTree()
	if best == nil {
		t.Fatal("no best tree")
	}
	// Objective is log(bytes), so it should be a smallish positive number.
	if obj <= 0 || obj > 30 {
		t.Errorf("log-space objective %v out of range", obj)
	}
}

func TestTrainerRespectsIterationCap(t *testing.T) {
	set := testSet(t, "ipc1", 100, 6)
	cfg := tinyConfig()
	cfg.MaxIterations = 1
	cfg.MaxTimesteps = 1 << 30
	tr := NewTrainer(set, cfg)
	history, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Errorf("ran %d iterations, want 1", len(history))
	}
}

func TestConfigWithDefaults(t *testing.T) {
	cfg := Config{TimeSpaceCoeff: 5}.withDefaults()
	if cfg.TimeSpaceCoeff != 1 {
		t.Error("coefficient should clamp")
	}
	cfg = Config{TimeSpaceCoeff: -1}.withDefaults()
	if cfg.TimeSpaceCoeff != 0 {
		t.Error("coefficient should clamp to zero")
	}
	if cfg.Binth <= 0 || cfg.Workers <= 0 || cfg.MaxTimesteps <= 0 || len(cfg.HiddenLayers) == 0 {
		t.Error("defaults missing")
	}
	if cfg.PPO.LearningRate <= 0 {
		t.Error("PPO defaults missing")
	}
}

func TestTrainedNeuroCutsCompetitiveWithHiCutsOnTinyProblem(t *testing.T) {
	// End-to-end sanity on a small classifier: with a modest budget the best
	// NeuroCuts tree should be within 2x of HiCuts on classification time
	// (the paper's claim is that with a full budget it beats HiCuts; here we
	// only verify the learning signal points the right way).
	set := testSet(t, "acl5", 150, 7)
	cfg := tinyConfig()
	cfg.MaxTimesteps = 2500
	cfg.BatchTimesteps = 500
	tr := NewTrainer(set, cfg)
	if _, err := tr.Train(); err != nil {
		t.Fatal(err)
	}
	best, _ := tr.BestTree()
	hi, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nc := best.ComputeMetrics().ClassificationTime
	hc := hi.ComputeMetrics().ClassificationTime
	// A few thousand steps is a sliver of the paper's 10M budget and HiCuts
	// may use 64-way cuts while the NeuroCuts action space tops out at 32,
	// so only require the learned tree to be in the same ballpark here; the
	// benchmark harness measures the trained comparison properly.
	if nc > hc*3+2 {
		t.Errorf("NeuroCuts time %d is far worse than HiCuts %d on a small problem", nc, hc)
	}
}
