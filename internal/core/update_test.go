package core

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// buildTestTree constructs a tree (with HiCuts, for speed) over a generated
// classifier, returning both.
func buildTestTree(t *testing.T, fam string, size int, seed int64) (*tree.Tree, *rule.Set) {
	t.Helper()
	f, _ := classbench.FamilyByName(fam)
	set := classbench.Generate(f, size, seed)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr, set
}

func checkAgainst(t *testing.T, tr *tree.Tree, set *rule.Set, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1500; i++ {
		p := rule.Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: uint8(rng.Intn(256)),
		}
		want, okW := set.Match(p)
		got, okG := tr.Classify(p)
		if okW != okG || (okW && got.Priority != want.Priority) {
			t.Fatalf("mismatch on %v: tree %v/%v linear %v/%v", p, got.Priority, okG, want.Priority, okW)
		}
	}
}

func TestInsertRulePreservesCorrectness(t *testing.T) {
	tr, set := buildTestTree(t, "acl1", 200, 1)
	u := NewUpdater(tr, 0)

	// Insert a new highest-specificity rule "in front of" the classifier by
	// giving it a priority below every existing rule (the linear-search
	// reference gets the same rule at the same position).
	newRule := rule.NewWildcardRule(-1)
	newRule.Ranges[rule.DimSrcIP] = rule.PrefixRange(0x0A0A0A00, 24, 32)
	newRule.Ranges[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
	newRule.ID = 9999

	if err := u.InsertRule(newRule); err != nil {
		t.Fatal(err)
	}
	refRules := append([]rule.Rule{newRule}, set.Rules()...)
	ref := rule.NewSetKeepPriorities(refRules)

	if u.Updates() != 1 {
		t.Errorf("updates = %d", u.Updates())
	}
	if tr.RuleCount != set.Len()+1 {
		t.Errorf("rule count %d, want %d", tr.RuleCount, set.Len()+1)
	}
	checkAgainst(t, tr, ref, 11)

	// A packet inside the new rule must now hit it.
	p := rule.Packet{SrcIP: 0x0A0A0A05, DstIP: 1, SrcPort: 80, DstPort: 80, Proto: 6}
	got, ok := tr.Classify(p)
	if !ok || got.ID != 9999 {
		t.Errorf("new rule not matched: %v %v", got, ok)
	}
}

func TestInsertRuleIntoPartitionedTree(t *testing.T) {
	f, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(f, 150, 2)
	// Build a tree whose root is a partition node.
	tr := tree.New(set, 16)
	b := tree.NewBuilderFromTree(tr)
	if err := b.ApplyPartitionByCoverage(rule.DimSrcIP, 0.5); err != nil {
		t.Skipf("partition not applicable to this classifier: %v", err)
	}
	for !b.Done() {
		if err := b.ApplyCut(rule.DimDstIP, 8); err != nil {
			b.Skip()
		}
	}
	u := NewUpdater(tr, 0)
	newRule := rule.NewWildcardRule(-1)
	newRule.Ranges[rule.DimDstPort] = rule.Range{Lo: 4443, Hi: 4443}
	newRule.ID = 7777
	if err := u.InsertRule(newRule); err != nil {
		t.Fatal(err)
	}
	ref := rule.NewSetKeepPriorities(append([]rule.Rule{newRule}, set.Rules()...))
	checkAgainst(t, tr, ref, 13)
}

func TestRemoveRule(t *testing.T) {
	tr, set := buildTestTree(t, "acl2", 200, 3)
	u := NewUpdater(tr, 0)

	// Remove a middle-priority rule from the tree and from the reference.
	victim := set.Len() / 2
	removed := u.RemoveByPriority(victim)
	if removed != 1 {
		t.Fatalf("removed %d rules, want 1", removed)
	}
	if tr.RuleCount != set.Len()-1 {
		t.Errorf("rule count %d", tr.RuleCount)
	}
	refRules := make([]rule.Rule, 0, set.Len()-1)
	for i, r := range set.Rules() {
		if i == victim {
			continue
		}
		refRules = append(refRules, r)
	}
	ref := rule.NewSetKeepPriorities(refRules)
	checkAgainst(t, tr, ref, 17)

	// Removing a non-existent priority is a no-op.
	if got := u.RemoveByPriority(10_000); got != 0 {
		t.Errorf("removed %d, want 0", got)
	}
}

func TestUpdaterRetrainThreshold(t *testing.T) {
	tr, _ := buildTestTree(t, "ipc1", 100, 4)
	u := NewUpdater(tr, 3)
	if u.NeedsRetrain() {
		t.Error("fresh updater should not need retraining")
	}
	for i := 0; i < 3; i++ {
		r := rule.NewWildcardRule(-(i + 1))
		r.Ranges[rule.DimSrcPort] = rule.Range{Lo: uint64(40000 + i), Hi: uint64(40000 + i)}
		if err := u.InsertRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if !u.NeedsRetrain() {
		t.Error("threshold reached, retraining should be flagged")
	}
	// Default threshold is 10% of the rule count.
	u2 := NewUpdater(tr, 0)
	if u2.RetrainThreshold < 1 {
		t.Error("default threshold missing")
	}
}

func TestUpdaterErrors(t *testing.T) {
	u := &Updater{}
	if err := u.InsertRule(rule.NewWildcardRule(0)); err == nil {
		t.Error("nil tree insert should fail")
	}
	if got := u.RemoveByPriority(0); got != 0 {
		t.Error("nil tree remove should be a no-op")
	}
}
