package core

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// TestTrainerWithTrafficTrace trains NeuroCuts under the traffic-aware
// objective (average classification time over a trace) and verifies that the
// best tree is still an exact classifier and that its average lookup time
// over the trace is no worse than its worst-case time.
func TestTrainerWithTrafficTrace(t *testing.T) {
	set := testSet(t, "acl2", 120, 5)
	traceEntries := classbench.GenerateTrace(set, 400, 6)
	packets := make([]rule.Packet, len(traceEntries))
	for i, e := range traceEntries {
		packets[i] = e.Key
	}

	cfg := tinyConfig()
	cfg.TrafficTrace = packets
	tr := NewTrainer(set, cfg)
	if _, err := tr.Train(); err != nil {
		t.Fatal(err)
	}
	best, objective := tr.BestTree()
	if best == nil {
		t.Fatal("no best tree")
	}
	avg := best.AverageLookupTime(packets)
	worst := float64(best.ComputeMetrics().ClassificationTime)
	if avg <= 0 || avg > worst {
		t.Errorf("average %v out of range (worst %v)", avg, worst)
	}
	// The tracked objective is the average lookup time of the best tree.
	if objective <= 0 || objective > worst {
		t.Errorf("objective %v out of range", objective)
	}
	// Correctness still holds.
	for _, e := range traceEntries {
		got, ok := best.Classify(e.Key)
		if !ok || got.Priority != e.MatchRule {
			t.Fatalf("traffic-trained tree misclassified %v", e.Key)
		}
	}
}
