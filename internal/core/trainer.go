package core

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"

	"neurocuts/internal/env"
	"neurocuts/internal/nn"
	"neurocuts/internal/rl"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Trainer learns a NeuroCuts policy for one classifier and keeps the best
// decision tree found during training.
type Trainer struct {
	cfg Config
	set *rule.Set

	learner *rl.PPO
	rng     *rand.Rand

	mu            sync.Mutex
	bestTree      *tree.Tree
	bestObjective float64
	totalSteps    int
	treesBuilt    int
	history       []IterationStats
}

// IterationStats records the outcome of one training iteration (one batch
// collection plus one PPO update).
type IterationStats struct {
	// Iteration is the 1-based iteration index.
	Iteration int
	// Timesteps is the cumulative number of environment steps so far.
	Timesteps int
	// Rollouts is the number of trees built in this iteration.
	Rollouts int
	// MeanReturn is the mean 1-step return of the batch.
	MeanReturn float64
	// BestObjective is the best (lowest) tree objective seen so far.
	BestObjective float64
	// MeanTreeDepth and MeanTreeBytes average the finished trees of this
	// iteration.
	MeanTreeDepth float64
	MeanTreeBytes float64
	// PPO carries the update statistics.
	PPO rl.Stats
}

// NewTrainer creates a trainer for the classifier.
func NewTrainer(s *rule.Set, cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	policy := nn.NewActorCritic(env.ObsSize, rule.NumDims, env.NumActions, cfg.HiddenLayers, rng)
	return &Trainer{
		cfg:           cfg,
		set:           s,
		learner:       rl.New(policy, cfg.PPO),
		rng:           rng,
		bestObjective: math.Inf(1),
	}
}

// Config returns the trainer's (defaulted) configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Policy returns the underlying actor-critic network.
func (t *Trainer) Policy() *nn.ActorCritic { return t.learner.Policy }

// BestTree returns the best tree found so far and its objective value
// (lower is better), or nil before any rollout completed.
func (t *Trainer) BestTree() (*tree.Tree, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bestTree, t.bestObjective
}

// History returns the per-iteration statistics collected so far.
func (t *Trainer) History() []IterationStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]IterationStats, len(t.history))
	copy(out, t.history)
	return out
}

// TotalSteps returns the cumulative number of environment steps taken.
func (t *Trainer) TotalSteps() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalSteps
}

// TreesBuilt returns the number of complete rollouts performed.
func (t *Trainer) TreesBuilt() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.treesBuilt
}

// rolloutResult is what one worker returns for one generated tree.
type rolloutResult struct {
	experiences []env.Experience
	objective   float64
	metrics     tree.Metrics
	tr          *tree.Tree
}

// runRollout builds one tree with the current (shared, read-only) policy.
// Action sampling uses the worker's private RNG.
func (t *Trainer) runRollout(e *env.Env, rng *rand.Rand, greedy bool) rolloutResult {
	e.Reset()
	for !e.Done() {
		n := e.Current()
		obs := e.Observation(n)
		mask := e.ActionMask(n)
		d := t.learner.SelectAction(obs, mask, rng, greedy)
		exp := env.Experience{LogProb: d.LogProb, Value: d.Value}
		if err := e.Step(rule.Dimension(d.Dim), d.Act, exp); err != nil {
			// Step only fails for masked/out-of-range actions, which
			// SelectAction cannot produce; treat it as fatal.
			panic(fmt.Sprintf("core: rollout step failed: %v", err))
		}
	}
	exps, tr, err := e.FinishRollout()
	if err != nil {
		panic(fmt.Sprintf("core: finishing rollout: %v", err))
	}
	return rolloutResult{
		experiences: exps,
		objective:   e.TreeObjective(tr),
		metrics:     tr.ComputeMetrics(),
		tr:          tr,
	}
}

// collectBatch runs parallel rollouts until at least cfg.BatchTimesteps
// experiences are available and returns them along with iteration-level
// aggregates.
func (t *Trainer) collectBatch() ([]rl.Sample, IterationStats) {
	type job struct{ seed int64 }
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []rl.Sample
		stats   IterationStats
		sumRet  float64
		nRet    int
	)
	jobs := make(chan job)
	workers := t.cfg.Workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := env.New(t.set, t.cfg.envConfig())
			for j := range jobs {
				rng := rand.New(rand.NewSource(j.seed))
				res := t.runRollout(e, rng, false)

				mu.Lock()
				for _, x := range res.experiences {
					samples = append(samples, rl.Sample{
						Obs:     x.Obs,
						Dim:     x.Dim,
						Act:     x.Act,
						ActMask: x.Mask,
						Return:  x.Return,
						Value:   x.Value,
						LogProb: x.LogProb,
					})
					sumRet += x.Return
					nRet++
				}
				stats.Rollouts++
				stats.MeanTreeDepth += float64(res.metrics.ClassificationTime)
				stats.MeanTreeBytes += float64(res.metrics.MemoryBytes)
				mu.Unlock()

				t.recordTree(res)
			}
		}()
	}

	// Feed jobs until enough samples are collected. Because workers pull
	// jobs as they finish, we overshoot by at most (workers) rollouts.
	go func() {
		for i := 0; ; i++ {
			mu.Lock()
			enough := len(samples) >= t.cfg.BatchTimesteps
			mu.Unlock()
			if enough {
				break
			}
			jobs <- job{seed: t.cfg.Seed + int64(t.totalStepsSnapshot()) + int64(i)*7919}
		}
		close(jobs)
	}()
	wg.Wait()

	if stats.Rollouts > 0 {
		stats.MeanTreeDepth /= float64(stats.Rollouts)
		stats.MeanTreeBytes /= float64(stats.Rollouts)
	}
	if nRet > 0 {
		stats.MeanReturn = sumRet / float64(nRet)
	}
	return samples, stats
}

func (t *Trainer) totalStepsSnapshot() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalSteps
}

// recordTree updates the best-tree tracking and rollout counters.
func (t *Trainer) recordTree(res rolloutResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.treesBuilt++
	t.totalSteps += len(res.experiences)
	if res.objective < t.bestObjective {
		t.bestObjective = res.objective
		t.bestTree = res.tr
	}
}

// Train runs training until the timestep budget (or iteration cap) is
// exhausted and returns the per-iteration history. The best tree is
// available from BestTree afterwards.
func (t *Trainer) Train() ([]IterationStats, error) {
	iteration := 0
	for {
		t.mu.Lock()
		done := t.totalSteps >= t.cfg.MaxTimesteps ||
			(t.cfg.MaxIterations > 0 && iteration >= t.cfg.MaxIterations)
		t.mu.Unlock()
		if done {
			break
		}
		iteration++

		samples, stats := t.collectBatch()
		ppoStats, err := t.learner.Update(samples, t.rng)
		if err != nil {
			return t.History(), fmt.Errorf("core: PPO update at iteration %d: %w", iteration, err)
		}
		stats.Iteration = iteration
		stats.PPO = ppoStats

		t.mu.Lock()
		stats.Timesteps = t.totalSteps
		stats.BestObjective = t.bestObjective
		t.history = append(t.history, stats)
		t.mu.Unlock()
	}
	if t.bestTree == nil {
		return t.History(), fmt.Errorf("core: training produced no tree (budget too small?)")
	}
	return t.History(), nil
}

// SampleTree draws one tree from the current stochastic policy (used for
// Figure 6's tree-variation visualisation and for evaluation). greedy=true
// takes the mode of the policy instead of sampling.
func (t *Trainer) SampleTree(seed int64, greedy bool) (*tree.Tree, tree.Metrics) {
	e := env.New(t.set, t.cfg.envConfig())
	res := t.runRollout(e, rand.New(rand.NewSource(seed)), greedy)
	return res.tr, res.metrics
}

// SaveCheckpoint writes the policy weights to path.
func (t *Trainer) SaveCheckpoint(path string) error {
	data, err := t.learner.Policy.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: serialising policy: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores policy weights previously written by
// SaveCheckpoint. The checkpoint must have been produced with the same
// network layout.
func (t *Trainer) LoadCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: reading checkpoint: %w", err)
	}
	restored := &nn.ActorCritic{}
	if err := restored.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if restored.ObsSize != env.ObsSize {
		return fmt.Errorf("core: checkpoint observation size %d does not match %d", restored.ObsSize, env.ObsSize)
	}
	t.learner = rl.New(restored, t.cfg.PPO)
	return nil
}
