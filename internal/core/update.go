package core

import (
	"fmt"
	"sort"

	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// This file implements the classifier-update handling described in Section 4
// of the paper: small updates (a few rules added or removed) are applied to
// the existing decision tree in place — new rules are inserted according to
// the existing structure and deleted rules are removed from the leaves —
// while large or accumulated updates trigger retraining.

// Updater applies incremental rule updates to a trained tree and tracks when
// enough updates have accumulated that retraining is recommended.
type Updater struct {
	// Tree is the decision tree being maintained.
	Tree *tree.Tree
	// RetrainThreshold is the number of applied updates after which
	// NeedsRetrain reports true (the paper retrains "when enough small
	// updates accumulate").
	RetrainThreshold int

	updates int
}

// NewUpdater wraps a tree. threshold <= 0 selects a default of 10% of the
// classifier size (at least 1).
func NewUpdater(t *tree.Tree, threshold int) *Updater {
	if threshold <= 0 {
		threshold = t.RuleCount / 10
		if threshold < 1 {
			threshold = 1
		}
	}
	return &Updater{Tree: t, RetrainThreshold: threshold}
}

// Updates returns the number of updates applied since the tree was built.
func (u *Updater) Updates() int { return u.updates }

// NeedsRetrain reports whether enough updates have accumulated that the
// caller should re-run training on the updated classifier.
func (u *Updater) NeedsRetrain() bool { return u.updates >= u.RetrainThreshold }

// InsertRule adds a rule to the existing tree structure: the rule is pushed
// into every leaf whose box it overlaps, keeping each leaf's rule list in
// priority order. The tree's rule count grows by one.
func (u *Updater) InsertRule(r rule.Rule) error {
	if u.Tree == nil || u.Tree.Root == nil {
		return fmt.Errorf("core: updater has no tree")
	}
	inserted := insertIntoSubtree(u.Tree.Root, r)
	if !inserted {
		return fmt.Errorf("core: rule %v does not overlap the tree's root box", r)
	}
	u.Tree.RuleCount++
	u.updates++
	return nil
}

// insertIntoSubtree inserts r into every overlapping leaf below n and
// reports whether at least one leaf received it.
func insertIntoSubtree(n *tree.Node, r rule.Rule) bool {
	if !r.OverlapsBox(n.Box) {
		return false
	}
	if n.IsLeaf() {
		n.Rules = append(n.Rules, r)
		sort.SliceStable(n.Rules, func(i, j int) bool { return n.Rules[i].Priority < n.Rules[j].Priority })
		return true
	}
	if n.Kind == tree.KindPartition {
		// Rules of a partition node are split into disjoint groups; placing
		// the new rule in a single group keeps classification correct
		// because every group is consulted during lookup. Choose the child
		// with the fewest rule references to keep the partition balanced.
		best := -1
		bestRefs := 0
		for i, c := range n.Children {
			refs := countRuleRefs(c)
			if best < 0 || refs < bestRefs {
				best, bestRefs = i, refs
			}
		}
		if best < 0 {
			return false
		}
		return insertIntoSubtree(n.Children[best], r)
	}
	// Cut node: descend into every overlapping child.
	any := false
	for _, c := range n.Children {
		if insertIntoSubtree(c, r) {
			any = true
		}
	}
	return any
}

func countRuleRefs(n *tree.Node) int {
	total := 0
	if n.IsLeaf() {
		return len(n.Rules)
	}
	for _, c := range n.Children {
		total += countRuleRefs(c)
	}
	return total
}

// RemoveRule deletes every stored copy of the rules selected by match from
// the tree's leaves and returns the number of distinct priorities removed.
// The tree's rule count shrinks accordingly.
func (u *Updater) RemoveRule(match func(rule.Rule) bool) int {
	if u.Tree == nil || u.Tree.Root == nil {
		return 0
	}
	removedPriorities := map[int]struct{}{}
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		if n.IsLeaf() {
			kept := n.Rules[:0]
			for _, r := range n.Rules {
				if match(r) {
					removedPriorities[r.Priority] = struct{}{}
					continue
				}
				kept = append(kept, r)
			}
			n.Rules = kept
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(u.Tree.Root)
	if len(removedPriorities) > 0 {
		u.Tree.RuleCount -= len(removedPriorities)
		if u.Tree.RuleCount < 0 {
			u.Tree.RuleCount = 0
		}
		u.updates += len(removedPriorities)
	}
	return len(removedPriorities)
}

// RemoveByPriority removes the rule with the given priority value.
func (u *Updater) RemoveByPriority(priority int) int {
	return u.RemoveRule(func(r rule.Rule) bool { return r.Priority == priority })
}
