// Package core implements NeuroCuts itself: the deep-RL trainer that learns
// to build packet classification decision trees (Algorithm 1 of the paper),
// including parallel rollout collection, best-tree tracking, policy
// checkpointing, tree sampling from the stochastic policy, and incremental
// handling of classifier updates.
package core

import (
	"runtime"

	"neurocuts/internal/env"
	"neurocuts/internal/rl"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Config gathers every NeuroCuts hyperparameter. The defaults of
// DefaultConfig correspond to Table 1 of the paper; Scaled returns a variant
// with budgets reduced for laptop-scale runs (the shape of the results is
// preserved, only the search budget shrinks).
type Config struct {
	// TimeSpaceCoeff is c in Equation 5 (1 = optimise classification time,
	// 0 = optimise memory footprint).
	TimeSpaceCoeff float64
	// Partition selects the allowed top-node partitioning
	// ({none, simple, EffiCuts} in Table 1).
	Partition env.PartitionMode
	// Scale is the reward scaling function f ({x, log(x)} in Table 1).
	Scale env.RewardScale
	// Binth is the leaf threshold of the generated trees.
	Binth int

	// MaxTimestepsPerRollout truncates a single tree rollout
	// ({1000, 5000, 15000} in Table 1).
	MaxTimestepsPerRollout int
	// MaxDepth truncates subtrees deeper than this ({100, 500} in Table 1).
	MaxDepth int
	// MaxTimesteps is the total training budget in environment steps
	// (10,000,000 in Table 1).
	MaxTimesteps int
	// BatchTimesteps is the number of environment steps collected per PPO
	// update (60,000 in Table 1).
	BatchTimesteps int
	// MaxIterations optionally caps the number of PPO updates regardless of
	// the timestep budget (0 means no cap).
	MaxIterations int

	// HiddenLayers is the policy network trunk layout ([512, 512] in
	// Table 1; weight sharing between the actor and critic is implicit in
	// the shared trunk).
	HiddenLayers []int
	// PPO holds the PPO hyperparameters (learning rate 5e-5, clip 0.3,
	// entropy coefficient 0.01, ... in Table 1).
	PPO rl.Config

	// Workers is the number of parallel rollout workers (the paper runs four
	// CPU cores per NeuroCuts instance). 0 selects GOMAXPROCS.
	Workers int
	// Seed makes training reproducible.
	Seed int64

	// TrafficTrace, when non-empty, optimises the average classification
	// time over these packets instead of the worst case — the traffic-aware
	// objective the paper's conclusion proposes as future work.
	TrafficTrace []rule.Packet
}

// DefaultConfig returns the full-scale hyperparameters of Table 1.
func DefaultConfig() Config {
	return Config{
		TimeSpaceCoeff:         1.0,
		Partition:              env.PartitionNone,
		Scale:                  env.ScaleLinear,
		Binth:                  tree.DefaultBinth,
		MaxTimestepsPerRollout: 15000,
		MaxDepth:               100,
		MaxTimesteps:           10_000_000,
		BatchTimesteps:         60_000,
		HiddenLayers:           []int{512, 512},
		PPO:                    rl.DefaultConfig(),
		Workers:                4,
		Seed:                   1,
	}
}

// Scaled returns a configuration with the same algorithm but budgets and
// network size reduced by roughly the given divisor, for laptop-scale
// experiments and tests. divisor <= 1 returns the Table 1 configuration.
func Scaled(divisor int) Config {
	cfg := DefaultConfig()
	if divisor <= 1 {
		return cfg
	}
	cfg.MaxTimesteps = max(2000, cfg.MaxTimesteps/divisor)
	cfg.BatchTimesteps = max(256, cfg.BatchTimesteps/divisor)
	cfg.MaxTimestepsPerRollout = max(500, cfg.MaxTimestepsPerRollout/divisor)
	cfg.HiddenLayers = []int{64, 64}
	cfg.PPO.MinibatchSize = 128
	cfg.PPO.Epochs = 5
	cfg.PPO.LearningRate = 1e-3
	cfg.Workers = min(4, runtime.GOMAXPROCS(0))
	return cfg
}

func (c Config) withDefaults() Config {
	if c.TimeSpaceCoeff < 0 {
		c.TimeSpaceCoeff = 0
	}
	if c.TimeSpaceCoeff > 1 {
		c.TimeSpaceCoeff = 1
	}
	if c.Binth <= 0 {
		c.Binth = tree.DefaultBinth
	}
	if c.MaxTimestepsPerRollout <= 0 {
		c.MaxTimestepsPerRollout = 5000
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 100
	}
	if c.MaxTimesteps <= 0 {
		c.MaxTimesteps = 100_000
	}
	if c.BatchTimesteps <= 0 {
		c.BatchTimesteps = 4096
	}
	if len(c.HiddenLayers) == 0 {
		c.HiddenLayers = []int{64, 64}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PPO.LearningRate == 0 {
		c.PPO = rl.DefaultConfig()
		c.PPO.MinibatchSize = 256
		c.PPO.Epochs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// envConfig derives the environment configuration from the trainer
// configuration.
func (c Config) envConfig() env.Config {
	return env.Config{
		TimeSpaceCoeff:     c.TimeSpaceCoeff,
		Scale:              c.Scale,
		Partition:          c.Partition,
		Binth:              c.Binth,
		MaxStepsPerRollout: c.MaxTimestepsPerRollout,
		MaxDepth:           c.MaxDepth,
		TrafficTrace:       c.TrafficTrace,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
