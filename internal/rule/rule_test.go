package rule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimensionBits(t *testing.T) {
	cases := []struct {
		d    Dimension
		bits uint
		max  uint64
	}{
		{DimSrcIP, 32, 0xFFFFFFFF},
		{DimDstIP, 32, 0xFFFFFFFF},
		{DimSrcPort, 16, 0xFFFF},
		{DimDstPort, 16, 0xFFFF},
		{DimProto, 8, 0xFF},
	}
	for _, c := range cases {
		if got := c.d.Bits(); got != c.bits {
			t.Errorf("%s.Bits() = %d, want %d", c.d, got, c.bits)
		}
		if got := c.d.MaxValue(); got != c.max {
			t.Errorf("%s.MaxValue() = %d, want %d", c.d, got, c.max)
		}
	}
	if len(Dimensions()) != NumDims {
		t.Fatalf("Dimensions() has %d entries, want %d", len(Dimensions()), NumDims)
	}
}

func TestDimensionString(t *testing.T) {
	want := map[Dimension]string{
		DimSrcIP: "SrcIP", DimDstIP: "DstIP", DimSrcPort: "SrcPort",
		DimDstPort: "DstPort", DimProto: "Proto",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Dimension(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
	if Dimension(99).String() != "Dim(99)" {
		t.Errorf("unknown dimension string = %q", Dimension(99).String())
	}
}

func TestRangeBasics(t *testing.T) {
	r := Range{Lo: 10, Hi: 20}
	if !r.Contains(10) || !r.Contains(20) || !r.Contains(15) {
		t.Error("Contains should include endpoints and interior")
	}
	if r.Contains(9) || r.Contains(21) {
		t.Error("Contains should exclude values outside")
	}
	if r.Size() != 11 {
		t.Errorf("Size = %d, want 11", r.Size())
	}
	if got := (Range{Lo: 5, Hi: 3}).Size(); got != 0 {
		t.Errorf("inverted range size = %d, want 0", got)
	}
	if !r.Overlaps(Range{Lo: 20, Hi: 30}) {
		t.Error("ranges sharing an endpoint overlap")
	}
	if r.Overlaps(Range{Lo: 21, Hi: 30}) {
		t.Error("disjoint ranges must not overlap")
	}
	if !r.Covers(Range{Lo: 12, Hi: 18}) || r.Covers(Range{Lo: 12, Hi: 22}) {
		t.Error("Covers is containment")
	}
	if got, ok := r.Intersect(Range{Lo: 15, Hi: 30}); !ok || got != (Range{Lo: 15, Hi: 20}) {
		t.Errorf("Intersect = %v,%v", got, ok)
	}
	if _, ok := r.Intersect(Range{Lo: 30, Hi: 40}); ok {
		t.Error("disjoint intersect should report empty")
	}
	if r.String() != "[10, 20]" {
		t.Errorf("String = %q", r.String())
	}
}

func TestFullRange(t *testing.T) {
	for _, d := range Dimensions() {
		fr := FullRange(d)
		if !fr.IsFull(d) {
			t.Errorf("FullRange(%s) not full", d)
		}
		if fr.FractionOf(d) != 1.0 {
			t.Errorf("FullRange(%s).FractionOf = %v", d, fr.FractionOf(d))
		}
	}
	if (Range{Lo: 0, Hi: 100}).IsFull(DimSrcPort) {
		t.Error("partial range reported full")
	}
}

func TestPrefixRange(t *testing.T) {
	// 10.0.0.0/8
	addr, err := ParseIPv4("10.0.0.0")
	if err != nil {
		t.Fatal(err)
	}
	r := PrefixRange(uint64(addr), 8, 32)
	wantLo, _ := ParseIPv4("10.0.0.0")
	wantHi, _ := ParseIPv4("10.255.255.255")
	if r.Lo != uint64(wantLo) || r.Hi != uint64(wantHi) {
		t.Errorf("10.0.0.0/8 = %s", r)
	}
	// /0 is the full space.
	if got := PrefixRange(12345, 0, 32); !got.IsFull(DimSrcIP) {
		t.Errorf("/0 prefix = %s, want full", got)
	}
	// /32 is a single host.
	if got := PrefixRange(uint64(addr), 32, 32); got.Lo != got.Hi || got.Lo != uint64(addr) {
		t.Errorf("/32 prefix = %s", got)
	}
	// Non-aligned address bits below the prefix are masked off.
	a2, _ := ParseIPv4("10.1.2.3")
	if got := PrefixRange(uint64(a2), 16, 32); got.Lo != uint64(a2)&0xFFFF0000 {
		t.Errorf("masking failed: %s", got)
	}
}

func TestPrefixLenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		plen := uint(rng.Intn(33))
		addr := uint64(rng.Uint32())
		r := PrefixRange(addr, plen, 32)
		got, ok := r.PrefixLen(32)
		if !ok {
			t.Fatalf("prefix range %s not recognised as prefix", r)
		}
		if got != plen {
			t.Fatalf("PrefixLen(%s) = %d, want %d", r, got, plen)
		}
	}
	// A non-power-of-two-sized range is not a prefix.
	if _, ok := (Range{Lo: 0, Hi: 2}).PrefixLen(32); ok {
		t.Error("size-3 range misreported as prefix")
	}
	// A power-of-two-sized range that is misaligned is not a prefix.
	if _, ok := (Range{Lo: 1, Hi: 2}).PrefixLen(32); ok {
		t.Error("misaligned range misreported as prefix")
	}
}

func TestParseFormatIPv4(t *testing.T) {
	addr, err := ParseIPv4("192.168.1.7")
	if err != nil {
		t.Fatal(err)
	}
	if addr != 0xC0A80107 {
		t.Fatalf("ParseIPv4 = %#x", addr)
	}
	if FormatIPv4(addr) != "192.168.1.7" {
		t.Fatalf("FormatIPv4 = %q", FormatIPv4(addr))
	}
	if _, err := ParseIPv4("300.1.1.1"); err == nil {
		t.Error("octet out of range should fail")
	}
	if _, err := ParseIPv4("not-an-ip"); err == nil {
		t.Error("garbage should fail")
	}
}

// TestPaperFigure1 reproduces the three-rule classifier of Figure 1 in the
// paper and the matching example discussed in Section 2.1: the packet
// (10.0.0.0, 10.0.0.1, 0, 0, 6) matches all three rules and must be assigned
// to the highest-priority one.
func TestPaperFigure1(t *testing.T) {
	srcIP, _ := ParseIPv4("10.0.0.0")
	dstPrefix, _ := ParseIPv4("10.0.0.0")

	r0 := NewWildcardRule(0)
	r0.Ranges[DimSrcIP] = PrefixRange(uint64(srcIP), 32, 32)
	r0.Ranges[DimDstIP] = PrefixRange(uint64(dstPrefix), 16, 32)

	r1 := NewWildcardRule(1)
	r1.Ranges[DimSrcPort] = Range{Lo: 0, Hi: 1023}
	r1.Ranges[DimDstPort] = Range{Lo: 0, Hi: 1023}
	r1.Ranges[DimProto] = Range{Lo: 6, Hi: 6} // TCP

	r2 := NewWildcardRule(2) // default rule

	set := NewSet([]Rule{r0, r1, r2})
	if !set.HasDefaultRule() {
		t.Fatal("classifier should have a default rule")
	}

	dstIP, _ := ParseIPv4("10.0.0.1")
	pkt := Packet{SrcIP: srcIP, DstIP: dstIP, SrcPort: 0, DstPort: 0, Proto: 6}

	for i, r := range set.Rules() {
		if !r.Matches(pkt) {
			t.Errorf("rule %d should match the example packet", i)
		}
	}
	got, ok := set.Match(pkt)
	if !ok || got.Priority != 0 {
		t.Fatalf("Match = %v, %v; want the priority-0 rule", got, ok)
	}

	// A UDP packet from a different source only matches the default rule.
	other := Packet{SrcIP: 0x01020304, DstIP: dstIP, SrcPort: 53, DstPort: 53, Proto: 17}
	got, ok = set.Match(other)
	if !ok || got.Priority != 2 {
		t.Fatalf("Match(other) = %v, %v; want default rule", got, ok)
	}
}

func TestRuleBoxOperations(t *testing.T) {
	r := NewWildcardRule(0)
	r.Ranges[DimSrcPort] = Range{Lo: 100, Hi: 200}

	var box [NumDims]Range
	for _, d := range Dimensions() {
		box[d] = FullRange(d)
	}
	box[DimSrcPort] = Range{Lo: 150, Hi: 300}
	if !r.OverlapsBox(box) {
		t.Error("rule should overlap box sharing [150,200]")
	}
	if r.CoveredByBox(box) {
		t.Error("rule is not fully inside the box")
	}
	box[DimSrcPort] = Range{Lo: 0, Hi: 65535}
	if !r.CoveredByBox(box) {
		t.Error("rule should be covered by the full box")
	}
	box[DimSrcPort] = Range{Lo: 300, Hi: 400}
	if r.OverlapsBox(box) {
		t.Error("disjoint box should not overlap")
	}
}

func TestRuleWildcardsAndCoverage(t *testing.T) {
	r := NewWildcardRule(0)
	if r.WildcardCount() != NumDims {
		t.Errorf("wildcard rule has %d wildcards", r.WildcardCount())
	}
	r.Ranges[DimProto] = Range{Lo: 6, Hi: 6}
	if r.WildcardCount() != NumDims-1 {
		t.Errorf("WildcardCount = %d", r.WildcardCount())
	}
	if r.IsWildcard(DimProto) {
		t.Error("proto no longer wildcard")
	}
	if got := r.Coverage(DimProto); got > 0.004 {
		t.Errorf("proto coverage = %v", got)
	}
	if got := r.Coverage(DimSrcIP); got != 1.0 {
		t.Errorf("full coverage = %v", got)
	}
}

func TestRuleOverlapsCoversEqual(t *testing.T) {
	a := NewWildcardRule(0)
	a.Ranges[DimSrcPort] = Range{Lo: 0, Hi: 100}
	b := NewWildcardRule(1)
	b.Ranges[DimSrcPort] = Range{Lo: 50, Hi: 150}
	c := NewWildcardRule(2)
	c.Ranges[DimSrcPort] = Range{Lo: 200, Hi: 300}

	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Error("overlap detection wrong")
	}
	full := NewWildcardRule(3)
	if !full.Covers(a) || a.Covers(full) {
		t.Error("covers detection wrong")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("equality detection wrong")
	}
}

func TestPacketFieldAndString(t *testing.T) {
	p := Packet{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	if p.Field(DimSrcIP) != 0x0A000001 || p.Field(DimDstIP) != 0x0A000002 {
		t.Error("IP fields wrong")
	}
	if p.Field(DimSrcPort) != 1234 || p.Field(DimDstPort) != 80 || p.Field(DimProto) != 6 {
		t.Error("port/proto fields wrong")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
	var unknown Dimension = 42
	if p.Field(unknown) != 0 {
		t.Error("unknown dimension should read as 0")
	}
}

func TestRuleString(t *testing.T) {
	r := NewWildcardRule(7)
	s := r.String()
	if s == "" || r.Priority != 7 {
		t.Errorf("String = %q", s)
	}
}

// Property: a rule matches a packet iff, treating the packet as a degenerate
// box, the rule overlaps that box.
func TestPropertyMatchEqualsBoxOverlap(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRule(rng)
		p := Packet{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		var box [NumDims]Range
		for _, d := range Dimensions() {
			v := p.Field(d)
			box[d] = Range{Lo: v, Hi: v}
		}
		return r.Matches(p) == r.OverlapsBox(box)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Intersect is commutative and its result is covered by both
// operands.
func TestPropertyIntersect(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		r1 := Range{Lo: uint64(min16(a, b)), Hi: uint64(max16(a, b))}
		r2 := Range{Lo: uint64(min16(c, d)), Hi: uint64(max16(c, d))}
		i1, ok1 := r1.Intersect(r2)
		i2, ok2 := r2.Intersect(r1)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return !r1.Overlaps(r2)
		}
		return i1 == i2 && r1.Covers(i1) && r2.Covers(i1) && r1.Overlaps(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomRule builds a random rule: each dimension is either wildcard, a
// prefix, or an arbitrary range.
func randomRule(rng *rand.Rand) Rule {
	r := NewWildcardRule(0)
	for _, d := range Dimensions() {
		switch rng.Intn(3) {
		case 0:
			// wildcard: leave as-is
		case 1:
			plen := uint(rng.Intn(int(d.Bits()) + 1))
			addr := rng.Uint64() & d.MaxValue()
			r.Ranges[d] = PrefixRange(addr, plen, d.Bits())
		case 2:
			a := rng.Uint64() & d.MaxValue()
			b := rng.Uint64() & d.MaxValue()
			if a > b {
				a, b = b, a
			}
			r.Ranges[d] = Range{Lo: a, Hi: b}
		}
	}
	return r
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
