// Package rule implements the packet classification rule model used by every
// algorithm in this repository.
//
// A classifier is an ordered list of rules. Each rule constrains the five
// classic header dimensions — source IP, destination IP, source port,
// destination port and protocol — with an inclusive integer range per
// dimension. A packet (represented as a point in the 5-dimensional space)
// matches a rule iff its value in every dimension falls inside the rule's
// range for that dimension. Rules may overlap; ties are broken by priority,
// with the highest priority (lowest Priority value, i.e. first in the list)
// winning, matching the convention of ClassBench filter files.
package rule

import (
	"fmt"
	"strings"
)

// Dimension identifies one of the five classification dimensions.
type Dimension int

// The five classification dimensions, in the canonical NeuroCuts order.
const (
	DimSrcIP Dimension = iota
	DimDstIP
	DimSrcPort
	DimDstPort
	DimProto

	// NumDims is the number of classification dimensions.
	NumDims = 5
)

// String returns the conventional short name of the dimension.
func (d Dimension) String() string {
	switch d {
	case DimSrcIP:
		return "SrcIP"
	case DimDstIP:
		return "DstIP"
	case DimSrcPort:
		return "SrcPort"
	case DimDstPort:
		return "DstPort"
	case DimProto:
		return "Proto"
	default:
		return fmt.Sprintf("Dim(%d)", int(d))
	}
}

// Bits returns the width of the dimension's value space in bits.
func (d Dimension) Bits() uint {
	switch d {
	case DimSrcIP, DimDstIP:
		return 32
	case DimSrcPort, DimDstPort:
		return 16
	case DimProto:
		return 8
	default:
		return 0
	}
}

// MaxValue returns the largest representable value in the dimension.
func (d Dimension) MaxValue() uint64 {
	return (uint64(1) << d.Bits()) - 1
}

// Dimensions lists all five dimensions in canonical order.
func Dimensions() []Dimension {
	return []Dimension{DimSrcIP, DimDstIP, DimSrcPort, DimDstPort, DimProto}
}

// Range is an inclusive integer interval [Lo, Hi] over one dimension.
type Range struct {
	Lo uint64
	Hi uint64
}

// FullRange returns the range that covers the entire value space of d.
func FullRange(d Dimension) Range {
	return Range{Lo: 0, Hi: d.MaxValue()}
}

// Contains reports whether v lies inside the range.
func (r Range) Contains(v uint64) bool {
	return v >= r.Lo && v <= r.Hi
}

// Overlaps reports whether r and o share at least one value.
func (r Range) Overlaps(o Range) bool {
	return r.Lo <= o.Hi && o.Lo <= r.Hi
}

// Covers reports whether r fully contains o.
func (r Range) Covers(o Range) bool {
	return r.Lo <= o.Lo && o.Hi <= r.Hi
}

// Intersect returns the intersection of r and o and whether it is non-empty.
func (r Range) Intersect(o Range) (Range, bool) {
	lo := r.Lo
	if o.Lo > lo {
		lo = o.Lo
	}
	hi := r.Hi
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return Range{}, false
	}
	return Range{Lo: lo, Hi: hi}, true
}

// Size returns the number of values covered by the range. For the full
// 32-bit range this is 2^32 which still fits a uint64.
func (r Range) Size() uint64 {
	if r.Hi < r.Lo {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// IsFull reports whether the range covers the entire value space of d.
func (r Range) IsFull(d Dimension) bool {
	return r.Lo == 0 && r.Hi == d.MaxValue()
}

// FractionOf returns the fraction of the dimension's full value space that
// this range covers, in [0, 1].
func (r Range) FractionOf(d Dimension) float64 {
	full := float64(d.MaxValue()) + 1
	return float64(r.Size()) / full
}

// String renders the range as "[lo, hi]".
func (r Range) String() string {
	return fmt.Sprintf("[%d, %d]", r.Lo, r.Hi)
}

// PrefixRange converts an address/mask-length prefix into a Range over a
// dimension with the given bit width. A prefix length of 0 yields the full
// range.
func PrefixRange(addr uint64, prefixLen, bits uint) Range {
	if prefixLen == 0 {
		return Range{Lo: 0, Hi: (uint64(1) << bits) - 1}
	}
	if prefixLen > bits {
		prefixLen = bits
	}
	hostBits := bits - prefixLen
	mask := ^uint64(0) << hostBits
	mask &= (uint64(1) << bits) - 1
	lo := addr & mask
	hi := lo | ((uint64(1) << hostBits) - 1)
	return Range{Lo: lo, Hi: hi}
}

// PrefixLen reports whether the range is expressible as a single prefix over
// a space of the given bit width, and if so returns its length.
func (r Range) PrefixLen(bits uint) (uint, bool) {
	size := r.Size()
	if size == 0 || size&(size-1) != 0 {
		return 0, false
	}
	if r.Lo%size != 0 {
		return 0, false
	}
	// size = 2^hostBits
	hostBits := uint(0)
	for s := size; s > 1; s >>= 1 {
		hostBits++
	}
	if hostBits > bits {
		return 0, false
	}
	return bits - hostBits, true
}

// Packet is a point in the 5-dimensional classification space: the header
// fields a classifier inspects. See internal/packet for conversion to and
// from wire-format headers.
type Packet struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Field returns the packet's value in dimension d.
func (p Packet) Field(d Dimension) uint64 {
	switch d {
	case DimSrcIP:
		return uint64(p.SrcIP)
	case DimDstIP:
		return uint64(p.DstIP)
	case DimSrcPort:
		return uint64(p.SrcPort)
	case DimDstPort:
		return uint64(p.DstPort)
	case DimProto:
		return uint64(p.Proto)
	default:
		return 0
	}
}

// String renders the packet as a 5-tuple.
func (p Packet) String() string {
	return fmt.Sprintf("(%s -> %s, %d -> %d, proto %d)",
		FormatIPv4(p.SrcIP), FormatIPv4(p.DstIP), p.SrcPort, p.DstPort, p.Proto)
}

// Rule is a single classification rule: one inclusive range per dimension
// plus a priority. Lower Priority values are preferred (priority 0 is the
// highest-priority rule), matching list order in a classifier.
type Rule struct {
	// Ranges holds the matching condition per dimension, indexed by Dimension.
	Ranges [NumDims]Range
	// Priority orders overlapping rules; lower wins.
	Priority int
	// ID is an arbitrary caller-assigned identifier (defaults to list index).
	ID int
}

// NewWildcardRule returns a rule that matches every packet.
func NewWildcardRule(priority int) Rule {
	var r Rule
	r.Priority = priority
	r.ID = priority
	for _, d := range Dimensions() {
		r.Ranges[d] = FullRange(d)
	}
	return r
}

// Matches reports whether the packet satisfies every dimension of the rule.
func (r Rule) Matches(p Packet) bool {
	for _, d := range Dimensions() {
		if !r.Ranges[d].Contains(p.Field(d)) {
			return false
		}
	}
	return true
}

// OverlapsBox reports whether the rule's hyper-rectangle intersects the box
// described by ranges (one per dimension). This is the test used when
// assigning rules to decision-tree nodes.
func (r Rule) OverlapsBox(box [NumDims]Range) bool {
	for _, d := range Dimensions() {
		if !r.Ranges[d].Overlaps(box[d]) {
			return false
		}
	}
	return true
}

// CoveredByBox reports whether the rule's hyper-rectangle is fully contained
// in the box.
func (r Rule) CoveredByBox(box [NumDims]Range) bool {
	for _, d := range Dimensions() {
		if !box[d].Covers(r.Ranges[d]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether two rules' hyper-rectangles intersect.
func (r Rule) Overlaps(o Rule) bool {
	for _, d := range Dimensions() {
		if !r.Ranges[d].Overlaps(o.Ranges[d]) {
			return false
		}
	}
	return true
}

// Covers reports whether r's hyper-rectangle fully contains o's.
func (r Rule) Covers(o Rule) bool {
	for _, d := range Dimensions() {
		if !r.Ranges[d].Covers(o.Ranges[d]) {
			return false
		}
	}
	return true
}

// IsWildcard reports whether the rule leaves dimension d completely
// unconstrained.
func (r Rule) IsWildcard(d Dimension) bool {
	return r.Ranges[d].IsFull(d)
}

// Coverage returns the fraction of dimension d's space covered by the rule,
// in [0, 1]. EffiCuts calls a field "large" when this exceeds a threshold
// (0.5 in the original paper).
func (r Rule) Coverage(d Dimension) float64 {
	return r.Ranges[d].FractionOf(d)
}

// WildcardCount returns the number of dimensions the rule leaves fully
// unconstrained.
func (r Rule) WildcardCount() int {
	n := 0
	for _, d := range Dimensions() {
		if r.IsWildcard(d) {
			n++
		}
	}
	return n
}

// Validate checks the rule for basic well-formedness: every range must
// satisfy Lo <= Hi and fit inside its dimension. Set.Validate, the public
// SDK and the binary wire protocol all gate on this one definition.
func (r Rule) Validate() error {
	for _, d := range Dimensions() {
		rg := r.Ranges[d]
		if rg.Lo > rg.Hi {
			return fmt.Errorf("empty range in %s: %s", d, rg)
		}
		if rg.Hi > d.MaxValue() {
			return fmt.Errorf("range %s exceeds %s max %d", rg, d, d.MaxValue())
		}
	}
	return nil
}

// Equal reports whether two rules have identical ranges (ignoring priority
// and ID).
func (r Rule) Equal(o Rule) bool {
	return r.Ranges == o.Ranges
}

// String renders the rule in a compact human-readable form.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule{prio=%d", r.Priority)
	for _, d := range Dimensions() {
		fmt.Fprintf(&b, " %s=%s", d, r.Ranges[d])
	}
	b.WriteString("}")
	return b.String()
}

// FormatIPv4 renders a 32-bit address in dotted-quad notation.
func FormatIPv4(addr uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr))
}

// ParseIPv4 parses a dotted-quad IPv4 address into its 32-bit value.
func ParseIPv4(s string) (uint32, error) {
	var a, b, c, d uint
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("rule: invalid IPv4 address %q: %w", s, err)
	}
	if a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("rule: invalid IPv4 address %q: octet out of range", s)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}
