package rule

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const sampleClassBench = `# sample classifier
@10.0.0.0/8	192.168.0.0/16	0 : 65535	1024 : 2048	0x06/0xFF	0x0000/0x0000
@0.0.0.0/0	0.0.0.0/0	53 : 53	0 : 65535	0x11/0xFF	0x0000/0x0000
@172.16.1.0/24	10.10.0.0/16	0 : 1023	80 : 80	0x00/0x00	0x0000/0x0000

@0.0.0.0/0	0.0.0.0/0	0 : 65535	0 : 65535	0x00/0x00	0x0000/0x0000
`

func TestParseClassBench(t *testing.T) {
	s, err := ParseClassBench(strings.NewReader(sampleClassBench))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("parsed %d rules, want 4", s.Len())
	}
	r0 := s.Rule(0)
	lo, _ := ParseIPv4("10.0.0.0")
	hi, _ := ParseIPv4("10.255.255.255")
	if r0.Ranges[DimSrcIP] != (Range{Lo: uint64(lo), Hi: uint64(hi)}) {
		t.Errorf("rule 0 src = %s", r0.Ranges[DimSrcIP])
	}
	if r0.Ranges[DimDstPort] != (Range{Lo: 1024, Hi: 2048}) {
		t.Errorf("rule 0 dst port = %s", r0.Ranges[DimDstPort])
	}
	if r0.Ranges[DimProto] != (Range{Lo: 6, Hi: 6}) {
		t.Errorf("rule 0 proto = %s", r0.Ranges[DimProto])
	}
	r1 := s.Rule(1)
	if !r1.IsWildcard(DimSrcIP) || !r1.IsWildcard(DimDstIP) {
		t.Error("rule 1 should have wildcard IPs")
	}
	if r1.Ranges[DimSrcPort] != (Range{Lo: 53, Hi: 53}) {
		t.Errorf("rule 1 sport = %s", r1.Ranges[DimSrcPort])
	}
	r2 := s.Rule(2)
	if !r2.IsWildcard(DimProto) {
		t.Error("rule 2 proto/0x00 mask should be wildcard")
	}
	if !s.HasDefaultRule() {
		t.Error("rule 3 should be the default rule")
	}
}

func TestParseClassBenchErrors(t *testing.T) {
	bad := []string{
		"10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF 0x0000/0x0000", // missing @
		"@10.0.0.0 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF 0x0000/0x0000",  // missing /len
		"@10.0.0.0/40 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF 0x0",         // prefix too long
		"@10.0.0.0/8 0.0.0.0/0 10 : 5 0 : 65535 0x06/0xFF 0x0000",          // inverted port range
		"@10.0.0.0/8 0.0.0.0/0 0 ; 65535 0 : 65535 0x06/0xFF 0x0000",       // bad separator
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 99999 0x06/0xFF 0x0000",       // port overflow
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0x0F 0x0000",       // unsupported proto mask
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 zz/0xFF 0x0000",         // bad proto value
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535",                                  // too few fields
		"@300.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF 0x0000",      // bad address
	}
	for _, line := range bad {
		if _, err := ParseClassBenchLine(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
	if _, err := ParseClassBench(strings.NewReader("@garbage\n")); err == nil {
		t.Error("ParseClassBench should surface line errors")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rules := make([]Rule, 0, 64)
	for i := 0; i < 63; i++ {
		r := NewWildcardRule(i)
		for _, d := range []Dimension{DimSrcIP, DimDstIP} {
			plen := uint(rng.Intn(33))
			r.Ranges[d] = PrefixRange(rng.Uint64()&d.MaxValue(), plen, 32)
		}
		for _, d := range []Dimension{DimSrcPort, DimDstPort} {
			a := uint64(rng.Intn(65536))
			b := uint64(rng.Intn(65536))
			if a > b {
				a, b = b, a
			}
			r.Ranges[d] = Range{Lo: a, Hi: b}
		}
		if rng.Intn(2) == 0 {
			r.Ranges[DimProto] = Range{Lo: uint64(rng.Intn(256)), Hi: 0}
			r.Ranges[DimProto].Hi = r.Ranges[DimProto].Lo
		}
		rules = append(rules, r)
	}
	rules = append(rules, NewWildcardRule(63))
	orig := NewSet(rules)

	var buf bytes.Buffer
	if err := WriteClassBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseClassBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("round trip length %d != %d", parsed.Len(), orig.Len())
	}
	// IP ranges may have been widened to covering prefixes, but port, proto
	// and prefix-expressible IP ranges must round-trip exactly.
	for i := 0; i < orig.Len(); i++ {
		o, p := orig.Rule(i), parsed.Rule(i)
		for _, d := range []Dimension{DimSrcPort, DimDstPort, DimProto} {
			if o.Ranges[d] != p.Ranges[d] {
				t.Errorf("rule %d dim %s: %s != %s", i, d, o.Ranges[d], p.Ranges[d])
			}
		}
		for _, d := range []Dimension{DimSrcIP, DimDstIP} {
			if _, isPrefix := o.Ranges[d].PrefixLen(32); isPrefix {
				if o.Ranges[d] != p.Ranges[d] {
					t.Errorf("rule %d dim %s: prefix %s did not round-trip (%s)", i, d, o.Ranges[d], p.Ranges[d])
				}
			} else if !p.Ranges[d].Covers(o.Ranges[d]) {
				t.Errorf("rule %d dim %s: widened prefix %s does not cover %s", i, d, p.Ranges[d], o.Ranges[d])
			}
		}
	}
}

func TestFormatClassBenchLine(t *testing.T) {
	r := NewWildcardRule(0)
	r.Ranges[DimProto] = Range{Lo: 6, Hi: 6}
	line := FormatClassBenchLine(r)
	if !strings.HasPrefix(line, "@0.0.0.0/0") || !strings.Contains(line, "0x06/0xFF") {
		t.Errorf("unexpected line %q", line)
	}
	back, err := ParseClassBenchLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ranges != r.Ranges {
		t.Errorf("line round trip mismatch: %v vs %v", back.Ranges, r.Ranges)
	}
}

func TestCoveringPrefix(t *testing.T) {
	// A non-prefix range is widened to the smallest covering prefix.
	addr, plen := coveringPrefix(Range{Lo: 3, Hi: 5}, 32)
	p := PrefixRange(addr, plen, 32)
	if !p.Covers(Range{Lo: 3, Hi: 5}) {
		t.Errorf("covering prefix %s does not cover [3,5]", p)
	}
	// An exact prefix stays exact.
	orig := PrefixRange(0x0A000000, 8, 32)
	addr, plen = coveringPrefix(orig, 32)
	if PrefixRange(addr, plen, 32) != orig {
		t.Error("exact prefix was widened")
	}
	// The full range maps to /0.
	_, plen = coveringPrefix(Range{Lo: 0, Hi: 0xFFFFFFFF}, 32)
	if plen != 0 {
		t.Errorf("full range prefix len = %d", plen)
	}
}
