package rule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements reading and writing classifiers in the ClassBench
// filter-set text format, which is the de-facto interchange format for packet
// classification benchmarks. Each line looks like:
//
//	@10.0.0.0/8  192.168.0.0/16  0 : 65535  1024 : 2048  0x06/0xFF  0x0000/0x0000
//
// i.e. source prefix, destination prefix, source port range, destination port
// range, protocol/mask, and an optional flags field that we accept and
// ignore. Lines are in priority order (first line = highest priority).

// ParseClassBench reads a classifier in ClassBench filter format from r.
func ParseClassBench(r io.Reader) (*Set, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var rules []Rule
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rl, err := ParseClassBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("rule: line %d: %w", lineNo, err)
		}
		rules = append(rules, rl)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("rule: reading classifier: %w", err)
	}
	return NewSet(rules), nil
}

// ParseClassBenchLine parses a single ClassBench filter line into a Rule.
// Priority and ID are left at zero; NewSet assigns them from list order.
func ParseClassBenchLine(line string) (Rule, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "@") {
		return Rule{}, fmt.Errorf("missing leading '@' in %q", line)
	}
	fields := strings.Fields(line[1:])
	// Expected: srcPrefix dstPrefix sLo : sHi dLo : dHi proto/mask [flags/mask]
	if len(fields) < 9 {
		return Rule{}, fmt.Errorf("expected at least 9 fields, got %d in %q", len(fields), line)
	}
	var r Rule
	src, err := parsePrefixField(fields[0], 32)
	if err != nil {
		return Rule{}, fmt.Errorf("source prefix: %w", err)
	}
	dst, err := parsePrefixField(fields[1], 32)
	if err != nil {
		return Rule{}, fmt.Errorf("destination prefix: %w", err)
	}
	sport, err := parsePortRange(fields[2], fields[3], fields[4])
	if err != nil {
		return Rule{}, fmt.Errorf("source port: %w", err)
	}
	dport, err := parsePortRange(fields[5], fields[6], fields[7])
	if err != nil {
		return Rule{}, fmt.Errorf("destination port: %w", err)
	}
	proto, err := parseProtoField(fields[8])
	if err != nil {
		return Rule{}, fmt.Errorf("protocol: %w", err)
	}
	r.Ranges[DimSrcIP] = src
	r.Ranges[DimDstIP] = dst
	r.Ranges[DimSrcPort] = sport
	r.Ranges[DimDstPort] = dport
	r.Ranges[DimProto] = proto
	return r, nil
}

func parsePrefixField(s string, bits uint) (Range, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return Range{}, fmt.Errorf("expected addr/len, got %q", s)
	}
	addr, err := ParseIPv4(parts[0])
	if err != nil {
		return Range{}, err
	}
	plen, err := strconv.ParseUint(parts[1], 10, 8)
	if err != nil {
		return Range{}, fmt.Errorf("prefix length %q: %w", parts[1], err)
	}
	if uint(plen) > bits {
		return Range{}, fmt.Errorf("prefix length %d exceeds %d", plen, bits)
	}
	return PrefixRange(uint64(addr), uint(plen), bits), nil
}

func parsePortRange(loStr, colon, hiStr string) (Range, error) {
	if colon != ":" {
		return Range{}, fmt.Errorf("expected ':' separator, got %q", colon)
	}
	lo, err := strconv.ParseUint(loStr, 10, 17)
	if err != nil {
		return Range{}, fmt.Errorf("low port %q: %w", loStr, err)
	}
	hi, err := strconv.ParseUint(hiStr, 10, 17)
	if err != nil {
		return Range{}, fmt.Errorf("high port %q: %w", hiStr, err)
	}
	if lo > hi {
		return Range{}, fmt.Errorf("inverted port range %d : %d", lo, hi)
	}
	if hi > DimSrcPort.MaxValue() {
		return Range{}, fmt.Errorf("port %d out of range", hi)
	}
	return Range{Lo: lo, Hi: hi}, nil
}

func parseProtoField(s string) (Range, error) {
	parts := strings.SplitN(s, "/", 2)
	val, err := parseHexOrDec(parts[0])
	if err != nil {
		return Range{}, fmt.Errorf("protocol value %q: %w", parts[0], err)
	}
	mask := uint64(0xFF)
	if len(parts) == 2 {
		mask, err = parseHexOrDec(parts[1])
		if err != nil {
			return Range{}, fmt.Errorf("protocol mask %q: %w", parts[1], err)
		}
	}
	if mask == 0 {
		return FullRange(DimProto), nil
	}
	if mask != 0xFF {
		return Range{}, fmt.Errorf("unsupported protocol mask %#x (only 0x00 and 0xFF)", mask)
	}
	if val > DimProto.MaxValue() {
		return Range{}, fmt.Errorf("protocol %d out of range", val)
	}
	return Range{Lo: val, Hi: val}, nil
}

func parseHexOrDec(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// WriteClassBench writes the classifier to w in ClassBench filter format.
// Ranges that are not expressible as prefixes (possible for IP dimensions of
// synthetic rules) are widened to the smallest covering prefix; port ranges
// and protocol are written exactly.
func WriteClassBench(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	for _, r := range s.Rules() {
		if err := writeClassBenchLine(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatClassBenchLine renders a single rule as a ClassBench filter line
// (without trailing newline).
func FormatClassBenchLine(r Rule) string {
	var b strings.Builder
	// Ignore the error: strings.Builder never fails.
	_ = writeClassBenchLineTo(&b, r, "")
	return b.String()
}

func writeClassBenchLine(w io.Writer, r Rule) error {
	return writeClassBenchLineTo(w, r, "\n")
}

func writeClassBenchLineTo(w io.Writer, r Rule, suffix string) error {
	srcAddr, srcLen := coveringPrefix(r.Ranges[DimSrcIP], 32)
	dstAddr, dstLen := coveringPrefix(r.Ranges[DimDstIP], 32)
	proto := r.Ranges[DimProto]
	protoStr := "0x00/0x00"
	if !proto.IsFull(DimProto) {
		protoStr = fmt.Sprintf("0x%02X/0xFF", proto.Lo)
	}
	_, err := fmt.Fprintf(w, "@%s/%d\t%s/%d\t%d : %d\t%d : %d\t%s\t0x0000/0x0000%s",
		FormatIPv4(uint32(srcAddr)), srcLen,
		FormatIPv4(uint32(dstAddr)), dstLen,
		r.Ranges[DimSrcPort].Lo, r.Ranges[DimSrcPort].Hi,
		r.Ranges[DimDstPort].Lo, r.Ranges[DimDstPort].Hi,
		protoStr, suffix)
	return err
}

// coveringPrefix returns the address and length of the smallest prefix that
// covers the range. Exact when the range already is a prefix.
func coveringPrefix(r Range, bits uint) (uint64, uint) {
	if plen, ok := r.PrefixLen(bits); ok {
		return r.Lo, plen
	}
	// Find the longest prefix of Lo that still covers Hi.
	for plen := bits; ; plen-- {
		p := PrefixRange(r.Lo, plen, bits)
		if p.Covers(r) {
			return p.Lo, plen
		}
		if plen == 0 {
			return 0, 0
		}
	}
}
