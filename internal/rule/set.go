package rule

import (
	"fmt"
	"sort"
)

// Set is an ordered packet classifier: a slice of rules where earlier rules
// have higher priority. The zero value is an empty classifier.
type Set struct {
	rules []Rule
}

// NewSet builds a classifier from the given rules in priority order. Each
// rule's Priority and ID fields are rewritten to its list index so that
// lookups over differently-built data structures agree on the winner.
func NewSet(rules []Rule) *Set {
	s := &Set{rules: make([]Rule, len(rules))}
	copy(s.rules, rules)
	for i := range s.rules {
		s.rules[i].Priority = i
		s.rules[i].ID = i
	}
	return s
}

// NewSetKeepPriorities builds a classifier from rules that already carry
// meaningful Priority values, sorting them so that lower Priority comes
// first. IDs are preserved.
func NewSetKeepPriorities(rules []Rule) *Set {
	s := &Set{rules: make([]Rule, len(rules))}
	copy(s.rules, rules)
	sort.SliceStable(s.rules, func(i, j int) bool {
		return s.rules[i].Priority < s.rules[j].Priority
	})
	return s
}

// Len returns the number of rules in the classifier.
func (s *Set) Len() int { return len(s.rules) }

// Rules returns the classifier's rules in priority order. The returned slice
// must not be modified.
func (s *Set) Rules() []Rule { return s.rules }

// Rule returns the i-th rule (0 = highest priority).
func (s *Set) Rule(i int) Rule { return s.rules[i] }

// Clone returns a deep copy of the classifier.
func (s *Set) Clone() *Set {
	c := &Set{rules: make([]Rule, len(s.rules))}
	copy(c.rules, s.rules)
	return c
}

// Match performs reference linear-search classification: it returns the
// highest-priority rule matching p and true, or the zero Rule and false when
// no rule matches. Decision-tree classifiers are validated against this.
func (s *Set) Match(p Packet) (Rule, bool) {
	for _, r := range s.rules {
		if r.Matches(p) {
			return r, true
		}
	}
	return Rule{}, false
}

// MatchIndex is like Match but returns the rule's index, or -1.
func (s *Set) MatchIndex(p Packet) int {
	for i, r := range s.rules {
		if r.Matches(p) {
			return i
		}
	}
	return -1
}

// HasDefaultRule reports whether the lowest-priority rule matches every
// packet, guaranteeing that Match always succeeds.
func (s *Set) HasDefaultRule() bool {
	if len(s.rules) == 0 {
		return false
	}
	last := s.rules[len(s.rules)-1]
	for _, d := range Dimensions() {
		if !last.IsWildcard(d) {
			return false
		}
	}
	return true
}

// Append adds a rule at the end (lowest priority) of the classifier.
func (s *Set) Append(r Rule) {
	r.Priority = len(s.rules)
	if r.ID == 0 {
		r.ID = r.Priority
	}
	s.rules = append(s.rules, r)
}

// Insert places a rule at the given priority position, shifting later rules
// down. Priorities are renumbered to stay equal to list indices.
func (s *Set) Insert(pos int, r Rule) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(s.rules) {
		pos = len(s.rules)
	}
	s.rules = append(s.rules, Rule{})
	copy(s.rules[pos+1:], s.rules[pos:])
	s.rules[pos] = r
	for i := range s.rules {
		s.rules[i].Priority = i
	}
}

// Remove deletes the rule at index i and renumbers priorities.
func (s *Set) Remove(i int) {
	if i < 0 || i >= len(s.rules) {
		return
	}
	s.rules = append(s.rules[:i], s.rules[i+1:]...)
	for j := range s.rules {
		s.rules[j].Priority = j
	}
}

// RemoveShadowed removes rules that can never match because a strictly
// higher-priority rule fully covers them. It returns the number of rules
// removed. Shadow removal is a standard classifier pre-processing step and
// keeps decision trees from carrying dead rules.
func (s *Set) RemoveShadowed() int {
	kept := s.rules[:0]
	removed := 0
outer:
	for i, r := range s.rules {
		for j := 0; j < i; j++ {
			if s.rules[j].Covers(r) {
				removed++
				continue outer
			}
		}
		kept = append(kept, r)
	}
	s.rules = kept
	for i := range s.rules {
		s.rules[i].Priority = i
	}
	return removed
}

// Stats summarises the structural characteristics of a classifier that the
// hand-tuned heuristics key on.
type Stats struct {
	// NumRules is the classifier size.
	NumRules int
	// DistinctRanges[d] counts distinct (Lo,Hi) pairs in dimension d.
	DistinctRanges [NumDims]int
	// WildcardFraction[d] is the fraction of rules leaving d unconstrained.
	WildcardFraction [NumDims]float64
	// LargeFraction[d] is the fraction of rules whose coverage of d exceeds
	// 0.5 (the EffiCuts "largeness" threshold).
	LargeFraction [NumDims]float64
	// AvgWildcards is the mean number of wildcard dimensions per rule.
	AvgWildcards float64
}

// ComputeStats scans the classifier once and returns its Stats.
func (s *Set) ComputeStats() Stats {
	var st Stats
	st.NumRules = len(s.rules)
	if st.NumRules == 0 {
		return st
	}
	totalWild := 0
	for _, d := range Dimensions() {
		seen := make(map[Range]struct{})
		wild := 0
		large := 0
		for _, r := range s.rules {
			seen[r.Ranges[d]] = struct{}{}
			if r.IsWildcard(d) {
				wild++
			}
			if r.Coverage(d) > 0.5 {
				large++
			}
		}
		st.DistinctRanges[d] = len(seen)
		st.WildcardFraction[d] = float64(wild) / float64(st.NumRules)
		st.LargeFraction[d] = float64(large) / float64(st.NumRules)
		totalWild += wild
	}
	st.AvgWildcards = float64(totalWild) / float64(st.NumRules)
	return st
}

// DistinctRangeCount returns the number of distinct ranges the rules in
// `rules` project onto dimension d. This is the statistic HiCuts and
// HyperCuts use to pick cut dimensions.
func DistinctRangeCount(rules []Rule, d Dimension) int {
	seen := make(map[Range]struct{}, len(rules))
	for _, r := range rules {
		seen[r.Ranges[d]] = struct{}{}
	}
	return len(seen)
}

// DistinctValueCount returns the number of distinct range endpoints projected
// by rules onto dimension d, clipped to the box range. Used by equal-dense
// cutting heuristics.
func DistinctValueCount(rules []Rule, d Dimension, box Range) int {
	seen := make(map[uint64]struct{}, 2*len(rules))
	for _, r := range rules {
		if rr, ok := r.Ranges[d].Intersect(box); ok {
			seen[rr.Lo] = struct{}{}
			seen[rr.Hi] = struct{}{}
		}
	}
	return len(seen)
}

// Validate checks basic well-formedness of the classifier: every rule must
// pass Rule.Validate. It returns the first problem found, or nil.
func (s *Set) Validate() error {
	for i, r := range s.rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}
