package rule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func makeTestSet() *Set {
	r0 := NewWildcardRule(0)
	r0.Ranges[DimSrcPort] = Range{Lo: 0, Hi: 1023}
	r1 := NewWildcardRule(1)
	r1.Ranges[DimDstPort] = Range{Lo: 80, Hi: 80}
	r2 := NewWildcardRule(2)
	r2.Ranges[DimProto] = Range{Lo: 17, Hi: 17}
	r3 := NewWildcardRule(3)
	return NewSet([]Rule{r0, r1, r2, r3})
}

func TestSetBasics(t *testing.T) {
	s := makeTestSet()
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.HasDefaultRule() {
		t.Fatal("default rule missing")
	}
	for i, r := range s.Rules() {
		if r.Priority != i || r.ID != i {
			t.Errorf("rule %d priority/id = %d/%d", i, r.Priority, r.ID)
		}
	}
	if s.Rule(2).Ranges[DimProto].Lo != 17 {
		t.Error("Rule(2) wrong")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSetMatch(t *testing.T) {
	s := makeTestSet()
	// Packet matching rules 0, 1, 3 -> winner is 0.
	p := Packet{SrcPort: 100, DstPort: 80, Proto: 6}
	got, ok := s.Match(p)
	if !ok || got.Priority != 0 {
		t.Fatalf("Match = %v %v", got, ok)
	}
	if idx := s.MatchIndex(p); idx != 0 {
		t.Fatalf("MatchIndex = %d", idx)
	}
	// Packet matching only the default rule.
	p2 := Packet{SrcPort: 5000, DstPort: 443, Proto: 6}
	got, ok = s.Match(p2)
	if !ok || got.Priority != 3 {
		t.Fatalf("Match = %v %v", got, ok)
	}
	// Empty set never matches.
	empty := NewSet(nil)
	if _, ok := empty.Match(p); ok {
		t.Error("empty set matched")
	}
	if empty.MatchIndex(p) != -1 {
		t.Error("empty set MatchIndex != -1")
	}
	if empty.HasDefaultRule() {
		t.Error("empty set has default rule")
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := makeTestSet()
	c := s.Clone()
	c.Remove(0)
	if s.Len() != 4 || c.Len() != 3 {
		t.Fatalf("clone not independent: %d %d", s.Len(), c.Len())
	}
}

func TestSetInsertRemove(t *testing.T) {
	s := makeTestSet()
	r := NewWildcardRule(0)
	r.Ranges[DimProto] = Range{Lo: 1, Hi: 1}
	s.Insert(1, r)
	if s.Len() != 5 {
		t.Fatalf("Len after insert = %d", s.Len())
	}
	if s.Rule(1).Ranges[DimProto].Lo != 1 {
		t.Error("inserted rule not at position 1")
	}
	for i, rr := range s.Rules() {
		if rr.Priority != i {
			t.Errorf("priority %d at index %d after insert", rr.Priority, i)
		}
	}
	s.Remove(1)
	if s.Len() != 4 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
	// Out-of-range operations are no-ops / clamped.
	s.Remove(99)
	s.Remove(-1)
	if s.Len() != 4 {
		t.Fatal("out-of-range remove changed the set")
	}
	s.Insert(-5, r)
	s.Insert(99, r)
	if s.Len() != 6 {
		t.Fatalf("clamped inserts failed: %d", s.Len())
	}
}

func TestSetAppend(t *testing.T) {
	s := NewSet(nil)
	s.Append(NewWildcardRule(0))
	s.Append(NewWildcardRule(0))
	if s.Len() != 2 || s.Rule(1).Priority != 1 {
		t.Fatalf("append bookkeeping wrong: %+v", s.Rules())
	}
}

func TestRemoveShadowed(t *testing.T) {
	broad := NewWildcardRule(0)
	broad.Ranges[DimSrcPort] = Range{Lo: 0, Hi: 1000}
	narrow := NewWildcardRule(1)
	narrow.Ranges[DimSrcPort] = Range{Lo: 10, Hi: 20}
	other := NewWildcardRule(2)
	other.Ranges[DimDstPort] = Range{Lo: 0, Hi: 10}

	s := NewSet([]Rule{broad, narrow, other})
	removed := s.RemoveShadowed()
	if removed != 1 {
		t.Fatalf("removed %d shadowed rules, want 1", removed)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The narrow rule is gone, the non-shadowed one remains with renumbered
	// priority.
	if s.Rule(1).Ranges[DimDstPort].Hi != 10 || s.Rule(1).Priority != 1 {
		t.Errorf("unexpected remaining rule: %v", s.Rule(1))
	}
}

func TestNewSetKeepPriorities(t *testing.T) {
	a := NewWildcardRule(5)
	a.ID = 100
	b := NewWildcardRule(2)
	b.ID = 200
	s := NewSetKeepPriorities([]Rule{a, b})
	if s.Rule(0).Priority != 2 || s.Rule(0).ID != 200 {
		t.Fatalf("sorting by priority failed: %+v", s.Rules())
	}
}

func TestComputeStats(t *testing.T) {
	r0 := NewWildcardRule(0)
	r0.Ranges[DimSrcIP] = PrefixRange(0x0A000000, 8, 32)
	r1 := NewWildcardRule(1)
	r1.Ranges[DimSrcIP] = PrefixRange(0x0A000000, 8, 32)
	r1.Ranges[DimProto] = Range{Lo: 6, Hi: 6}
	r2 := NewWildcardRule(2)

	s := NewSet([]Rule{r0, r1, r2})
	st := s.ComputeStats()
	if st.NumRules != 3 {
		t.Fatalf("NumRules = %d", st.NumRules)
	}
	if st.DistinctRanges[DimSrcIP] != 2 {
		t.Errorf("DistinctRanges[SrcIP] = %d, want 2", st.DistinctRanges[DimSrcIP])
	}
	if st.WildcardFraction[DimSrcIP] < 0.3 || st.WildcardFraction[DimSrcIP] > 0.34 {
		t.Errorf("WildcardFraction[SrcIP] = %v", st.WildcardFraction[DimSrcIP])
	}
	if st.LargeFraction[DimDstIP] != 1.0 {
		t.Errorf("LargeFraction[DstIP] = %v", st.LargeFraction[DimDstIP])
	}
	if st.AvgWildcards <= 0 {
		t.Errorf("AvgWildcards = %v", st.AvgWildcards)
	}
	// Empty set stats.
	if got := NewSet(nil).ComputeStats(); got.NumRules != 0 {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestDistinctCounts(t *testing.T) {
	rules := []Rule{}
	for i := 0; i < 4; i++ {
		r := NewWildcardRule(i)
		r.Ranges[DimSrcPort] = Range{Lo: uint64(i * 10), Hi: uint64(i*10 + 5)}
		rules = append(rules, r)
	}
	if got := DistinctRangeCount(rules, DimSrcPort); got != 4 {
		t.Errorf("DistinctRangeCount = %d", got)
	}
	if got := DistinctRangeCount(rules, DimDstPort); got != 1 {
		t.Errorf("DistinctRangeCount(wildcard dim) = %d", got)
	}
	box := Range{Lo: 0, Hi: 15}
	if got := DistinctValueCount(rules, DimSrcPort, box); got != 4 {
		// endpoints 0,5,10,15 within the box
		t.Errorf("DistinctValueCount = %d", got)
	}
}

func TestValidateCatchesBadRules(t *testing.T) {
	bad := NewWildcardRule(0)
	bad.Ranges[DimSrcPort] = Range{Lo: 10, Hi: 5}
	s := NewSet([]Rule{bad})
	if err := s.Validate(); err == nil {
		t.Error("inverted range not caught")
	}
	bad2 := NewWildcardRule(0)
	bad2.Ranges[DimProto] = Range{Lo: 0, Hi: 300}
	s2 := NewSet([]Rule{bad2})
	if err := s2.Validate(); err == nil {
		t.Error("overflow range not caught")
	}
}

// Property: the linear-search winner is always the lowest-index rule that
// matches, and removing shadowed rules never changes any packet's winner.
func TestPropertyShadowRemovalPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		rules := make([]Rule, 0, n+1)
		for i := 0; i < n; i++ {
			rules = append(rules, randomRule(rng))
		}
		rules = append(rules, NewWildcardRule(n)) // default
		s := NewSet(rules)
		s2 := s.Clone()
		s2.RemoveShadowed()
		for i := 0; i < 50; i++ {
			p := Packet{
				SrcIP:   rng.Uint32(),
				DstIP:   rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)),
				DstPort: uint16(rng.Intn(65536)),
				Proto:   uint8(rng.Intn(256)),
			}
			a, okA := s.Match(p)
			b, okB := s2.Match(p)
			if okA != okB {
				return false
			}
			// Winners must be the same rule geometrically (priorities may be
			// renumbered after removal).
			if okA && !a.Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
