package rl

import (
	"math"
	"math/rand"
	"testing"

	"neurocuts/internal/nn"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LearningRate != 5e-5 {
		t.Errorf("learning rate %v", cfg.LearningRate)
	}
	if cfg.ClipParam != 0.3 || cfg.VFClipParam != 10.0 {
		t.Errorf("clip params %v/%v", cfg.ClipParam, cfg.VFClipParam)
	}
	if cfg.EntropyCoeff != 0.01 || cfg.KLTarget != 0.01 {
		t.Errorf("entropy/KL %v/%v", cfg.EntropyCoeff, cfg.KLTarget)
	}
	if cfg.Epochs != 30 || cfg.MinibatchSize != 1000 {
		t.Errorf("epochs/minibatch %d/%d", cfg.Epochs, cfg.MinibatchSize)
	}
}

func TestSelectActionRespectsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	policy := nn.NewActorCritic(4, 3, 5, []int{8}, rng)
	p := New(policy, DefaultConfig())
	obs := []float64{1, 0, 0, 0}
	mask := []bool{true, false, true, false, false}
	for i := 0; i < 200; i++ {
		d := p.SelectAction(obs, mask, rng, false)
		if d.Act == 1 || d.Act == 3 || d.Act == 4 {
			t.Fatalf("masked action %d selected", d.Act)
		}
		if d.Dim < 0 || d.Dim >= 3 {
			t.Fatalf("dimension %d out of range", d.Dim)
		}
		if math.IsNaN(d.LogProb) || math.IsInf(d.LogProb, 0) {
			t.Fatal("bad log prob")
		}
	}
	greedy := p.SelectAction(obs, mask, rng, true)
	again := p.SelectAction(obs, mask, rng, true)
	if greedy.Dim != again.Dim || greedy.Act != again.Act {
		t.Error("greedy selection should be deterministic")
	}
}

func TestUpdateEmptyBatchFails(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	policy := nn.NewActorCritic(2, 2, 2, []int{4}, rng)
	p := New(policy, DefaultConfig())
	if _, err := p.Update(nil, rng); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	policy := nn.NewActorCritic(2, 2, 2, []int{4}, rng)
	p := New(policy, Config{})
	cfg := p.Config()
	if cfg.LearningRate <= 0 || cfg.Epochs <= 0 || cfg.MinibatchSize <= 0 || cfg.ValueCoeff <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

// banditEnv is a deterministic contextual bandit: 4 contexts (one-hot
// observations), 3 actions, reward = rewardTable[context][action]. It has no
// dimension structure, so the "dim" head is irrelevant and always legal.
var rewardTable = [4][3]float64{
	{1.0, 0.0, 0.2},
	{0.0, 1.0, 0.1},
	{0.3, 0.2, 1.0},
	{0.0, 0.9, 0.1},
}

func banditObs(ctx int) []float64 {
	obs := make([]float64, 4)
	obs[ctx] = 1
	return obs
}

// collectBandit gathers one batch of bandit interactions under the current
// policy.
func collectBandit(p *PPO, n int, rng *rand.Rand) []Sample {
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		ctx := rng.Intn(4)
		obs := banditObs(ctx)
		d := p.SelectAction(obs, nil, rng, false)
		samples = append(samples, Sample{
			Obs:     obs,
			Dim:     d.Dim,
			Act:     d.Act,
			Return:  rewardTable[ctx][d.Act],
			Value:   d.Value,
			LogProb: d.LogProb,
		})
	}
	return samples
}

// TestPPOLearnsContextualBandit is the end-to-end learning test for the RL
// stack: after training, the greedy policy must pick the best action in
// every context, and the critic must predict values close to the achieved
// rewards.
func TestPPOLearnsContextualBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	policy := nn.NewActorCritic(4, 2, 3, []int{32, 32}, rng)
	cfg := Config{
		LearningRate:        3e-3,
		ClipParam:           0.2,
		VFClipParam:         10,
		EntropyCoeff:        0.003,
		ValueCoeff:          0.5,
		KLTarget:            0.05,
		Epochs:              6,
		MinibatchSize:       64,
		MaxGradNorm:         5,
		NormalizeAdvantages: true,
	}
	p := New(policy, cfg)

	var lastStats Stats
	for iter := 0; iter < 60; iter++ {
		samples := collectBandit(p, 256, rng)
		st, err := p.Update(samples, rng)
		if err != nil {
			t.Fatal(err)
		}
		lastStats = st
	}
	if lastStats.EpochsRun < 1 {
		t.Error("no epochs ran")
	}
	// Greedy policy must be optimal in every context.
	for ctx := 0; ctx < 4; ctx++ {
		d := p.SelectAction(banditObs(ctx), nil, rng, true)
		best := 0
		for a := 1; a < 3; a++ {
			if rewardTable[ctx][a] > rewardTable[ctx][best] {
				best = a
			}
		}
		if d.Act != best {
			t.Errorf("context %d: greedy action %d, want %d", ctx, d.Act, best)
		}
		// The critic should be within 0.3 of the optimal reward by now.
		if math.Abs(d.Value-rewardTable[ctx][best]) > 0.35 {
			t.Errorf("context %d: value %v far from %v", ctx, d.Value, rewardTable[ctx][best])
		}
	}
}

// TestPPOImprovesMeanReturn checks the learning direction without requiring
// full convergence: mean return over the last few batches must exceed the
// first batches (random policy baseline is ~0.45).
func TestPPOImprovesMeanReturn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	policy := nn.NewActorCritic(4, 2, 3, []int{16}, rng)
	cfg := DefaultConfig()
	cfg.LearningRate = 3e-3
	cfg.Epochs = 4
	cfg.MinibatchSize = 64
	p := New(policy, cfg)

	var early, late float64
	for iter := 0; iter < 40; iter++ {
		samples := collectBandit(p, 200, rng)
		st, err := p.Update(samples, rng)
		if err != nil {
			t.Fatal(err)
		}
		if iter < 5 {
			early += st.MeanReturn
		}
		if iter >= 35 {
			late += st.MeanReturn
		}
	}
	early /= 5
	late /= 5
	if late <= early {
		t.Errorf("mean return did not improve: early %v late %v", early, late)
	}
}

func TestUpdateStatsSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	policy := nn.NewActorCritic(4, 2, 3, []int{8}, rng)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	cfg.MinibatchSize = 32
	p := New(policy, cfg)
	samples := collectBandit(p, 128, rng)
	st, err := p.Update(samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entropy <= 0 {
		t.Errorf("entropy %v should be positive for a fresh policy", st.Entropy)
	}
	if st.ClipFraction < 0 || st.ClipFraction > 1 {
		t.Errorf("clip fraction %v", st.ClipFraction)
	}
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) || math.IsNaN(st.KL) {
		t.Error("NaN stats")
	}
	if st.MeanReturn <= 0 {
		t.Errorf("mean return %v", st.MeanReturn)
	}
}

func TestAdvantageNormalizationToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	policy := nn.NewActorCritic(4, 2, 3, []int{8}, rng)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.MinibatchSize = 16
	cfg.NormalizeAdvantages = false
	p := New(policy, cfg)
	samples := collectBandit(p, 64, rng)
	if _, err := p.Update(samples, rng); err != nil {
		t.Fatal(err)
	}
	// Identical returns (zero advantage variance) must not divide by zero
	// when normalisation is on.
	cfg.NormalizeAdvantages = true
	p2 := New(nn.NewActorCritic(4, 2, 3, []int{8}, rng), cfg)
	same := collectBandit(p2, 32, rng)
	for i := range same {
		same[i].Return = 1
		same[i].Value = 0.5
	}
	if _, err := p2.Update(same, rng); err != nil {
		t.Fatal(err)
	}
}
