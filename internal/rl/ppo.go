// Package rl implements Proximal Policy Optimization (Schulman et al., 2017)
// over the actor-critic network in internal/nn, specialised to the NeuroCuts
// branching-decision-process formulation: every sample is an independent
// 1-step decision (Section 5 of the paper) whose "return" is the subtree
// objective computed after the rollout completes, so no temporal-difference
// bootstrapping is needed — the advantage of a sample is simply its return
// minus the value prediction.
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"neurocuts/internal/nn"
)

// Sample is one 1-step decision collected from the environment.
type Sample struct {
	// Obs is the node observation the decision was taken from.
	Obs []float64
	// Dim and Act are the sampled indices of the two categorical heads.
	Dim int
	Act int
	// ActMask is the action-head mask in force when the action was sampled
	// (nil means every action was allowed).
	ActMask []bool
	// Return is the reward-to-go of the decision: the negated subtree
	// objective computed once the subtree under the node was finished.
	Return float64
	// Value is the critic's prediction at collection time.
	Value float64
	// LogProb is the joint log-probability (dimension + action) of the
	// sampled action under the collection-time policy.
	LogProb float64
}

// Config holds the PPO hyperparameters (Table 1 of the paper).
type Config struct {
	// LearningRate for Adam.
	LearningRate float64
	// ClipParam is the PPO surrogate clipping range.
	ClipParam float64
	// VFClipParam clips the value-function update around the old value.
	VFClipParam float64
	// EntropyCoeff scales the entropy bonus.
	EntropyCoeff float64
	// ValueCoeff scales the value-function loss.
	ValueCoeff float64
	// KLTarget stops the SGD epochs early when the mean KL divergence from
	// the collection-time policy exceeds 1.5x this target.
	KLTarget float64
	// Epochs is the number of SGD passes over each batch.
	Epochs int
	// MinibatchSize is the SGD minibatch size.
	MinibatchSize int
	// MaxGradNorm clips the global gradient norm (0 disables clipping).
	MaxGradNorm float64
	// NormalizeAdvantages standardises advantages per batch.
	NormalizeAdvantages bool
}

// DefaultConfig returns the PPO hyperparameters from Table 1 of the paper.
func DefaultConfig() Config {
	return Config{
		LearningRate:        5e-5,
		ClipParam:           0.3,
		VFClipParam:         10.0,
		EntropyCoeff:        0.01,
		ValueCoeff:          0.5,
		KLTarget:            0.01,
		Epochs:              30,
		MinibatchSize:       1000,
		MaxGradNorm:         10,
		NormalizeAdvantages: true,
	}
}

// PPO bundles a policy network with its optimizer and update rule.
type PPO struct {
	// Policy is the actor-critic network being trained.
	Policy *nn.ActorCritic
	cfg    Config
	opt    *nn.Adam
}

// New creates a PPO learner for the policy.
func New(policy *nn.ActorCritic, cfg Config) *PPO {
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = DefaultConfig().LearningRate
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.MinibatchSize <= 0 {
		cfg.MinibatchSize = 64
	}
	if cfg.ValueCoeff <= 0 {
		cfg.ValueCoeff = 0.5
	}
	opt := nn.NewAdam(policy.Layers(), cfg.LearningRate)
	opt.MaxGradNorm = cfg.MaxGradNorm
	return &PPO{Policy: policy, cfg: cfg, opt: opt}
}

// Config returns the learner's configuration.
func (p *PPO) Config() Config { return p.cfg }

// Decision is the result of sampling the policy at one observation.
type Decision struct {
	// Dim and Act are the sampled head indices.
	Dim int
	Act int
	// LogProb is the joint log-probability of the sample.
	LogProb float64
	// Value is the critic's estimate for the observation.
	Value float64
}

// SelectAction samples a (dimension, action) pair from the current policy
// for the observation, honouring the action mask. Pass greedy=true to take
// the mode instead of sampling (used at evaluation time).
func (p *PPO) SelectAction(obs []float64, actMask []bool, rng *rand.Rand, greedy bool) Decision {
	cache := p.Policy.Forward(obs)
	dimProbs := nn.Softmax(cache.DimLogits)
	actProbs := nn.MaskedSoftmax(cache.ActLogits, actMask)
	var dim, act int
	if greedy {
		dim = nn.Argmax(dimProbs)
		act = nn.Argmax(actProbs)
	} else {
		dim = nn.SampleCategorical(dimProbs, rng)
		act = nn.SampleCategorical(actProbs, rng)
	}
	return Decision{
		Dim:     dim,
		Act:     act,
		LogProb: nn.LogProb(dimProbs, dim) + nn.LogProb(actProbs, act),
		Value:   cache.Value,
	}
}

// Stats summarises one Update call.
type Stats struct {
	// PolicyLoss, ValueLoss and Entropy are batch means from the last epoch.
	PolicyLoss float64
	ValueLoss  float64
	Entropy    float64
	// KL is the estimated mean KL divergence from the collection policy
	// after the final epoch.
	KL float64
	// ClipFraction is the fraction of samples whose ratio was clipped.
	ClipFraction float64
	// EpochsRun counts the SGD epochs actually executed (early KL stop).
	EpochsRun int
	// MeanReturn and MeanAdvantage describe the batch.
	MeanReturn    float64
	MeanAdvantage float64
}

// Update performs the PPO update on a batch of samples and returns training
// statistics.
func (p *PPO) Update(samples []Sample, rng *rand.Rand) (Stats, error) {
	if len(samples) == 0 {
		return Stats{}, fmt.Errorf("rl: empty sample batch")
	}
	// Advantages: return minus collection-time value estimate.
	adv := make([]float64, len(samples))
	meanRet := 0.0
	for i, s := range samples {
		adv[i] = s.Return - s.Value
		meanRet += s.Return
	}
	meanRet /= float64(len(samples))
	meanAdvRaw := mean(adv)
	if p.cfg.NormalizeAdvantages {
		std := stddev(adv)
		if std < 1e-8 {
			std = 1e-8
		}
		m := meanAdvRaw
		for i := range adv {
			adv[i] = (adv[i] - m) / std
		}
	}

	var stats Stats
	stats.MeanReturn = meanRet
	stats.MeanAdvantage = meanAdvRaw

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	for epoch := 0; epoch < p.cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochPolicyLoss, epochValueLoss, epochEntropy, epochKL float64
		var clipped, count int

		for start := 0; start < len(idx); start += p.cfg.MinibatchSize {
			end := start + p.cfg.MinibatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			p.Policy.ZeroGrad()
			for _, si := range batch {
				s := samples[si]
				a := adv[si]
				cache := p.Policy.Forward(s.Obs)
				dimProbs := nn.Softmax(cache.DimLogits)
				actProbs := nn.MaskedSoftmax(cache.ActLogits, s.ActMask)
				newLogProb := nn.LogProb(dimProbs, s.Dim) + nn.LogProb(actProbs, s.Act)
				ratio := math.Exp(newLogProb - s.LogProb)

				// Clipped surrogate objective.
				unclipped := ratio * a
				clippedRatio := clamp(ratio, 1-p.cfg.ClipParam, 1+p.cfg.ClipParam)
				clippedObj := clippedRatio * a
				surrogate := math.Min(unclipped, clippedObj)
				epochPolicyLoss += -surrogate
				useUnclipped := unclipped <= clippedObj
				if !useUnclipped {
					clipped++
				}

				// Value loss with clipping around the old value estimate.
				vErr := cache.Value - s.Return
				vClipped := s.Value + clamp(cache.Value-s.Value, -p.cfg.VFClipParam, p.cfg.VFClipParam)
				vErrClipped := vClipped - s.Return
				var dValue float64
				if vErr*vErr >= vErrClipped*vErrClipped {
					epochValueLoss += 0.5 * vErr * vErr
					dValue = p.cfg.ValueCoeff * vErr
				} else {
					epochValueLoss += 0.5 * vErrClipped * vErrClipped
					if math.Abs(cache.Value-s.Value) < p.cfg.VFClipParam {
						dValue = p.cfg.ValueCoeff * vErrClipped
					}
				}

				ent := nn.Entropy(dimProbs) + nn.Entropy(actProbs)
				epochEntropy += ent
				epochKL += s.LogProb - newLogProb
				count++

				// Gradient of the total loss
				//   L = -surrogate - entCoeff*entropy + valueCoeff*valueLoss
				// with respect to the two logit vectors and the value output.
				dDim := make([]float64, len(cache.DimLogits))
				dAct := make([]float64, len(cache.ActLogits))
				if useUnclipped {
					// d(-ratio*A)/dlogits = -A * ratio * dlogp/dlogits
					coef := -a * ratio
					for i, g := range nn.LogProbGrad(dimProbs, s.Dim, nil) {
						dDim[i] += coef * g
					}
					for i, g := range nn.LogProbGrad(actProbs, s.Act, s.ActMask) {
						dAct[i] += coef * g
					}
				}
				if p.cfg.EntropyCoeff != 0 {
					for i, g := range nn.EntropyGrad(dimProbs, nil) {
						dDim[i] -= p.cfg.EntropyCoeff * g
					}
					for i, g := range nn.EntropyGrad(actProbs, s.ActMask) {
						dAct[i] -= p.cfg.EntropyCoeff * g
					}
				}
				p.Policy.Backward(cache, dDim, dAct, dValue)
			}
			p.opt.Step(float64(len(batch)))
		}

		stats.PolicyLoss = epochPolicyLoss / float64(count)
		stats.ValueLoss = epochValueLoss / float64(count)
		stats.Entropy = epochEntropy / float64(count)
		stats.KL = epochKL / float64(count)
		stats.ClipFraction = float64(clipped) / float64(count)
		stats.EpochsRun = epoch + 1

		if p.cfg.KLTarget > 0 && stats.KL > 1.5*p.cfg.KLTarget {
			break
		}
	}
	return stats, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
