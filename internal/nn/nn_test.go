package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearForwardKnownValues(t *testing.T) {
	l := &Linear{In: 2, Out: 2,
		W:     []float64{1, 2, 3, 4}, // y0 = x0 + 2x1, y1 = 3x0 + 4x1
		B:     []float64{0.5, -0.5},
		GradW: make([]float64, 4), GradB: make([]float64, 2),
	}
	y := l.Forward([]float64{1, 1})
	if math.Abs(y[0]-3.5) > 1e-12 || math.Abs(y[1]-6.5) > 1e-12 {
		t.Errorf("forward = %v", y)
	}
}

func TestLinearPanicsOnBadSizes(t *testing.T) {
	l := NewLinear(3, 2, rand.New(rand.NewSource(1)))
	assertPanic(t, func() { l.Forward([]float64{1}) })
	assertPanic(t, func() { l.Backward([]float64{1, 2, 3}, []float64{1}) })
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestLinearGradientCheck verifies the analytic gradients of a linear+tanh
// stack against central finite differences.
func TestLinearGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(4, 3, rng)
	x := []float64{0.3, -0.2, 0.8, -0.5}
	target := []float64{0.1, -0.4, 0.7}

	loss := func() float64 {
		y := Tanh(l.Forward(x))
		sum := 0.0
		for i := range y {
			d := y[i] - target[i]
			sum += 0.5 * d * d
		}
		return sum
	}

	// Analytic gradients.
	l.ZeroGrad()
	y := Tanh(l.Forward(x))
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = y[i] - target[i]
	}
	l.Backward(x, TanhBackward(y, dy))

	const eps = 1e-6
	for i := range l.W {
		orig := l.W[i]
		l.W[i] = orig + eps
		plus := loss()
		l.W[i] = orig - eps
		minus := loss()
		l.W[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-l.GradW[i]) > 1e-5 {
			t.Fatalf("weight %d: analytic %v numeric %v", i, l.GradW[i], numeric)
		}
	}
	for i := range l.B {
		orig := l.B[i]
		l.B[i] = orig + eps
		plus := loss()
		l.B[i] = orig - eps
		minus := loss()
		l.B[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-l.GradB[i]) > 1e-5 {
			t.Fatalf("bias %d: analytic %v numeric %v", i, l.GradB[i], numeric)
		}
	}
}

func TestSoftmaxAndMask(t *testing.T) {
	p := Softmax([]float64{1, 1, 1, 1})
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("uniform softmax = %v", p)
		}
	}
	p = MaskedSoftmax([]float64{5, 1, 1}, []bool{false, true, true})
	if p[0] != 0 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("masked softmax = %v", p)
	}
	// Huge logits must not overflow.
	p = Softmax([]float64{1000, 999})
	if math.IsNaN(p[0]) || p[0] < p[1] {
		t.Errorf("stability failure: %v", p)
	}
	// Fully masked falls back to uniform.
	p = MaskedSoftmax([]float64{1, 2}, []bool{false, false})
	if math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("fully masked = %v", p)
	}
	sum := 0.0
	for _, v := range Softmax([]float64{0.3, -2, 5, 0.1}) {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax does not sum to 1: %v", sum)
	}
}

func TestSampleCategoricalAndArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	probs := []float64{0.1, 0.7, 0.2}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[SampleCategorical(probs, rng)]++
	}
	if counts[1] < 1800 || counts[0] > 600 {
		t.Errorf("sampling off: %v", counts)
	}
	if Argmax(probs) != 1 {
		t.Error("argmax wrong")
	}
	// Degenerate distribution.
	if got := SampleCategorical([]float64{0, 0, 1}, rng); got != 2 {
		t.Errorf("deterministic sample = %d", got)
	}
}

func TestEntropyAndLogProb(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if math.Abs(Entropy(uniform)-math.Log(4)) > 1e-9 {
		t.Errorf("uniform entropy = %v", Entropy(uniform))
	}
	delta := []float64{1, 0, 0, 0}
	if Entropy(delta) != 0 {
		t.Errorf("delta entropy = %v", Entropy(delta))
	}
	if math.Abs(LogProb(uniform, 2)-math.Log(0.25)) > 1e-9 {
		t.Error("logprob wrong")
	}
	if LogProb(delta, 1) > math.Log(1e-11) {
		t.Error("zero-prob logprob should be floored, not -Inf")
	}
}

// TestLogProbGradNumeric verifies d log p_idx / d logits against finite
// differences, including under a mask.
func TestLogProbGradNumeric(t *testing.T) {
	logits := []float64{0.5, -1.2, 0.3, 2.0}
	mask := []bool{true, true, false, true}
	idx := 0
	analytic := LogProbGrad(MaskedSoftmax(logits, mask), idx, mask)
	const eps = 1e-6
	for i := range logits {
		if !mask[i] {
			if analytic[i] != 0 {
				t.Errorf("masked entry %d has gradient %v", i, analytic[i])
			}
			continue
		}
		orig := logits[i]
		logits[i] = orig + eps
		plus := LogProb(MaskedSoftmax(logits, mask), idx)
		logits[i] = orig - eps
		minus := LogProb(MaskedSoftmax(logits, mask), idx)
		logits[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-5 {
			t.Fatalf("logit %d: analytic %v numeric %v", i, analytic[i], numeric)
		}
	}
}

// TestEntropyGradNumeric verifies d H / d logits against finite differences.
func TestEntropyGradNumeric(t *testing.T) {
	logits := []float64{0.1, 1.5, -0.7}
	analytic := EntropyGrad(Softmax(logits), nil)
	const eps = 1e-6
	for i := range logits {
		orig := logits[i]
		logits[i] = orig + eps
		plus := Entropy(Softmax(logits))
		logits[i] = orig - eps
		minus := Entropy(Softmax(logits))
		logits[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-5 {
			t.Fatalf("logit %d: analytic %v numeric %v", i, analytic[i], numeric)
		}
	}
}

func TestActorCriticForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ac := NewActorCritic(10, 5, 7, []int{16, 16}, rng)
	obs := make([]float64, 10)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	cache := ac.Forward(obs)
	if len(cache.DimLogits) != 5 || len(cache.ActLogits) != 7 {
		t.Fatalf("logit shapes %d/%d", len(cache.DimLogits), len(cache.ActLogits))
	}
	if math.IsNaN(cache.Value) {
		t.Fatal("NaN value")
	}
	if ac.NumParams() == 0 {
		t.Fatal("no parameters")
	}
	assertPanic(t, func() { ac.Forward(make([]float64, 3)) })
	// Default hidden layout when none is given.
	ac2 := NewActorCritic(4, 2, 3, nil, rng)
	if len(ac2.Hidden) == 0 {
		t.Error("default hidden layers missing")
	}
}

// TestActorCriticGradientCheck verifies the full-network backward pass
// against finite differences for a composite loss using both heads and the
// value output.
func TestActorCriticGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ac := NewActorCritic(6, 3, 4, []int{8}, rng)
	obs := make([]float64, 6)
	for i := range obs {
		obs[i] = rng.Float64()*2 - 1
	}
	dimIdx, actIdx := 1, 2
	targetValue := 0.7

	loss := func() float64 {
		c := ac.Forward(obs)
		lp := LogProb(Softmax(c.DimLogits), dimIdx) + LogProb(Softmax(c.ActLogits), actIdx)
		vErr := c.Value - targetValue
		return -lp + 0.5*vErr*vErr
	}

	ac.ZeroGrad()
	c := ac.Forward(obs)
	dDim := LogProbGrad(Softmax(c.DimLogits), dimIdx, nil)
	dAct := LogProbGrad(Softmax(c.ActLogits), actIdx, nil)
	// loss = -logp + 0.5*(v-target)^2, so dLoss/dlogits = -grad(logp) and
	// dLoss/dvalue = (v - target).
	for i := range dDim {
		dDim[i] = -dDim[i]
	}
	for i := range dAct {
		dAct[i] = -dAct[i]
	}
	ac.Backward(c, dDim, dAct, c.Value-targetValue)

	const eps = 1e-6
	for li, l := range ac.Layers() {
		for i := range l.W {
			orig := l.W[i]
			l.W[i] = orig + eps
			plus := loss()
			l.W[i] = orig - eps
			minus := loss()
			l.W[i] = orig
			numeric := (plus - minus) / (2 * eps)
			if math.Abs(numeric-l.GradW[i]) > 1e-4 {
				t.Fatalf("layer %d weight %d: analytic %v numeric %v", li, i, l.GradW[i], numeric)
			}
		}
	}
}

func TestActorCriticSaveLoadClone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ac := NewActorCritic(8, 5, 7, []int{12, 12}, rng)
	obs := make([]float64, 8)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	before := ac.Forward(obs)

	data, err := ac.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &ActorCritic{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	after := restored.Forward(obs)
	for i := range before.DimLogits {
		if math.Abs(before.DimLogits[i]-after.DimLogits[i]) > 1e-12 {
			t.Fatal("restored network differs")
		}
	}
	if math.Abs(before.Value-after.Value) > 1e-12 {
		t.Fatal("restored value differs")
	}

	clone := ac.Clone()
	cloneOut := clone.Forward(obs)
	if math.Abs(cloneOut.Value-before.Value) > 1e-12 {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	clone.Layers()[0].W[0] += 1
	if math.Abs(ac.Forward(obs).Value-before.Value) > 1e-12 {
		t.Fatal("clone shares storage with original")
	}

	if err := restored.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage checkpoint should fail")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Train a small network to regress a fixed target; the loss must drop by
	// a large factor.
	rng := rand.New(rand.NewSource(17))
	ac := NewActorCritic(4, 3, 3, []int{16}, rng)
	opt := NewAdam(ac.Layers(), 1e-2)
	obs := []float64{0.5, -0.3, 0.9, 0.1}
	target := 2.5

	lossAt := func() float64 {
		c := ac.Forward(obs)
		d := c.Value - target
		return 0.5 * d * d
	}
	initial := lossAt()
	for step := 0; step < 300; step++ {
		ac.ZeroGrad()
		c := ac.Forward(obs)
		ac.Backward(c, make([]float64, 3), make([]float64, 3), c.Value-target)
		opt.Step(1)
	}
	final := lossAt()
	if final > initial*0.01 {
		t.Errorf("Adam failed to optimise: initial %v final %v", initial, final)
	}
}

func TestAdamGradClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ac := NewActorCritic(2, 2, 2, []int{4}, rng)
	opt := NewAdam(ac.Layers(), 1e-3)
	opt.MaxGradNorm = 0.5
	ac.ZeroGrad()
	c := ac.Forward([]float64{1, -1})
	// Gigantic value error produces a huge gradient that must be clipped
	// without blowing up the parameters.
	ac.Backward(c, make([]float64, 2), make([]float64, 2), 1e6)
	if opt.GradNorm() <= 0 {
		t.Fatal("gradient norm should be positive")
	}
	opt.Step(1)
	for _, l := range ac.Layers() {
		for _, w := range l.W {
			if math.IsNaN(w) || math.Abs(w) > 100 {
				t.Fatalf("parameter blew up: %v", w)
			}
		}
	}
	// Step with scale 0 falls back to 1 and must not panic.
	opt.Step(0)
}

// Property: softmax output is always a probability distribution.
func TestPropertySoftmaxIsDistribution(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Keep logits in a sane range; the policy never produces 1e300.
			if x > 50 {
				x = 50
			}
			if x < -50 {
				x = -50
			}
			logits = append(logits, x)
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
