package nn

import (
	"math"
	"math/rand"
)

// Softmax returns the softmax of the logits, numerically stabilised by
// subtracting the maximum.
func Softmax(logits []float64) []float64 {
	return MaskedSoftmax(logits, nil)
}

// MaskedSoftmax returns softmax over the logits with masked-out entries
// (mask[i] == false) receiving probability zero. A nil mask keeps every
// entry. If every entry is masked the result is the uniform distribution
// (callers should avoid fully-masked logits; this keeps the math finite).
func MaskedSoftmax(logits []float64, mask []bool) []float64 {
	out := make([]float64, len(logits))
	maxLogit := math.Inf(-1)
	anyAllowed := false
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		anyAllowed = true
		if l > maxLogit {
			maxLogit = l
		}
	}
	if !anyAllowed {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	sum := 0.0
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		out[i] = math.Exp(l - maxLogit)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SampleCategorical draws an index from the probability vector.
func SampleCategorical(probs []float64, rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	// Floating-point slack: return the last non-zero entry.
	for i := len(probs) - 1; i >= 0; i-- {
		if probs[i] > 0 {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest probability (greedy action).
func Argmax(probs []float64) int {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// LogProb returns log(probs[idx]) with a floor to keep it finite.
func LogProb(probs []float64, idx int) float64 {
	p := probs[idx]
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}

// Entropy returns the Shannon entropy of the distribution in nats.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// LogProbGrad returns d(log probs[idx])/d(logits) for a (masked) softmax
// distribution: one_hot(idx) - probs, with masked entries receiving zero
// gradient.
func LogProbGrad(probs []float64, idx int, mask []bool) []float64 {
	g := make([]float64, len(probs))
	for i, p := range probs {
		if mask != nil && !mask[i] {
			continue
		}
		g[i] = -p
	}
	if mask == nil || mask[idx] {
		g[idx] += 1
	}
	return g
}

// EntropyGrad returns d(entropy)/d(logits) for a (masked) softmax
// distribution: -p_i * (log p_i + H), with masked entries receiving zero.
func EntropyGrad(probs []float64, mask []bool) []float64 {
	h := Entropy(probs)
	g := make([]float64, len(probs))
	for i, p := range probs {
		if mask != nil && !mask[i] {
			continue
		}
		if p > 1e-12 {
			g[i] = -p * (math.Log(p) + h)
		}
	}
	return g
}
