package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, 2015) over the parameters
// of a set of layers.
type Adam struct {
	// LR is the learning rate; Beta1/Beta2 are the moment decay rates and
	// Eps the denominator fuzz.
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	// MaxGradNorm, when positive, rescales the global gradient so its L2
	// norm does not exceed this bound before the update (gradient clipping).
	MaxGradNorm float64

	layers []*Linear
	m      [][]float64
	v      [][]float64
	t      int
}

// NewAdam creates an optimizer over the given layers with standard defaults
// (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(layers []*Linear, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, layers: layers}
	for _, l := range layers {
		for _, p := range l.Params() {
			a.m = append(a.m, make([]float64, len(p)))
			a.v = append(a.v, make([]float64, len(p)))
		}
	}
	return a
}

// GradNorm returns the global L2 norm of all accumulated gradients.
func (a *Adam) GradNorm() float64 {
	sum := 0.0
	for _, l := range a.layers {
		for _, g := range l.Grads() {
			for _, x := range g {
				sum += x * x
			}
		}
	}
	return math.Sqrt(sum)
}

// Step applies one Adam update using the gradients accumulated in the layers
// and then leaves the gradients untouched (callers typically ZeroGrad after).
// scale divides the gradients first, which is how callers average gradients
// accumulated over a minibatch.
func (a *Adam) Step(scale float64) {
	if scale == 0 {
		scale = 1
	}
	clip := 1.0
	if a.MaxGradNorm > 0 {
		norm := a.GradNorm() / scale
		if norm > a.MaxGradNorm {
			clip = a.MaxGradNorm / norm
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	idx := 0
	for _, l := range a.layers {
		params := l.Params()
		grads := l.Grads()
		for pi, p := range params {
			g := grads[pi]
			m := a.m[idx]
			v := a.v[idx]
			for i := range p {
				gi := g[i] / scale * clip
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
				mHat := m[i] / bc1
				vHat := v[i] / bc2
				p[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			}
			idx++
		}
	}
}
