package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// ActorCritic is the NeuroCuts policy/value network: a shared tanh MLP trunk
// (weight sharing between the actor and the critic, as in Table 1 of the
// paper) feeding three heads — a categorical distribution over cut/partition
// dimensions, a categorical distribution over the per-dimension actions, and
// a scalar state-value estimate.
type ActorCritic struct {
	// ObsSize is the observation width; NumDims and NumActs are the sizes of
	// the two categorical heads; Hidden lists the trunk's hidden layer
	// widths.
	ObsSize int
	NumDims int
	NumActs int
	Hidden  []int

	trunk     []*Linear
	dimHead   *Linear
	actHead   *Linear
	valueHead *Linear
}

// NewActorCritic builds a network with the given layout. hidden must contain
// at least one layer width.
func NewActorCritic(obsSize, numDims, numActs int, hidden []int, rng *rand.Rand) *ActorCritic {
	if len(hidden) == 0 {
		hidden = []int{128, 128}
	}
	ac := &ActorCritic{
		ObsSize: obsSize,
		NumDims: numDims,
		NumActs: numActs,
		Hidden:  append([]int(nil), hidden...),
	}
	in := obsSize
	for _, h := range hidden {
		ac.trunk = append(ac.trunk, NewLinear(in, h, rng))
		in = h
	}
	ac.dimHead = NewLinear(in, numDims, rng)
	ac.actHead = NewLinear(in, numActs, rng)
	ac.valueHead = NewLinear(in, 1, rng)
	return ac
}

// ForwardCache stores the intermediate activations of one forward pass so
// that Backward can compute exact gradients for that sample.
type ForwardCache struct {
	// Obs is the input observation.
	Obs []float64
	// PreAct and PostAct hold, per trunk layer, the linear output and its
	// tanh activation.
	PostAct [][]float64
	// DimLogits, ActLogits and Value are the head outputs.
	DimLogits []float64
	ActLogits []float64
	Value     float64
}

// Forward runs the network on one observation and returns the cache holding
// logits, value and the activations needed for Backward.
func (ac *ActorCritic) Forward(obs []float64) *ForwardCache {
	if len(obs) != ac.ObsSize {
		panic(fmt.Sprintf("nn: observation size %d, want %d", len(obs), ac.ObsSize))
	}
	cache := &ForwardCache{Obs: obs}
	x := obs
	for _, l := range ac.trunk {
		x = Tanh(l.Forward(x))
		cache.PostAct = append(cache.PostAct, x)
	}
	cache.DimLogits = ac.dimHead.Forward(x)
	cache.ActLogits = ac.actHead.Forward(x)
	cache.Value = ac.valueHead.Forward(x)[0]
	return cache
}

// Backward accumulates parameter gradients for one sample, given the forward
// cache and the gradients of the loss with respect to the dimension logits,
// action logits and value output.
func (ac *ActorCritic) Backward(cache *ForwardCache, dDimLogits, dActLogits []float64, dValue float64) {
	last := cache.PostAct[len(cache.PostAct)-1]
	dTrunk := make([]float64, len(last))
	add := func(dst, src []float64) {
		for i := range src {
			dst[i] += src[i]
		}
	}
	add(dTrunk, ac.dimHead.Backward(last, dDimLogits))
	add(dTrunk, ac.actHead.Backward(last, dActLogits))
	add(dTrunk, ac.valueHead.Backward(last, []float64{dValue}))

	// Backprop through the trunk in reverse.
	for i := len(ac.trunk) - 1; i >= 0; i-- {
		dPre := TanhBackward(cache.PostAct[i], dTrunk)
		var input []float64
		if i == 0 {
			input = cache.Obs
		} else {
			input = cache.PostAct[i-1]
		}
		dTrunk = ac.trunk[i].Backward(input, dPre)
	}
}

// Layers returns every layer of the network, trunk first.
func (ac *ActorCritic) Layers() []*Linear {
	out := append([]*Linear(nil), ac.trunk...)
	return append(out, ac.dimHead, ac.actHead, ac.valueHead)
}

// ZeroGrad clears the accumulated gradients of every layer.
func (ac *ActorCritic) ZeroGrad() {
	for _, l := range ac.Layers() {
		l.ZeroGrad()
	}
}

// NumParams returns the total number of trainable parameters.
func (ac *ActorCritic) NumParams() int {
	n := 0
	for _, l := range ac.Layers() {
		n += len(l.W) + len(l.B)
	}
	return n
}

// Clone returns a deep copy of the network (weights only; gradients start at
// zero).
func (ac *ActorCritic) Clone() *ActorCritic {
	data, err := ac.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("nn: cloning network: %v", err))
	}
	out := &ActorCritic{}
	if err := out.UnmarshalBinary(data); err != nil {
		panic(fmt.Sprintf("nn: cloning network: %v", err))
	}
	return out
}

// snapshot is the gob wire format for checkpoints.
type snapshot struct {
	ObsSize, NumDims, NumActs int
	Hidden                    []int
	Weights                   [][]float64
	Biases                    [][]float64
}

// MarshalBinary serialises the network weights with encoding/gob.
func (ac *ActorCritic) MarshalBinary() ([]byte, error) {
	s := snapshot{ObsSize: ac.ObsSize, NumDims: ac.NumDims, NumActs: ac.NumActs, Hidden: ac.Hidden}
	for _, l := range ac.Layers() {
		s.Weights = append(s.Weights, append([]float64(nil), l.W...))
		s.Biases = append(s.Biases, append([]float64(nil), l.B...))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("nn: encoding network: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a network serialised by MarshalBinary.
func (ac *ActorCritic) UnmarshalBinary(data []byte) error {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("nn: decoding network: %w", err)
	}
	fresh := NewActorCritic(s.ObsSize, s.NumDims, s.NumActs, s.Hidden, rand.New(rand.NewSource(0)))
	layers := fresh.Layers()
	if len(layers) != len(s.Weights) {
		return fmt.Errorf("nn: checkpoint has %d layers, network has %d", len(s.Weights), len(layers))
	}
	for i, l := range layers {
		if len(l.W) != len(s.Weights[i]) || len(l.B) != len(s.Biases[i]) {
			return fmt.Errorf("nn: checkpoint layer %d shape mismatch", i)
		}
		copy(l.W, s.Weights[i])
		copy(l.B, s.Biases[i])
	}
	*ac = *fresh
	return nil
}
