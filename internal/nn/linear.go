// Package nn is a minimal neural-network library written from scratch on the
// standard library, sufficient to implement the NeuroCuts policy: dense
// layers with tanh activations, masked categorical distributions, an
// actor-critic network with a shared trunk, manual backpropagation, and the
// Adam optimizer. No autograd framework exists for Go, so gradients are
// derived and implemented by hand and verified against numerical
// differentiation in the package tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Linear is a fully-connected layer computing y = W·x + b.
type Linear struct {
	// In and Out are the input and output widths.
	In, Out int
	// W is the weight matrix in row-major order: W[o*In+i] connects input i
	// to output o. B is the bias vector.
	W, B []float64
	// GradW and GradB accumulate parameter gradients across Backward calls
	// until ZeroGrad is called.
	GradW, GradB []float64
}

// NewLinear creates a layer with Xavier/Glorot-uniform initialised weights
// and zero biases, drawing from rng for reproducibility.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		GradW: make([]float64, in*out), GradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W {
		l.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Forward computes the layer output for a single input vector.
func (l *Linear) Forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear.Forward input size %d, want %d", len(x), l.In))
	}
	y := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
	return y
}

// Backward accumulates parameter gradients for one sample given the input x
// that produced the forward pass and the gradient dy of the loss with
// respect to the layer output. It returns the gradient with respect to x.
func (l *Linear) Backward(x, dy []float64) []float64 {
	if len(x) != l.In || len(dy) != l.Out {
		panic(fmt.Sprintf("nn: Linear.Backward sizes %d/%d, want %d/%d", len(x), len(dy), l.In, l.Out))
	}
	dx := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		l.GradB[o] += g
		row := l.W[o*l.In : (o+1)*l.In]
		gradRow := l.GradW[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			gradRow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

// ZeroGrad clears the accumulated gradients.
func (l *Linear) ZeroGrad() {
	for i := range l.GradW {
		l.GradW[i] = 0
	}
	for i := range l.GradB {
		l.GradB[i] = 0
	}
}

// Params returns the layer's parameter slices (weights then biases), used by
// optimizers and checkpointing.
func (l *Linear) Params() [][]float64 { return [][]float64{l.W, l.B} }

// Grads returns the gradient slices aligned with Params.
func (l *Linear) Grads() [][]float64 { return [][]float64{l.GradW, l.GradB} }

// Tanh applies the hyperbolic tangent elementwise and returns the result.
func Tanh(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// TanhBackward returns the gradient with respect to the tanh input given the
// tanh output y and the upstream gradient dy.
func TanhBackward(y, dy []float64) []float64 {
	dx := make([]float64, len(y))
	for i := range y {
		dx[i] = dy[i] * (1 - y[i]*y[i])
	}
	return dx
}
