package updater

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"neurocuts/internal/rule"
)

// The update journal is the durable write-ahead log of the overlay write
// path: every acknowledged Insert/Delete appends one record before the new
// snapshot is published, so a crash loses nothing that was acknowledged.
// Replaying the journal over the rule set it was started from (an artifact,
// or a deterministically regenerated set — matched by fingerprint)
// reconstructs the exact merged rule list, independent of how the live
// engine had split it between base and overlay or how often it compacted.
//
// On-disk layout (all integers little-endian, following the conventions of
// internal/compiled/format.go):
//
//	magic [4]byte "NCUJ"
//	u32   schema version
//	u32   metadata length, then that many bytes of JSON (JournalMeta)
//	records, each:
//	  u32  payload length
//	  payload: u8 op, then
//	    op=1 (insert): u32 pos, u64 id, 5 x (u64 lo, u64 hi)
//	    op=2 (delete): u64 id
//	  u32  CRC-32 (IEEE) of the payload
//
// A torn or corrupt record ends the valid prefix: Open replays everything
// before it and truncates the file there (standard WAL crash semantics — a
// record is either fully durable or it never happened).

// JournalSchemaVersion identifies the journal binary schema; Open refuses
// journals written under a different version.
const JournalSchemaVersion = 1

// JournalMagic opens every journal file ("NeuroCuts Update Journal").
var JournalMagic = [4]byte{'N', 'C', 'U', 'J'}

// maxRecordPayload bounds one record's payload; real records are < 100
// bytes, the cap keeps hostile length prefixes from forcing allocations.
const maxRecordPayload = 4096

// Op kinds.
const (
	OpInsert uint8 = 1
	OpDelete uint8 = 2
)

// Op is one journaled update.
type Op struct {
	// Kind is OpInsert or OpDelete.
	Kind uint8
	// Pos is the (already clamped) priority position of an insert.
	Pos int
	// ID is the rule ID: assigned at insert, removed at delete.
	ID int
	// Rule carries the inserted rule's ranges (insert only).
	Rule rule.Rule
}

// JournalMeta identifies the rule-list state a journal's records apply to.
type JournalMeta struct {
	// Backend is the engine backend serving at journal creation.
	Backend string `json:"backend"`
	// BaseRules is the rule count of the starting list.
	BaseRules int `json:"base_rules"`
	// BaseCRC fingerprints the starting list (see Fingerprint); replay onto
	// a different list is refused rather than silently diverging.
	BaseCRC uint32 `json:"base_crc"`
	// CreatedUnix is the journal creation time in Unix seconds.
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Fingerprint is the CRC-32 of a rule list's canonical encoding (ranges,
// priorities and IDs, in order). It pins a journal to the exact state its
// records apply to.
func Fingerprint(set *rule.Set) uint32 {
	h := crc32.NewIEEE()
	// The per-rule record is 16 bytes per dimension plus priority and ID.
	// Sized from the dimension list, not a literal, so widening the rule
	// layout (IPv6 / arbitrary-dimension rules) widens the fingerprint with
	// it instead of silently hashing a truncated or over-long record.
	buf := make([]byte, 16*len(rule.Dimensions())+16)
	for _, r := range set.Rules() {
		off := 0
		for _, d := range rule.Dimensions() {
			binary.LittleEndian.PutUint64(buf[off:], r.Ranges[d].Lo)
			binary.LittleEndian.PutUint64(buf[off+8:], r.Ranges[d].Hi)
			off += 16
		}
		binary.LittleEndian.PutUint64(buf[off:], uint64(int64(r.Priority)))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(int64(r.ID)))
		h.Write(buf)
	}
	return h.Sum32()
}

// Journal is an append-only update log backed by one file. Appends are
// serialised by the engine's writer lock; the file is synced per record
// unless the journal was opened with sync disabled.
type Journal struct {
	f    *os.File
	path string
	sync bool
	// off is the end of the last fully durable record (or the header). A
	// failed append truncates back to it so a torn record can never sit in
	// front of later acknowledged records — ParseJournal stops at the first
	// corrupt record, so garbage mid-file would silently void everything
	// after it at replay.
	off     int64
	records int
	// broken latches when a failed append could not be rolled back; every
	// later Append refuses, failing the journal closed rather than
	// acknowledging updates that would not survive a replay.
	broken error
}

// encodeHeader renders the journal header bytes for meta.
func encodeHeader(meta JournalMeta) ([]byte, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("updater: encoding journal metadata: %w", err)
	}
	buf := append([]byte{}, JournalMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, JournalSchemaVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(metaJSON)))
	return append(buf, metaJSON...), nil
}

// encodeOp renders one record (length prefix + payload + CRC trailer).
func encodeOp(op Op) []byte {
	payload := []byte{op.Kind}
	switch op.Kind {
	case OpInsert:
		payload = binary.LittleEndian.AppendUint32(payload, uint32(op.Pos))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(int64(op.ID)))
		for _, d := range rule.Dimensions() {
			payload = binary.LittleEndian.AppendUint64(payload, op.Rule.Ranges[d].Lo)
			payload = binary.LittleEndian.AppendUint64(payload, op.Rule.Ranges[d].Hi)
		}
	case OpDelete:
		payload = binary.LittleEndian.AppendUint64(payload, uint64(int64(op.ID)))
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// decodeOp parses one record payload.
func decodeOp(payload []byte) (Op, error) {
	if len(payload) == 0 {
		return Op{}, errors.New("empty record payload")
	}
	op := Op{Kind: payload[0]}
	body := payload[1:]
	switch op.Kind {
	case OpInsert:
		if len(body) != 4+8+rule.NumDims*16 {
			return Op{}, fmt.Errorf("insert record payload is %d bytes", len(payload))
		}
		op.Pos = int(binary.LittleEndian.Uint32(body))
		op.ID = int(int64(binary.LittleEndian.Uint64(body[4:])))
		off := 12
		for _, d := range rule.Dimensions() {
			op.Rule.Ranges[d].Lo = binary.LittleEndian.Uint64(body[off:])
			op.Rule.Ranges[d].Hi = binary.LittleEndian.Uint64(body[off+8:])
			off += 16
		}
		op.Rule.ID = op.ID
	case OpDelete:
		if len(body) != 8 {
			return Op{}, fmt.Errorf("delete record payload is %d bytes", len(payload))
		}
		op.ID = int(int64(binary.LittleEndian.Uint64(body)))
	default:
		return Op{}, fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return op, nil
}

// ParseJournal decodes journal bytes: the header strictly (bad magic,
// version or metadata is an error), then records until the first torn or
// corrupt one. It returns the decoded ops and the byte length of the valid
// prefix (header + intact records), which is where a crashed writer's file
// should be truncated. It never panics on arbitrary input (fuzzed).
func ParseJournal(data []byte) (meta JournalMeta, ops []Op, validLen int, err error) {
	if len(data) < 4+4+4 {
		return meta, nil, 0, fmt.Errorf("updater: journal truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != string(JournalMagic[:]) {
		return meta, nil, 0, fmt.Errorf("updater: bad journal magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != JournalSchemaVersion {
		return meta, nil, 0, fmt.Errorf("updater: journal schema version %d, this build reads version %d", v, JournalSchemaVersion)
	}
	metaLen := binary.LittleEndian.Uint32(data[8:])
	if uint64(metaLen) > uint64(len(data)-12) {
		return meta, nil, 0, fmt.Errorf("updater: journal metadata length %d exceeds file", metaLen)
	}
	if err := json.Unmarshal(data[12:12+metaLen], &meta); err != nil {
		return meta, nil, 0, fmt.Errorf("updater: decoding journal metadata: %w", err)
	}
	off := 12 + int(metaLen)
	validLen = off
	for off+4 <= len(data) {
		plen := binary.LittleEndian.Uint32(data[off:])
		if plen == 0 || plen > maxRecordPayload {
			break // corrupt length: end of valid prefix
		}
		end := off + 4 + int(plen) + 4
		if end > len(data) {
			break // torn tail
		}
		payload := data[off+4 : off+4+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4+int(plen):]) {
			break // corrupt record
		}
		op, decErr := decodeOp(payload)
		if decErr != nil {
			break
		}
		ops = append(ops, op)
		off = end
		validLen = off
	}
	return meta, ops, validLen, nil
}

// OpenJournal opens (or creates) the journal at path for a rule list with
// the given metadata. When the file exists, its header must match meta's
// fingerprint and rule count — a mismatched journal belongs to a different
// base and is refused. Intact records are returned for replay, and the file
// is truncated past the last intact record so a torn tail from a crash
// never corrupts subsequent appends.
func OpenJournal(path string, meta JournalMeta, sync bool) (*Journal, []Op, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && len(data) == 0) {
		j, cerr := createJournal(path, meta, sync)
		return j, nil, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("updater: reading journal %s: %w", path, err)
	}
	got, ops, validLen, err := ParseJournal(data)
	if err != nil {
		return nil, nil, fmt.Errorf("updater: journal %s: %w", path, err)
	}
	if got.BaseCRC != meta.BaseCRC || got.BaseRules != meta.BaseRules {
		return nil, nil, fmt.Errorf(
			"updater: journal %s was started from a different rule list (journal: %d rules crc %08x, engine: %d rules crc %08x); "+
				"if this follows a checkpoint interrupted between the artifact save and the journal rotation, "+
				"the artifact already embodies the journaled updates — remove the journal file to proceed",
			path, got.BaseRules, got.BaseCRC, meta.BaseRules, meta.BaseCRC)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("updater: opening journal %s: %w", path, err)
	}
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("updater: truncating journal %s torn tail: %w", path, err)
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, sync: sync, off: int64(validLen), records: len(ops)}, ops, nil
}

// createJournal writes a fresh journal containing only the header.
func createJournal(path string, meta JournalMeta, sync bool) (*Journal, error) {
	header, err := encodeHeader(meta)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("updater: creating journal %s: %w", path, err)
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, fmt.Errorf("updater: writing journal header: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Journal{f: f, path: path, sync: sync, off: int64(len(header))}, nil
}

// Append durably adds one record. The caller must not publish the update's
// snapshot until Append returns nil — that ordering is what makes every
// acknowledged update replayable. A failed append rolls the file back to
// the previous record boundary; if even the rollback fails the journal
// latches broken and refuses further appends, because a torn record
// mid-file would silently void every acknowledged record after it at
// replay.
func (j *Journal) Append(op Op) error {
	if j.broken != nil {
		return fmt.Errorf("updater: journal failed earlier and is closed to appends: %w", j.broken)
	}
	rec := encodeOp(op)
	_, werr := j.f.Write(rec)
	if werr == nil && j.sync {
		werr = j.f.Sync()
	}
	if werr != nil {
		if terr := j.f.Truncate(j.off); terr == nil {
			_, terr = j.f.Seek(j.off, 0)
			if terr != nil {
				j.broken = terr
			}
		} else {
			j.broken = terr
		}
		return fmt.Errorf("updater: journal append: %w", werr)
	}
	j.off += int64(len(rec))
	j.records++
	return nil
}

// Rotate resets the journal to an empty log over a new starting list —
// called after the engine checkpoints its state (artifact save or load), at
// which point the old records are embodied in the checkpoint.
func (j *Journal) Rotate(meta JournalMeta) error {
	header, err := encodeHeader(meta)
	if err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("updater: journal rotate: %w", err)
	}
	if _, err := j.f.WriteAt(header, 0); err != nil {
		return fmt.Errorf("updater: journal rotate: %w", err)
	}
	if _, err := j.f.Seek(int64(len(header)), 0); err != nil {
		return err
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	j.off = int64(len(header))
	j.records = 0
	// A successful rotate rewrote the file from scratch, so an earlier
	// append failure no longer taints it.
	j.broken = nil
	return nil
}

// Records returns the number of records appended or replayed so far.
func (j *Journal) Records() int { return j.records }

// Bytes returns the journal file's durable length (header plus every intact
// record).
func (j *Journal) Bytes() int64 { return j.off }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j.sync {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			return err
		}
	}
	return j.f.Close()
}

// Replay applies ops in order to a clone of start and returns the resulting
// merged list plus the largest rule ID seen (for nextID resumption). A
// delete of an unknown ID means the journal does not describe this list —
// an error, not a skip.
func Replay(start *rule.Set, ops []Op) (*rule.Set, int, error) {
	next := start.Clone()
	maxID := -1
	for _, r := range next.Rules() {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			next.Insert(op.Pos, op.Rule)
			if op.ID > maxID {
				maxID = op.ID
			}
		case OpDelete:
			idx := -1
			for k, r := range next.Rules() {
				if r.ID == op.ID {
					idx = k
					break
				}
			}
			if idx < 0 {
				return nil, 0, fmt.Errorf("updater: journal record %d deletes unknown rule %d", i, op.ID)
			}
			next.Remove(idx)
		default:
			return nil, 0, fmt.Errorf("updater: journal record %d has unknown kind %d", i, op.Kind)
		}
	}
	return next, maxID, nil
}
