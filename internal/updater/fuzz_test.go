package updater

import (
	"testing"

	"neurocuts/internal/rule"
)

// FuzzJournalReplay throws arbitrary bytes at the journal parser and, when
// they parse, replays the ops onto a small rule list. The parser must never
// panic, never allocate proportionally to hostile length prefixes, and the
// valid prefix it reports must itself re-parse to the same ops.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed journal carrying a few records.
	set := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0), rule.NewWildcardRule(1)})
	header, err := encodeHeader(JournalMeta{Backend: "seed", BaseRules: set.Len(), BaseCRC: Fingerprint(set)})
	if err != nil {
		f.Fatal(err)
	}
	valid := append([]byte(nil), header...)
	for _, op := range testOps(5) {
		valid = append(valid, encodeOp(op)...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(header)
	f.Add([]byte("NCUJ"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-10] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, ops, validLen, err := ParseJournal(data)
		if err != nil {
			return
		}
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}
		// The valid prefix must round-trip: parsing it again yields the same
		// metadata and ops (this is what Open relies on after truncation).
		meta2, ops2, validLen2, err2 := ParseJournal(data[:validLen])
		if err2 != nil {
			t.Fatalf("valid prefix does not re-parse: %v", err2)
		}
		if validLen2 != validLen || len(ops2) != len(ops) || meta2 != meta {
			t.Fatalf("prefix re-parse diverges: %d/%d ops, %d/%d bytes", len(ops2), len(ops), validLen2, validLen)
		}
		// Replaying onto a list the ops may not describe must error or
		// succeed — never panic. Bound the work for absurd op counts.
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		base := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0)})
		if merged, _, rerr := Replay(base, ops); rerr == nil && merged.Len() < 0 {
			t.Fatal("impossible")
		}
	})
}
