package updater

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neurocuts/internal/rule"
)

func testOps(n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			ops = append(ops, Op{Kind: OpDelete, ID: 10000 + i - 2})
			continue
		}
		r := rule.NewWildcardRule(0)
		r.ID = 10000 + i
		r.Ranges[rule.DimProto] = rule.Range{Lo: uint64(i % 200), Hi: uint64(i % 200)}
		ops = append(ops, Op{Kind: OpInsert, Pos: i % 5, ID: r.ID, Rule: r})
	}
	return ops
}

func journalMetaFor(set *rule.Set) JournalMeta {
	return JournalMeta{Backend: "test", BaseRules: set.Len(), BaseCRC: Fingerprint(set)}
}

// TestJournalRoundTrip: append, close, reopen, replay — every record comes
// back in order and applies cleanly.
func TestJournalRoundTrip(t *testing.T) {
	set := genSet(t, 50, 1)
	path := filepath.Join(t.TempDir(), "u.journal")
	j, ops, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("fresh journal returned %d ops", len(ops))
	}
	want := testOps(30)
	for _, op := range want {
		if err := j.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != len(want) {
		t.Fatalf("records=%d want %d", j.Records(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].ID != want[i].ID || got[i].Pos != want[i].Pos ||
			(got[i].Kind == OpInsert && got[i].Rule.Ranges != want[i].Rule.Ranges) {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	merged, maxID, err := Replay(set, got)
	if err != nil {
		t.Fatal(err)
	}
	if maxID < 10000 {
		t.Fatalf("maxID=%d", maxID)
	}
	if merged.Len() != set.Len()+20-10 {
		t.Fatalf("merged len=%d want %d", merged.Len(), set.Len()+10)
	}
}

// TestJournalTornTail: a partial final record (crash mid-append) is
// discarded; the valid prefix replays and the file is truncated so new
// appends extend a clean log.
func TestJournalTornTail(t *testing.T) {
	set := genSet(t, 30, 2)
	path := filepath.Join(t.TempDir(), "u.journal")
	j, _, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	ops := testOps(9)
	for _, op := range ops {
		if err := j.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a torn final write: append half of one more record.
	full := encodeOp(Op{Kind: OpInsert, Pos: 0, ID: 999999, Rule: rule.NewWildcardRule(0)})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(full[:len(full)/2])
	f.Close()

	j2, got, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("replayed %d ops after torn tail, want %d", len(got), len(ops))
	}
	// The torn bytes must be gone: appending and reopening yields exactly
	// len(ops)+1 records.
	extra := Op{Kind: OpDelete, ID: 10000}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, got, err = func() (*Journal, []Op, error) { return OpenJournal(path, journalMetaFor(set), true) }()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops)+1 || got[len(got)-1].ID != extra.ID {
		t.Fatalf("after truncate+append: %d ops, want %d", len(got), len(ops)+1)
	}
}

// TestJournalCorruptRecordEndsPrefix: a bit flip inside a record's payload
// invalidates it and everything after it.
func TestJournalCorruptRecordEndsPrefix(t *testing.T) {
	set := genSet(t, 30, 3)
	path := filepath.Join(t.TempDir(), "u.journal")
	j, _, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range testOps(6) {
		if err := j.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte two records from the end.
	data[len(data)-2*95] ^= 0xFF
	meta, ops, validLen, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.BaseRules != set.Len() {
		t.Fatalf("meta %+v", meta)
	}
	if len(ops) >= 6 {
		t.Fatalf("corrupt record still replayed: %d ops", len(ops))
	}
	if validLen >= len(data) {
		t.Fatalf("validLen=%d not before corruption", validLen)
	}
}

// TestJournalFingerprintMismatch: a journal started from a different rule
// list is refused rather than silently replayed onto the wrong base.
func TestJournalFingerprintMismatch(t *testing.T) {
	setA := genSet(t, 40, 4)
	setB := genSet(t, 40, 5)
	path := filepath.Join(t.TempDir(), "u.journal")
	j, _, err := OpenJournal(path, journalMetaFor(setA), true)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(path, journalMetaFor(setB), true); err == nil ||
		!strings.Contains(err.Error(), "different rule list") {
		t.Fatalf("mismatched journal accepted: %v", err)
	}
}

// TestJournalRotate: rotation empties the log and stamps the new
// fingerprint, so post-checkpoint records replay onto the checkpoint.
func TestJournalRotate(t *testing.T) {
	set := genSet(t, 20, 6)
	path := filepath.Join(t.TempDir(), "u.journal")
	j, _, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range testOps(3) {
		if err := j.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	set2 := genSet(t, 25, 7)
	if err := j.Rotate(journalMetaFor(set2)); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 0 {
		t.Fatalf("records=%d after rotate", j.Records())
	}
	if err := j.Append(Op{Kind: OpDelete, ID: 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(path, journalMetaFor(set), true); err == nil {
		t.Fatal("old fingerprint accepted after rotate")
	}
	_, ops, err := OpenJournal(path, journalMetaFor(set2), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Kind != OpDelete || ops[0].ID != 3 {
		t.Fatalf("post-rotate ops: %+v", ops)
	}
}

// TestReplayRejectsUnknownDelete: deleting an ID absent from the list means
// the journal does not describe it — an error, not a silent skip.
func TestReplayRejectsUnknownDelete(t *testing.T) {
	set := genSet(t, 10, 8)
	if _, _, err := Replay(set, []Op{{Kind: OpDelete, ID: 123456}}); err == nil {
		t.Fatal("unknown delete accepted")
	}
}

// TestJournalAppendFailsClosed: once an append fails and cannot be rolled
// back, the journal refuses further appends — a torn record mid-file would
// silently void every later acknowledged record at replay, so failing
// closed is the only honest behaviour.
func TestJournalAppendFailsClosed(t *testing.T) {
	set := genSet(t, 10, 9)
	path := filepath.Join(t.TempDir(), "u.journal")
	j, _, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Op{Kind: OpDelete, ID: 1}); err != nil {
		t.Fatal(err)
	}
	// Force every subsequent write and rollback to fail.
	j.f.Close()
	if err := j.Append(Op{Kind: OpDelete, ID: 2}); err == nil {
		t.Fatal("append on dead file succeeded")
	}
	if err := j.Append(Op{Kind: OpDelete, ID: 3}); err == nil ||
		!strings.Contains(err.Error(), "closed to appends") {
		t.Fatalf("journal did not fail closed: %v", err)
	}
	// The on-disk file still replays its durable prefix only.
	_, ops, err := OpenJournal(path, journalMetaFor(set), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].ID != 1 {
		t.Fatalf("replayed %d ops, want the single durable record", len(ops))
	}
}
