package updater

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// testBase builds a Base whose lookup is the set's own linear search (the
// reference semantics).
func testBase(t *testing.T, set *rule.Set) *Base {
	t.Helper()
	b, err := NewBase(set, set.Match)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func genSet(t *testing.T, size int, seed int64) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, size, seed)
}

// mutateMerged applies a deterministic mix of inserts and deletes to a
// clone of the set, returning the merged list and the next fresh ID.
func mutateMerged(set *rule.Set, inserts, deletes int, nextID int) (*rule.Set, int) {
	merged := set.Clone()
	for i := 0; i < inserts; i++ {
		r := set.Rule((i * 13) % set.Len())
		r.ID = nextID
		nextID++
		merged.Insert((i*31)%(merged.Len()+1), r)
	}
	for i := 0; i < deletes && merged.Len() > 0; i++ {
		merged.Remove((i * 17) % merged.Len())
	}
	return merged, nextID
}

// TestViewMatchesLinearSearch is the core correctness property: a view's
// Classify must agree with linear search over the merged list across a mix
// of overlay inserts and base deletes (so both the fast path and the
// tombstoned-winner rescan are exercised).
func TestViewMatchesLinearSearch(t *testing.T) {
	set := genSet(t, 300, 1)
	merged, _ := mutateMerged(set, 40, 25, 100000)
	trace := classbench.GenerateTrace(merged, 4000, 9)

	b := testBase(t, set)
	v, err := NewView(b, merged)
	if err != nil {
		t.Fatal(err)
	}
	if v.OverlayLen() == 0 || v.Tombstones() == 0 {
		t.Fatalf("overlay=%d tombstones=%d, want both > 0", v.OverlayLen(), v.Tombstones())
	}
	for _, e := range trace {
		wantIdx := merged.MatchIndex(e.Key)
		got, ok := v.Classify(e.Key)
		if (wantIdx < 0) != !ok {
			t.Fatalf("packet %v: ok=%v want match=%v", e.Key, ok, wantIdx >= 0)
		}
		if !ok {
			continue
		}
		want := merged.Rule(wantIdx)
		if got.ID != want.ID || got.Priority != wantIdx {
			t.Fatalf("packet %v: got rule id=%d prio=%d, want id=%d prio=%d",
				e.Key, got.ID, got.Priority, want.ID, wantIdx)
		}
	}
}

// TestViewEmptyDelta: a view over an unchanged merged list has no overlay,
// no tombstones and identical results.
func TestViewEmptyDelta(t *testing.T) {
	set := genSet(t, 100, 2)
	b := testBase(t, set)
	v, err := NewView(b, set)
	if err != nil {
		t.Fatal(err)
	}
	if v.OverlayLen() != 0 || v.Tombstones() != 0 {
		t.Fatalf("overlay=%d tombstones=%d, want 0/0", v.OverlayLen(), v.Tombstones())
	}
	for _, e := range classbench.GenerateTrace(set, 500, 3) {
		got, ok := v.Classify(e.Key)
		want, wok := set.Match(e.Key)
		if ok != wok || (ok && got.ID != want.ID) {
			t.Fatalf("packet %v: view (%v,%v) vs linear (%v,%v)", e.Key, got.ID, ok, want.ID, wok)
		}
	}
}

// TestViewAllBaseDeleted: tombstoning every base rule must leave only
// overlay rules matching.
func TestViewAllBaseDeleted(t *testing.T) {
	set := genSet(t, 50, 4)
	merged := rule.NewSet(nil)
	w := rule.NewWildcardRule(0)
	w.ID = 999
	merged.Insert(0, w)
	b := testBase(t, set)
	v, err := NewView(b, merged)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tombstones() != set.Len() {
		t.Fatalf("tombstones=%d want %d", v.Tombstones(), set.Len())
	}
	got, ok := v.Classify(rule.Packet{SrcIP: 1, Proto: 6})
	if !ok || got.ID != 999 {
		t.Fatalf("got (%v,%v), want wildcard id=999", got.ID, ok)
	}
}

// TestRankAssignment: overlay rules stacked in one gap get strictly
// ascending, unique ranks, and the guard that protects uniqueness
// (gap strictly greater than the run length) holds at the boundary.
func TestRankAssignment(t *testing.T) {
	set := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0)})
	b := testBase(t, set)
	merged := set.Clone()
	// Pile many overlay rules into the single gap before the base rule.
	for i := 0; i < 512; i++ {
		r := rule.NewWildcardRule(0)
		r.ID = 1000 + i
		merged.Insert(0, r)
	}
	v, err := NewView(b, merged)
	if err != nil {
		t.Fatalf("512 overlay rules in one gap must fit: %v", err)
	}
	for i := 1; i < len(v.ranks); i++ {
		if v.ranks[i] <= v.ranks[i-1] {
			t.Fatalf("ranks not strictly ascending at %d: %d <= %d", i, v.ranks[i], v.ranks[i-1])
		}
	}
	// The top-of-list overlay rule (highest priority, most recent insert)
	// must win every lookup.
	got, ok := v.Classify(rule.Packet{Proto: 17})
	if !ok || got.ID != merged.Rule(0).ID || got.Priority != 0 {
		t.Fatalf("got (%d,%d,%v), want top overlay rule id=%d", got.ID, got.Priority, ok, merged.Rule(0).ID)
	}
}

// TestNewViewRejectsNonCanonical: merged lists whose priorities are not
// list indices, or that reorder base rules, are construction errors.
func TestNewViewRejectsNonCanonical(t *testing.T) {
	set := genSet(t, 20, 5)
	b := testBase(t, set)

	bad := rule.NewSetKeepPriorities([]rule.Rule{{Priority: 7, ID: 1}})
	if _, err := NewView(b, bad); err == nil {
		t.Fatal("non-canonical merged list accepted")
	}

	// Swap two base rules: relative base order must be preserved.
	rules := append([]rule.Rule(nil), set.Rules()...)
	rules[0], rules[1] = rules[1], rules[0]
	reordered := rule.NewSet(rules)
	// NewSet rewrites IDs to indices, which would defeat the check; restore
	// the swapped IDs.
	rs := reordered.Rules()
	rs[0].ID, rs[1].ID = set.Rule(1).ID, set.Rule(0).ID
	if _, err := NewView(b, reordered); err == nil {
		t.Fatal("base-rule reordering accepted")
	}
}

// TestNewBaseRejectsNonCanonical: base sets must have index priorities and
// unique IDs.
func TestNewBaseRejectsNonCanonical(t *testing.T) {
	bad := rule.NewSetKeepPriorities([]rule.Rule{{Priority: 3, ID: 0}})
	if _, err := NewBase(bad, bad.Match); err == nil {
		t.Fatal("non-canonical base set accepted")
	}
	dup := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0), rule.NewWildcardRule(1)})
	dup.Rules()[1].ID = dup.Rules()[0].ID
	if _, err := NewBase(dup, dup.Match); err == nil {
		t.Fatal("duplicate base IDs accepted")
	}
	if _, err := NewBase(rule.NewSet(nil), nil); err == nil {
		t.Fatal("nil lookup accepted")
	}
}

// TestViewAllocationFree: the merged lookup performs zero heap allocations
// on both base paths once the view is built.
func TestViewAllocationFree(t *testing.T) {
	set := genSet(t, 200, 6)
	merged, _ := mutateMerged(set, 20, 10, 50000)
	trace := classbench.GenerateTrace(merged, 256, 11)
	b := testBase(t, set)
	v, err := NewView(b, merged)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		v.Classify(trace[i%len(trace)].Key)
		i++
	})
	if allocs != 0 {
		t.Errorf("Classify allocates %.1f allocs/op, want 0", allocs)
	}
}
