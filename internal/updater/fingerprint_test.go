package updater

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"neurocuts/internal/rule"
)

// referenceFingerprint recomputes Fingerprint's canonical encoding
// field-by-field, with no per-record buffer to mis-size. Fingerprint used to
// hash through a hard-coded [96]byte scratch buffer — coincidentally correct
// for 5 dimensions, silently truncating (or over-hashing stale bytes) the
// moment the rule layout widens. Holding the real implementation to this
// streaming reference pins the encoding itself, not the buffer arithmetic.
func referenceFingerprint(set *rule.Set) uint32 {
	h := crc32.NewIEEE()
	var word [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	for _, r := range set.Rules() {
		for _, d := range rule.Dimensions() {
			put(r.Ranges[d].Lo)
			put(r.Ranges[d].Hi)
		}
		put(uint64(int64(r.Priority)))
		put(uint64(int64(r.ID)))
	}
	return h.Sum32()
}

// fingerprintTestRules builds rules whose every field is distinct, so any
// dropped or misplaced byte in the encoding shows up as a mismatch.
func fingerprintTestRules() []rule.Rule {
	rules := make([]rule.Rule, 4)
	for i := range rules {
		r := rule.NewWildcardRule(i)
		for j, d := range rule.Dimensions() {
			r.Ranges[d] = rule.Range{
				Lo: uint64(1000*i + 10*j + 1),
				Hi: uint64(1000*i + 10*j + 7),
			}
		}
		r.Priority = i
		r.ID = 100 + i
		rules[i] = r
	}
	return rules
}

func TestFingerprintMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  *rule.Set
	}{
		{"empty", rule.NewSet(nil)},
		{"wildcards", rule.NewSet([]rule.Rule{rule.NewWildcardRule(0), rule.NewWildcardRule(1)})},
		{"distinct-fields", rule.NewSetKeepPriorities(fingerprintTestRules())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got, want := Fingerprint(tc.set), referenceFingerprint(tc.set); got != want {
				t.Fatalf("Fingerprint = %#x, reference encoding = %#x", got, want)
			}
		})
	}
}

// TestFingerprintSensitivity: the fingerprint must react to every field of
// every dimension — in particular the LAST dimension's bounds, which a
// truncated scratch buffer would drop first — and to priority, ID and rule
// order.
func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(rule.NewSetKeepPriorities(fingerprintTestRules()))

	mutate := func(name string, f func(rs []rule.Rule)) {
		rs := fingerprintTestRules()
		f(rs)
		if Fingerprint(rule.NewSetKeepPriorities(rs)) == base {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}

	for _, d := range rule.Dimensions() {
		d := d
		mutate("dim-lo", func(rs []rule.Rule) { rs[2].Ranges[d].Lo++ })
		mutate("dim-hi", func(rs []rule.Rule) { rs[2].Ranges[d].Hi++ })
	}
	mutate("priority", func(rs []rule.Rule) { rs[1].Priority = 99 })
	mutate("id", func(rs []rule.Rule) { rs[1].ID = 999 })
	// Swapping two rules' priorities reorders the canonical (priority-sorted)
	// list, so the same multiset of rules in a different order must hash
	// differently.
	mutate("order", func(rs []rule.Rule) { rs[0].Priority, rs[3].Priority = rs[3].Priority, rs[0].Priority })
}
