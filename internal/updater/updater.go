// Package updater makes rule updates cheap: instead of rebuilding a
// classifier on every Insert/Delete (the engine's original write path —
// O(full build + compile) per rule), updates land in a small delta overlay
// on top of an immutable base classifier.
//
// The split is the classic base+delta design TSS-style classifiers use
// around build-once tree structures:
//
//   - Inserts go into a Tuple Space Search overlay (O(1)-ish hash inserts,
//     no tree rebuild).
//   - Deletes of base rules become tombstones (a bitset over base rule
//     indices); deletes of overlay rules simply leave the overlay.
//   - A merged lookup consults overlay + tombstones + base and resolves
//     the winner by a global priority rank, staying allocation-free. The
//     base winner is checked against the tombstone set; only when the
//     winner was deleted does the lookup rescan the base list (see
//     LookupFunc for why that cannot be pushed into the base structure).
//
// Rank scheme: the base rule at index i anchors at rank (i+1)*rankGap, and
// every overlay rule receives a rank strictly between its merged-order
// neighbours' ranks (evenly spaced within the gap). Ranks are re-derived on
// every update from the logical merged rule list, so a View is a pure
// function of (base, merged list) — the same derivation serves normal
// updates, journal replay and post-compaction rebasing. A winner's rank maps
// back to its canonical merged rule (with its up-to-date index priority) by
// binary search over the per-View rank array.
//
// Views are immutable: the engine publishes each new View through its
// RCU snapshot machinery, so concurrent readers never see a torn update and
// never block. A background compactor (driven by the engine) periodically
// rebuilds the base from the merged list and rebases the overlay, bounding
// overlay size and restoring base lookup speed.
//
// The package also provides the durable update journal (journal.go): a
// length-prefixed, CRC-checked write-ahead log of updates that, replayed
// over a saved artifact, gives crash-consistent warm starts.
package updater

import (
	"errors"
	"fmt"
	"math"

	"neurocuts/internal/rule"
	"neurocuts/internal/tss"
)

// rankGap is the rank distance between consecutive base rules. Up to
// rankGap-1 overlay rules fit between two adjacent base anchors before rank
// space is exhausted; compaction keeps overlays orders of magnitude
// smaller. Ranks are carried through rule.Priority inside the overlay TSS
// (an int), so the gap also bounds the base size on 32-bit platforms:
// (len+1)*rankGap must fit a platform int (~32k base rules at 1<<16 on
// 32-bit; unbounded in practice on 64-bit). NewView checks this and errors
// rather than overflowing, which makes the engine fall back to
// rebuild-per-update.
const rankGap = int64(1) << 16

// maxIntRank is the largest rank representable in a platform int.
const maxIntRank = int64(^uint(0) >> 1)

// ErrRankSpace is returned by NewView when the overlay rules between two
// adjacent base anchors no longer fit in the rank gap. The caller should
// compact (rebuild the base from the merged list) and retry.
var ErrRankSpace = errors.New("updater: rank space exhausted between base anchors; compaction required")

// LookupFunc is a base classifier's single-packet lookup. The returned
// rule's Priority must be its index in the base rule set, and the lookup
// must return the overall best match over the full base rule list —
// including rules the merged view has tombstoned (the view checks the
// winner against its tombstone set itself and rescans on a hit). An
// "optimised" base lookup that skips tombstoned rules internally would be
// unsound: tree builds prune leaf rules shadowed by higher-priority rules,
// so the best surviving match can be absent from the structure once its
// shadower is deleted.
type LookupFunc func(p rule.Packet) (rule.Rule, bool)

// BatchLookupFunc is a base classifier's batched lookup: it classifies
// ps[i] into (rules[i], oks[i]) for every i. It must be result-identical to
// len(ps) LookupFunc calls and carries the same soundness contract (full
// base list, tombstoned rules included). Bases built from the engine's
// compiled tree backends route this through the grouped prefetching
// traversal, which is why View.ClassifyBatch exists at all.
type BatchLookupFunc func(ps []rule.Packet, rules []rule.Rule, oks []bool)

// Base is one immutable base generation: a built classifier, the rule set
// it was built over, and the ID->index mapping Views need. It is shared by
// every View derived between two compactions.
type Base struct {
	lookup LookupFunc
	// batch is the optional batched lookup (nil bases serve batches as a
	// scalar loop).
	batch     BatchLookupFunc
	set       *rule.Set
	indexByID map[int]int
}

// NewBase wraps a built classifier as an overlay base. The set must be in
// canonical form (rule i has Priority i), which every engine-built and
// artifact-loaded set satisfies.
func NewBase(set *rule.Set, lookup LookupFunc) (*Base, error) {
	if lookup == nil {
		return nil, errors.New("updater: base lookup is nil")
	}
	idx := make(map[int]int, set.Len())
	for i, r := range set.Rules() {
		if r.Priority != i {
			return nil, fmt.Errorf("updater: base set not canonical: rule %d has priority %d", i, r.Priority)
		}
		if _, dup := idx[r.ID]; dup {
			return nil, fmt.Errorf("updater: base set has duplicate rule id %d", r.ID)
		}
		idx[r.ID] = i
	}
	return &Base{lookup: lookup, set: set, indexByID: idx}, nil
}

// NewBaseBatch is NewBase with an additional batched base lookup, which
// View.ClassifyBatch uses to classify whole spans against the base in one
// call. batch may be nil, in which case batches degrade to scalar lookups.
func NewBaseBatch(set *rule.Set, lookup LookupFunc, batch BatchLookupFunc) (*Base, error) {
	b, err := NewBase(set, lookup)
	if err != nil {
		return nil, err
	}
	b.batch = batch
	return b, nil
}

// Set returns the base's rule set.
func (b *Base) Set() *rule.Set { return b.set }

// baseRank is the rank anchor of the base rule at index i.
func baseRank(i int) int64 { return int64(i+1) * rankGap }

// View is one immutable merged (base + overlay + tombstones) generation.
// All fields are read-only after NewView; lookups are safe for concurrent
// use and allocation-free.
type View struct {
	base *Base
	// merged is the logical rule list this view serves (priorities are
	// indices, as everywhere else in the repository).
	merged *rule.Set
	// ranks[i] is the rank of merged rule i; strictly ascending.
	ranks []int64
	// overlay holds the non-base rules, each stored with Priority = rank so
	// TSS's own priority resolution orders overlay rules correctly.
	overlay  *tss.Classifier
	overlayN int
	// tombs is the bitset of deleted base rule indices.
	tombs  []uint64
	tombsN int
}

// NewView derives the immutable serving view for a merged rule list over a
// base. merged must be canonical (rule i has Priority i) and must preserve
// the relative order of the base rules it retains. The derivation is one
// O(len(merged)) pass; overlay rules are re-inserted into a fresh TSS.
func NewView(b *Base, merged *rule.Set) (*View, error) {
	if baseRank(b.set.Len()) > maxIntRank {
		// Every rank in this view is at most the top anchor; refusing here
		// keeps int(rank) conversions exact on 32-bit platforms (the engine
		// falls back to rebuild-per-update).
		return nil, fmt.Errorf("updater: base of %d rules exceeds this platform's int rank space", b.set.Len())
	}
	n := merged.Len()
	v := &View{
		base:   b,
		merged: merged,
		ranks:  make([]int64, n),
		tombs:  make([]uint64, (b.set.Len()+63)/64),
	}
	ov := tss.NewClassifier()

	// Walk the merged list: base rules become rank anchors, runs of overlay
	// rules between anchors are evenly spaced inside the gap.
	lastBaseIdx := -1
	prevRank := int64(0)
	runStart := -1 // first merged index of the pending overlay run
	assign := func(hi int64, end int) error {
		if runStart < 0 {
			return nil
		}
		k := int64(end - runStart)
		if hi-prevRank <= k {
			return ErrRankSpace
		}
		for j := int64(0); j < k; j++ {
			rk := prevRank + (hi-prevRank)*(j+1)/(k+1)
			v.ranks[runStart+int(j)] = rk
			r := merged.Rule(runStart + int(j))
			r.Priority = int(rk)
			if err := ov.Insert(r); err != nil {
				return fmt.Errorf("updater: overlay insert rule %d: %w", r.ID, err)
			}
			v.overlayN++
		}
		runStart = -1
		return nil
	}
	live := make([]bool, b.set.Len())
	for i := 0; i < n; i++ {
		r := merged.Rule(i)
		if r.Priority != i {
			return nil, fmt.Errorf("updater: merged set not canonical: rule %d has priority %d", i, r.Priority)
		}
		bi, isBase := b.indexByID[r.ID]
		if !isBase {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if bi <= lastBaseIdx {
			return nil, fmt.Errorf("updater: merged list reorders base rules (id %d)", r.ID)
		}
		anchor := baseRank(bi)
		if err := assign(anchor, i); err != nil {
			return nil, err
		}
		v.ranks[i] = anchor
		live[bi] = true
		lastBaseIdx = bi
		prevRank = anchor
	}
	if err := assign(baseRank(b.set.Len()), n); err != nil {
		return nil, err
	}
	for bi, alive := range live {
		if !alive {
			v.tombs[bi>>6] |= 1 << (uint(bi) & 63)
			v.tombsN++
		}
	}
	v.overlay = ov
	return v, nil
}

// Merged returns the logical rule list the view serves.
func (v *View) Merged() *rule.Set { return v.merged }

// Base returns the view's base generation.
func (v *View) Base() *Base { return v.base }

// OverlayLen returns the number of rules held in the delta overlay.
func (v *View) OverlayLen() int { return v.overlayN }

// FromOverlay reports whether the rule with the given ID lives in the
// delta overlay rather than the base — i.e. it was inserted after the last
// compaction. The slow-lookup flight recorder uses it to attribute a
// winning rule to the overlay or the compiled base. Allocation-free (one
// map probe against the base's ID index).
func (v *View) FromOverlay(id int) bool {
	_, inBase := v.base.indexByID[id]
	return !inBase
}

// Tombstones returns the number of tombstoned base rules.
func (v *View) Tombstones() int { return v.tombsN }

// tombstoned reports whether base rule index bi is deleted.
func (v *View) tombstoned(bi int) bool {
	return v.tombs[bi>>6]&(1<<(uint(bi)&63)) != 0
}

// Classify returns the highest-priority rule of the merged list matching p,
// or ok=false. The path is allocation-free: one overlay TSS probe, one base
// lookup (with a tombstone check on its winner), a rank comparison and a
// binary search back to the canonical merged rule.
func (v *View) Classify(p rule.Packet) (rule.Rule, bool) {
	br, bok := v.base.lookup(p)
	return v.resolve(p, br, bok)
}

// batchScratch stages one ClassifyBatch call's base lookup results.
type batchScratch struct {
	rules []rule.Rule
	oks   []bool
}

// batchScratches recycles base-result scratches. A buffered channel rather
// than sync.Pool so the batch path's zero-alloc steady state is
// deterministic under the race detector too (Pool drops a fraction of Puts
// there); extras beyond the freelist capacity simply allocate.
var batchScratches = make(chan *batchScratch, 64)

func getBatchScratch(n int) *batchScratch {
	var sc *batchScratch
	select {
	case sc = <-batchScratches:
	default:
		sc = new(batchScratch)
	}
	if cap(sc.rules) < n {
		sc.rules = make([]rule.Rule, n)
		sc.oks = make([]bool, n)
	}
	return sc
}

func putBatchScratch(sc *batchScratch) {
	select {
	case batchScratches <- sc:
	default:
	}
}

// ClassifyBatch classifies ps[i] into (rules[i], oks[i]) for every i,
// result-identical to per-packet Classify calls. The base lookups run as one
// batched call when the base provides one (so a compiled tree base serves
// the span through its grouped prefetching traversal); the overlay probe,
// tombstone resolution and rank mapping stay scalar per packet — the overlay
// is small by construction, the base is where the memory latency lives.
func (v *View) ClassifyBatch(ps []rule.Packet, rules []rule.Rule, oks []bool) {
	if v.base.batch == nil || len(ps) < 2 {
		for i, p := range ps {
			rules[i], oks[i] = v.Classify(p)
		}
		return
	}
	sc := getBatchScratch(len(ps))
	brs, boks := sc.rules[:len(ps)], sc.oks[:len(ps)]
	v.base.batch(ps, brs, boks)
	for i, p := range ps {
		rules[i], oks[i] = v.resolve(p, brs[i], boks[i])
	}
	putBatchScratch(sc)
}

// resolve merges one packet's precomputed base lookup result with the
// overlay probe and tombstone set, mapping the winning rank back to the
// canonical merged rule. It is the shared back half of Classify and
// ClassifyBatch.
func (v *View) resolve(p rule.Packet, baseRule rule.Rule, baseOK bool) (rule.Rule, bool) {
	bestRank := int64(math.MaxInt64)
	found := false

	if v.overlayN > 0 {
		if r, ok := v.overlay.Classify(p); ok {
			bestRank = int64(r.Priority) // overlay entries store rank as priority
			found = true
		}
	}

	if r, ok := baseRule, baseOK; ok {
		bi := r.Priority
		if v.tombsN > 0 && v.tombstoned(bi) {
			// The base's best match is deleted: rescan the base list past
			// the tombstones. This cannot be pushed into the base structure
			// itself (see LookupFunc); it is the slow path and only runs
			// when a deleted rule would have won.
			bi = -1
			for i := r.Priority + 1; i < v.base.set.Len(); i++ {
				if v.tombstoned(i) {
					continue
				}
				if v.base.set.Rule(i).Matches(p) {
					bi = i
					break
				}
			}
		}
		if bi >= 0 {
			if rk := baseRank(bi); rk < bestRank {
				bestRank = rk
				found = true
			}
		}
	}

	if !found {
		return rule.Rule{}, false
	}
	// Binary search the winner's rank back to its merged index; the ranks
	// slice is strictly ascending and contains every live rule's rank.
	lo, hi := 0, len(v.ranks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.ranks[mid] < bestRank {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(v.ranks) || v.ranks[lo] != bestRank {
		// Unreachable by construction; fail closed rather than panic.
		return rule.Rule{}, false
	}
	return v.merged.Rule(lo), true
}
