// Package cutsplit implements CutSplit (Li, Li, Li & Xie, INFOCOM 2018), the
// fourth baseline in the paper's evaluation and the strongest hand-tuned
// algorithm on memory footprint.
//
// CutSplit combines the strengths of equal-sized cutting (fast, works well
// high in the tree where rules are spread out) and equal-dense splitting
// (no rule replication, works well low in the tree where rules overlap):
//
//  1. Rules are partitioned by which of the two IP dimensions are "small"
//     (prefix longer than a threshold): both small, only source small, only
//     destination small, or neither. Each subset gets its own tree, so wide
//     rules never force replication onto narrow ones.
//  2. Each tree is built with FiCuts — fixed equal-sized cuts in the
//     subset's small dimensions — until nodes shrink below a threshold.
//  3. Small nodes are finished with HyperSplit-style binary equal-dense
//     splits, which place one boundary at the median rule endpoint.
package cutsplit

import (
	"fmt"
	"sort"

	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Config holds the CutSplit tuning knobs.
type Config struct {
	// Binth is the leaf threshold.
	Binth int
	// SmallPrefixLen is the minimum prefix length for an IP field to count
	// as "small" (the original paper uses 16).
	SmallPrefixLen uint
	// PreCutThreshold is the node size below which construction switches
	// from FiCuts equal-sized cutting to HyperSplit splitting.
	PreCutThreshold int
	// MaxCuts caps the fan-out of one FiCuts step.
	MaxCuts int
	// MaxDepth aborts pathological constructions; 0 means no limit.
	MaxDepth int
}

// DefaultConfig returns the standard CutSplit configuration.
func DefaultConfig() Config {
	return Config{
		Binth:           tree.DefaultBinth,
		SmallPrefixLen:  16,
		PreCutThreshold: 64,
		MaxCuts:         32,
		MaxDepth:        256,
	}
}

// Classifier is the multi-tree classifier CutSplit produces.
type Classifier struct {
	// Trees are the per-subset decision trees.
	Trees []*tree.Tree
	// Labels names each subset ("sa-da", "sa", "da", "big").
	Labels []string
}

// Classify returns the highest-priority rule matching p across all trees.
func (c *Classifier) Classify(p rule.Packet) (rule.Rule, bool) {
	return tree.ClassifyMulti(c.Trees, p)
}

// Metrics aggregates the metrics of all trees.
func (c *Classifier) Metrics() tree.Metrics {
	return tree.MultiMetrics(c.Trees)
}

// Build constructs the CutSplit multi-tree classifier.
func Build(s *rule.Set, cfg Config) (*Classifier, error) {
	if cfg.Binth <= 0 {
		cfg.Binth = tree.DefaultBinth
	}
	if cfg.SmallPrefixLen == 0 {
		cfg.SmallPrefixLen = 16
	}
	if cfg.PreCutThreshold <= cfg.Binth {
		cfg.PreCutThreshold = cfg.Binth * 4
	}
	if cfg.MaxCuts < 2 {
		cfg.MaxCuts = 32
	}
	groups, labels, dims := partitionRules(s.Rules(), cfg.SmallPrefixLen)
	c := &Classifier{}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		t := tree.NewFromRules(g, cfg.Binth, len(g))
		if err := buildNode(t, t.Root, dims[i], cfg); err != nil {
			return nil, fmt.Errorf("cutsplit: building tree %q: %w", labels[i], err)
		}
		c.Trees = append(c.Trees, t)
		c.Labels = append(c.Labels, labels[i])
	}
	return c, nil
}

// isSmall reports whether the rule's range in an IP dimension is at least as
// specific as a /smallLen prefix.
func isSmall(r rule.Rule, d rule.Dimension, smallLen uint) bool {
	maxSize := uint64(1) << (d.Bits() - smallLen)
	return r.Ranges[d].Size() <= maxSize
}

// partitionRules splits rules into the CutSplit subsets and records, per
// subset, the dimensions FiCuts should pre-cut.
func partitionRules(rules []rule.Rule, smallLen uint) ([][]rule.Rule, []string, [][]rule.Dimension) {
	var saDA, sa, da, big []rule.Rule
	for _, r := range rules {
		srcSmall := isSmall(r, rule.DimSrcIP, smallLen)
		dstSmall := isSmall(r, rule.DimDstIP, smallLen)
		switch {
		case srcSmall && dstSmall:
			saDA = append(saDA, r)
		case srcSmall:
			sa = append(sa, r)
		case dstSmall:
			da = append(da, r)
		default:
			big = append(big, r)
		}
	}
	groups := [][]rule.Rule{saDA, sa, da, big}
	labels := []string{"sa-da", "sa", "da", "big"}
	dims := [][]rule.Dimension{
		{rule.DimSrcIP, rule.DimDstIP},
		{rule.DimSrcIP},
		{rule.DimDstIP},
		nil,
	}
	for i := range groups {
		sort.SliceStable(groups[i], func(a, b int) bool { return groups[i][a].Priority < groups[i][b].Priority })
	}
	return groups, labels, dims
}

// buildNode expands a node: FiCuts equal-sized cuts in the subset's small
// dimensions while the node is large, HyperSplit binary splits afterwards.
func buildNode(t *tree.Tree, n *tree.Node, preCutDims []rule.Dimension, cfg Config) error {
	if t.IsTerminal(n) {
		return nil
	}
	if cfg.MaxDepth > 0 && n.Depth >= cfg.MaxDepth {
		return nil
	}
	var children []*tree.Node
	var err error
	if len(preCutDims) > 0 && n.NumRules() > cfg.PreCutThreshold {
		children, err = fiCut(t, n, preCutDims, cfg)
	} else {
		children, err = hyperSplit(t, n)
	}
	if err != nil {
		return err
	}
	if children == nil {
		// No useful expansion exists; accept the oversized leaf.
		return nil
	}
	progress := false
	for _, c := range children {
		if c.NumRules() < n.NumRules() {
			progress = true
			break
		}
	}
	for _, c := range children {
		if !progress && c.NumRules() == n.NumRules() {
			continue
		}
		if err := buildNode(t, c, preCutDims, cfg); err != nil {
			return err
		}
	}
	return nil
}

// fiCut performs one fixed equal-sized cut step across the subset's small
// dimensions (cutting each into the same power-of-two fan-out, bounded by
// MaxCuts and the number of rules).
func fiCut(t *tree.Tree, n *tree.Node, dims []rule.Dimension, cfg Config) ([]*tree.Node, error) {
	var usable []rule.Dimension
	for _, d := range dims {
		if n.Box[d].Size() >= 2 {
			usable = append(usable, d)
		}
	}
	if len(usable) == 0 {
		return hyperSplit(t, n)
	}
	k := 4
	for k*k*len(usable) < n.NumRules() && k*2 <= cfg.MaxCuts {
		k *= 2
	}
	if k > cfg.MaxCuts {
		k = cfg.MaxCuts
	}
	counts := make([]int, len(usable))
	for i := range counts {
		counts[i] = k
	}
	children, err := t.CutMulti(n, usable, counts)
	if err != nil {
		return nil, fmt.Errorf("cutsplit: FiCuts at depth %d: %w", n.Depth, err)
	}
	return children, nil
}

// hyperSplit performs one binary equal-dense split: it picks the dimension
// with the most distinct endpoints and splits at the median endpoint, so the
// two children receive balanced rule counts without replication of rules
// whose ranges do not straddle the boundary.
func hyperSplit(t *tree.Tree, n *tree.Node) ([]*tree.Node, error) {
	bestDim := rule.DimSrcIP
	var bestPoint uint64
	bestScore := -1
	for _, d := range rule.Dimensions() {
		if n.Box[d].Size() < 2 {
			continue
		}
		points := endpointCandidates(n, d)
		if len(points) == 0 {
			continue
		}
		score := len(points)
		if score > bestScore {
			bestScore = score
			bestDim = d
			bestPoint = points[len(points)/2]
		}
	}
	if bestScore < 1 {
		return nil, nil
	}
	children, err := t.CutAtPoints(n, bestDim, []uint64{bestPoint})
	if err != nil {
		return nil, fmt.Errorf("cutsplit: HyperSplit at depth %d: %w", n.Depth, err)
	}
	return children, nil
}

// endpointCandidates returns the sorted split-point candidates for dim: the
// clipped rule-range boundaries strictly inside the node's box.
func endpointCandidates(n *tree.Node, dim rule.Dimension) []uint64 {
	box := n.Box[dim]
	set := map[uint64]struct{}{}
	for _, r := range n.Rules {
		rr, ok := r.Ranges[dim].Intersect(box)
		if !ok {
			continue
		}
		if rr.Lo > box.Lo {
			set[rr.Lo] = struct{}{}
		}
		if rr.Hi < box.Hi {
			set[rr.Hi+1] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
