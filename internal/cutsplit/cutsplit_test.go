package cutsplit

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

func checkClassifierEquivalence(t *testing.T, c *Classifier, set *rule.Set, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
		want, okWant := set.Match(p)
		got, okGot := c.Classify(p)
		if okWant != okGot || (okWant && want.Priority != got.Priority) {
			t.Fatalf("packet %v: cutsplit (%v,%v) vs linear (%v,%v)", p, got.Priority, okGot, want.Priority, okWant)
		}
	}
	for _, e := range classbench.GenerateTrace(set, n/2, seed+1) {
		got, ok := c.Classify(e.Key)
		if !ok || got.Priority != e.MatchRule {
			t.Fatalf("trace packet %v: got %v/%v want %d", e.Key, got.Priority, ok, e.MatchRule)
		}
	}
}

func TestIsSmall(t *testing.T) {
	r := rule.NewWildcardRule(0)
	if isSmall(r, rule.DimSrcIP, 16) {
		t.Error("wildcard should not be small")
	}
	r.Ranges[rule.DimSrcIP] = rule.PrefixRange(0x0A000000, 24, 32)
	if !isSmall(r, rule.DimSrcIP, 16) {
		t.Error("/24 should be small at threshold 16")
	}
	r.Ranges[rule.DimSrcIP] = rule.PrefixRange(0x0A000000, 8, 32)
	if isSmall(r, rule.DimSrcIP, 16) {
		t.Error("/8 should not be small at threshold 16")
	}
	r.Ranges[rule.DimSrcIP] = rule.PrefixRange(0x0A000000, 16, 32)
	if !isSmall(r, rule.DimSrcIP, 16) {
		t.Error("/16 exactly should be small")
	}
}

func TestPartitionRules(t *testing.T) {
	f, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(f, 400, 1)
	groups, labels, dims := partitionRules(set.Rules(), 16)
	if len(groups) != 4 || len(labels) != 4 || len(dims) != 4 {
		t.Fatalf("expected 4 subsets, got %d/%d/%d", len(groups), len(labels), len(dims))
	}
	total := 0
	for i, g := range groups {
		total += len(g)
		for j := 1; j < len(g); j++ {
			if g[j].Priority < g[j-1].Priority {
				t.Fatalf("group %s not in priority order", labels[i])
			}
		}
	}
	if total != set.Len() {
		t.Errorf("partition lost rules: %d vs %d", total, set.Len())
	}
	if labels[0] != "sa-da" || labels[3] != "big" {
		t.Errorf("labels = %v", labels)
	}
	if len(dims[0]) != 2 || len(dims[3]) != 0 {
		t.Errorf("pre-cut dims = %v", dims)
	}
}

func TestBuildSmallClassifiers(t *testing.T) {
	for _, fam := range []string{"acl1", "fw2", "ipc1"} {
		f, _ := classbench.FamilyByName(fam)
		set := classbench.Generate(f, 300, 1)
		c, err := Build(set, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if len(c.Trees) == 0 {
			t.Fatalf("%s: no trees", fam)
		}
		m := c.Metrics()
		if m.MemoryBytes <= 0 || m.ClassificationTime <= 0 {
			t.Errorf("%s: degenerate metrics %+v", fam, m)
		}
		checkClassifierEquivalence(t, c, set, 1500, 7)
	}
}

func TestCutSplitMemoryCompetitiveWithHiCuts(t *testing.T) {
	// CutSplit's claim: pre-cutting plus splitting keeps memory low on
	// wildcard-heavy rule sets where HiCuts replicates heavily.
	f, _ := classbench.FamilyByName("fw4")
	set := classbench.Generate(f, 500, 3)
	cs, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm, hm := cs.Metrics(), hi.ComputeMetrics()
	if cm.MemoryBytes >= hm.MemoryBytes {
		t.Errorf("CutSplit memory %d should beat HiCuts %d on fw4", cm.MemoryBytes, hm.MemoryBytes)
	}
	checkClassifierEquivalence(t, cs, set, 800, 4)
}

func TestHyperSplitNodesHaveTwoChildren(t *testing.T) {
	f, _ := classbench.FamilyByName("acl3")
	set := classbench.Generate(f, 200, 2)
	cfg := DefaultConfig()
	cfg.PreCutThreshold = 1 << 30 // force HyperSplit everywhere
	c, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Trees {
		tr.Walk(func(n *tree.Node) bool {
			if n.Kind == tree.KindCut && len(n.Children) != 2 {
				t.Errorf("HyperSplit node has %d children", len(n.Children))
				return false
			}
			return true
		})
	}
	checkClassifierEquivalence(t, c, set, 800, 5)
}

func TestZeroConfigDefaults(t *testing.T) {
	f, _ := classbench.FamilyByName("ipc2")
	set := classbench.Generate(f, 150, 4)
	c, err := Build(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkClassifierEquivalence(t, c, set, 600, 8)
}

func TestUnseparableRulesTerminate(t *testing.T) {
	rules := make([]rule.Rule, 40)
	for i := range rules {
		rules[i] = rule.NewWildcardRule(i)
	}
	set := rule.NewSet(rules)
	c, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkClassifierEquivalence(t, c, set, 200, 9)
}

func TestEmptySubsetsAreSkipped(t *testing.T) {
	// A classifier whose rules are all "big" produces a single tree.
	rules := []rule.Rule{}
	for i := 0; i < 30; i++ {
		r := rule.NewWildcardRule(i)
		r.Ranges[rule.DimSrcPort] = rule.Range{Lo: uint64(i * 100), Hi: uint64(i*100 + 50)}
		rules = append(rules, r)
	}
	rules = append(rules, rule.NewWildcardRule(30))
	set := rule.NewSet(rules)
	c, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trees) != 1 || c.Labels[0] != "big" {
		t.Errorf("expected only the big tree, got %v", c.Labels)
	}
	checkClassifierEquivalence(t, c, set, 500, 10)
}
