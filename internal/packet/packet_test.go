package packet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"neurocuts/internal/rule"
)

func TestIPv4HeaderRoundTrip(t *testing.T) {
	h := IPv4Header{
		Version: 4, IHL: 5, TOS: 0x10, Length: 40, ID: 0x1234,
		Flags: 2, FragOff: 0, TTL: 64, Protocol: ProtoTCP,
		SrcIP: 0x0A000001, DstIP: 0xC0A80101,
	}
	buf := make([]byte, 20)
	n, err := h.SerializeTo(buf)
	if err != nil || n != 20 {
		t.Fatalf("SerializeTo = %d, %v", n, err)
	}
	var got IPv4Header
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != h.SrcIP || got.DstIP != h.DstIP || got.Protocol != h.Protocol ||
		got.TTL != h.TTL || got.ID != h.ID || got.Length != h.Length || got.Flags != h.Flags {
		t.Errorf("round trip mismatch: %+v vs %+v", got, h)
	}
	// The serialized header must checksum to zero when re-summed with its
	// checksum field included (standard IP checksum property).
	if Checksum(buf) != 0 {
		t.Errorf("header checksum verification failed: %#x", Checksum(buf))
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var h IPv4Header
	if err := h.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short buffer: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 6 << 4 // IPv6 version nibble
	if err := h.DecodeFromBytes(bad); err != ErrNotIPv4 {
		t.Errorf("non-IPv4: %v", err)
	}
	bad[0] = 4<<4 | 3 // IHL too small
	if err := h.DecodeFromBytes(bad); err != ErrBadIHL {
		t.Errorf("bad IHL: %v", err)
	}
	bad[0] = 4<<4 | 15 // IHL says 60 bytes but buffer is 20
	if err := h.DecodeFromBytes(bad); err != ErrBadIHL {
		t.Errorf("IHL beyond buffer: %v", err)
	}
	if _, err := h.SerializeTo(make([]byte, 3)); err != ErrTruncated {
		t.Errorf("serialize into short buffer: %v", err)
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 443, DstPort: 51000, Seq: 1, Ack: 2, DataOffset: 5, Flags: 0x18, Window: 1024}
	buf := make([]byte, 20)
	if _, err := h.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got TCPHeader
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip mismatch: %+v vs %+v", got, h)
	}
	if err := got.DecodeFromBytes(buf[:10]); err != ErrTruncated {
		t.Errorf("short TCP: %v", err)
	}
	if _, err := h.SerializeTo(buf[:10]); err != ErrTruncated {
		t.Errorf("short TCP serialize: %v", err)
	}
}

func TestUDPHeaderRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 53, DstPort: 33000, Length: 8, Checksum: 0xBEEF}
	buf := make([]byte, 8)
	if _, err := h.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got UDPHeader
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip mismatch: %+v vs %+v", got, h)
	}
	if err := got.DecodeFromBytes(buf[:4]); err != ErrTruncated {
		t.Errorf("short UDP: %v", err)
	}
	if _, err := h.SerializeTo(buf[:4]); err != ErrTruncated {
		t.Errorf("short UDP serialize: %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Example from RFC 1071 discussions: checksum of this 8-byte sequence.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	want := ^uint16(0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 - 0x20000 + 2) // fold twice
	got := Checksum(data)
	// Compute independently by the straightforward method.
	var sum uint32
	for i := 0; i < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	if got != ^uint16(sum) {
		t.Errorf("Checksum = %#x, want %#x (sanity %#x)", got, ^uint16(sum), want)
	}
	// Odd-length input exercises the trailing-byte path.
	_ = Checksum([]byte{0xAB})
}

func TestDecodeSerializeRoundTrip(t *testing.T) {
	keys := []rule.Packet{
		{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1234, DstPort: 80, Proto: ProtoTCP},
		{SrcIP: 0xC0A80101, DstIP: 0x08080808, SrcPort: 53124, DstPort: 53, Proto: ProtoUDP},
		{SrcIP: 0x7F000001, DstIP: 0x7F000001, SrcPort: 0, DstPort: 0, Proto: ProtoICMP},
	}
	for _, k := range keys {
		wire, err := Serialize(k)
		if err != nil {
			t.Fatalf("Serialize(%v): %v", k, err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("Decode(%v): %v", k, err)
		}
		if got != k {
			t.Errorf("round trip mismatch: %v vs %v", got, k)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("truncated IP should fail")
	}
	// Valid IP header claiming TCP but with no transport bytes.
	k := rule.Packet{Proto: ProtoTCP, SrcPort: 1, DstPort: 2}
	wire, _ := Serialize(k)
	if _, err := Decode(wire[:20]); err == nil {
		t.Error("truncated TCP should fail")
	}
	k.Proto = ProtoUDP
	wire, _ = Serialize(k)
	if _, err := Decode(wire[:20]); err == nil {
		t.Error("truncated UDP should fail")
	}
}

func TestDecoderReuse(t *testing.T) {
	var d Decoder
	for i := 0; i < 100; i++ {
		k := rule.Packet{SrcIP: uint32(i), DstIP: uint32(i * 7), SrcPort: uint16(i), DstPort: uint16(i + 1), Proto: ProtoTCP}
		wire, err := Serialize(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("iteration %d mismatch: %v vs %v", i, got, k)
		}
	}
}

func TestPropertySerializeDecode(t *testing.T) {
	protos := []uint8{ProtoTCP, ProtoUDP, ProtoICMP}
	f := func(src, dst uint32, sp, dp uint16, protoIdx uint8) bool {
		proto := protos[int(protoIdx)%len(protos)]
		k := rule.Packet{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		if proto == ProtoICMP {
			k.SrcPort, k.DstPort = 0, 0
		}
		wire, err := Serialize(k)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		return err == nil && got == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTextTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := make([]TraceEntry, 50)
	for i := range entries {
		entries[i] = TraceEntry{
			Key: rule.Packet{
				SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: uint8(rng.Intn(256)),
			},
			MatchRule: rng.Intn(100),
		}
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("length %d != %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestReadTraceFiveFieldAndErrors(t *testing.T) {
	got, err := ReadTrace(bytes.NewBufferString("# comment\n167772161 167772162 80 443 6\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].MatchRule != -1 || got[0].Key.SrcPort != 80 {
		t.Fatalf("unexpected entries %+v", got)
	}
	if _, err := ReadTrace(bytes.NewBufferString("1 2 3\n")); err == nil {
		t.Error("short line should fail")
	}
	if _, err := ReadTrace(bytes.NewBufferString("a b c d e\n")); err == nil {
		t.Error("non-numeric line should fail")
	}
}

func TestWireTraceRoundTrip(t *testing.T) {
	entries := []TraceEntry{
		{Key: rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}},
		{Key: rule.Packet{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8, Proto: ProtoUDP}},
		{Key: rule.Packet{SrcIP: 9, DstIP: 10, Proto: ProtoICMP}},
	}
	var buf bytes.Buffer
	if err := WriteWireTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWireTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("length %d != %d", len(got), len(entries))
	}
	for i := range got {
		if got[i].Key != entries[i].Key {
			t.Fatalf("entry %d: %+v != %+v", i, got[i].Key, entries[i].Key)
		}
	}
	// Truncated stream errors out.
	var again bytes.Buffer
	if err := WriteWireTrace(&again, entries); err != nil {
		t.Fatal(err)
	}
	trunc := again.Bytes()[:again.Len()/2]
	if _, err := ReadWireTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated wire trace should fail")
	}
}

func BenchmarkDecode(b *testing.B) {
	wire, _ := Serialize(rule.Packet{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1234, DstPort: 80, Proto: ProtoTCP})
	var d Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
