package packet

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"neurocuts/internal/rule"
)

// This file implements reading and writing header traces in the ClassBench
// trace_generator text format: one packet per line, five whitespace-separated
// decimal fields (src IP, dst IP, src port, dst port, protocol), optionally
// followed by the index of the rule the trace generator intended the packet
// to match (which we preserve when present so tests can check classification
// results against ground truth).

// TraceEntry is one packet of a header trace plus its optional ground-truth
// matching rule (or -1 when unknown).
type TraceEntry struct {
	Key       rule.Packet
	MatchRule int
}

// WriteTrace writes entries to w in ClassBench trace format.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\t%d\n",
			e.Key.SrcIP, e.Key.DstIP, e.Key.SrcPort, e.Key.DstPort, e.Key.Proto, e.MatchRule); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a ClassBench-format header trace from r. Lines may have
// five fields (no ground truth) or six.
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []TraceEntry
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 && len(fields) != 6 {
			return nil, fmt.Errorf("packet: trace line %d: expected 5 or 6 fields, got %d", lineNo, len(fields))
		}
		var vals [6]uint64
		vals[5] = 0
		for i, f := range fields {
			var v uint64
			if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
				return nil, fmt.Errorf("packet: trace line %d field %d: %w", lineNo, i, err)
			}
			vals[i] = v
		}
		e := TraceEntry{
			Key: rule.Packet{
				SrcIP:   uint32(vals[0]),
				DstIP:   uint32(vals[1]),
				SrcPort: uint16(vals[2]),
				DstPort: uint16(vals[3]),
				Proto:   uint8(vals[4]),
			},
			MatchRule: -1,
		}
		if len(fields) == 6 {
			e.MatchRule = int(vals[5])
		}
		out = append(out, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("packet: reading trace: %w", err)
	}
	return out, nil
}

// WriteWireTrace serializes each entry as a raw IPv4 packet and writes a
// simple length-prefixed binary stream: a 2-byte big-endian length followed
// by the packet bytes, repeated.
func WriteWireTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		pkt, err := Serialize(e.Key)
		if err != nil {
			return err
		}
		if _, err := bw.Write([]byte{byte(len(pkt) >> 8), byte(len(pkt))}); err != nil {
			return err
		}
		if _, err := bw.Write(pkt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWireTrace reads a length-prefixed binary packet stream produced by
// WriteWireTrace and decodes each packet into a classification key.
func ReadWireTrace(r io.Reader) ([]TraceEntry, error) {
	br := bufio.NewReader(r)
	var out []TraceEntry
	var dec Decoder
	buf := make([]byte, 0, 128)
	for {
		var lenBytes [2]byte
		if _, err := io.ReadFull(br, lenBytes[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("packet: reading wire trace length: %w", err)
		}
		n := int(lenBytes[0])<<8 | int(lenBytes[1])
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("packet: reading wire trace packet: %w", err)
		}
		key, err := dec.Decode(buf)
		if err != nil {
			return nil, fmt.Errorf("packet: decoding wire trace packet %d: %w", len(out), err)
		}
		out = append(out, TraceEntry{Key: key, MatchRule: -1})
	}
}
