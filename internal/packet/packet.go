// Package packet converts between wire-format packet headers and the
// 5-tuple keys the classifiers operate on.
//
// The decode path is allocation-free in the style of gopacket's
// DecodingLayerParser: Decoder owns preallocated layer structs and
// DecodeFromBytes fills them in place. Only IPv4 with TCP, UDP or ICMP
// payloads is modelled, because those are the only header fields the
// classification rules inspect.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"neurocuts/internal/rule"
)

// Protocol numbers for the transports this package understands.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrNotIPv4     = errors.New("packet: not an IPv4 packet")
	ErrBadIHL      = errors.New("packet: invalid IPv4 header length")
	ErrUnsupported = errors.New("packet: unsupported transport protocol")
)

// IPv4Header is a decoded IPv4 header (the subset of fields relevant to
// classification plus what is needed to re-serialize a valid header).
type IPv4Header struct {
	Version  uint8
	IHL      uint8 // in 32-bit words
	TOS      uint8
	Length   uint16
	ID       uint16
	Flags    uint8
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	SrcIP    uint32
	DstIP    uint32
}

// HeaderLen returns the header length in bytes.
func (h *IPv4Header) HeaderLen() int { return int(h.IHL) * 4 }

// DecodeFromBytes parses an IPv4 header from data in place.
func (h *IPv4Header) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	h.Version = data[0] >> 4
	if h.Version != 4 {
		return ErrNotIPv4
	}
	h.IHL = data[0] & 0x0F
	if h.IHL < 5 || len(data) < h.HeaderLen() {
		return ErrBadIHL
	}
	h.TOS = data[1]
	h.Length = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	flagsFrag := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(flagsFrag >> 13)
	h.FragOff = flagsFrag & 0x1FFF
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	h.SrcIP = binary.BigEndian.Uint32(data[12:16])
	h.DstIP = binary.BigEndian.Uint32(data[16:20])
	return nil
}

// SerializeTo writes the header into buf, which must have room for
// HeaderLen() bytes. The checksum is recomputed. It returns the number of
// bytes written.
func (h *IPv4Header) SerializeTo(buf []byte) (int, error) {
	if h.IHL < 5 {
		h.IHL = 5
	}
	n := h.HeaderLen()
	if len(buf) < n {
		return 0, ErrTruncated
	}
	buf[0] = 4<<4 | h.IHL
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], h.Length)
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(h.Flags)<<13|h.FragOff&0x1FFF)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	buf[10], buf[11] = 0, 0
	binary.BigEndian.PutUint32(buf[12:16], h.SrcIP)
	binary.BigEndian.PutUint32(buf[16:20], h.DstIP)
	for i := 20; i < n; i++ {
		buf[i] = 0
	}
	cs := Checksum(buf[:n])
	binary.BigEndian.PutUint16(buf[10:12], cs)
	h.Checksum = cs
	return n, nil
}

// TCPHeader is a decoded TCP header (ports and the fields needed to
// serialize a minimal valid header).
type TCPHeader struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // in 32-bit words
	Flags      uint8
	Window     uint16
	Checksum   uint16
	Urgent     uint16
}

// DecodeFromBytes parses a TCP header from data in place.
func (h *TCPHeader) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Seq = binary.BigEndian.Uint32(data[4:8])
	h.Ack = binary.BigEndian.Uint32(data[8:12])
	h.DataOffset = data[12] >> 4
	h.Flags = data[13]
	h.Window = binary.BigEndian.Uint16(data[14:16])
	h.Checksum = binary.BigEndian.Uint16(data[16:18])
	h.Urgent = binary.BigEndian.Uint16(data[18:20])
	return nil
}

// SerializeTo writes a 20-byte TCP header into buf.
func (h *TCPHeader) SerializeTo(buf []byte) (int, error) {
	if len(buf) < 20 {
		return 0, ErrTruncated
	}
	if h.DataOffset < 5 {
		h.DataOffset = 5
	}
	binary.BigEndian.PutUint16(buf[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], h.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], h.Seq)
	binary.BigEndian.PutUint32(buf[8:12], h.Ack)
	buf[12] = h.DataOffset << 4
	buf[13] = h.Flags
	binary.BigEndian.PutUint16(buf[14:16], h.Window)
	binary.BigEndian.PutUint16(buf[16:18], h.Checksum)
	binary.BigEndian.PutUint16(buf[18:20], h.Urgent)
	return 20, nil
}

// UDPHeader is a decoded UDP header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// DecodeFromBytes parses a UDP header from data in place.
func (h *UDPHeader) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Length = binary.BigEndian.Uint16(data[4:6])
	h.Checksum = binary.BigEndian.Uint16(data[6:8])
	return nil
}

// SerializeTo writes an 8-byte UDP header into buf.
func (h *UDPHeader) SerializeTo(buf []byte) (int, error) {
	if len(buf) < 8 {
		return 0, ErrTruncated
	}
	binary.BigEndian.PutUint16(buf[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], h.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], h.Length)
	binary.BigEndian.PutUint16(buf[6:8], h.Checksum)
	return 8, nil
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Decoder extracts classification keys from raw IPv4 packets without
// allocating per packet.
type Decoder struct {
	ip  IPv4Header
	tcp TCPHeader
	udp UDPHeader
}

// Decode parses an IPv4 packet starting at data[0] and returns the 5-tuple
// classification key. ICMP and other transports yield zero ports; TCP/UDP
// packets that are too short for their transport header are an error.
func (d *Decoder) Decode(data []byte) (rule.Packet, error) {
	var key rule.Packet
	if err := d.ip.DecodeFromBytes(data); err != nil {
		return key, err
	}
	key.SrcIP = d.ip.SrcIP
	key.DstIP = d.ip.DstIP
	key.Proto = d.ip.Protocol
	payload := data[d.ip.HeaderLen():]
	switch d.ip.Protocol {
	case ProtoTCP:
		if err := d.tcp.DecodeFromBytes(payload); err != nil {
			return key, fmt.Errorf("tcp: %w", err)
		}
		key.SrcPort = d.tcp.SrcPort
		key.DstPort = d.tcp.DstPort
	case ProtoUDP:
		if err := d.udp.DecodeFromBytes(payload); err != nil {
			return key, fmt.Errorf("udp: %w", err)
		}
		key.SrcPort = d.udp.SrcPort
		key.DstPort = d.udp.DstPort
	default:
		// Ports stay zero for ICMP and other transports; the classifier's
		// port dimensions then see 0, which is the standard convention.
	}
	return key, nil
}

// Decode is a convenience wrapper around Decoder.Decode for callers that do
// not need to amortise allocations.
func Decode(data []byte) (rule.Packet, error) {
	var d Decoder
	return d.Decode(data)
}

// Serialize builds a minimal wire-format IPv4 packet (no payload beyond the
// transport header) realising the given 5-tuple key. The inverse of Decode.
func Serialize(key rule.Packet) ([]byte, error) {
	var transportLen int
	switch key.Proto {
	case ProtoTCP:
		transportLen = 20
	case ProtoUDP:
		transportLen = 8
	default:
		transportLen = 0
	}
	total := 20 + transportLen
	buf := make([]byte, total)
	ip := IPv4Header{
		Version:  4,
		IHL:      5,
		Length:   uint16(total),
		TTL:      64,
		Protocol: key.Proto,
		SrcIP:    key.SrcIP,
		DstIP:    key.DstIP,
	}
	if _, err := ip.SerializeTo(buf[:20]); err != nil {
		return nil, err
	}
	switch key.Proto {
	case ProtoTCP:
		tcp := TCPHeader{SrcPort: key.SrcPort, DstPort: key.DstPort, DataOffset: 5, Flags: 0x02, Window: 65535}
		if _, err := tcp.SerializeTo(buf[20:]); err != nil {
			return nil, err
		}
	case ProtoUDP:
		udp := UDPHeader{SrcPort: key.SrcPort, DstPort: key.DstPort, Length: 8}
		if _, err := udp.SerializeTo(buf[20:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
