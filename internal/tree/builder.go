package tree

import (
	"fmt"

	"neurocuts/internal/rule"
)

// Builder drives the incremental, depth-first construction of a decision
// tree one node at a time. This is the interface the NeuroCuts environment
// uses: GrowTreeDFS in Algorithm 1 maps to Current / Apply* / advance here.
// The baselines use it too, which keeps every algorithm on the same code
// path for node expansion and termination.
type Builder struct {
	tree *Tree
	// stack holds nodes awaiting processing in DFS order (top = next).
	stack []*Node
	// steps counts how many actions have been applied.
	steps int
}

// NewBuilder creates a builder over a fresh tree for the classifier.
func NewBuilder(s *rule.Set, binth int) *Builder {
	t := New(s, binth)
	return newBuilderFromTree(t)
}

// NewBuilderFromTree wraps an existing (typically freshly created) tree.
func NewBuilderFromTree(t *Tree) *Builder {
	return newBuilderFromTree(t)
}

func newBuilderFromTree(t *Tree) *Builder {
	b := &Builder{tree: t}
	if !t.IsTerminal(t.Root) {
		b.stack = append(b.stack, t.Root)
	}
	return b
}

// Tree returns the tree under construction.
func (b *Builder) Tree() *Tree { return b.tree }

// Steps returns how many actions have been applied so far.
func (b *Builder) Steps() int { return b.steps }

// Done reports whether every remaining leaf satisfies the leaf threshold.
func (b *Builder) Done() bool { return len(b.stack) == 0 }

// Current returns the next non-terminal leaf to expand (in DFS order), or
// nil when the tree is complete.
func (b *Builder) Current() *Node {
	if len(b.stack) == 0 {
		return nil
	}
	return b.stack[len(b.stack)-1]
}

// Pending returns how many non-terminal leaves are queued for expansion.
func (b *Builder) Pending() int { return len(b.stack) }

// ApplyCut expands the current node with a single-dimension cut and advances
// to the next non-terminal leaf.
func (b *Builder) ApplyCut(dim rule.Dimension, k int) error {
	n := b.Current()
	if n == nil {
		return fmt.Errorf("tree: builder is done")
	}
	children, err := b.tree.Cut(n, dim, k)
	if err != nil {
		return err
	}
	b.advance(children)
	return nil
}

// ApplyCutMulti expands the current node with a multi-dimension cut.
func (b *Builder) ApplyCutMulti(dims []rule.Dimension, counts []int) error {
	n := b.Current()
	if n == nil {
		return fmt.Errorf("tree: builder is done")
	}
	children, err := b.tree.CutMulti(n, dims, counts)
	if err != nil {
		return err
	}
	b.advance(children)
	return nil
}

// ApplyCutAtPoints expands the current node with an unequal cut at explicit
// boundaries.
func (b *Builder) ApplyCutAtPoints(dim rule.Dimension, points []uint64) error {
	n := b.Current()
	if n == nil {
		return fmt.Errorf("tree: builder is done")
	}
	children, err := b.tree.CutAtPoints(n, dim, points)
	if err != nil {
		return err
	}
	b.advance(children)
	return nil
}

// ApplyPartition expands the current node with an explicit rule partition.
func (b *Builder) ApplyPartition(groups [][]rule.Rule, labels []string) error {
	n := b.Current()
	if n == nil {
		return fmt.Errorf("tree: builder is done")
	}
	children, err := b.tree.Partition(n, groups, labels)
	if err != nil {
		return err
	}
	b.advance(children)
	return nil
}

// ApplyPartitionByCoverage expands the current node with the simple
// coverage-threshold partition.
func (b *Builder) ApplyPartitionByCoverage(dim rule.Dimension, threshold float64) error {
	n := b.Current()
	if n == nil {
		return fmt.Errorf("tree: builder is done")
	}
	children, err := b.tree.PartitionByCoverage(n, dim, threshold)
	if err != nil {
		return err
	}
	b.advance(children)
	return nil
}

// Skip marks the current node as accepted as-is (an oversized leaf) and
// moves on. The environment uses this when a rollout is truncated.
func (b *Builder) Skip() {
	if len(b.stack) == 0 {
		return
	}
	b.stack = b.stack[:len(b.stack)-1]
}

// advance pops the expanded node and pushes its non-terminal children in
// reverse order so that the first child is processed next (depth-first).
func (b *Builder) advance(children []*Node) {
	b.steps++
	b.stack = b.stack[:len(b.stack)-1]
	for i := len(children) - 1; i >= 0; i-- {
		if !b.tree.IsTerminal(children[i]) {
			b.stack = append(b.stack, children[i])
		}
	}
}
