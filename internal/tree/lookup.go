package tree

import "neurocuts/internal/rule"

// Classify walks the tree and returns the highest-priority rule matching the
// packet, plus false when no rule matches (which cannot happen when the
// classifier carries a default rule). The walk also works on partially built
// trees, where oversized leaves simply fall back to linear search.
func (t *Tree) Classify(p rule.Packet) (rule.Rule, bool) {
	best, depth := t.classifyNode(t.Root, p)
	_ = depth
	if best == nil {
		return rule.Rule{}, false
	}
	return *best, true
}

// ClassifyWithDepth is Classify but also reports the number of node visits
// the lookup performed (the classification-time metric for a single packet:
// memory accesses along the path, summed across partition sub-lookups).
func (t *Tree) ClassifyWithDepth(p rule.Packet) (rule.Rule, int, bool) {
	best, visits := t.classifyNode(t.Root, p)
	if best == nil {
		return rule.Rule{}, visits, false
	}
	return *best, visits, true
}

// classifyNode returns the best matching rule in the subtree rooted at n (or
// nil) and the number of nodes visited.
func (t *Tree) classifyNode(n *Node, p rule.Packet) (*rule.Rule, int) {
	visits := 1
	switch {
	case n.IsLeaf():
		for i := range n.Rules {
			if n.Rules[i].Matches(p) {
				return &n.Rules[i], visits
			}
		}
		return nil, visits

	case n.Kind == KindCut:
		child := n.childForPacket(p)
		if child == nil {
			return nil, visits
		}
		best, v := t.classifyNode(child, p)
		return best, visits + v

	default: // KindPartition: the packet must be checked against every child.
		var best *rule.Rule
		for _, c := range n.Children {
			r, v := t.classifyNode(c, p)
			visits += v
			if r != nil && (best == nil || r.Priority < best.Priority) {
				best = r
			}
		}
		return best, visits
	}
}

// childForPacket locates the cut child whose box contains the packet.
// Children of a cut node tile the parent box, so exactly one child matches;
// nil is only possible for packets outside the node's box.
func (n *Node) childForPacket(p rule.Packet) *Node {
	if n.CustomCut {
		return n.scanChildForPacket(p)
	}
	// Compute the child index arithmetically from the cut structure instead
	// of scanning: children are laid out in mixed-radix order over CutDims.
	idx := 0
	for i, d := range n.CutDims {
		pieceCount := n.CutCounts[i]
		dimRange := n.Box[d]
		v := p.Field(d)
		if !dimRange.Contains(v) {
			return nil
		}
		step := dimRange.Size() / uint64(pieceCount)
		var piece int
		if step == 0 {
			piece = 0
		} else {
			piece = int((v - dimRange.Lo) / step)
		}
		if piece >= pieceCount {
			piece = pieceCount - 1
		}
		idx = idx*pieceCount + piece
	}
	if idx < 0 || idx >= len(n.Children) {
		return nil
	}
	child := n.Children[idx]
	// The arithmetic index matches splitRange's equal-step layout except for
	// the final remainder piece; verify and fall back to a scan if the value
	// landed on a boundary handled differently.
	for _, d := range n.CutDims {
		if !child.Box[d].Contains(p.Field(d)) {
			return n.scanChildForPacket(p)
		}
	}
	return child
}

func (n *Node) scanChildForPacket(p rule.Packet) *Node {
	for _, c := range n.Children {
		inside := true
		for _, d := range n.CutDims {
			if !c.Box[d].Contains(p.Field(d)) {
				inside = false
				break
			}
		}
		if inside {
			return c
		}
	}
	return nil
}
